//! BLIF interoperability: read a circuit in BLIF format, optimize it with
//! BDS-MAJ, verify, and write the optimized BLIF back out — the classic
//! EDA tool usage pattern (the paper's own flow reads MCNC `.blif` files).
//!
//! Run with: `cargo run --release --example blif_interop`

use bds_maj::prelude::*;

/// A 2-bit adder with a carry chain, written the way an HDL-to-blif
/// translator would emit it.
const INPUT_BLIF: &str = "\
.model add2
.inputs a0 a1 b0 b1
.outputs s0 s1 cout
.names a0 b0 s0
10 1
01 1
.names a0 b0 c0
11 1
.names a1 b1 c0 s1
100 1
010 1
001 1
111 1
.names a1 b1 c0 cout
11- 1
1-1 1
-11 1
.end
";

fn main() {
    // 1. Parse.
    let net = parse_blif(INPUT_BLIF).expect("valid BLIF");
    println!(
        "parsed `{}`: {} inputs, {} outputs, {} logic nodes",
        net.name(),
        net.inputs().len(),
        net.outputs().len(),
        net.gate_counts().logic_total()
    );

    // 2. Optimize with BDS-MAJ: the carry cover `11- 1-1 -11` is exactly
    //    a majority function and must come out as a MAJ gate.
    let out = bds_maj(&net, &BdsMajOptions::default());
    let counts = out.network().gate_counts();
    println!("optimized     : {counts}");
    assert!(counts.maj >= 1, "the carry majority must be extracted");

    // 3. Verify exactly (the circuit is small enough for canonical BDDs).
    match equiv_exact(&net, out.network(), 1 << 20) {
        Some(true) => println!("equivalence   : proven exactly via canonical BDDs"),
        Some(false) => panic!("optimization changed the function!"),
        None => println!("equivalence   : BDD blow-up guard hit (unexpected here)"),
    }

    // 4. Write the optimized circuit back to BLIF.
    let text = write_blif(out.network());
    println!("----- optimized BLIF -----\n{text}");

    // 5. Round-trip sanity: the written BLIF parses back to the same
    //    function.
    let reparsed = parse_blif(&text).expect("round-trip parses");
    equiv_sim(&net, &reparsed, 16, 5).expect("round-trip preserves the function");
    println!("round-trip    : verified");
}
