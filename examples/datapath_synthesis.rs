//! Datapath synthesis comparison: the workload class the paper's
//! introduction motivates (arithmetic, XOR/MAJ-intensive logic).
//!
//! Builds a Wallace-tree multiplier and a restoring divider, runs the four
//! flows of Table II (BDS-MAJ, BDS-PGA, ABC-like, DC-like), and prints the
//! mapped area / gate-count / delay comparison.
//!
//! Run with: `cargo run --release --example datapath_synthesis`

use bds_maj::circuits::arith;
use bds_maj::prelude::*;

fn main() {
    let lib = Library::cmos22();
    let benches = [
        ("wallace 8x8", arith::wallace_multiplier(8)),
        ("divider 8", arith::divider(8)),
        ("4-op adder 8", arith::multi_operand_adder(4, 8)),
    ];
    println!(
        "{:<14} | {:>22} | {:>22} | {:>22} | {:>22}",
        "circuit", "BDS-MAJ", "BDS-PGA", "ABC-like", "DC-like"
    );
    for (name, net) in &benches {
        let flows: [(String, logic::Network); 4] = [
            (
                "BDS-MAJ".into(),
                bds_maj(net, &BdsMajOptions::default()).network().clone(),
            ),
            (
                "BDS-PGA".into(),
                bds_pga(net, &EngineOptions::default()).network,
            ),
            ("ABC".into(), abc_flow(net)),
            ("DC".into(), dc_flow(net, &lib).network),
        ];
        let mut cells = Vec::new();
        for (fname, optimized) in &flows {
            equiv_sim(net, optimized, 8, 99)
                .unwrap_or_else(|e| panic!("{fname} broke {name}: {e}"));
            let r = report(&map_network(optimized), &lib);
            cells.push(format!(
                "{:>7.2}um2 {:>4}g {:>5.2}ns",
                r.area,
                r.gate_count,
                r.delay * 1e0
            ));
        }
        println!(
            "{:<14} | {} | {} | {} | {}",
            name, cells[0], cells[1], cells[2], cells[3]
        );
    }
    println!();
    println!("Every optimized netlist above was equivalence-checked against its source.");
}
