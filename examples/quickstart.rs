//! Quickstart: discover majority logic hidden in an AND/OR netlist.
//!
//! Builds the paper's running example `F = ab + bc + ac` as plain AND/OR
//! gates, runs the BDS-MAJ flow, and shows that the result is a single
//! MAJ-3 gate — then maps it on the CMOS 22 nm library and prints the
//! area/delay report.
//!
//! Run with: `cargo run --release --example quickstart`

use bds_maj::prelude::*;

fn main() {
    // 1. Describe F = ab + bc + ac structurally.
    let mut net = Network::new("majority");
    let a = net.add_input("a");
    let b = net.add_input("b");
    let c = net.add_input("c");
    let ab = net.add_gate(GateKind::And, vec![a, b]);
    let bc = net.add_gate(GateKind::And, vec![b, c]);
    let ac = net.add_gate(GateKind::And, vec![a, c]);
    let t = net.add_gate(GateKind::Or, vec![ab, bc]);
    let f = net.add_gate(GateKind::Or, vec![t, ac]);
    net.set_output("f", f);
    println!(
        "input network : {} gates ({})",
        net.gate_counts().logic_total(),
        net.gate_counts()
    );

    // 2. Optimize with BDS-MAJ.
    let out = bds_maj(&net, &BdsMajOptions::default());
    let counts = out.network().gate_counts();
    println!("BDS-MAJ result: {} gates ({counts})", counts.logic_total());
    assert_eq!(counts.maj, 1, "the five AND/OR gates collapse to one MAJ-3");

    // 3. The optimization is verified, not assumed.
    equiv_sim(&net, out.network(), 32, 7).expect("optimized network must be equivalent");
    println!("equivalence   : verified on 2112 random vectors");

    // 4. Map onto the six-cell CMOS 22 nm library and report.
    let mapped = map_network(out.network());
    let r = report(&mapped, &Library::cmos22());
    println!("mapped        : {r}");

    // 5. Compare with what the BDS-PGA baseline (no majority support) does.
    let baseline = bds_pga(&net, &EngineOptions::default());
    let br = report(&map_network(&baseline.network), &Library::cmos22());
    println!("BDS-PGA       : {br}");
    assert!(r.area < br.area, "majority extraction must pay off here");
}
