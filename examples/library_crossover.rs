//! Library ablation: where does majority extraction stop paying off?
//!
//! The paper's premise is that a MAJ-3 cell is cheaper than its AND/OR
//! equivalent. This example sweeps the MAJ3 cell area and finds the
//! crossover point where BDS-MAJ's mapped area advantage over BDS-PGA
//! disappears — the kind of study a standard-cell team would run before
//! adding a majority cell to a library.
//!
//! Run with: `cargo run --release --example library_crossover`

use bds_maj::prelude::*;
use bds_maj::techmap::Cell;

fn main() {
    let net = bds_maj::circuits::arith::wallace_multiplier(8);
    let maj_opt = bds_maj(&net, &BdsMajOptions::default());
    let pga_opt = bds_pga(&net, &EngineOptions::default());
    equiv_sim(&net, maj_opt.network(), 8, 1).expect("bds-maj equivalent");
    equiv_sim(&net, &pga_opt.network, 8, 1).expect("bds-pga equivalent");

    let mapped_maj = map_network(maj_opt.network());
    let mapped_pga = map_network(&pga_opt.network);

    println!("Wallace 8×8 multiplier, MAJ3 area sweep (baseline NAND2 = 0.130 µm²):\n");
    println!(
        "{:>12} {:>14} {:>14} {:>10}",
        "MAJ3 area", "BDS-MAJ area", "BDS-PGA area", "winner"
    );
    let mut crossover = None;
    for step in 0..=12 {
        let maj_area = 0.10 + 0.05 * step as f64;
        let lib = Library::cmos22().with_cell(
            CellKind::Maj3,
            Cell {
                area: maj_area,
                delay: 0.028,
            },
        );
        let ra = report(&mapped_maj, &lib);
        let rb = report(&mapped_pga, &lib);
        let winner = if ra.area < rb.area {
            "BDS-MAJ"
        } else {
            "BDS-PGA"
        };
        if winner == "BDS-PGA" && crossover.is_none() {
            crossover = Some(maj_area);
        }
        println!(
            "{:>9.3}µm² {:>11.2}µm² {:>11.2}µm² {:>10}",
            maj_area, ra.area, rb.area, winner
        );
    }
    println!();
    match crossover {
        Some(a) => println!(
            "crossover: majority extraction stops paying off once MAJ3 costs ≥ {a:.2} µm² \
             (≈ {:.1}× a NAND2)",
            a / 0.130
        ),
        None => println!(
            "no crossover in the swept range: majority extraction wins even with a \
             very expensive MAJ3 cell (node-count savings dominate)"
        ),
    }
}
