//! Majority decomposition explorer: walks through the four phases of
//! Algorithm 1 (α, β, γ, ω) on the paper's running example and prints the
//! Fig. 1 BDD as Graphviz DOT with the m-dominator highlighted.
//!
//! Run with: `cargo run --release --example majority_explorer`

use bds_maj::bdsmaj::{balance_pass, construct_majority, CofactorOp};
use bds_maj::prelude::*;

fn main() {
    let mut m = Manager::new();
    m.set_var_name(0, "A");
    m.set_var_name(1, "B");
    m.set_var_name(2, "C");
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let f = m.maj(a, b, c);
    println!("F = ab + bc + ac   (|F| = {} BDD nodes)\n", m.size(f));

    // Phase (α): search for non-trivial m-dominators.
    let config = MajConfig::default();
    let dominators = find_m_dominators(&mut m, f, &config);
    println!("(α) m-dominator search: {} candidate(s)", dominators.len());
    for &d in &dominators {
        println!(
            "    node on variable {} — candidate Fa",
            m.var_name(m.node(d).var.0)
        );
    }

    // Phase (β): construct the initial decomposition from the candidate.
    let fa = m.function_of(dominators[0]);
    let cand = construct_majority(&mut m, f, fa, CofactorOp::Restrict);
    println!(
        "\n(β) construction: |Fa| = {}, |Fb| = {}, |Fc| = {}   (seeds H = F⇓Fa, W = F⇓Fa')",
        cand.sizes[0], cand.sizes[1], cand.sizes[2]
    );

    // Phase (γ): cyclic balancing until fixpoint (bounded by the paper's
    // iteration limit of 5).
    let mut balanced = cand;
    let mut iter = 0;
    while iter < config.max_iterations && balance_pass(&mut m, &mut balanced, &config) {
        iter += 1;
        println!(
            "(γ) balancing pass {iter}: sizes now {:?} (total {})",
            balanced.sizes,
            balanced.total()
        );
    }

    // Phase (ω): the full algorithm picks the best candidate overall.
    let best = maj_decompose(&mut m, f, &config).expect("decomposable");
    println!(
        "\n(ω) selected decomposition: total {} nodes — F = Maj(Fa, Fb, Fc) with three literals",
        best.total()
    );
    let maj = m.maj(best.triple[0], best.triple[1], best.triple[2]);
    assert_eq!(maj, f, "selected decomposition is valid");

    // Fig. 1: the BDD with the m-dominator highlighted.
    println!("\n----- Fig. 1 (Graphviz DOT; render with `dot -Tpng`) -----");
    println!("{}", m.to_dot(f, &dominators));
}
