//! Pins the paper's qualitative claims as executable assertions over the
//! full 17-benchmark suite. These are the invariants EXPERIMENTS.md
//! reports; if a refactor breaks the reproduction's shape, these tests
//! fail before the table binaries do.

use bds_maj::circuits::suite::{paper_suite, Group};
use bds_maj::prelude::*;

/// Table I claim: BDS-MAJ never produces more decomposition nodes than
/// BDS-PGA (same engine, strictly more decomposition options), and the
/// result is always functionally correct.
#[test]
fn bds_maj_dominates_bds_pga_across_the_suite() {
    let mut total_maj = 0usize;
    let mut total_nodes = 0usize;
    let mut wins = 0usize;
    for bench in paper_suite() {
        let with = bds_maj(&bench.network, &BdsMajOptions::default());
        let without = bds_pga(&bench.network, &EngineOptions::default());
        equiv_sim(&bench.network, with.network(), 4, 1)
            .unwrap_or_else(|e| panic!("bds-maj broke {}: {e}", bench.name));
        equiv_sim(&bench.network, &without.network, 4, 1)
            .unwrap_or_else(|e| panic!("bds-pga broke {}: {e}", bench.name));
        let n_with = with.network().gate_counts().decomposition_total();
        let n_without = without.network.gate_counts().decomposition_total();
        assert!(
            n_with <= n_without,
            "{}: BDS-MAJ ({n_with}) larger than BDS-PGA ({n_without})",
            bench.name
        );
        if n_with < n_without {
            wins += 1;
        }
        total_maj += with.network().gate_counts().maj;
        total_nodes += n_with;
    }
    // Claim: majority decomposition helps on a substantial part of the
    // suite (the paper improves 15/17 rows; our stand-ins give ≥ 10).
    assert!(wins >= 10, "only {wins}/17 benchmarks improved");
    // Claim (§V-A.2): a small fraction of MAJ nodes restructures the
    // networks — the paper reports 9.8 %; accept a 5-20 % band.
    let share = 100.0 * total_maj as f64 / total_nodes as f64;
    assert!(
        (5.0..=20.0).contains(&share),
        "MAJ share {share:.1} % outside the plausible band"
    );
}

/// Table I claim: BDS-PGA produces no MAJ nodes at all (its engine has no
/// majority decomposition), matching the all-zero MAJ column.
#[test]
fn bds_pga_column_has_zero_majority_nodes() {
    for bench in paper_suite() {
        let without = bds_pga(&bench.network, &EngineOptions::default());
        assert_eq!(
            without.network.gate_counts().maj,
            0,
            "{} produced MAJ without the hook",
            bench.name
        );
    }
}

/// Table II claim: on the HDL datapath section, BDS-MAJ beats all three
/// baselines on mapped area (the paper's headline use case).
#[test]
fn datapath_area_ordering_matches_paper() {
    let lib = Library::cmos22();
    for bench in paper_suite() {
        if bench.group != Group::Hdl {
            continue;
        }
        let net = &bench.network;
        let area = |optimized: &Network| report(&map_network(optimized), &lib).area;
        let a_maj = area(bds_maj(net, &BdsMajOptions::default()).network());
        let a_pga = area(&bds_pga(net, &EngineOptions::default()).network);
        let a_abc = area(&abc_flow(net));
        assert!(
            a_maj <= a_pga + 1e-9,
            "{}: BDS-MAJ {a_maj:.2} vs BDS-PGA {a_pga:.2}",
            bench.name
        );
        assert!(
            a_maj <= a_abc + 1e-9,
            "{}: BDS-MAJ {a_maj:.2} vs ABC {a_abc:.2}",
            bench.name
        );
    }
}

/// §V-B.3 claim: the whole optimization is fast — every benchmark
/// decomposes well under the paper's seconds-scale budget.
#[test]
fn decomposition_runtime_stays_interactive() {
    for bench in paper_suite() {
        let flow = bds_maj(&bench.network, &BdsMajOptions::default());
        assert!(
            flow.result.runtime.as_secs_f64() < 30.0,
            "{} took {:?}",
            bench.name,
            flow.result.runtime
        );
    }
}

/// Fig. 1 claim, end to end: the function `ab + bc + ac` has exactly one
/// non-trivial m-dominator and decomposes to a single MAJ cell.
#[test]
fn fig1_end_to_end() {
    let mut m = bdd::Manager::new();
    let a = m.var(0);
    let b = m.var(1);
    let c = m.var(2);
    let f = m.maj(a, b, c);
    let doms = find_m_dominators(&mut m, f, &MajConfig::default());
    assert_eq!(doms.len(), 1);
    let dot = m.to_dot(f, &doms);
    assert!(dot.contains("color=red"), "m-dominator must be highlighted");
}
