//! Integration tests for the extended datapath generators: the flows must
//! handle parallel-prefix and Booth-recoded structures as well as the
//! paper suite, and majority extraction should find carry logic in all of
//! them.

use bds_maj::circuits::extra::{booth_multiplier, comparator, kogge_stone_adder};
use bds_maj::prelude::*;

#[test]
fn kogge_stone_flows_are_equivalent() {
    let net = kogge_stone_adder(16);
    let with = bds_maj(&net, &BdsMajOptions::default());
    equiv_sim(&net, with.network(), 6, 0xE1).expect("bds-maj equivalent");
    let without = bds_pga(&net, &EngineOptions::default());
    equiv_sim(&net, &without.network, 6, 0xE1).expect("bds-pga equivalent");
    let abc = abc_flow(&net);
    equiv_sim(&net, &abc, 6, 0xE1).expect("abc equivalent");
}

#[test]
fn booth_flows_are_equivalent() {
    let net = booth_multiplier(8);
    let with = bds_maj(&net, &BdsMajOptions::default());
    equiv_sim(&net, with.network(), 6, 0xE2).expect("bds-maj equivalent");
    let mapped = map_network(with.network());
    equiv_sim(&net, &mapped.network, 6, 0xE2).expect("mapped equivalent");
}

#[test]
fn booth_surfaces_majority_gates() {
    // The carry-save reduction inside the Booth multiplier is full-adder
    // logic; decomposition must rediscover MAJ gates from it.
    let net = booth_multiplier(8);
    let out = bds_maj(&net, &BdsMajOptions::default());
    assert!(
        out.network().gate_counts().maj > 0,
        "Booth reduction tree should yield MAJ gates"
    );
}

#[test]
fn comparator_flows_are_equivalent() {
    let net = comparator(12);
    for (name, optimized) in [
        (
            "bds-maj",
            bds_maj(&net, &BdsMajOptions::default()).network().clone(),
        ),
        ("abc", abc_flow(&net)),
    ] {
        equiv_sim(&net, &optimized, 8, 0xE3)
            .unwrap_or_else(|e| panic!("{name} broke the comparator: {e}"));
    }
}

#[test]
fn prefix_adder_stays_shallow_after_synthesis() {
    // Sanity on delay shape: synthesizing a log-depth adder must not
    // produce something as deep as the ripple version.
    let ks = kogge_stone_adder(32);
    let ripple = bds_maj::circuits::arith::ripple_adder(32);
    let lib = Library::cmos22();
    let ks_mapped = report(&map_network(&abc_flow(&ks)), &lib);
    let ripple_mapped = report(&map_network(&abc_flow(&ripple)), &lib);
    assert!(
        ks_mapped.delay < ripple_mapped.delay,
        "prefix adder must stay faster: {} vs {}",
        ks_mapped.delay,
        ripple_mapped.delay
    );
}
