//! Property-based integration tests: randomly generated multi-level
//! networks are pushed through every optimization flow and the technology
//! mapper, and the results are checked for functional equivalence.
//!
//! This is the strongest correctness net in the repository: it exercises
//! partitioning, reordering, every dominator class, the majority hook,
//! MUX expansion, factoring-tree sharing, AIG conversion and mapping on
//! thousands of irregular circuits.

use bds_maj::prelude::*;
use proptest::prelude::*;

/// A recipe for one random gate.
#[derive(Clone, Debug)]
enum GateRecipe {
    And(usize, usize),
    Or(usize, usize),
    Xor(usize, usize),
    Xnor(usize, usize),
    Maj(usize, usize, usize),
    Mux(usize, usize, usize),
    Inv(usize),
}

fn arb_recipe() -> impl Strategy<Value = GateRecipe> {
    prop_oneof![
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::And(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::Or(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::Xor(a, b)),
        (any::<usize>(), any::<usize>()).prop_map(|(a, b)| GateRecipe::Xnor(a, b)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| GateRecipe::Maj(a, b, c)),
        (any::<usize>(), any::<usize>(), any::<usize>())
            .prop_map(|(a, b, c)| GateRecipe::Mux(a, b, c)),
        any::<usize>().prop_map(GateRecipe::Inv),
    ]
}

/// Materializes a recipe list into a well-formed network.
fn build_network(num_inputs: usize, recipes: &[GateRecipe]) -> Network {
    let mut net = Network::new("random");
    let mut pool: Vec<SignalId> = (0..num_inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect();
    for recipe in recipes {
        let pick = |idx: &usize| pool[idx % pool.len()];
        let s = match recipe {
            GateRecipe::And(a, b) => net.add_gate(GateKind::And, vec![pick(a), pick(b)]),
            GateRecipe::Or(a, b) => net.add_gate(GateKind::Or, vec![pick(a), pick(b)]),
            GateRecipe::Xor(a, b) => net.add_gate(GateKind::Xor, vec![pick(a), pick(b)]),
            GateRecipe::Xnor(a, b) => net.add_gate(GateKind::Xnor, vec![pick(a), pick(b)]),
            GateRecipe::Maj(a, b, c) => {
                net.add_gate(GateKind::Maj, vec![pick(a), pick(b), pick(c)])
            }
            GateRecipe::Mux(a, b, c) => {
                net.add_gate(GateKind::Mux, vec![pick(a), pick(b), pick(c)])
            }
            GateRecipe::Inv(a) => net.add_gate(GateKind::Inv, vec![pick(a)]),
        };
        pool.push(s);
    }
    // Outputs: the last few signals (deepest logic).
    let n = pool.len();
    for (o, &s) in pool[n.saturating_sub(4)..].iter().enumerate() {
        net.set_output(format!("o{o}"), s);
    }
    net
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn bds_maj_preserves_random_networks(
        recipes in proptest::collection::vec(arb_recipe(), 5..60),
        num_inputs in 3usize..10,
    ) {
        let net = build_network(num_inputs, &recipes);
        let out = bds_maj(&net, &BdsMajOptions::default());
        prop_assert!(equiv_sim(&net, out.network(), 4, 0xFEED).is_ok());
    }

    #[test]
    fn bds_pga_preserves_random_networks(
        recipes in proptest::collection::vec(arb_recipe(), 5..60),
        num_inputs in 3usize..10,
    ) {
        let net = build_network(num_inputs, &recipes);
        let out = bds_pga(&net, &EngineOptions::default());
        prop_assert!(equiv_sim(&net, &out.network, 4, 0xFEED).is_ok());
    }

    #[test]
    fn abc_flow_preserves_random_networks(
        recipes in proptest::collection::vec(arb_recipe(), 5..60),
        num_inputs in 3usize..10,
    ) {
        let net = build_network(num_inputs, &recipes);
        let out = abc_flow(&net);
        prop_assert!(equiv_sim(&net, &out, 4, 0xFEED).is_ok());
    }

    #[test]
    fn mapping_preserves_optimized_random_networks(
        recipes in proptest::collection::vec(arb_recipe(), 5..40),
        num_inputs in 3usize..8,
    ) {
        let net = build_network(num_inputs, &recipes);
        let out = bds_maj(&net, &BdsMajOptions::default());
        let mapped = map_network(out.network());
        prop_assert!(equiv_sim(&net, &mapped.network, 4, 0xFEED).is_ok());
        // Mapped netlists contain only library cells.
        for id in mapped.network.signals() {
            let kind = &mapped.network.node(id).kind;
            prop_assert!(matches!(
                kind,
                GateKind::Input | GateKind::Const(_) | GateKind::Inv | GateKind::Nand
                    | GateKind::Nor | GateKind::Xor | GateKind::Xnor | GateKind::Maj
            ));
        }
    }

    #[test]
    fn blif_roundtrip_preserves_random_networks(
        recipes in proptest::collection::vec(arb_recipe(), 5..40),
        num_inputs in 3usize..8,
    ) {
        let net = build_network(num_inputs, &recipes);
        let text = write_blif(&net);
        let reparsed = parse_blif(&text).expect("generated BLIF parses");
        prop_assert!(equiv_sim(&net, &reparsed, 4, 0xB11F).is_ok());
    }

    #[test]
    fn exact_and_simulated_equivalence_agree(
        recipes in proptest::collection::vec(arb_recipe(), 5..25),
        num_inputs in 3usize..7,
    ) {
        let net = build_network(num_inputs, &recipes);
        let out = bds_maj(&net, &BdsMajOptions::default());
        let exact = equiv_exact(&net, out.network(), 1 << 22);
        prop_assert_eq!(exact, Some(true), "exact check must confirm");
    }
}
