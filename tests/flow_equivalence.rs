//! Cross-crate integration tests: every synthesis flow in the workspace
//! must preserve the function of every benchmark family, end to end
//! (generator → optimization → mapping → equivalence check).

use bds_maj::prelude::*;

/// The flows under test, as (name, closure) pairs.
fn optimize_all(net: &Network) -> Vec<(&'static str, Network)> {
    let lib = Library::cmos22();
    vec![
        (
            "bds-maj",
            bds_maj(net, &BdsMajOptions::default()).network().clone(),
        ),
        ("bds-pga", bds_pga(net, &EngineOptions::default()).network),
        ("abc", abc_flow(net)),
        ("dc", dc_flow(net, &lib).network),
    ]
}

fn check_benchmark(name: &str) {
    let net = bds_maj::circuits::suite::benchmark(name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}"));
    for (flow, optimized) in optimize_all(&net) {
        equiv_sim(&net, &optimized, 6, 0xC0FFEE)
            .unwrap_or_else(|e| panic!("{flow} broke {name}: {e}"));
        // Mapping must also preserve the function.
        let mapped = map_network(&optimized);
        equiv_sim(&net, &mapped.network, 6, 0xC0FFEE)
            .unwrap_or_else(|e| panic!("{flow}+map broke {name}: {e}"));
    }
}

#[test]
fn alu_benchmark_flows() {
    check_benchmark("alu2");
}

#[test]
fn arithmetic_benchmark_flows() {
    check_benchmark("f51m");
}

#[test]
fn ecc_benchmark_flows() {
    check_benchmark("C1355");
}

#[test]
fn control_benchmark_flows() {
    check_benchmark("vda");
}

#[test]
fn adder_benchmark_flows() {
    check_benchmark("4-Op ADD 16 bit");
}

#[test]
fn cla_benchmark_flows() {
    check_benchmark("CLA 64 bit");
}

#[test]
fn bds_maj_is_never_worse_than_bds_pga_on_suite_sample() {
    // Table I shape on a sample of the suite: node counts of BDS-MAJ stay
    // at or below BDS-PGA (the engines are identical except for the hook).
    for name in ["alu2", "f51m", "Wallace 16 bit", "4-Op ADD 16 bit"] {
        let net = bds_maj::circuits::suite::benchmark(name).unwrap();
        let with = bds_maj(&net, &BdsMajOptions::default());
        let without = bds_pga(&net, &EngineOptions::default());
        let n_with = with.network().gate_counts().decomposition_total();
        let n_without = without.network.gate_counts().decomposition_total();
        assert!(
            n_with <= n_without,
            "{name}: BDS-MAJ {n_with} > BDS-PGA {n_without}"
        );
    }
}

#[test]
fn datapath_benchmarks_surface_majority_gates() {
    for name in ["Wallace 16 bit", "Div 18 bit", "MAC 16 bit"] {
        let net = bds_maj::circuits::suite::benchmark(name).unwrap();
        let out = bds_maj(&net, &BdsMajOptions::default());
        assert!(
            out.network().gate_counts().maj > 0,
            "{name}: no MAJ gates extracted"
        );
    }
}

#[test]
fn exact_equivalence_on_small_benchmarks() {
    // For circuits with few inputs the checks are proofs, not sampling.
    for name in ["alu2", "f51m"] {
        let net = bds_maj::circuits::suite::benchmark(name).unwrap();
        let out = bds_maj(&net, &BdsMajOptions::default());
        assert_eq!(
            equiv_exact(&net, out.network(), 1 << 22),
            Some(true),
            "{name}: exact equivalence failed"
        );
    }
}
