//! **bds-maj** — umbrella crate of the BDS-MAJ reproduction.
//!
//! Re-exports the public API of every workspace crate so downstream users
//! (and the examples/tests in this repository) can depend on a single
//! crate:
//!
//! * [`bdd`] — ROBDD package with complemented edges;
//! * [`logic`] — Boolean networks, BLIF I/O, partitioning, equivalence;
//! * [`circuits`] — the 17-benchmark suite generators;
//! * [`decomp`] — the BDS decomposition engine;
//! * [`bdsmaj`] — majority decomposition and the BDS-MAJ flow (the
//!   paper's contribution);
//! * [`techmap`] — the CMOS 22 nm six-cell library and mapper;
//! * [`baselines`] — ABC-like and DC-like comparison flows.
//!
//! # Quickstart
//!
//! ```
//! use bds_maj::prelude::*;
//!
//! // Build ab + bc + ac as an AND/OR network...
//! let mut net = Network::new("majority");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let c = net.add_input("c");
//! let ab = net.add_gate(GateKind::And, vec![a, b]);
//! let bc = net.add_gate(GateKind::And, vec![b, c]);
//! let ac = net.add_gate(GateKind::And, vec![a, c]);
//! let t = net.add_gate(GateKind::Or, vec![ab, bc]);
//! let f = net.add_gate(GateKind::Or, vec![t, ac]);
//! net.set_output("f", f);
//!
//! // ...and let BDS-MAJ discover the single MAJ-3 gate.
//! let out = bds_maj(&net, &BdsMajOptions::default());
//! assert_eq!(out.network().gate_counts().maj, 1);
//! ```

pub use baselines;
pub use bdd;
pub use bdsmaj;
pub use circuits;
pub use decomp;
pub use logic;
pub use techmap;

/// Convenient glob-import surface for examples and applications.
pub mod prelude {
    pub use baselines::{abc_flow, dc_flow, expand_maj};
    pub use bdd::{JobBudget, Manager, NodeId, Ref, Var};
    pub use bdsmaj::{
        bds_maj, bds_pga, find_m_dominators, maj_decompose, BdsMajOptions, MajConfig,
    };
    pub use decomp::{decompose_network, EngineOptions, NoMajority, ReorderPolicy};
    pub use logic::{
        equiv_exact, equiv_sim, parse_blif, write_blif, GateKind, Network, PartitionConfig,
        SignalId,
    };
    pub use techmap::{map_network, report, CellKind, Library};
}
