//! `bdsmaj` — command-line synthesis tool.
//!
//! Reads combinational BLIF files, optimizes them with a chosen flow,
//! verifies each result against its input, and writes the optimized BLIF
//! plus an area/delay report on the CMOS 22 nm six-cell library.
//!
//! ```text
//! usage: bdsmaj [--flow bds-maj|bds-pga|abc|dc] [--reorder none|window|sift|sift-converge]
//!               [--jobs N] [--map] [-o OUT.blif] IN.blif
//!        bdsmaj ... [-o OUT_DIR] IN1.blif IN2.blif ...  # multi-file mode
//!        bdsmaj --bench NAME        # run a built-in paper benchmark instead
//! ```
//!
//! With more than one input file the tool switches to **multi-file mode**:
//! every file is synthesized as an independent task on the work-stealing
//! suite pool (`--jobs N`, default `BENCH_JOBS` or all cores; each task
//! owns its BDD managers), per-file reports are printed in input order,
//! and `-o` names a *directory* that receives one optimized BLIF per
//! input (stdout BLIF dumping is single-file only).

use bds_maj::prelude::*;
use bench::{pool, RowBudget};
use std::path::Path;
use std::process::ExitCode;

/// Exit code for runs that completed but under graceful degradation
/// (some cones carried through un-decomposed). 0 = ok, 1 = failure,
/// 2 = usage error.
const EXIT_DEGRADED: u8 = 3;

struct Args {
    flow: String,
    reorder: ReorderPolicy,
    jobs: usize,
    map: bool,
    output: Option<String>,
    inputs: Vec<String>,
    bench: Option<String>,
    budget: RowBudget,
}

const USAGE: &str = "usage: bdsmaj [--flow bds-maj|bds-pga|abc|dc] \
                     [--reorder none|window|sift|sift-converge] [--jobs N] [--map] \
                     [--node-limit N] [--step-limit N] [--timeout SECS] \
                     [-o OUT.blif] (IN.blif | --bench NAME)\n       \
                     bdsmaj ... [-o OUT_DIR] IN1.blif IN2.blif ...  # multi-file mode\n\
exit codes: 0 ok, 1 failed, 2 usage error, 3 completed degraded (cones over budget)";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        flow: "bds-maj".to_string(),
        reorder: ReorderPolicy::Window,
        jobs: 0,
        map: false,
        output: None,
        inputs: Vec::new(),
        bench: None,
        budget: RowBudget::default(),
    };
    let mut jobs: Option<usize> = None;
    let mut reorder_seen = false;
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flow" => args.flow = it.next().ok_or("--flow needs a value")?,
            "--reorder" => {
                if reorder_seen {
                    return Err("duplicate --reorder flag".to_string());
                }
                reorder_seen = true;
                let v = it.next().ok_or("--reorder needs a value")?;
                args.reorder = ReorderPolicy::from_flag(&v).ok_or(format!(
                    "--reorder {v}: use none, window, sift or sift-converge"
                ))?;
            }
            "--jobs" => {
                if jobs.is_some() {
                    return Err("duplicate --jobs flag".to_string());
                }
                let v = it.next().ok_or("--jobs needs a value")?;
                jobs = Some(bench::parse_jobs(&v)?);
            }
            "--node-limit" => {
                if args.budget.node_limit.is_some() {
                    return Err("duplicate --node-limit flag".to_string());
                }
                let v = it.next().ok_or("--node-limit needs a value")?;
                args.budget.node_limit = Some(bench::parse_limit("--node-limit", &v)? as usize);
            }
            "--step-limit" => {
                if args.budget.step_limit.is_some() {
                    return Err("duplicate --step-limit flag".to_string());
                }
                let v = it.next().ok_or("--step-limit needs a value")?;
                args.budget.step_limit = Some(bench::parse_limit("--step-limit", &v)?);
            }
            "--timeout" => {
                if args.budget.timeout.is_some() {
                    return Err("duplicate --timeout flag".to_string());
                }
                let v = it.next().ok_or("--timeout needs a value")?;
                args.budget.timeout = Some(bench::parse_timeout(&v)?);
            }
            "--map" => args.map = true,
            "-o" | "--output" => args.output = Some(it.next().ok_or("-o needs a value")?),
            "--bench" => args.bench = Some(it.next().ok_or("--bench needs a value")?),
            "-h" | "--help" => return Err(USAGE.to_string()),
            other if !other.starts_with('-') => args.inputs.push(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    args.jobs = jobs.unwrap_or_else(pool::default_jobs);
    if args.inputs.is_empty() && args.bench.is_none() {
        return Err("missing input: pass IN.blif or --bench NAME".to_string());
    }
    if args.bench.is_some() && !args.inputs.is_empty() {
        return Err("--bench and input files are mutually exclusive".to_string());
    }
    Ok(args)
}

/// Outcome of one synthesis task: the report lines (printed in input
/// order) plus the optimized network for output writing.
struct FileResult {
    report: String,
    network: Network,
    /// Cones that fell back un-decomposed under the resource budget.
    degraded: bool,
}

/// Optimizes one network: flow, equivalence check, optional mapping.
/// Returns the per-file report text and the network to emit, or an error
/// message. Pure function of its inputs — safe to run on any pool worker
/// (each flow builds its own BDD managers).
fn synthesize(
    net: &Network,
    label: &str,
    args: &Args,
    lib: &Library,
    fork_budget: &JobBudget,
) -> Result<FileResult, String> {
    use std::fmt::Write as _;
    // The budget's deadline starts counting at task start, so every file
    // in a batch gets its own clock. The fork budget holds the `--jobs`
    // threads the file level is not using, so a single large cone can
    // fork its apply without ever exceeding the cap machine-wide.
    let engine = EngineOptions {
        reorder: args.reorder,
        limits: args.budget.limits_now(),
        job_budget: Some(fork_budget.clone()),
        ..EngineOptions::default()
    };
    let maj_options = BdsMajOptions {
        engine: engine.clone(),
        ..BdsMajOptions::default()
    };
    let mut report_text = String::new();
    let _ = writeln!(report_text, "input : {}", net.stats());
    let mut flow_report = None;
    let optimized = match args.flow.as_str() {
        "bds-maj" => {
            let r = bds_maj(net, &maj_options);
            let net = r.network().clone();
            flow_report = Some(r.result.report);
            net
        }
        "bds-pga" => {
            let r = bds_pga(net, &engine);
            flow_report = Some(r.report);
            r.network
        }
        "abc" => abc_flow(net),
        "dc" => dc_flow(net, lib).network,
        other => {
            return Err(format!(
                "unknown flow {other}; use bds-maj, bds-pga, abc or dc"
            ))
        }
    };
    let _ = writeln!(report_text, "output: {}", optimized.stats());
    let degraded = flow_report.as_ref().is_some_and(|r| r.is_degraded());
    if let Some(r) = &flow_report {
        if r.is_degraded() {
            let _ = writeln!(
                report_text,
                "status: degraded — {} of {} cones over budget (carried through un-decomposed)",
                r.degraded_count(),
                r.cones.len()
            );
        }
    }
    if let Err(mismatch) = equiv_sim(net, &optimized, 16, 0xC11) {
        return Err(format!(
            "INTERNAL ERROR: optimization changed the function of {label}: {mismatch}"
        ));
    }
    let _ = writeln!(
        report_text,
        "verify: equivalence confirmed on 1088 random vectors"
    );
    let network = if args.map {
        let mapped = map_network(&optimized);
        let r = report(&mapped, lib);
        let _ = writeln!(report_text, "mapped: {r}");
        mapped.network
    } else {
        optimized
    };
    Ok(FileResult {
        report: report_text,
        network,
        degraded,
    })
}

/// Single-input mode (one file or `--bench`): report to stderr, BLIF to
/// `-o PATH` or stdout. Byte-identical to the historical behavior.
fn run_single(net: &Network, args: &Args, lib: &Library) -> ExitCode {
    // One file, `--jobs` threads: everything beyond this thread is
    // available to intra-cone forking.
    let fork_budget = JobBudget::new(args.jobs.saturating_sub(1));
    let result = match synthesize(net, "the input", args, lib, &fork_budget) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    eprint!("{}", result.report);
    match &args.output {
        Some(path) => {
            if let Err(e) = logic::write_blif_file(&result.network, path) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote : {path}");
        }
        None => print!("{}", write_blif(&result.network)),
    }
    if result.degraded {
        return ExitCode::from(EXIT_DEGRADED);
    }
    ExitCode::SUCCESS
}

/// Output file name of one multi-file input: its basename.
fn output_name(input: &str) -> String {
    Path::new(input)
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out.blif".to_string())
}

/// Multi-file mode: every input is an independent pool task; reports are
/// printed in input order once all tasks finish, and `-o DIR` receives
/// one `DIR/<basename>` per input (duplicate basenames are rejected up
/// front rather than silently overwriting each other).
fn run_multi(nets: Vec<(String, Network)>, args: &Args, lib: &Library) -> ExitCode {
    let out_dir = match &args.output {
        Some(dir) => {
            // Outputs are keyed by input basename; two inputs with the
            // same file name would silently clobber each other.
            let mut names = std::collections::HashSet::new();
            for (path, _) in &nets {
                let name = output_name(path);
                if !names.insert(name.clone()) {
                    eprintln!(
                        "output collision: two inputs would both write {dir}/{name}; \
                         rename one or use distinct output directories"
                    );
                    return ExitCode::FAILURE;
                }
            }
            if let Err(e) = std::fs::create_dir_all(dir) {
                eprintln!("cannot create output directory {dir}: {e}");
                return ExitCode::FAILURE;
            }
            Some(Path::new(dir))
        }
        None => None,
    };
    // Per-task panic isolation: one pathological input yields one failed
    // row ("status: failed") instead of killing the whole batch. Leftover
    // pool threads flow into each task as its intra-cone fork budget.
    let results = pool::run_catching_with_budget(args.jobs, nets.len(), |i, budget| {
        let (path, net) = &nets[i];
        synthesize(net, path, args, lib, budget)
    });
    let mut failures = 0usize;
    let mut degraded = 0usize;
    for ((path, _), result) in nets.iter().zip(results) {
        eprintln!("=== {path} ===");
        match result {
            Ok(Ok(r)) => {
                eprint!("{}", r.report);
                if r.degraded {
                    degraded += 1;
                }
                if let Some(dir) = out_dir {
                    let out = dir.join(output_name(path));
                    let out = out.to_string_lossy();
                    if let Err(e) = logic::write_blif_file(&r.network, out.as_ref()) {
                        eprintln!("cannot write {out}: {e}");
                        failures += 1;
                        continue;
                    }
                    eprintln!("wrote : {out}");
                }
            }
            Ok(Err(msg)) => {
                eprintln!("status: failed — {msg}");
                failures += 1;
            }
            Err(panic_msg) => {
                eprintln!("status: failed — task panicked: {panic_msg}");
                failures += 1;
            }
        }
    }
    if degraded > 0 {
        eprintln!(
            "{degraded} of {} files completed degraded (cones over budget)",
            nets.len()
        );
    }
    if failures > 0 {
        eprintln!("{failures} of {} files failed", nets.len());
        return ExitCode::FAILURE;
    }
    if degraded > 0 {
        return ExitCode::from(EXIT_DEGRADED);
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };
    let lib = Library::cmos22();

    if let Some(name) = &args.bench {
        let net = match bds_maj::circuits::suite::benchmark(name) {
            Some(n) => n,
            None => {
                eprintln!(
                    "unknown benchmark {name}; available: {}",
                    bds_maj::circuits::suite::PAPER_BENCHMARKS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        };
        return run_single(&net, &args, &lib);
    }

    // Read every input up front (I/O stays on the main thread); synthesis
    // fans out over the pool in multi-file mode.
    let mut nets = Vec::new();
    for path in &args.inputs {
        match logic::read_blif_file(path) {
            Ok(n) => nets.push((path.clone(), n)),
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    }
    if nets.len() == 1 {
        let (_, net) = &nets[0];
        run_single(net, &args, &lib)
    } else {
        run_multi(nets, &args, &lib)
    }
}
