//! `bdsmaj` — command-line synthesis tool.
//!
//! Reads a combinational BLIF file, optimizes it with a chosen flow,
//! verifies the result against the input, and writes the optimized BLIF
//! plus an area/delay report on the CMOS 22 nm six-cell library.
//!
//! ```text
//! usage: bdsmaj [--flow bds-maj|bds-pga|abc|dc] [--reorder none|window|sift]
//!               [--map] [-o OUT.blif] IN.blif
//!        bdsmaj --bench NAME        # run a built-in paper benchmark instead
//! ```

use bds_maj::prelude::*;
use std::process::ExitCode;

struct Args {
    flow: String,
    reorder: ReorderPolicy,
    map: bool,
    output: Option<String>,
    input: Option<String>,
    bench: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        flow: "bds-maj".to_string(),
        reorder: ReorderPolicy::Window,
        map: false,
        output: None,
        input: None,
        bench: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--flow" => args.flow = it.next().ok_or("--flow needs a value")?,
            "--reorder" => {
                let v = it.next().ok_or("--reorder needs a value")?;
                args.reorder = ReorderPolicy::from_flag(&v)
                    .ok_or(format!("--reorder {v}: use none, window or sift"))?;
            }
            "--map" => args.map = true,
            "-o" | "--output" => args.output = Some(it.next().ok_or("-o needs a value")?),
            "--bench" => args.bench = Some(it.next().ok_or("--bench needs a value")?),
            "-h" | "--help" => {
                return Err("usage: bdsmaj [--flow bds-maj|bds-pga|abc|dc] \
                            [--reorder none|window|sift] [--map] \
                            [-o OUT.blif] (IN.blif | --bench NAME)"
                    .to_string())
            }
            other if !other.starts_with('-') => args.input = Some(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if args.input.is_none() && args.bench.is_none() {
        return Err("missing input: pass IN.blif or --bench NAME".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::FAILURE;
        }
    };

    let net = if let Some(name) = &args.bench {
        match bds_maj::circuits::suite::benchmark(name) {
            Some(n) => n,
            None => {
                eprintln!(
                    "unknown benchmark {name}; available: {}",
                    bds_maj::circuits::suite::PAPER_BENCHMARKS.join(", ")
                );
                return ExitCode::FAILURE;
            }
        }
    } else {
        match logic::read_blif_file(args.input.as_ref().expect("checked above")) {
            Ok(n) => n,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    };
    eprintln!("input : {}", net.stats());

    let lib = Library::cmos22();
    let engine = EngineOptions {
        reorder: args.reorder,
        ..EngineOptions::default()
    };
    let maj_options = BdsMajOptions {
        engine,
        ..BdsMajOptions::default()
    };
    let optimized = match args.flow.as_str() {
        "bds-maj" => bds_maj(&net, &maj_options).network().clone(),
        "bds-pga" => bds_pga(&net, &engine).network,
        "abc" => abc_flow(&net),
        "dc" => dc_flow(&net, &lib).network,
        other => {
            eprintln!("unknown flow {other}; use bds-maj, bds-pga, abc or dc");
            return ExitCode::FAILURE;
        }
    };
    eprintln!("output: {}", optimized.stats());

    if let Err(mismatch) = equiv_sim(&net, &optimized, 16, 0xC11) {
        eprintln!("INTERNAL ERROR: optimization changed the function: {mismatch}");
        return ExitCode::FAILURE;
    }
    eprintln!("verify: equivalence confirmed on 1088 random vectors");

    let final_net = if args.map {
        let mapped = map_network(&optimized);
        let r = report(&mapped, &lib);
        eprintln!("mapped: {r}");
        mapped.network
    } else {
        optimized
    };

    match &args.output {
        Some(path) => {
            if let Err(e) = logic::write_blif_file(&final_net, path) {
                eprintln!("cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            eprintln!("wrote : {path}");
        }
        None => print!("{}", write_blif(&final_net)),
    }
    ExitCode::SUCCESS
}
