//! A minimal, dependency-free stand-in for the `criterion` benchmark crate.
//!
//! The workspace builds offline, so the real `criterion` cannot be fetched.
//! This shim covers the subset the repository's benches use: `Criterion`,
//! `bench_function`, `benchmark_group` (+ `sample_size` / `finish`),
//! `Bencher::iter` / `iter_batched`, `BatchSize`, and the
//! `criterion_group!` / `criterion_main!` macros.
//!
//! Measurement model: each benchmark is warmed up once, then timed over
//! `samples` batches; the median per-iteration time is printed as
//! `bench: <name> ... <time>`. Pass `--quick` (or run under `cargo test`)
//! for a single-iteration smoke run.

use std::time::{Duration, Instant};

/// How batched inputs are grouped (accepted for API compatibility; the shim
/// always re-runs the setup closure per iteration).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One batch per allocation.
    PerIteration,
}

/// Timing collector handed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    target_samples: usize,
}

impl Bencher {
    fn new(target_samples: usize) -> Bencher {
        Bencher {
            samples: Vec::new(),
            target_samples,
        }
    }

    /// Times `routine`, once per sample.
    pub fn iter<T>(&mut self, mut routine: impl FnMut() -> T) {
        // Warm-up (untimed).
        std::hint::black_box(routine());
        for _ in 0..self.target_samples {
            let start = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(start.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup` (setup is untimed).
    pub fn iter_batched<S, T>(
        &mut self,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
        _size: BatchSize,
    ) {
        std::hint::black_box(routine(setup()));
        for _ in 0..self.target_samples {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            self.samples.push(start.elapsed());
        }
    }

    fn median(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut sorted = self.samples.clone();
        sorted.sort();
        sorted[sorted.len() / 2]
    }
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.3} s", ns as f64 / 1e9)
    }
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        // `--quick` (and the bare `--test` cargo passes when a bench target
        // is run under `cargo test`) degrade to a single sample.
        let quick = std::env::args().any(|a| a == "--quick" || a == "--test");
        Criterion {
            sample_size: if quick { 1 } else { 10 },
        }
    }
}

impl Criterion {
    /// Runs and reports one benchmark.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let name = name.into();
        let mut b = Bencher::new(self.sample_size);
        f(&mut b);
        println!("bench: {name:<48} {:>12}/iter", fmt_duration(b.median()));
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            prefix: name.into(),
            sample_size: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    prefix: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Runs and reports one benchmark within the group.
    pub fn bench_function(
        &mut self,
        name: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let samples = self
            .sample_size
            .unwrap_or(self.criterion.sample_size)
            .min(self.criterion.sample_size);
        let mut b = Bencher::new(samples);
        f(&mut b);
        println!(
            "bench: {:<48} {:>12}/iter",
            format!("{}/{}", self.prefix, name.into()),
            fmt_duration(b.median())
        );
        self
    }

    /// Ends the group (no-op; provided for API compatibility).
    pub fn finish(self) {}
}

/// Declares a group-runner function calling each target with one `Criterion`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` running each `criterion_group!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion { sample_size: 2 };
        let mut runs = 0;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| runs += 1);
        });
        assert!(runs >= 2, "warm-up plus samples must run");
    }

    #[test]
    fn groups_respect_sample_size() {
        let mut c = Criterion { sample_size: 5 };
        let mut group = c.benchmark_group("g");
        group.sample_size(1);
        let mut runs = 0;
        group.bench_function("one", |b| {
            b.iter_batched(|| (), |()| runs += 1, BatchSize::SmallInput)
        });
        group.finish();
        assert_eq!(runs, 2, "one warm-up + one sample");
    }
}
