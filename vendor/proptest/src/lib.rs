//! A minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds in an offline container, so the real `proptest`
//! cannot be fetched. This shim implements exactly the subset of the API the
//! repository's property tests use: composable [`Strategy`] values
//! (`prop_map`, `prop_recursive`, tuples, ranges, `any`, `prop_oneof!`,
//! `collection::vec`) and the [`proptest!`] test-harness macro with
//! `prop_assert*` / `prop_assume!`. Failing inputs are reported with their
//! `Debug` rendering; there is no shrinking.
//!
//! Generation is deterministic per test name (a fixed seed mixed with the
//! case index), so failures are reproducible across runs.

use std::rc::Rc;

/// Deterministic split-mix/xorshift RNG used for value generation.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates an RNG from a seed (zero is mapped to a fixed constant).
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng {
            state: if seed == 0 { 0x9E3779B97F4A7C15 } else { seed },
        }
    }

    /// Derives a seed from a test name and case index.
    pub fn for_case(name: &str, case: u64) -> TestRng {
        let mut h = 0xcbf29ce484222325u64;
        for b in name.bytes() {
            h = (h ^ b as u64).wrapping_mul(0x100000001b3);
        }
        TestRng::from_seed(h ^ case.wrapping_mul(0x9E3779B97F4A7C15))
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        // splitmix64
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `0..n` (`n > 0`).
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }
}

/// A generator of random values, composable like the real crate's trait.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }

    /// Type-erases the strategy behind a cheap clonable handle.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
    {
        let s = self;
        BoxedStrategy(Rc::new(move |rng: &mut TestRng| s.generate(rng)))
    }

    /// Builds a recursive strategy: `f` receives an `inner` strategy that
    /// yields either leaves (this strategy) or previously built recursive
    /// values, nested at most `depth` levels.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        f: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut cur = leaf.clone();
        for _ in 0..depth {
            let inner = union(vec![leaf.clone(), cur]);
            cur = f(inner).boxed();
        }
        cur
    }
}

/// A type-erased, clonable strategy handle.
pub struct BoxedStrategy<T>(Rc<dyn Fn(&mut TestRng) -> T>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> std::fmt::Debug for BoxedStrategy<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.0)(rng)
    }
}

/// Uniform choice between type-erased alternatives (`prop_oneof!` backend).
pub fn union<T: 'static>(alts: Vec<BoxedStrategy<T>>) -> BoxedStrategy<T> {
    assert!(
        !alts.is_empty(),
        "prop_oneof! needs at least one alternative"
    );
    BoxedStrategy(Rc::new(move |rng: &mut TestRng| {
        let i = rng.below(alts.len());
        alts[i].generate(rng)
    }))
}

/// Strategy adapter created by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, T> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// A strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (self.end - self.start).max(1) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let span = (*self.end() - *self.start()) as u64 + 1;
                *self.start() + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($n:ident . $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

/// Types with a default "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy for any value of an [`Arbitrary`] type.
#[derive(Clone, Debug, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (only `vec` is provided).
pub mod collection {
    use super::{Strategy, TestRng};

    /// Strategy for vectors with lengths drawn from `len`.
    #[derive(Clone, Debug)]
    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `proptest::collection::vec(strategy, range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Run configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of random cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// Why a single generated case did not pass.
#[derive(Clone, Debug)]
pub enum TestCaseError {
    /// `prop_assume!` rejected the inputs; the case is skipped.
    Reject(String),
    /// A `prop_assert*` failed; the test fails.
    Fail(String),
}

impl TestCaseError {
    /// A failure with a message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Fail(msg.into())
    }

    /// A rejection (filtered input) with a reason.
    pub fn reject(msg: impl Into<String>) -> TestCaseError {
        TestCaseError::Reject(msg.into())
    }
}

/// Result alias used by generated test bodies.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Everything a test file needs, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

/// Uniform choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::union(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l == *r, "assertion failed: {:?} == {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} != {:?})", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {{
        let (l, r) = (&$lhs, &$rhs);
        $crate::prop_assert!(*l != *r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (l, r) = (&$lhs, &$rhs);
        if !(*l != *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "{} ({:?} == {:?})", format!($($fmt)*), l, r
            )));
        }
    }};
}

/// Skips the current case when its inputs don't meet a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// The test-harness macro: expands each inner `fn` into a `#[test]` running
/// `cases` randomly generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@block ($config) $($rest)*);
    };
    (@block ($config:expr) $(
        $(#[$attr:meta])*
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rejected = 0u32;
            let mut case = 0u64;
            let mut run = 0u32;
            while run < config.cases {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                case += 1;
                $(let $arg = $crate::Strategy::generate(&$strategy, &mut rng);)+
                let dbg = format!(concat!($(stringify!($arg), " = {:?}; "),+), $(&$arg),+);
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => { run += 1; }
                    Err($crate::TestCaseError::Reject(_)) => {
                        rejected += 1;
                        assert!(
                            rejected < 16 * config.cases,
                            "proptest: too many rejected inputs in {}",
                            stringify!($name),
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "proptest case {} of {} failed: {}\n  inputs: {}",
                            case, stringify!($name), msg, dbg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@block ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 3);
        let mut b = crate::TestRng::for_case("t", 3);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn strategies_compose() {
        let mut rng = crate::TestRng::from_seed(7);
        let s = (0u32..5).prop_map(|x| x * 2);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 10 && v % 2 == 0);
        }
        let v = crate::collection::vec(0usize..3, 2..6).generate(&mut rng);
        assert!((2..6).contains(&v.len()));
        let one = prop_oneof![Just(1u8), Just(2u8)];
        let x = one.generate(&mut rng);
        assert!(x == 1 || x == 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_runs_and_filters(x in 0u32..100, flip in any::<bool>()) {
            prop_assume!(x != 13);
            prop_assert!(x < 100);
            prop_assert_eq!(flip, flip);
            prop_assert_ne!(x, 13u32, "assumed away");
        }
    }
}
