//! Delay-oriented AIG balancing (the `balance` step of ABC's `resyn2`):
//! maximal AND trees are rebuilt as balanced trees, pairing the
//! lowest-level operands first.

use crate::aig::{Aig, AigRef};
use logic::Network;

impl Aig {
    /// Returns a balanced copy of this AIG.
    pub fn balanced(&self) -> Aig {
        let mut map: std::collections::HashMap<AigRef, AigRef> = std::collections::HashMap::new();
        map.insert(AigRef::ONE, AigRef::ONE);
        let mut rebuilt = Aig::new(self.network_name());
        for i in 0..self.input_count() {
            let r = rebuilt.add_input();
            map.insert(self.input_ref(i), r);
        }
        let outputs: Vec<(String, AigRef)> = self.outputs().to_vec();
        for (name, r) in outputs {
            let nr = balance_edge(self, &mut rebuilt, r, &mut map);
            rebuilt.set_output(name, nr);
        }
        rebuilt
    }
}

/// Rebuilds edge `r` of `src` into `dst`, balancing AND trees.
fn balance_edge(
    src: &Aig,
    dst: &mut Aig,
    r: AigRef,
    map: &mut std::collections::HashMap<AigRef, AigRef>,
) -> AigRef {
    let reg = r.regular_edge();
    if let Some(&m) = map.get(&reg) {
        return m.apply_complement(r.is_complemented_edge());
    }
    // Collect the maximal AND tree under `reg` (stop at complemented
    // edges, inputs and constants).
    let mut leaves: Vec<AigRef> = Vec::new();
    collect_and_leaves(src, reg, &mut leaves);
    // Rebuild leaves first.
    let mut rebuilt: Vec<AigRef> = leaves
        .iter()
        .map(|&l| balance_edge(src, dst, l, map))
        .collect();
    // Pair lowest levels first (sort descending, pop from the back).
    rebuilt.sort_by_key(|&l| std::cmp::Reverse(dst.level(l)));
    while rebuilt.len() > 1 {
        let a = rebuilt.pop().expect("nonempty");
        let b = rebuilt.pop().expect("nonempty");
        let combined = dst.and(a, b);
        // Insert keeping the descending-level order.
        let pos = rebuilt
            .iter()
            .position(|&x| dst.level(x) <= dst.level(combined))
            .unwrap_or(rebuilt.len());
        rebuilt.insert(pos, combined);
    }
    let result = rebuilt.pop().unwrap_or(AigRef::ONE);
    map.insert(reg, result);
    result.apply_complement(r.is_complemented_edge())
}

fn collect_and_leaves(src: &Aig, r: AigRef, leaves: &mut Vec<AigRef>) {
    debug_assert!(!r.is_complemented_edge());
    match src.and_children(r) {
        Some((a, b)) => {
            for child in [a, b] {
                if !child.is_complemented_edge() && src.and_children(child).is_some() {
                    collect_and_leaves(src, child, leaves);
                } else {
                    leaves.push(child);
                }
            }
        }
        None => leaves.push(r),
    }
}

/// Runs the ABC-like optimization script: structural hashing on input,
/// then balance → refactor → balance (a light `resyn2` stand-in),
/// returning an AND/INV network ready for mapping.
pub fn abc_flow(net: &Network) -> Network {
    let aig = Aig::from_network(net);
    let aig = aig.balanced();
    let aig = aig.refactored();
    let aig = aig.balanced();
    aig.to_network()
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{equiv_sim, GateKind, Network, SignalId};

    #[test]
    fn balancing_preserves_function() {
        let mut net = Network::new("chain");
        let ins: Vec<SignalId> = (0..8).map(|i| net.add_input(format!("i{i}"))).collect();
        // A long skewed AND chain.
        let mut cur = ins[0];
        for &i in &ins[1..] {
            cur = net.add_gate(GateKind::And, vec![cur, i]);
        }
        net.set_output("y", cur);
        let balanced = abc_flow(&net);
        assert_eq!(equiv_sim(&net, &balanced, 16, 3), Ok(()));
    }

    #[test]
    fn balancing_reduces_depth_of_skewed_chain() {
        let mut net = Network::new("chain");
        let ins: Vec<SignalId> = (0..16).map(|i| net.add_input(format!("i{i}"))).collect();
        let mut cur = ins[0];
        for &i in &ins[1..] {
            cur = net.add_gate(GateKind::And, vec![cur, i]);
        }
        net.set_output("y", cur);
        let balanced = abc_flow(&net);
        // Depth 15 chain must become a ~log-depth tree.
        assert!(
            balanced.depth() <= 6,
            "balanced depth {} too large",
            balanced.depth()
        );
    }

    #[test]
    fn abc_flow_handles_mixed_logic() {
        let mut net = Network::new("mixed");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let m = net.add_gate(GateKind::Maj, vec![x, b, c]);
        let u = net.add_gate(GateKind::Mux, vec![c, m, x]);
        net.set_output("y", u);
        let out = abc_flow(&net);
        assert_eq!(equiv_sim(&net, &out, 16, 9), Ok(()));
        // Everything is AND/INV now.
        let counts = out.gate_counts();
        assert_eq!(counts.xor + counts.xnor + counts.maj + counts.mux, 0);
    }
}
