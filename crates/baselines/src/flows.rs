//! Complete baseline synthesis flows, matching the comparison set of
//! Table II: the ABC-like AIG flow and the Design-Compiler-like
//! multi-strategy flow (a simulation of a commercial best-of-breed
//! optimizer — DC itself is proprietary; see DESIGN.md §3).

use crate::balance::abc_flow;
use bdsmaj::{bds_maj, bds_pga, BdsMajOptions};
use decomp::EngineOptions;
use logic::{GateKind, Network, SignalId};
use std::collections::HashMap;
use techmap::{map_network, report, Library, MappedNetwork};

/// Re-expresses every MAJ-3 gate as `ab + c·(a⊕b)` — the best a flow can
/// do when it understands XOR but does not infer majority cells, which is
/// the behaviour commercial tools showed in the paper's experiments.
pub fn expand_maj(net: &Network) -> Network {
    let mut out = Network::new(net.name().to_string());
    let mut map: HashMap<SignalId, SignalId> = HashMap::new();
    for &pi in net.inputs() {
        let s = out.add_input(net.signal_name(pi));
        map.insert(pi, s);
    }
    for id in net.signals() {
        if map.contains_key(&id) {
            continue;
        }
        let node = net.node(id);
        let fanins: Vec<SignalId> = node.fanins.iter().map(|f| map[f]).collect();
        let s = match node.kind {
            GateKind::Input => unreachable!(),
            GateKind::Maj => {
                let (a, b, c) = (fanins[0], fanins[1], fanins[2]);
                let ab = out.add_gate_simplified(GateKind::And, vec![a, b]);
                let x = out.add_gate_simplified(GateKind::Xor, vec![a, b]);
                let cx = out.add_gate_simplified(GateKind::And, vec![c, x]);
                out.add_gate_simplified(GateKind::Or, vec![ab, cx])
            }
            ref kind => out.add_gate_simplified(kind.clone(), fanins),
        };
        map.insert(id, s);
    }
    for (name, s) in net.outputs() {
        out.set_output(name.clone(), map[s]);
    }
    out.cleaned()
}

/// Which strategy won inside the DC-like flow (reported for analysis).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DcStrategy {
    /// The AIG flow's result was the smallest.
    AigBased,
    /// The BDS-PGA decomposition won.
    BddBased,
    /// The MAJ-free re-expression of the BDD-with-majority result won.
    BddMajFree,
}

/// Result of the DC-like flow.
#[derive(Clone, Debug)]
pub struct DcResult {
    /// The chosen optimized network (before mapping).
    pub network: Network,
    /// Which internal strategy produced it.
    pub strategy: DcStrategy,
}

/// The Design-Compiler-like flow (`compile -area -effort high` stand-in):
/// runs several optimization strategies — AIG restructuring, BDD
/// decomposition, and an XOR-preserving (but majority-blind) variant of
/// the strongest decomposition — maps each, and keeps the smallest-area
/// result.
pub fn dc_flow(net: &Network, lib: &Library) -> DcResult {
    let candidates = [
        (DcStrategy::AigBased, abc_flow(net)),
        (
            DcStrategy::BddBased,
            bds_pga(net, &EngineOptions::default()).network,
        ),
        (
            DcStrategy::BddMajFree,
            expand_maj(bds_maj(net, &BdsMajOptions::default()).network()),
        ),
    ];
    let mut best: Option<(f64, DcStrategy, Network)> = None;
    for (strategy, candidate) in candidates {
        let mapped = map_network(&candidate);
        let area = report(&mapped, lib).area;
        if best.as_ref().is_none_or(|(a, _, _)| area < *a) {
            best = Some((area, strategy, candidate));
        }
    }
    let (_, strategy, network) = best.expect("three candidates");
    DcResult { network, strategy }
}

/// Convenience: run the ABC-like flow and map it.
pub fn abc_mapped(net: &Network) -> MappedNetwork {
    map_network(&abc_flow(net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::equiv_sim;

    fn carry_network() -> Network {
        // 3-bit carry chain: majority-rich.
        let mut net = Network::new("carry");
        let mut carry: Option<SignalId> = None;
        let mut inputs = Vec::new();
        for i in 0..3 {
            let a = net.add_input(format!("a{i}"));
            let b = net.add_input(format!("b{i}"));
            inputs.push((a, b));
        }
        for &(a, b) in &inputs {
            carry = Some(match carry {
                None => net.add_gate(GateKind::And, vec![a, b]),
                Some(c) => net.add_gate(GateKind::Maj, vec![a, b, c]),
            });
        }
        net.set_output("cout", carry.unwrap());
        net
    }

    #[test]
    fn expand_maj_is_equivalent_and_maj_free() {
        let net = carry_network();
        let expanded = expand_maj(&net);
        assert_eq!(equiv_sim(&net, &expanded, 16, 3), Ok(()));
        assert_eq!(expanded.gate_counts().maj, 0);
        assert!(expanded.gate_counts().xor >= 1, "XOR form used");
    }

    #[test]
    fn dc_flow_preserves_function() {
        let net = carry_network();
        let result = dc_flow(&net, &Library::cmos22());
        assert_eq!(equiv_sim(&net, &result.network, 16, 5), Ok(()));
        assert_eq!(
            result.network.gate_counts().maj,
            0,
            "the DC stand-in never infers MAJ cells"
        );
    }

    #[test]
    fn dc_flow_is_at_least_as_good_as_abc() {
        let net = carry_network();
        let lib = Library::cmos22();
        let dc = dc_flow(&net, &lib);
        let dc_area = report(&map_network(&dc.network), &lib).area;
        let abc_area = report(&abc_mapped(&net), &lib).area;
        assert!(
            dc_area <= abc_area + 1e-9,
            "best-of flow cannot lose to one of its candidates"
        );
    }

    #[test]
    fn abc_mapped_uses_library_cells() {
        let net = carry_network();
        let mapped = abc_mapped(&net);
        assert!(mapped.gate_count() > 0);
    }
}
