//! Baseline synthesis flows for the Table II comparison: the ABC-like
//! AIG flow (structural hashing + balancing, blind to XOR/MAJ structure)
//! and the Design-Compiler-like multi-strategy flow (best-of-breed area
//! optimization without majority inference). Both are substitutes for
//! tools that are closed-source or unavailable offline — see DESIGN.md §3.
//!
//! # Example
//!
//! ```
//! use logic::{Network, GateKind, equiv_sim};
//! use baselines::abc_flow;
//!
//! let mut net = Network::new("f");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let x = net.add_gate(GateKind::Xor, vec![a, b]);
//! net.set_output("y", x);
//! let optimized = abc_flow(&net);
//! assert!(equiv_sim(&net, &optimized, 8, 1).is_ok());
//! // An AIG flow rewrites the XOR into AND/INV logic:
//! assert_eq!(optimized.gate_counts().xor, 0);
//! ```

mod aig;
mod balance;
mod flows;
mod refactor;

pub use aig::{Aig, AigRef};
pub use balance::abc_flow;
pub use flows::{abc_mapped, dc_flow, expand_maj, DcResult, DcStrategy};
