//! And-Inverter Graph with structural hashing — the substrate of the
//! ABC-like baseline flow.
//!
//! AIGs represent everything with two-input ANDs and complemented edges;
//! that AND/INV-centric view is exactly why an AIG optimizer is blind to
//! the XOR/MAJ structure of datapath circuits, which is the contrast the
//! paper's Table II demonstrates.

use logic::{GateKind, Network, SignalId, TruthTable};
use std::collections::HashMap;

/// A (possibly complemented) edge to an AIG node.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AigRef(u32);

impl AigRef {
    /// The constant true edge.
    pub const ONE: AigRef = AigRef(0);
    /// The constant false edge.
    pub const ZERO: AigRef = AigRef(1);

    fn new(node: u32, complemented: bool) -> AigRef {
        AigRef(node << 1 | complemented as u32)
    }

    fn node(self) -> u32 {
        self.0 >> 1
    }

    fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// Whether this edge is one of the two constants.
    pub fn is_const(self) -> bool {
        self.node() == 0
    }
}

impl AigRef {
    /// The same edge with the complement attribute cleared.
    pub fn regular_edge(self) -> AigRef {
        AigRef(self.0 & !1)
    }

    /// Whether the edge carries the complement attribute.
    pub fn is_complemented_edge(self) -> bool {
        self.is_complemented()
    }

    /// Applies a complement flag to this edge.
    pub fn apply_complement(self, c: bool) -> AigRef {
        AigRef(self.0 ^ c as u32)
    }
}

impl std::ops::Not for AigRef {
    type Output = AigRef;

    fn not(self) -> AigRef {
        AigRef(self.0 ^ 1)
    }
}

#[derive(Clone, Copy, Debug)]
enum AigNode {
    Const,
    Input,
    And(AigRef, AigRef),
}

/// A structurally hashed and-inverter graph.
#[derive(Clone, Debug)]
pub struct Aig {
    nodes: Vec<AigNode>,
    strash: HashMap<(AigRef, AigRef), u32>,
    inputs: Vec<AigRef>,
    outputs: Vec<(String, AigRef)>,
    levels: Vec<u32>,
    name: String,
}

impl Aig {
    /// Creates an empty AIG.
    pub fn new(name: impl Into<String>) -> Aig {
        Aig {
            nodes: vec![AigNode::Const],
            strash: HashMap::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            levels: vec![0],
            name: name.into(),
        }
    }

    /// Adds a primary input.
    pub fn add_input(&mut self) -> AigRef {
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::Input);
        self.levels.push(0);
        let r = AigRef::new(id, false);
        self.inputs.push(r);
        r
    }

    /// Declares an output.
    pub fn set_output(&mut self, name: impl Into<String>, r: AigRef) {
        self.outputs.push((name.into(), r));
    }

    /// Structurally hashed AND with constant/identity folding.
    pub fn and(&mut self, a: AigRef, b: AigRef) -> AigRef {
        if a == AigRef::ZERO || b == AigRef::ZERO || a == !b {
            return AigRef::ZERO;
        }
        if a == AigRef::ONE {
            return b;
        }
        if b == AigRef::ONE || a == b {
            return a;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        if let Some(&id) = self.strash.get(&(x, y)) {
            return AigRef::new(id, false);
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(AigNode::And(x, y));
        let lvl = self.levels[x.node() as usize].max(self.levels[y.node() as usize]) + 1;
        self.levels.push(lvl);
        self.strash.insert((x, y), id);
        AigRef::new(id, false)
    }

    /// Disjunction via De Morgan.
    pub fn or(&mut self, a: AigRef, b: AigRef) -> AigRef {
        !self.and(!a, !b)
    }

    /// Exclusive or (three ANDs).
    pub fn xor(&mut self, a: AigRef, b: AigRef) -> AigRef {
        let t1 = self.and(a, !b);
        let t2 = self.and(!a, b);
        self.or(t1, t2)
    }

    /// Multiplexer `s ? t : e`.
    pub fn mux(&mut self, s: AigRef, t: AigRef, e: AigRef) -> AigRef {
        let a1 = self.and(s, t);
        let a2 = self.and(!s, e);
        self.or(a1, a2)
    }

    /// Three-input majority (AND/OR expansion — no MAJ primitive here).
    pub fn maj(&mut self, a: AigRef, b: AigRef, c: AigRef) -> AigRef {
        let ab = self.and(a, b);
        let bc = self.and(b, c);
        let ac = self.and(a, c);
        let t = self.or(ab, bc);
        self.or(t, ac)
    }

    /// Number of AND nodes reachable from the outputs.
    pub fn and_count(&self) -> usize {
        let mut seen = vec![false; self.nodes.len()];
        let mut stack: Vec<u32> = self.outputs.iter().map(|(_, r)| r.node()).collect();
        let mut count = 0;
        while let Some(id) = stack.pop() {
            if seen[id as usize] {
                continue;
            }
            seen[id as usize] = true;
            if let AigNode::And(a, b) = self.nodes[id as usize] {
                count += 1;
                stack.push(a.node());
                stack.push(b.node());
            }
        }
        count
    }

    /// Structural level (AND depth) of an edge.
    pub fn level(&self, r: AigRef) -> u32 {
        self.levels[r.node() as usize]
    }

    /// Name of the underlying model.
    pub fn network_name(&self) -> String {
        self.name.clone()
    }

    /// Number of primary inputs.
    pub fn input_count(&self) -> usize {
        self.inputs.len()
    }

    /// Edge of primary input `i` (declaration order).
    pub fn input_ref(&self, i: usize) -> AigRef {
        self.inputs[i]
    }

    /// Declared outputs.
    pub fn outputs(&self) -> &[(String, AigRef)] {
        &self.outputs
    }

    /// The AND children of a **regular** edge, or `None` for inputs and
    /// constants.
    pub fn and_children(&self, r: AigRef) -> Option<(AigRef, AigRef)> {
        match self.nodes[r.node() as usize] {
            AigNode::And(a, b) => Some((a, b)),
            _ => None,
        }
    }

    /// Builds an AIG from a logic network (structural hashing happens on
    /// the way in, like ABC's `strash`).
    pub fn from_network(net: &Network) -> Aig {
        let mut aig = Aig::new(net.name().to_string());
        let mut map: HashMap<SignalId, AigRef> = HashMap::new();
        for &pi in net.inputs() {
            let r = aig.add_input();
            map.insert(pi, r);
        }
        for id in net.signals() {
            if map.contains_key(&id) {
                continue;
            }
            let node = net.node(id);
            let kids: Vec<AigRef> = node.fanins.iter().map(|f| map[f]).collect();
            let r = match &node.kind {
                GateKind::Input => unreachable!("inputs pre-mapped"),
                GateKind::Const(b) => {
                    if *b {
                        AigRef::ONE
                    } else {
                        AigRef::ZERO
                    }
                }
                GateKind::Buf => kids[0],
                GateKind::Inv => !kids[0],
                GateKind::And => kids
                    .iter()
                    .copied()
                    .fold(AigRef::ONE, |acc, k| aig.and(acc, k)),
                GateKind::Nand => !kids
                    .iter()
                    .copied()
                    .fold(AigRef::ONE, |acc, k| aig.and(acc, k)),
                GateKind::Or => kids
                    .iter()
                    .copied()
                    .fold(AigRef::ZERO, |acc, k| aig.or(acc, k)),
                GateKind::Nor => !kids
                    .iter()
                    .copied()
                    .fold(AigRef::ZERO, |acc, k| aig.or(acc, k)),
                GateKind::Xor => kids
                    .iter()
                    .copied()
                    .fold(AigRef::ZERO, |acc, k| aig.xor(acc, k)),
                GateKind::Xnor => !kids
                    .iter()
                    .copied()
                    .fold(AigRef::ZERO, |acc, k| aig.xor(acc, k)),
                GateKind::Maj => aig.maj(kids[0], kids[1], kids[2]),
                GateKind::Mux => aig.mux(kids[0], kids[1], kids[2]),
                GateKind::Lut(table) => aig.lut(table, &kids),
            };
            map.insert(id, r);
        }
        for (name, s) in net.outputs() {
            aig.set_output(name.clone(), map[s]);
        }
        aig
    }

    /// Shannon expansion of a LUT over AIG edges.
    fn lut(&mut self, table: &TruthTable, kids: &[AigRef]) -> AigRef {
        fn expand(
            aig: &mut Aig,
            table: &TruthTable,
            kids: &[AigRef],
            fixed: usize,
            row: usize,
        ) -> AigRef {
            if fixed == kids.len() {
                return if table.value(row) {
                    AigRef::ONE
                } else {
                    AigRef::ZERO
                };
            }
            let i = kids.len() - 1 - fixed;
            let hi = expand(aig, table, kids, fixed + 1, row | 1 << i);
            let lo = expand(aig, table, kids, fixed + 1, row);
            aig.mux(kids[i], hi, lo)
        }
        expand(self, table, kids, 0, 0)
    }

    /// Converts back to a [`Network`] of AND/INV gates.
    pub fn to_network(&self) -> Network {
        let mut net = Network::new(self.name.clone());
        let mut map: HashMap<u32, SignalId> = HashMap::new();
        let mut const_false: Option<SignalId> = None;
        let mut inputs_added = 0usize;
        for (idx, node) in self.nodes.iter().enumerate() {
            match node {
                AigNode::Const => {}
                AigNode::Input => {
                    let s = net.add_input(format!("i{inputs_added}"));
                    inputs_added += 1;
                    map.insert(idx as u32, s);
                }
                AigNode::And(a, b) => {
                    let sa = edge_signal(&mut net, &map, &mut const_false, *a);
                    let sb = edge_signal(&mut net, &map, &mut const_false, *b);
                    let s = net.add_gate(GateKind::And, vec![sa, sb]);
                    map.insert(idx as u32, s);
                }
            }
        }
        for (name, r) in &self.outputs {
            let s = edge_signal(&mut net, &map, &mut const_false, *r);
            net.set_output(name.clone(), s);
        }
        net.cleaned()
    }
}

fn edge_signal(
    net: &mut Network,
    map: &HashMap<u32, SignalId>,
    const_false: &mut Option<SignalId>,
    r: AigRef,
) -> SignalId {
    if r.is_const() {
        let zero = *const_false.get_or_insert_with(|| net.add_const(false));
        if r == AigRef::ZERO {
            return zero;
        }
        return net.add_gate_simplified(GateKind::Inv, vec![zero]);
    }
    let base = map[&r.node()];
    if r.is_complemented() {
        net.add_gate_simplified(GateKind::Inv, vec![base])
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::equiv_sim;

    fn sample() -> Network {
        let mut net = Network::new("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let m = net.add_gate(GateKind::Maj, vec![x, b, c]);
        let y = net.add_gate(GateKind::Or, vec![m, a]);
        net.set_output("y", y);
        net
    }

    #[test]
    fn roundtrip_is_equivalent() {
        let net = sample();
        let aig = Aig::from_network(&net);
        let back = aig.to_network();
        assert_eq!(equiv_sim(&net, &back, 16, 11), Ok(()));
    }

    #[test]
    fn strash_folds_identities() {
        let mut aig = Aig::new("t");
        let a = aig.add_input();
        let b = aig.add_input();
        assert_eq!(aig.and(a, AigRef::ZERO), AigRef::ZERO);
        assert_eq!(aig.and(a, AigRef::ONE), a);
        assert_eq!(aig.and(a, a), a);
        assert_eq!(aig.and(a, !a), AigRef::ZERO);
        let ab1 = aig.and(a, b);
        let ab2 = aig.and(b, a);
        assert_eq!(ab1, ab2, "commutative strash");
    }

    #[test]
    fn xor_costs_three_ands() {
        let mut aig = Aig::new("t");
        let a = aig.add_input();
        let b = aig.add_input();
        let x = aig.xor(a, b);
        aig.set_output("x", x);
        assert_eq!(aig.and_count(), 3, "XOR has no cheap AIG form");
    }

    #[test]
    fn levels_track_depth() {
        let mut aig = Aig::new("t");
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let abc = aig.and(ab, c);
        assert_eq!(aig.level(a), 0);
        assert_eq!(aig.level(ab), 1);
        assert_eq!(aig.level(abc), 2);
    }

    #[test]
    fn lut_expansion_matches() {
        let mut net = Network::new("l");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let t = TruthTable::from_fn(2, |r| r == 1 || r == 2);
        let l = net.add_gate(GateKind::Lut(t), vec![a, b]);
        net.set_output("y", l);
        let back = Aig::from_network(&net).to_network();
        assert_eq!(equiv_sim(&net, &back, 8, 2), Ok(()));
    }
}
