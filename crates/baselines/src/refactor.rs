//! AIG refactoring: shared-literal factoring, the `rewrite`-ish third leg
//! of the ABC-like script.
//!
//! The single rule is the classic distributivity factorization
//! `a·b + a·c = a·(b + c)`, detected on the AIG as an AND of two
//! complemented AND children sharing a literal. Applied in a rebuild pass
//! (not during construction) so it cannot recurse unboundedly.

use crate::aig::{Aig, AigRef};
use std::collections::HashMap;

impl Aig {
    /// Returns a refactored copy with shared-literal factorizations
    /// applied bottom-up.
    pub fn refactored(&self) -> Aig {
        let mut out = Aig::new(self.network_name());
        let mut map: HashMap<AigRef, AigRef> = HashMap::new();
        map.insert(AigRef::ONE, AigRef::ONE);
        for i in 0..self.input_count() {
            let r = out.add_input();
            map.insert(self.input_ref(i), r);
        }
        let outputs: Vec<(String, AigRef)> = self.outputs().to_vec();
        for (name, r) in outputs {
            let nr = rebuild(self, &mut out, r, &mut map);
            out.set_output(name, nr);
        }
        out
    }
}

fn rebuild(src: &Aig, dst: &mut Aig, r: AigRef, map: &mut HashMap<AigRef, AigRef>) -> AigRef {
    let reg = r.regular_edge();
    if let Some(&m) = map.get(&reg) {
        return m.apply_complement(r.is_complemented_edge());
    }
    let (a, b) = src
        .and_children(reg)
        .expect("unmapped edge must be an AND node");
    let na = rebuild(src, dst, a, map);
    let nb = rebuild(src, dst, b, map);
    let result = factored_and(dst, na, nb);
    map.insert(reg, result);
    result.apply_complement(r.is_complemented_edge())
}

/// AND with one level of shared-literal factoring:
/// `!AND(p,q) · !AND(p,s)` (an OR of two ANDs, complemented) becomes
/// `!AND(p, !AND(!q,!s))` — one node fewer and often more sharing.
fn factored_and(dst: &mut Aig, x: AigRef, y: AigRef) -> AigRef {
    if x.is_complemented_edge() && y.is_complemented_edge() {
        if let (Some((p1, q1)), Some((p2, q2))) = (
            dst.and_children(x.regular_edge()),
            dst.and_children(y.regular_edge()),
        ) {
            // Find a shared literal between {p1,q1} and {p2,q2}.
            let shared = [
                (p1, q1, p2, q2),
                (q1, p1, p2, q2),
                (p1, q1, q2, p2),
                (q1, p1, q2, p2),
            ]
            .into_iter()
            .find(|(s, _, s2, _)| s == s2);
            if let Some((a, b, _, c)) = shared {
                // x·y = !(a·b) · !(a·c) = !(a·b + a·c) = !(a·(b+c))
                //     = !AND(a, !AND(!b, !c)).
                let t = dst.and(!b, !c);
                let inner = dst.and(a, !t);
                return !inner;
            }
        }
    }
    dst.and(x, y)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::{equiv_sim, GateKind, Network, SignalId};

    #[test]
    fn factoring_preserves_function() {
        // y = a·b + a·c + a·d — rich in shared literals.
        let mut net = Network::new("fact");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        let ac = net.add_gate(GateKind::And, vec![a, c]);
        let ad = net.add_gate(GateKind::And, vec![a, d]);
        let o1 = net.add_gate(GateKind::Or, vec![ab, ac]);
        let y = net.add_gate(GateKind::Or, vec![o1, ad]);
        net.set_output("y", y);
        let aig = Aig::from_network(&net);
        let refactored = aig.refactored();
        let back = refactored.to_network();
        assert_eq!(equiv_sim(&net, &back, 16, 21), Ok(()));
    }

    #[test]
    fn factoring_reduces_and_count() {
        // a·b + a·c: 3 ANDs raw, 2 after factoring.
        let mut aig = Aig::new("t");
        let a = aig.add_input();
        let b = aig.add_input();
        let c = aig.add_input();
        let ab = aig.and(a, b);
        let ac = aig.and(a, c);
        let or = aig.or(ab, ac);
        aig.set_output("y", or);
        assert_eq!(aig.and_count(), 3);
        let refactored = aig.refactored();
        assert_eq!(refactored.and_count(), 2, "a·(b+c) needs two ANDs");
    }

    #[test]
    fn factoring_is_idempotent_when_nothing_matches() {
        let mut aig = Aig::new("t");
        let a = aig.add_input();
        let b = aig.add_input();
        let ab = aig.and(a, b);
        aig.set_output("y", ab);
        let r = aig.refactored();
        assert_eq!(r.and_count(), 1);
    }

    #[test]
    fn random_networks_survive_refactoring() {
        use logic::XorShift64;
        let mut rng = XorShift64::new(31);
        for round in 0..12 {
            let mut net = Network::new("rand");
            let mut pool: Vec<SignalId> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
            for _ in 0..24 {
                let a = pool[(rng.next_u64() % pool.len() as u64) as usize];
                let b = pool[(rng.next_u64() % pool.len() as u64) as usize];
                let kind = match rng.next_u64() % 4 {
                    0 => GateKind::And,
                    1 => GateKind::Or,
                    2 => GateKind::Xor,
                    _ => GateKind::Inv,
                };
                let s = if matches!(kind, GateKind::Inv) {
                    net.add_gate(kind, vec![a])
                } else if a == b {
                    net.add_gate(GateKind::Inv, vec![a])
                } else {
                    net.add_gate(kind, vec![a, b])
                };
                pool.push(s);
            }
            let y = *pool.last().unwrap();
            net.set_output("y", y);
            let aig = Aig::from_network(&net);
            let back = aig.refactored().to_network();
            assert_eq!(equiv_sim(&net, &back, 8, round), Ok(()), "round {round}");
        }
    }
}
