//! Key-mixing circuit: stand-in for the MCNC `bigkey` benchmark (a key
//! encryption circuit) — XOR/MUX-rich wide control logic.

use crate::bus::{input_bus, output_bus};
use logic::{GateKind, Network, SignalId, TruthTable, XorShift64};

/// Builds a `bigkey`-style mixing network: a 64-bit data block and a
/// 64-bit key go through `rounds` of key XOR, fixed random 4→4 S-boxes,
/// and a bit permutation. Fully combinational and deterministic.
pub fn bigkey_like(rounds: u32, seed: u64) -> Network {
    let mut net = Network::new("bigkey_like");
    let mut rng = XorShift64::new(seed);
    let data = input_bus(&mut net, "d", 64);
    let key = input_bus(&mut net, "k", 64);

    // Fixed S-boxes: 16 random invertible-ish 4-input/4-output tables.
    let sboxes: Vec<[TruthTable; 4]> = (0..16)
        .map(|_| {
            let spec: Vec<u64> = (0..16).map(|_| rng.next_u64()).collect();
            std::array::from_fn(|bit| TruthTable::from_fn(4, |row| spec[row] >> bit & 1 == 1))
        })
        .collect();

    let mut state: Vec<SignalId> = data;
    for round in 0..rounds {
        // Key mix: rotate the key schedule per round.
        let mixed: Vec<SignalId> = state
            .iter()
            .enumerate()
            .map(|(i, &s)| {
                let kbit = key[(i + 11 * round as usize) % 64];
                net.add_gate(GateKind::Xor, vec![s, kbit])
            })
            .collect();
        // S-box layer on nibbles.
        let mut substituted: Vec<SignalId> = Vec::with_capacity(64);
        for (nibble, chunk) in mixed.chunks(4).enumerate() {
            let box_tables = &sboxes[nibble % sboxes.len()];
            for table in box_tables.iter() {
                substituted.push(net.add_gate(GateKind::Lut(table.clone()), chunk.to_vec()));
            }
        }
        // Bit permutation: multiply index by 13 mod 64 (a unit, so a perm).
        let mut permuted = vec![substituted[0]; 64];
        for (i, &s) in substituted.iter().enumerate() {
            permuted[i * 13 % 64] = s;
        }
        state = permuted;
    }
    output_bus(&mut net, "y", &state);
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_shaped() {
        let a = bigkey_like(3, 42);
        let b = bigkey_like(3, 42);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.inputs().len(), 128);
        assert_eq!(a.outputs().len(), 64);
        let patterns: Vec<u64> = (0..128)
            .map(|i| (i as u64).wrapping_mul(0xdeadbeef137))
            .collect();
        assert_eq!(a.simulate(&patterns), b.simulate(&patterns));
    }

    #[test]
    fn key_affects_every_round_output() {
        let net = bigkey_like(3, 42);
        let zero_key: Vec<u64> = vec![0; 128];
        let mut one_key = zero_key.clone();
        one_key[64] = u64::MAX; // flip key bit 0 in every lane
        let out0 = net.simulate(&zero_key);
        let out1 = net.simulate(&one_key);
        let differing = out0.iter().zip(&out1).filter(|(a, b)| a != b).count();
        assert!(
            differing > 4,
            "key bit must diffuse, changed {differing} outputs"
        );
    }

    #[test]
    fn xor_rich_structure() {
        let net = bigkey_like(3, 42);
        let c = net.gate_counts();
        assert!(c.xor >= 64 * 3, "one key XOR per bit per round");
        assert!(c.lut >= 16 * 4, "S-box layer present");
    }
}
