//! Error-correcting-code circuit: stand-in for the MCNC `C1355` benchmark
//! (the ISCAS'85 32-channel single-error-correcting circuit), an
//! XOR-dominated datapath with a decoder core.

use crate::bus::input_bus;
use logic::{GateKind, Network, SignalId};

/// Builds a 32-bit single-error-correcting network: 32 data inputs and 8
/// received check bits; recomputes the Hamming-style syndrome, decodes the
/// failing position, and outputs the 32 corrected data bits.
pub fn c1355_like() -> Network {
    let mut net = Network::new("c1355_like");
    let data = input_bus(&mut net, "d", 32);
    let check = input_bus(&mut net, "c", 8);

    // Parity groups: bit j of the syndrome covers data positions whose
    // (position + 1) has bit j set — a (63,57)-style Hamming pattern
    // truncated to 32 data bits, plus an overall parity bit.
    let mut syndrome: Vec<SignalId> = Vec::new();
    for (j, &chk) in check.iter().take(6).enumerate() {
        let members: Vec<SignalId> = data
            .iter()
            .enumerate()
            .filter(|(pos, _)| (pos + 1) >> j & 1 == 1)
            .map(|(_, &s)| s)
            .collect();
        let parity = net.add_gate(GateKind::Xor, members);
        let s = net.add_gate(GateKind::Xor, vec![parity, chk]);
        syndrome.push(s);
    }
    // Two extra mixing syndromes keep all 8 check inputs live.
    let all_parity = net.add_gate(GateKind::Xor, data.clone());
    let s6 = net.add_gate(GateKind::Xor, vec![all_parity, check[6]]);
    syndrome.push(s6);
    let half_parity = net.add_gate(GateKind::Xor, data[..16].to_vec());
    let s7 = net.add_gate(GateKind::Xor, vec![half_parity, check[7]]);
    syndrome.push(s7);

    // Decoder: position p is in error when the 6-bit syndrome equals p+1
    // and the overall parity syndrome confirms a single error.
    let syn_lits: Vec<(SignalId, SignalId)> = syndrome[..6]
        .iter()
        .map(|&s| {
            let inv = net.add_gate(GateKind::Inv, vec![s]);
            (s, inv)
        })
        .collect();
    for (pos, &d) in data.iter().enumerate() {
        let code = pos + 1;
        let mut terms: Vec<SignalId> = Vec::new();
        for (j, &(pos_lit, neg_lit)) in syn_lits.iter().enumerate() {
            terms.push(if code >> j & 1 == 1 { pos_lit } else { neg_lit });
        }
        terms.push(s6); // single-error confirmation
        let hit = net.add_gate(GateKind::And, terms);
        let corrected = net.add_gate(GateKind::Xor, vec![d, hit]);
        net.set_output(format!("y{pos}"), corrected);
    }
    // The last syndrome bit is also reported (error-detected flag).
    net.set_output("err", s7);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{lanes_from_values, values_from_lanes};
    use logic::XorShift64;

    /// Software model of the generator's code: returns the corrected word.
    fn reference(data: u32, check: u8) -> (u32, bool) {
        let mut syndrome = 0u32;
        for j in 0..6 {
            let mut p = false;
            for pos in 0..32 {
                if (pos + 1) >> j & 1 == 1 && data >> pos & 1 == 1 {
                    p = !p;
                }
            }
            if check >> j & 1 == 1 {
                p = !p;
            }
            if p {
                syndrome |= 1 << j;
            }
        }
        let all_parity = (data.count_ones() as u8 + (check >> 6 & 1)) % 2 == 1;
        let half_parity = ((data & 0xFFFF).count_ones() as u8 + (check >> 7 & 1)) % 2 == 1;
        let mut corrected = data;
        if all_parity {
            for pos in 0..32u32 {
                if syndrome == pos + 1 {
                    corrected ^= 1 << pos;
                }
            }
        }
        (corrected, half_parity)
    }

    #[test]
    fn interface_shape() {
        let net = c1355_like();
        assert_eq!(net.inputs().len(), 40);
        assert_eq!(net.outputs().len(), 33);
        let c = net.gate_counts();
        assert!(c.xor > 30, "ECC must be XOR-rich, got {}", c.xor);
    }

    #[test]
    fn corrects_single_bit_errors() {
        let net = c1355_like();
        let mut rng = XorShift64::new(77);
        // Build 64 random (data, check) lanes where check is the correct
        // code except one flipped data bit per lane.
        let mut datas = Vec::new();
        let mut checks = Vec::new();
        let mut originals = Vec::new();
        for lane in 0..64u32 {
            let original = rng.next_u64() as u32;
            // Correct check bits: those making every syndrome zero.
            let mut check = 0u8;
            for j in 0..6 {
                let mut p = false;
                for pos in 0..32 {
                    if (pos + 1) >> j & 1 == 1 && original >> pos & 1 == 1 {
                        p = !p;
                    }
                }
                if p {
                    check |= 1 << j;
                }
            }
            if original.count_ones() % 2 == 1 {
                check |= 1 << 6;
            }
            if (original & 0xFFFF).count_ones() % 2 == 1 {
                check |= 1 << 7;
            }
            let flipped = original ^ (1 << (lane % 32));
            datas.push(flipped as u64);
            checks.push(check as u64);
            originals.push(original);
        }
        let mut patterns = lanes_from_values(&datas, 32);
        patterns.extend(lanes_from_values(&checks, 8));
        let out = net.simulate(&patterns);
        let corrected = values_from_lanes(&out[..32], 64);
        for lane in 0..64usize {
            let (want, _) = reference(datas[lane] as u32, checks[lane] as u8);
            assert_eq!(corrected[lane] as u32, want, "lane {lane}");
            assert_eq!(
                want, originals[lane],
                "single-bit error must be corrected in lane {lane}"
            );
        }
    }
}
