//! Structural generators for the arithmetic (HDL) benchmarks of the paper:
//! adders, multipliers, divider, reciprocal, square root and MAC.
//!
//! Every generator returns a plain [`Network`]; tests validate each one by
//! bit-parallel simulation against `u128` reference arithmetic.

use crate::bus::{
    const_bus, full_adder, half_adder, input_bus, mux_bus, output_bus, ripple_add, ripple_sub, Bus,
};
use logic::{GateKind, Network, SignalId};

/// Plain ripple-carry adder: `s = a + b`, `width + 1` output bits.
pub fn ripple_adder(width: u32) -> Network {
    let mut net = Network::new(format!("ripple_add_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    let s = ripple_add(&mut net, &a, &b, None);
    output_bus(&mut net, "s", &s);
    net
}

/// Carry-lookahead adder with 4-bit groups and a recursive group tree
/// (the CLA-64 benchmark of the paper).
pub fn cla_adder(width: u32) -> Network {
    let mut net = Network::new(format!("cla_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    let zero = net.add_const(false);

    // Bit-level propagate/generate.
    let p: Bus = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| net.add_gate(GateKind::Xor, vec![x, y]))
        .collect();
    let g: Bus = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| net.add_gate(GateKind::And, vec![x, y]))
        .collect();

    // Recursive lookahead: returns (group_p, group_g, carries into each bit).
    fn lookahead(
        net: &mut Network,
        p: &[SignalId],
        g: &[SignalId],
        cin: SignalId,
    ) -> (SignalId, SignalId, Bus) {
        let n = p.len();
        if n == 1 {
            return (p[0], g[0], vec![cin]);
        }
        let half = n.div_ceil(2);
        let (pl, gl, cl) = lookahead(net, &p[..half], &g[..half], cin);
        // carry into the upper half: g_l + p_l·cin
        let t = net.add_gate(GateKind::And, vec![pl, cin]);
        let c_mid = net.add_gate(GateKind::Or, vec![gl, t]);
        let (ph, gh, ch) = lookahead(net, &p[half..], &g[half..], c_mid);
        let gp = net.add_gate(GateKind::And, vec![pl, ph]);
        let t2 = net.add_gate(GateKind::And, vec![ph, gl]);
        let gg = net.add_gate(GateKind::Or, vec![gh, t2]);
        let mut carries = cl;
        carries.extend(ch);
        (gp, gg, carries)
    }

    let (gp, gg, carries) = lookahead(&mut net, &p, &g, zero);
    let _ = gp;
    for i in 0..width as usize {
        let s = net.add_gate(GateKind::Xor, vec![p[i], carries[i]]);
        net.set_output(format!("s{i}"), s);
    }
    net.set_output("cout", gg);
    net
}

/// Sums the partial-product columns with full/half adders until each
/// column holds at most two bits, then finishes with a ripple adder.
///
/// Shared by the multiplier/MAC generators and the Booth multiplier in
/// [`crate::extra`].
pub fn reduce_columns(net: &mut Network, mut columns: Vec<Vec<SignalId>>) -> Bus {
    loop {
        if columns.iter().all(|c| c.len() <= 2) {
            break;
        }
        let mut next: Vec<Vec<SignalId>> = vec![Vec::new(); columns.len() + 1];
        for (i, col) in columns.iter().enumerate() {
            let mut chunk = col.as_slice();
            while chunk.len() >= 3 {
                let (s, c) = full_adder(net, chunk[0], chunk[1], chunk[2]);
                next[i].push(s);
                next[i + 1].push(c);
                chunk = &chunk[3..];
            }
            if chunk.len() == 2 {
                let (s, c) = half_adder(net, chunk[0], chunk[1]);
                next[i].push(s);
                next[i + 1].push(c);
            } else if chunk.len() == 1 {
                next[i].push(chunk[0]);
            }
        }
        while next.last().is_some_and(|c| c.is_empty()) {
            next.pop();
        }
        columns = next;
    }
    // Final carry-propagate addition over the two remaining rows.
    let width = columns.len();
    let zero = net.add_const(false);
    let row0: Bus = columns
        .iter()
        .map(|c| c.first().copied().unwrap_or(zero))
        .collect();
    let row1: Bus = columns
        .iter()
        .map(|c| c.get(1).copied().unwrap_or(zero))
        .collect();
    let mut sum = ripple_add(net, &row0, &row1, None);
    sum.truncate(width + 1);
    sum
}

/// Array multiplier (row-by-row carry-save, the structure of C6288).
pub fn array_multiplier(n: u32, m: u32) -> Network {
    let mut net = Network::new(format!("mult_array_{n}x{m}"));
    let a = input_bus(&mut net, "a", n);
    let b = input_bus(&mut net, "b", m);
    // Row i: partial product a·b_i aligned at bit i, accumulated by ripple
    // rows of full adders (the structure of C6288).
    let row0: Bus = a
        .iter()
        .map(|&x| net.add_gate(GateKind::And, vec![x, b[0]]))
        .collect();
    let mut out: Bus = vec![row0[0]];
    let zero = net.add_const(false);
    // Pending value aligned one bit above the last emitted product bit.
    let mut pending: Bus = row0[1..].to_vec();
    pending.push(zero);
    for &bi in b.iter().take(m as usize).skip(1) {
        let pp: Bus = a
            .iter()
            .map(|&x| net.add_gate(GateKind::And, vec![x, bi]))
            .collect();
        let sum = ripple_add(&mut net, &pending, &pp, None);
        out.push(sum[0]);
        pending = sum[1..].to_vec();
    }
    out.extend(pending);
    output_bus(&mut net, "p", &out[..(n + m) as usize]);
    net
}

/// Wallace-tree multiplier: column-wise 3:2 reduction of all partial
/// products, then a final fast adder.
pub fn wallace_multiplier(width: u32) -> Network {
    let mut net = Network::new(format!("wallace_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); (2 * width) as usize];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = net.add_gate(GateKind::And, vec![ai, bj]);
            columns[i + j].push(pp);
        }
    }
    let product = reduce_columns(&mut net, columns);
    output_bus(&mut net, "p", &product[..(2 * width) as usize]);
    net
}

/// Multiply-accumulate: `acc_out = a · b + c` with `c` of width `2·width`
/// (the MAC-16 benchmark).
pub fn mac(width: u32) -> Network {
    let mut net = Network::new(format!("mac_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    let c = input_bus(&mut net, "c", 2 * width);
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); (2 * width) as usize];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = net.add_gate(GateKind::And, vec![ai, bj]);
            columns[i + j].push(pp);
        }
    }
    for (i, &ci) in c.iter().enumerate() {
        columns[i].push(ci);
    }
    let sum = reduce_columns(&mut net, columns);
    output_bus(&mut net, "s", &sum[..(2 * width + 1) as usize]);
    net
}

/// Multi-operand adder: sums `operands` buses of `width` bits with a
/// carry-save tree (the 4-Op ADD benchmark).
pub fn multi_operand_adder(operands: u32, width: u32) -> Network {
    let mut net = Network::new(format!("add{operands}op_{width}"));
    let extra = 32 - (operands - 1).leading_zeros();
    let out_width = (width + extra) as usize;
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); out_width];
    for k in 0..operands {
        let op = input_bus(&mut net, &format!("op{k}_"), width);
        for (i, &s) in op.iter().enumerate() {
            columns[i].push(s);
        }
    }
    let sum = reduce_columns(&mut net, columns);
    output_bus(&mut net, "s", &sum[..out_width]);
    net
}

/// Restoring array divider: `q = n / d`, `r = n % d`, both `width` bits
/// (the Div-18 benchmark). Division by zero yields all-ones quotient.
pub fn divider(width: u32) -> Network {
    let mut net = Network::new(format!("div_{width}"));
    let n = input_bus(&mut net, "n", width);
    let d = input_bus(&mut net, "d", width);
    let zero = net.add_const(false);
    // Remainder register, one bit wider than the divisor.
    let mut r: Bus = vec![zero; width as usize + 1];
    let mut q: Vec<SignalId> = Vec::new();
    let mut d_ext = d.clone();
    d_ext.push(zero);
    for i in (0..width as usize).rev() {
        // r = (r << 1) | n_i
        let mut shifted = vec![n[i]];
        shifted.extend_from_slice(&r[..width as usize]);
        // trial subtract: t = shifted - d
        let (t, no_borrow) = ripple_sub(&mut net, &shifted, &d_ext);
        q.push(no_borrow);
        r = mux_bus(&mut net, no_borrow, &t, &shifted);
    }
    q.reverse();
    output_bus(&mut net, "q", &q);
    output_bus(&mut net, "r", &r[..width as usize]);
    net
}

/// Fixed-point reciprocal `1/X`: computes `floor(2^(2·width-2) / X)`
/// truncated to `2·width - 1` quotient bits via a restoring divider with a
/// constant dividend (the Rev (1/X) benchmark).
pub fn reciprocal(width: u32) -> Network {
    let mut net = Network::new(format!("reciprocal_{width}"));
    let x = input_bus(&mut net, "x", width);
    let dividend_width = 2 * width - 1;
    let dividend = const_bus(&mut net, 1u64 << (2 * width - 2), dividend_width);
    let zero = net.add_const(false);
    let mut x_ext = x.clone();
    x_ext.resize(width as usize + 1, zero);
    let mut r: Bus = vec![zero; width as usize + 1];
    let mut q: Vec<SignalId> = Vec::new();
    for i in (0..dividend_width as usize).rev() {
        let mut shifted = vec![dividend[i]];
        shifted.extend_from_slice(&r[..width as usize]);
        let (t, no_borrow) = ripple_sub(&mut net, &shifted, &x_ext);
        q.push(no_borrow);
        r = mux_bus(&mut net, no_borrow, &t, &shifted);
    }
    q.reverse();
    output_bus(&mut net, "q", &q);
    // Constant folding keeps the early all-zero stages cheap, exactly like
    // a hand-written HDL reciprocal with a constant numerator.
    net.cleaned()
}

/// Digit-recurrence (restoring) integer square root: `s = floor(sqrt(x))`
/// over `width` input bits (the SQRT-32 benchmark).
///
/// # Panics
///
/// Panics if `width` is odd.
pub fn sqrt(width: u32) -> Network {
    assert!(
        width.is_multiple_of(2),
        "sqrt generator expects an even width"
    );
    let mut net = Network::new(format!("sqrt_{width}"));
    let x = input_bus(&mut net, "x", width);
    let zero = net.add_const(false);
    let one = net.add_const(true);
    let stages = width / 2;
    // Remainder can grow to stage count + 2 bits.
    let rw = (stages + 2) as usize;
    let mut r: Bus = vec![zero; rw];
    let mut s: Vec<SignalId> = Vec::new(); // computed MSB-first
    for k in (0..stages).rev() {
        // r' = (r << 2) | x[2k+1..2k]
        let mut shifted = vec![x[(2 * k) as usize], x[(2 * k + 1) as usize]];
        shifted.extend_from_slice(&r[..rw - 2]);
        // trial = (s << 2) | 01  (s has `stages - 1 - k` known MSBs so far)
        let mut trial: Bus = vec![one, zero];
        trial.extend(s.iter().rev().copied());
        trial.resize(rw, zero);
        let (t, no_borrow) = ripple_sub(&mut net, &shifted, &trial);
        r = mux_bus(&mut net, no_borrow, &t, &shifted);
        s.push(no_borrow);
    }
    s.reverse(); // now little-endian
    output_bus(&mut net, "s", &s);
    output_bus(&mut net, "r", &r[..(stages + 1) as usize]);
    net.cleaned()
}

/// A small 8-input / 8-output arithmetic block in the spirit of `f51m`
/// (the MCNC 8-bit arithmetic benchmark): a 4×4 multiply fused with an
/// add/xor mix of the operands.
pub fn f51m_like() -> Network {
    let mut net = Network::new("f51m_like");
    let a = input_bus(&mut net, "a", 4);
    let b = input_bus(&mut net, "b", 4);
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); 8];
    for (i, &ai) in a.iter().enumerate() {
        for (j, &bj) in b.iter().enumerate() {
            let pp = net.add_gate(GateKind::And, vec![ai, bj]);
            columns[i + j].push(pp);
        }
    }
    // Fuse the operand sum into the low columns, f51m-style.
    let s = ripple_add(&mut net, &a, &b, None);
    for (i, &si) in s.iter().take(4).enumerate() {
        columns[i].push(si);
    }
    let out = reduce_columns(&mut net, columns);
    output_bus(&mut net, "y", &out[..8]);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{lanes_from_values, values_from_lanes};
    use logic::XorShift64;

    /// Drives `net` with 64 random operand pairs and returns per-lane
    /// output values.
    fn run2(net: &Network, wa: u32, wb: u32, seed: u64) -> (Vec<u64>, Vec<u64>, Vec<u64>) {
        let mut rng = XorShift64::new(seed);
        let va: Vec<u64> = (0..64)
            .map(|_| rng.next_u64() & ((1u64 << wa) - 1))
            .collect();
        let vb: Vec<u64> = (0..64)
            .map(|_| rng.next_u64() & ((1u64 << wb) - 1))
            .collect();
        let mut patterns = lanes_from_values(&va, wa);
        patterns.extend(lanes_from_values(&vb, wb));
        let out = net.simulate(&patterns);
        let vo = values_from_lanes(&out, 64);
        (va, vb, vo)
    }

    #[test]
    fn cla_matches_addition() {
        for width in [4u32, 8, 13, 64] {
            let net = cla_adder(width);
            let mut rng = XorShift64::new(width as u64);
            let mask = if width == 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & mask).collect();
            let vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & mask).collect();
            let mut patterns = lanes_from_values(&va, width);
            patterns.extend(lanes_from_values(&vb, width));
            let out = net.simulate(&patterns);
            for lane in 0..64usize {
                let got = out.iter().enumerate().fold(0u128, |acc, (bit, w)| {
                    acc | ((w >> lane & 1) as u128) << bit
                });
                let want = va[lane] as u128 + vb[lane] as u128;
                assert_eq!(got, want, "width {width} lane {lane}");
            }
        }
    }

    #[test]
    fn array_multiplier_matches() {
        let net = array_multiplier(8, 8);
        let (va, vb, vo) = run2(&net, 8, 8, 99);
        for i in 0..64 {
            assert_eq!(vo[i], va[i] * vb[i], "lane {i}");
        }
    }

    #[test]
    fn array_multiplier_rectangular() {
        let net = array_multiplier(6, 3);
        let (va, vb, vo) = run2(&net, 6, 3, 7);
        for i in 0..64 {
            assert_eq!(vo[i], va[i] * vb[i], "lane {i}");
        }
    }

    #[test]
    fn wallace_matches_array() {
        let net = wallace_multiplier(8);
        let (va, vb, vo) = run2(&net, 8, 8, 5);
        for i in 0..64 {
            assert_eq!(vo[i], va[i] * vb[i], "lane {i}");
        }
    }

    #[test]
    fn mac_matches() {
        let net = mac(6);
        let mut rng = XorShift64::new(3);
        let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0x3F).collect();
        let vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0x3F).collect();
        let vc: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFFF).collect();
        let mut patterns = lanes_from_values(&va, 6);
        patterns.extend(lanes_from_values(&vb, 6));
        patterns.extend(lanes_from_values(&vc, 12));
        let out = net.simulate(&patterns);
        let vo = values_from_lanes(&out, 64);
        for i in 0..64 {
            assert_eq!(vo[i], va[i] * vb[i] + vc[i], "lane {i}");
        }
    }

    #[test]
    fn four_operand_adder_matches() {
        let net = multi_operand_adder(4, 8);
        let mut rng = XorShift64::new(11);
        let ops: Vec<Vec<u64>> = (0..4)
            .map(|_| (0..64).map(|_| rng.next_u64() & 0xFF).collect())
            .collect();
        let mut patterns = Vec::new();
        for op in &ops {
            patterns.extend(lanes_from_values(op, 8));
        }
        let out = net.simulate(&patterns);
        let vo = values_from_lanes(&out, 64);
        for i in 0..64 {
            let want: u64 = ops.iter().map(|o| o[i]).sum();
            assert_eq!(vo[i], want, "lane {i}");
        }
    }

    #[test]
    fn divider_matches() {
        let net = divider(8);
        let (vn, vd, vo) = run2(&net, 8, 8, 21);
        for i in 0..64 {
            if vd[i] == 0 {
                continue;
            }
            let q = vo[i] & 0xFF;
            let r = vo[i] >> 8 & 0xFF;
            assert_eq!(q, vn[i] / vd[i], "quotient lane {i}");
            assert_eq!(r, vn[i] % vd[i], "remainder lane {i}");
        }
    }

    #[test]
    fn reciprocal_matches() {
        let net = reciprocal(8);
        let mut rng = XorShift64::new(17);
        let vx: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
        let patterns = lanes_from_values(&vx, 8);
        let out = net.simulate(&patterns);
        let vo = values_from_lanes(&out, 64);
        for i in 0..64 {
            if vx[i] == 0 {
                continue;
            }
            let want = ((1u64 << 14) / vx[i]) & ((1u64 << 15) - 1);
            assert_eq!(vo[i] & ((1 << 15) - 1), want, "lane {i} x={}", vx[i]);
        }
    }

    #[test]
    fn sqrt_matches() {
        let net = sqrt(16);
        let mut rng = XorShift64::new(31);
        let vx: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFFFF).collect();
        let patterns = lanes_from_values(&vx, 16);
        let out = net.simulate(&patterns);
        // Outputs: s (8 bits) then r (9 bits).
        for (lane, &x) in vx.iter().enumerate() {
            let s = (0..8).fold(0u64, |acc, b| acc | (out[b] >> lane & 1) << b);
            let want = (x as f64).sqrt().floor() as u64;
            assert_eq!(s, want, "lane {lane} x={x}");
            let r = (0..9).fold(0u64, |acc, b| acc | (out[8 + b] >> lane & 1) << b);
            assert_eq!(r, x - want * want, "remainder lane {lane}");
        }
    }

    #[test]
    fn f51m_is_nontrivial_and_stable() {
        let net = f51m_like();
        assert_eq!(net.inputs().len(), 8);
        assert_eq!(net.outputs().len(), 8);
        // Reference model: (a*b + (a+b) mod 16) low 8 bits.
        let (va, vb, vo) = run2(&net, 4, 4, 13);
        for i in 0..64 {
            let want = (va[i] * vb[i] + ((va[i] + vb[i]) & 0xF)) & 0xFF;
            assert_eq!(vo[i], want, "lane {i}");
        }
    }
}
