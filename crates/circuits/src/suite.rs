//! The 17-benchmark evaluation suite of the BDS-MAJ paper: 10 MCNC
//! stand-ins and 7 structural HDL datapaths (Tables I and II).

use crate::{alu, arith, control, crypto, ecc};
use logic::Network;
use std::sync::OnceLock;

/// Benchmark family, mirroring the two sections of the paper's tables.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Group {
    /// MCNC suite stand-ins.
    Mcnc,
    /// Custom arithmetic HDL benchmarks.
    Hdl,
}

/// A named benchmark circuit.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Name as printed in the paper's tables.
    pub name: &'static str,
    /// Which table section the benchmark belongs to.
    pub group: Group,
    /// The circuit itself.
    pub network: Network,
}

/// All benchmark names, in the row order of Tables I and II.
pub const PAPER_BENCHMARKS: [&str; 17] = [
    "alu2",
    "C6288",
    "C1355",
    "dalu",
    "apex6",
    "vda",
    "f51m",
    "misex3",
    "seq",
    "bigkey",
    "SQRT 32 bit",
    "Wallace 16 bit",
    "CLA 64 bit",
    "Rev (1/X) 19 bit",
    "Div 18 bit",
    "MAC 16 bit",
    "4-Op ADD 16 bit",
];

/// Builds one benchmark by paper name; `None` for unknown names.
pub fn benchmark(name: &str) -> Option<Network> {
    let net = match name {
        "alu2" => alu::alu2_like(),
        "C6288" => arith::array_multiplier(16, 16),
        "C1355" => ecc::c1355_like(),
        "dalu" => alu::dalu_like(),
        "apex6" => control::random_control(control::ControlConfig {
            inputs: 135,
            outputs: 99,
            gates: 700,
            seed: 0xA9E6,
        }),
        "vda" => control::random_sop(control::SopConfig {
            inputs: 17,
            outputs: 39,
            cubes_per_output: 10,
            literals_per_cube: 5,
            seed: 0x7DA,
        }),
        "f51m" => arith::f51m_like(),
        "misex3" => control::random_sop(control::SopConfig {
            inputs: 14,
            outputs: 14,
            cubes_per_output: 24,
            literals_per_cube: 7,
            seed: 0x313,
        }),
        "seq" => control::random_sop(control::SopConfig {
            inputs: 41,
            outputs: 35,
            cubes_per_output: 22,
            literals_per_cube: 9,
            seed: 0x5E9,
        }),
        "bigkey" => crypto::bigkey_like(3, 0xB16CE4),
        "SQRT 32 bit" => arith::sqrt(32),
        "Wallace 16 bit" => arith::wallace_multiplier(16),
        "CLA 64 bit" => arith::cla_adder(64),
        "Rev (1/X) 19 bit" => arith::reciprocal(19),
        "Div 18 bit" => arith::divider(18),
        "MAC 16 bit" => arith::mac(16),
        "4-Op ADD 16 bit" => arith::multi_operand_adder(4, 16),
        _ => return None,
    };
    Some(net)
}

/// Group of a paper benchmark (MCNC rows come first in the tables).
pub fn group_of(name: &str) -> Group {
    match name {
        "alu2" | "C6288" | "C1355" | "dalu" | "apex6" | "vda" | "f51m" | "misex3" | "seq"
        | "bigkey" => Group::Mcnc,
        _ => Group::Hdl,
    }
}

/// The full 17-benchmark suite in table order, built once per process
/// and shared from then on (the harness binaries used to rebuild all 17
/// networks on every call). The returned slice is immutable and
/// `Benchmark` is `Send + Sync`, so suite workers can read it
/// concurrently; flows clone or borrow the networks read-only.
pub fn paper_suite() -> &'static [Benchmark] {
    static SUITE: OnceLock<Vec<Benchmark>> = OnceLock::new();
    SUITE
        .get_or_init(|| {
            PAPER_BENCHMARKS
                .iter()
                .map(|&name| Benchmark {
                    name,
                    group: group_of(name),
                    network: benchmark(name).expect("known benchmark"),
                })
                .collect()
        })
        .as_slice()
}

/// Thread-safety audit for the suite-sharing contract above: benchmark
/// circuits hold no interior mutability, so a `&'static [Benchmark]` may
/// be read from any number of pool workers at once. (BDD managers are the
/// deliberate exception — each worker builds its own.)
#[allow(dead_code)]
fn _benchmarks_are_send_sync() {
    fn check<T: Send + Sync>() {}
    check::<Benchmark>();
    check::<Network>();
    check::<Group>();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benchmarks_build() {
        let suite = paper_suite();
        assert_eq!(suite.len(), 17);
        for b in suite {
            assert!(!b.network.is_empty(), "{} is empty", b.name);
            assert!(!b.network.outputs().is_empty(), "{} has no outputs", b.name);
        }
    }

    #[test]
    fn groups_split_ten_seven() {
        let suite = paper_suite();
        let mcnc = suite.iter().filter(|b| b.group == Group::Mcnc).count();
        assert_eq!(mcnc, 10);
        assert_eq!(suite.len() - mcnc, 7);
    }

    #[test]
    fn unknown_benchmark_is_none() {
        assert!(benchmark("nonexistent").is_none());
    }

    #[test]
    fn datapath_benchmarks_are_sizable() {
        for name in ["C6288", "Rev (1/X) 19 bit", "Div 18 bit", "Wallace 16 bit"] {
            let net = benchmark(name).unwrap();
            assert!(
                net.gate_counts().logic_total() > 500,
                "{name} should be a large datapath, got {}",
                net.gate_counts().logic_total()
            );
        }
    }
}
