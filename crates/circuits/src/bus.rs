//! Bit-vector ("bus") helpers shared by all structural generators.

use logic::{GateKind, Network, SignalId};

/// A little-endian bit vector of signals (index 0 is the LSB).
pub type Bus = Vec<SignalId>;

/// Adds `width` named inputs `prefix0..prefixN` and returns them as a bus.
pub fn input_bus(net: &mut Network, prefix: &str, width: u32) -> Bus {
    (0..width)
        .map(|i| net.add_input(format!("{prefix}{i}")))
        .collect()
}

/// Declares every bit of `bus` as an output `prefix0..prefixN`.
pub fn output_bus(net: &mut Network, prefix: &str, bus: &[SignalId]) {
    for (i, &s) in bus.iter().enumerate() {
        net.set_output(format!("{prefix}{i}"), s);
    }
}

/// A constant bus holding `value` in `width` bits.
pub fn const_bus(net: &mut Network, value: u64, width: u32) -> Bus {
    (0..width)
        .map(|i| net.add_const(value >> i & 1 == 1))
        .collect()
}

/// One half adder; returns `(sum, carry)`.
pub fn half_adder(net: &mut Network, a: SignalId, b: SignalId) -> (SignalId, SignalId) {
    let s = net.add_gate(GateKind::Xor, vec![a, b]);
    let c = net.add_gate(GateKind::And, vec![a, b]);
    (s, c)
}

/// One full adder built from XOR and MAJ (the natural datapath idiom the
/// paper targets); returns `(sum, carry)`.
pub fn full_adder(
    net: &mut Network,
    a: SignalId,
    b: SignalId,
    cin: SignalId,
) -> (SignalId, SignalId) {
    let s = net.add_gate(GateKind::Xor, vec![a, b, cin]);
    let c = net.add_gate(GateKind::Maj, vec![a, b, cin]);
    (s, c)
}

/// Ripple-carry addition of two equal-width buses with optional carry-in;
/// returns `width + 1` bits (the MSB is the carry out).
pub fn ripple_add(net: &mut Network, a: &[SignalId], b: &[SignalId], cin: Option<SignalId>) -> Bus {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    let mut out = Vec::with_capacity(a.len() + 1);
    let mut carry = cin;
    for i in 0..a.len() {
        let (s, c) = match carry {
            None => half_adder(net, a[i], b[i]),
            Some(cin) => full_adder(net, a[i], b[i], cin),
        };
        out.push(s);
        carry = Some(c);
    }
    out.push(carry.expect("non-empty bus"));
    out
}

/// Two's-complement subtraction `a - b`; returns `width` difference bits
/// plus a final `borrow-free` flag (1 when `a >= b`).
pub fn ripple_sub(net: &mut Network, a: &[SignalId], b: &[SignalId]) -> (Bus, SignalId) {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    let nb: Bus = b
        .iter()
        .map(|&x| net.add_gate(GateKind::Inv, vec![x]))
        .collect();
    let one = net.add_const(true);
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = one;
    for i in 0..a.len() {
        let (s, c) = full_adder(net, a[i], nb[i], carry);
        sum.push(s);
        carry = c;
    }
    (sum, carry)
}

/// Bitwise MUX between two buses: `sel ? then_bus : else_bus`.
pub fn mux_bus(
    net: &mut Network,
    sel: SignalId,
    then_bus: &[SignalId],
    else_bus: &[SignalId],
) -> Bus {
    assert_eq!(then_bus.len(), else_bus.len(), "bus width mismatch");
    then_bus
        .iter()
        .zip(else_bus)
        .map(|(&t, &e)| net.add_gate(GateKind::Mux, vec![sel, t, e]))
        .collect()
}

/// Bitwise map of a 2-input gate across two buses.
pub fn zip_gate(net: &mut Network, kind: GateKind, a: &[SignalId], b: &[SignalId]) -> Bus {
    assert_eq!(a.len(), b.len(), "bus width mismatch");
    a.iter()
        .zip(b)
        .map(|(&x, &y)| net.add_gate(kind.clone(), vec![x, y]))
        .collect()
}

/// Packs a `u64` value into simulation patterns: bit `i` of the bus gets a
/// word whose every lane equals bit `i` of `value`. With
/// [`lanes_from_values`] this lets tests drive 64 different stimuli at once.
pub fn lanes_from_values(values: &[u64], width: u32) -> Vec<u64> {
    assert!(values.len() <= 64, "at most 64 lanes");
    (0..width)
        .map(|bit| {
            let mut word = 0u64;
            for (lane, &v) in values.iter().enumerate() {
                if v >> bit & 1 == 1 {
                    word |= 1 << lane;
                }
            }
            word
        })
        .collect()
}

/// Inverse of [`lanes_from_values`]: extracts per-lane numeric values from
/// the simulation words of an output bus.
pub fn values_from_lanes(words: &[u64], lanes: usize) -> Vec<u64> {
    (0..lanes)
        .map(|lane| {
            words
                .iter()
                .enumerate()
                .fold(0u64, |acc, (bit, w)| acc | (w >> lane & 1) << bit)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ripple_add_matches_u64() {
        let mut net = Network::new("add8");
        let a = input_bus(&mut net, "a", 8);
        let b = input_bus(&mut net, "b", 8);
        let s = ripple_add(&mut net, &a, &b, None);
        output_bus(&mut net, "s", &s);
        let values_a: Vec<u64> = (0..64).map(|i| i * 37 % 256).collect();
        let values_b: Vec<u64> = (0..64).map(|i| i * 101 % 256).collect();
        let mut patterns = lanes_from_values(&values_a, 8);
        patterns.extend(lanes_from_values(&values_b, 8));
        let out = net.simulate(&patterns);
        let sums = values_from_lanes(&out, 64);
        for i in 0..64 {
            assert_eq!(sums[i], (values_a[i] + values_b[i]) & 0x1FF, "lane {i}");
        }
    }

    #[test]
    fn ripple_sub_matches_wrapping_sub() {
        let mut net = Network::new("sub8");
        let a = input_bus(&mut net, "a", 8);
        let b = input_bus(&mut net, "b", 8);
        let (d, no_borrow) = ripple_sub(&mut net, &a, &b);
        output_bus(&mut net, "d", &d);
        net.set_output("ge", no_borrow);
        let va: Vec<u64> = (0..64).map(|i| i * 31 % 256).collect();
        let vb: Vec<u64> = (0..64).map(|i| i * 7 % 256).collect();
        let mut patterns = lanes_from_values(&va, 8);
        patterns.extend(lanes_from_values(&vb, 8));
        let out = net.simulate(&patterns);
        let diffs = values_from_lanes(&out[..8], 64);
        let ge = out[8];
        for i in 0..64 {
            assert_eq!(diffs[i], va[i].wrapping_sub(vb[i]) & 0xFF, "lane {i}");
            assert_eq!(ge >> i & 1 == 1, va[i] >= vb[i], "ge lane {i}");
        }
    }

    #[test]
    fn mux_bus_selects() {
        let mut net = Network::new("mux");
        let s = net.add_input("s");
        let a = input_bus(&mut net, "a", 4);
        let b = input_bus(&mut net, "b", 4);
        let y = mux_bus(&mut net, s, &a, &b);
        output_bus(&mut net, "y", &y);
        let mut patterns = vec![0b10u64];
        patterns.extend(lanes_from_values(&[0x5, 0x5], 4));
        patterns.extend(lanes_from_values(&[0xA, 0xA], 4));
        let out = net.simulate(&patterns);
        let v = values_from_lanes(&out, 2);
        assert_eq!(v[0], 0xA, "sel=0 picks else");
        assert_eq!(v[1], 0x5, "sel=1 picks then");
    }

    #[test]
    fn lane_packing_roundtrips() {
        let values: Vec<u64> = (0..64).map(|i| (i * 0x123) & 0xFFFF).collect();
        let lanes = lanes_from_values(&values, 16);
        assert_eq!(values_from_lanes(&lanes, 64), values);
    }
}
