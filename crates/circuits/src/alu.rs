//! ALU generators: stand-ins for the MCNC `alu2` and `dalu` benchmarks —
//! mixed control/datapath circuits with operand buses and an opcode.

use crate::bus::{input_bus, mux_bus, output_bus, ripple_add, ripple_sub, zip_gate, Bus};
use logic::{GateKind, Network};

/// A compact ALU in the spirit of `alu2` (10 inputs): two 4-bit operands
/// and a 2-bit opcode selecting ADD / AND / OR / XOR; outputs the 4-bit
/// result plus carry and zero flags.
pub fn alu2_like() -> Network {
    let mut net = Network::new("alu2_like");
    let a = input_bus(&mut net, "a", 4);
    let b = input_bus(&mut net, "b", 4);
    let op0 = net.add_input("op0");
    let op1 = net.add_input("op1");

    let sum = ripple_add(&mut net, &a, &b, None);
    let and = zip_gate(&mut net, GateKind::And, &a, &b);
    let or = zip_gate(&mut net, GateKind::Or, &a, &b);
    let xor = zip_gate(&mut net, GateKind::Xor, &a, &b);

    // op1 op0: 00 add, 01 and, 10 or, 11 xor.
    let low = mux_bus(&mut net, op0, &and, &sum[..4]);
    let high = mux_bus(&mut net, op0, &xor, &or);
    let result = mux_bus(&mut net, op1, &high, &low);
    output_bus(&mut net, "r", &result);

    // Carry only meaningful for ADD; gate it with the opcode.
    let nop0 = net.add_gate(GateKind::Inv, vec![op0]);
    let nop1 = net.add_gate(GateKind::Inv, vec![op1]);
    let is_add = net.add_gate(GateKind::And, vec![nop0, nop1]);
    let carry = net.add_gate(GateKind::And, vec![is_add, sum[4]]);
    net.set_output("carry", carry);

    let any = net.add_gate(GateKind::Or, result.clone());
    let zero = net.add_gate(GateKind::Inv, vec![any]);
    net.set_output("zero", zero);
    net
}

/// A dedicated ALU in the spirit of `dalu`: 8-bit datapath, 3-bit opcode
/// (8 operations: add, sub, and, or, xor, nor, pass-a, shifted-b) plus
/// condition inputs, with result and flag outputs.
pub fn dalu_like() -> Network {
    let mut net = Network::new("dalu_like");
    let width = 8u32;
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    let op: Bus = (0..3).map(|i| net.add_input(format!("op{i}"))).collect();
    let cond = net.add_input("cond");

    let sum = ripple_add(&mut net, &a, &b, None);
    let (diff, ge) = ripple_sub(&mut net, &a, &b);
    let and = zip_gate(&mut net, GateKind::And, &a, &b);
    let or = zip_gate(&mut net, GateKind::Or, &a, &b);
    let xor = zip_gate(&mut net, GateKind::Xor, &a, &b);
    let nor: Bus = or
        .iter()
        .map(|&s| net.add_gate(GateKind::Inv, vec![s]))
        .collect();
    // shifted-b: b << 1, conditionally filled with `cond`.
    let mut shifted: Bus = vec![cond];
    shifted.extend_from_slice(&b[..width as usize - 1]);

    let sum_lo: Bus = sum[..width as usize].to_vec();
    let choices: [&Bus; 8] = [&sum_lo, &diff, &and, &or, &xor, &nor, &a, &shifted];
    // 8:1 mux tree over the opcode.
    let mut layer: Vec<Bus> = choices.iter().map(|b| (*b).clone()).collect();
    for &sel in op.iter().take(3) {
        let mut next: Vec<Bus> = Vec::new();
        for pair in layer.chunks(2) {
            next.push(mux_bus(&mut net, sel, &pair[1], &pair[0]));
        }
        layer = next;
    }
    let result = layer.pop().expect("mux tree reduces to one bus");
    output_bus(&mut net, "r", &result);

    net.set_output("carry", sum[width as usize]);
    net.set_output("ge", ge);
    let any = net.add_gate(GateKind::Or, result.clone());
    let zero = net.add_gate(GateKind::Inv, vec![any]);
    net.set_output("zero", zero);
    let parity = net.add_gate(GateKind::Xor, result);
    net.set_output("parity", parity);
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{lanes_from_values, values_from_lanes};
    use logic::XorShift64;

    #[test]
    fn alu2_ops_match_reference() {
        let net = alu2_like();
        assert_eq!(net.inputs().len(), 10);
        let mut rng = XorShift64::new(1);
        for op in 0..4u64 {
            let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xF).collect();
            let vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xF).collect();
            let mut patterns = lanes_from_values(&va, 4);
            patterns.extend(lanes_from_values(&vb, 4));
            patterns.push(if op & 1 == 1 { u64::MAX } else { 0 });
            patterns.push(if op & 2 == 2 { u64::MAX } else { 0 });
            let out = net.simulate(&patterns);
            let r = values_from_lanes(&out[..4], 64);
            for i in 0..64 {
                let want = match op {
                    0 => (va[i] + vb[i]) & 0xF,
                    1 => va[i] & vb[i],
                    2 => va[i] | vb[i],
                    _ => va[i] ^ vb[i],
                };
                assert_eq!(r[i], want, "op {op} lane {i}");
                let zero = out[5] >> i & 1 == 1;
                assert_eq!(zero, want == 0, "zero flag op {op} lane {i}");
                if op == 0 {
                    let carry = out[4] >> i & 1 == 1;
                    assert_eq!(carry, va[i] + vb[i] > 0xF, "carry lane {i}");
                }
            }
        }
    }

    #[test]
    fn dalu_ops_match_reference() {
        let net = dalu_like();
        let mut rng = XorShift64::new(2);
        for op in 0..8u64 {
            let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
            let vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
            let mut patterns = lanes_from_values(&va, 8);
            patterns.extend(lanes_from_values(&vb, 8));
            for bit in 0..3 {
                patterns.push(if op >> bit & 1 == 1 { u64::MAX } else { 0 });
            }
            patterns.push(0); // cond = 0
            let out = net.simulate(&patterns);
            let r = values_from_lanes(&out[..8], 64);
            for i in 0..64 {
                let want = match op {
                    0 => (va[i] + vb[i]) & 0xFF,
                    1 => va[i].wrapping_sub(vb[i]) & 0xFF,
                    2 => va[i] & vb[i],
                    3 => va[i] | vb[i],
                    4 => va[i] ^ vb[i],
                    5 => !(va[i] | vb[i]) & 0xFF,
                    6 => va[i],
                    _ => (vb[i] << 1) & 0xFF,
                };
                assert_eq!(r[i], want, "op {op} lane {i}");
            }
        }
    }

    #[test]
    fn dalu_flags() {
        let net = dalu_like();
        // a = 5, b = 5, op = sub: result 0, zero flag set, ge set.
        let mut patterns = lanes_from_values(&[5], 8);
        patterns.extend(lanes_from_values(&[5], 8));
        patterns.extend([1, 0, 0]); // op = 1 (sub) in lane 0
        patterns.push(0);
        let out = net.simulate(&patterns);
        // Outputs: r0..r7, carry, ge, zero, parity.
        assert_eq!(out[9] & 1, 1, "ge");
        assert_eq!(out[10] & 1, 1, "zero");
        assert_eq!(out[11] & 1, 0, "parity of zero result");
    }
}
