//! Extended datapath generators beyond the paper's benchmark list:
//! parallel-prefix addition, Booth recoding and comparators. These widen
//! the evaluation surface (ablation studies and extra examples) and stress
//! decomposition shapes the core suite does not cover.

use crate::bus::{input_bus, output_bus, Bus};
use logic::{GateKind, Network, SignalId};

/// Kogge–Stone parallel-prefix adder: `width + 1` output bits.
///
/// The prefix tree computes all carries in `⌈log2 width⌉` levels of
/// (generate, propagate) merges — a very different decomposition shape
/// from the ripple and lookahead adders of the main suite.
pub fn kogge_stone_adder(width: u32) -> Network {
    let mut net = Network::new(format!("kogge_stone_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    // Level 0: bitwise generate/propagate.
    let mut g: Bus = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| net.add_gate(GateKind::And, vec![x, y]))
        .collect();
    let mut p: Bus = a
        .iter()
        .zip(&b)
        .map(|(&x, &y)| net.add_gate(GateKind::Xor, vec![x, y]))
        .collect();
    let p0 = p.clone();
    // Prefix levels: (g, p) ∘ (g', p') = (g + p·g', p·p').
    let mut dist = 1usize;
    while dist < width as usize {
        let mut ng = g.clone();
        let mut np = p.clone();
        for i in dist..width as usize {
            let t = net.add_gate(GateKind::And, vec![p[i], g[i - dist]]);
            ng[i] = net.add_gate(GateKind::Or, vec![g[i], t]);
            np[i] = net.add_gate(GateKind::And, vec![p[i], p[i - dist]]);
        }
        g = ng;
        p = np;
        dist *= 2;
    }
    // Sum: s_i = p0_i ⊕ c_i with c_0 = 0, c_{i+1} = G_i (prefix generate).
    net.set_output("s0", p0[0]);
    for i in 1..width as usize {
        let s = net.add_gate(GateKind::Xor, vec![p0[i], g[i - 1]]);
        net.set_output(format!("s{i}"), s);
    }
    net.set_output("cout", g[width as usize - 1]);
    net
}

/// Radix-4 Booth-recoded multiplier: `2·width` product bits.
///
/// Booth recoding halves the partial-product count at the price of a
/// recoding layer of MUX/XOR logic — a classic area/delay trade-off
/// circuit.
pub fn booth_multiplier(width: u32) -> Network {
    assert!(
        width >= 2 && width.is_multiple_of(2),
        "even width ≥ 2 expected"
    );
    let mut net = Network::new(format!("booth_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    let zero = net.add_const(false);
    let out_w = (2 * width) as usize;

    // Two's-complement accumulation of recoded partial products. Each
    // Booth digit i covers b[2i-1..2i+1] and selects {0, ±A, ±2A}.
    let mut columns: Vec<Vec<SignalId>> = vec![Vec::new(); out_w + 2];
    // One extra digit (d = width/2) with b_0 = b_+1 = 0 makes the recoding
    // exact for *unsigned* B: its value is just the carry digit b_{w-1}.
    let digits = width / 2;
    for d in 0..=digits as usize {
        let b_m1 = if d == 0 { zero } else { b[2 * d - 1] };
        let b_0 = if 2 * d < width as usize {
            b[2 * d]
        } else {
            zero
        };
        let b_p1 = if 2 * d + 1 < width as usize {
            b[2 * d + 1]
        } else {
            zero
        };
        // neg: the digit is negative (-A or -2A): b_p1 AND NOT(b_0 AND b_m1)
        // Encoded selects:
        //   one  = b_0 ⊕ b_m1                  (±A)
        //   two  = b_p1·¬b_0·¬b_m1 + ¬b_p1·b_0·b_m1   (±2A)
        //   neg  = b_p1 (and the digit is non-zero)
        let one = net.add_gate(GateKind::Xor, vec![b_0, b_m1]);
        let and01 = net.add_gate(GateKind::And, vec![b_0, b_m1]);
        let nor01 = net.add_gate(GateKind::Nor, vec![b_0, b_m1]);
        let t2a = net.add_gate(GateKind::And, vec![b_p1, nor01]);
        let nb_p1 = net.add_gate(GateKind::Inv, vec![b_p1]);
        let t2b = net.add_gate(GateKind::And, vec![nb_p1, and01]);
        let two = net.add_gate(GateKind::Or, vec![t2a, t2b]);
        let neg = b_p1;

        // Partial product bits: pp_j = (one·a_j + two·a_{j-1}) ⊕ neg,
        // sign-extended; the ⊕ neg plus a +neg at the LSB forms the
        // two's complement of the selected multiple.
        let shift = 2 * d;
        for j in 0..=(width as usize) {
            let a_j = if j < width as usize { a[j] } else { zero };
            let a_jm1 = if j == 0 { zero } else { a[j - 1] };
            let sel1 = net.add_gate(GateKind::And, vec![one, a_j]);
            let sel2 = net.add_gate(GateKind::And, vec![two, a_jm1]);
            let magnitude = net.add_gate(GateKind::Or, vec![sel1, sel2]);
            let ppbit = net.add_gate(GateKind::Xor, vec![magnitude, neg]);
            columns[shift + j].push(ppbit);
        }
        // Sign extension: the selected magnitude (0, A or 2A) fits in the
        // w+1 explicit columns and is non-negative, so the extension bit of
        // `±magnitude` in two's complement is exactly `neg`.
        for column in columns
            .iter_mut()
            .take(out_w)
            .skip(shift + width as usize + 1)
        {
            column.push(neg);
        }
        // +neg at the digit's LSB completes the two's complement.
        columns[shift].push(neg);
    }

    // Carry-save reduction and final addition (reuse the Wallace reducer).
    let sum = crate::arith::reduce_columns(&mut net, columns);
    output_bus(&mut net, "p", &sum[..out_w]);
    net
}

/// n-bit unsigned comparator: outputs `lt`, `eq`, `gt`.
pub fn comparator(width: u32) -> Network {
    let mut net = Network::new(format!("cmp_{width}"));
    let a = input_bus(&mut net, "a", width);
    let b = input_bus(&mut net, "b", width);
    // MSB-first chain: eq so far AND current-bit relations.
    let mut eq_so_far: Option<SignalId> = None;
    let mut gt: Option<SignalId> = None;
    let mut lt: Option<SignalId> = None;
    for i in (0..width as usize).rev() {
        let bit_eq = net.add_gate(GateKind::Xnor, vec![a[i], b[i]]);
        let nb = net.add_gate(GateKind::Inv, vec![b[i]]);
        let bit_gt = net.add_gate(GateKind::And, vec![a[i], nb]);
        let na = net.add_gate(GateKind::Inv, vec![a[i]]);
        let bit_lt = net.add_gate(GateKind::And, vec![na, b[i]]);
        match (eq_so_far, gt, lt) {
            (None, _, _) => {
                eq_so_far = Some(bit_eq);
                gt = Some(bit_gt);
                lt = Some(bit_lt);
            }
            (Some(eq), Some(g), Some(l)) => {
                let g2 = net.add_gate(GateKind::And, vec![eq, bit_gt]);
                gt = Some(net.add_gate(GateKind::Or, vec![g, g2]));
                let l2 = net.add_gate(GateKind::And, vec![eq, bit_lt]);
                lt = Some(net.add_gate(GateKind::Or, vec![l, l2]));
                eq_so_far = Some(net.add_gate(GateKind::And, vec![eq, bit_eq]));
            }
            _ => unreachable!(),
        }
    }
    net.set_output("lt", lt.expect("width > 0"));
    net.set_output("eq", eq_so_far.expect("width > 0"));
    net.set_output("gt", gt.expect("width > 0"));
    net
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bus::{lanes_from_values, values_from_lanes};
    use logic::XorShift64;

    #[test]
    fn kogge_stone_matches_addition() {
        for width in [8u32, 16, 33] {
            let net = kogge_stone_adder(width);
            let mut rng = XorShift64::new(width as u64 + 1);
            let mask = if width >= 64 {
                u64::MAX
            } else {
                (1u64 << width) - 1
            };
            let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & mask).collect();
            let vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & mask).collect();
            let mut patterns = lanes_from_values(&va, width);
            patterns.extend(lanes_from_values(&vb, width));
            let out = net.simulate(&patterns);
            for lane in 0..64usize {
                let got = out.iter().enumerate().fold(0u128, |acc, (bit, w)| {
                    acc | ((w >> lane & 1) as u128) << bit
                });
                assert_eq!(
                    got,
                    va[lane] as u128 + vb[lane] as u128,
                    "w{width} lane {lane}"
                );
            }
        }
    }

    #[test]
    fn kogge_stone_has_log_depth() {
        let ripple = crate::arith::ripple_adder(32);
        let ks = kogge_stone_adder(32);
        assert!(
            ks.depth() < ripple.depth() / 2,
            "prefix adder must be much shallower: {} vs {}",
            ks.depth(),
            ripple.depth()
        );
    }

    #[test]
    fn booth_matches_multiplication() {
        let net = booth_multiplier(8);
        let mut rng = XorShift64::new(77);
        let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
        let vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
        let mut patterns = lanes_from_values(&va, 8);
        patterns.extend(lanes_from_values(&vb, 8));
        let out = net.simulate(&patterns);
        let vo = values_from_lanes(&out, 64);
        for lane in 0..64 {
            assert_eq!(
                vo[lane] & 0xFFFF,
                (va[lane] * vb[lane]) & 0xFFFF,
                "lane {lane}: {} * {}",
                va[lane],
                vb[lane]
            );
        }
    }

    #[test]
    fn comparator_matches() {
        let net = comparator(8);
        let mut rng = XorShift64::new(5);
        let va: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
        let mut vb: Vec<u64> = (0..64).map(|_| rng.next_u64() & 0xFF).collect();
        vb[0] = va[0]; // force at least one equal lane
        let mut patterns = lanes_from_values(&va, 8);
        patterns.extend(lanes_from_values(&vb, 8));
        let out = net.simulate(&patterns);
        for lane in 0..64 {
            let lt = out[0] >> lane & 1 == 1;
            let eq = out[1] >> lane & 1 == 1;
            let gt = out[2] >> lane & 1 == 1;
            assert_eq!(lt, va[lane] < vb[lane], "lt lane {lane}");
            assert_eq!(eq, va[lane] == vb[lane], "eq lane {lane}");
            assert_eq!(gt, va[lane] > vb[lane], "gt lane {lane}");
            assert_eq!(lt as u8 + eq as u8 + gt as u8, 1, "exactly one holds");
        }
    }
}
