//! Random-control and PLA-style generators: stand-ins for the
//! control-dominated MCNC benchmarks (`apex6`, `vda`, `misex3`, `seq`).
//!
//! The MCNC `.blif` distribution is not redistributable here, so each named
//! benchmark is replaced by a seeded pseudo-random circuit of the same
//! functional family and comparable interface/size (see DESIGN.md §3). The
//! generators are fully deterministic for a given seed.

use logic::{GateKind, Network, SignalId, XorShift64};

/// Configuration of a random two-level (PLA / SOP) circuit.
#[derive(Clone, Copy, Debug)]
pub struct SopConfig {
    /// Number of primary inputs.
    pub inputs: u32,
    /// Number of primary outputs.
    pub outputs: u32,
    /// Product terms per output.
    pub cubes_per_output: u32,
    /// Literals per product term.
    pub literals_per_cube: u32,
    /// PRNG seed.
    pub seed: u64,
}

/// Generates a random multi-output SOP network (AND plane + OR plane),
/// with cube sharing across outputs like a real PLA.
pub fn random_sop(config: SopConfig) -> Network {
    let mut net = Network::new(format!("sop_{}x{}", config.inputs, config.outputs));
    let mut rng = XorShift64::new(config.seed);
    let inputs: Vec<SignalId> = (0..config.inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect();
    // Literal pool: each input and its complement.
    let literals: Vec<SignalId> = inputs
        .iter()
        .flat_map(|&s| {
            let inv = net.add_gate(GateKind::Inv, vec![s]);
            [s, inv]
        })
        .collect();
    // Shared AND plane: a pool of cubes reused by multiple outputs.
    let pool_size = (config.outputs * config.cubes_per_output * 2 / 3).max(4);
    let mut cubes: Vec<SignalId> = Vec::with_capacity(pool_size as usize);
    for _ in 0..pool_size {
        let k = config.literals_per_cube.max(2);
        let mut lits: Vec<SignalId> = Vec::new();
        let mut used_vars: Vec<u64> = Vec::new();
        while lits.len() < k as usize && used_vars.len() < config.inputs as usize {
            let pick = rng.next_u64() % (literals.len() as u64);
            let var = pick / 2;
            if used_vars.contains(&var) {
                continue;
            }
            used_vars.push(var);
            lits.push(literals[pick as usize]);
        }
        cubes.push(net.add_gate(GateKind::And, lits));
    }
    // OR plane: each output picks a random subset of cubes.
    for o in 0..config.outputs {
        let mut picked: Vec<SignalId> = Vec::new();
        while picked.len() < config.cubes_per_output as usize {
            let c = cubes[(rng.next_u64() % cubes.len() as u64) as usize];
            if !picked.contains(&c) {
                picked.push(c);
            } else if picked.len() >= cubes.len() {
                break;
            }
        }
        let out = net.add_gate(GateKind::Or, picked);
        net.set_output(format!("o{o}"), out);
    }
    net
}

/// Configuration of a random multi-level control DAG.
#[derive(Clone, Copy, Debug)]
pub struct ControlConfig {
    /// Number of primary inputs.
    pub inputs: u32,
    /// Number of primary outputs.
    pub outputs: u32,
    /// Number of internal gates.
    pub gates: u32,
    /// PRNG seed.
    pub seed: u64,
}

/// Generates a random multi-level AND/OR/INV/MUX network, the shape of
/// `apex6`-style random control logic.
pub fn random_control(config: ControlConfig) -> Network {
    let mut net = Network::new(format!("ctrl_{}x{}", config.inputs, config.outputs));
    let mut rng = XorShift64::new(config.seed);
    let mut signals: Vec<SignalId> = (0..config.inputs)
        .map(|i| net.add_input(format!("i{i}")))
        .collect();
    for _ in 0..config.gates {
        let pick = |rng: &mut XorShift64, pool: &[SignalId]| {
            // Bias toward recent signals for a multi-level structure.
            let n = pool.len() as u64;
            let r = rng.next_u64() % (n * 2);
            let idx = if r < n {
                r
            } else {
                n - 1 - (r - n) % (n / 2 + 1)
            };
            pool[idx as usize % pool.len()]
        };
        let a = pick(&mut rng, &signals);
        let b = pick(&mut rng, &signals);
        let c = pick(&mut rng, &signals);
        let gate = match rng.next_u64() % 10 {
            0..=3 => {
                if a == b {
                    net.add_gate(GateKind::Inv, vec![a])
                } else {
                    net.add_gate(GateKind::And, vec![a, b])
                }
            }
            4..=7 => {
                if a == b {
                    net.add_gate(GateKind::Inv, vec![a])
                } else {
                    net.add_gate(GateKind::Or, vec![a, b])
                }
            }
            8 => net.add_gate(GateKind::Inv, vec![a]),
            _ => {
                if b == c {
                    net.add_gate(GateKind::Inv, vec![b])
                } else {
                    net.add_gate(GateKind::Mux, vec![a, b, c])
                }
            }
        };
        signals.push(gate);
    }
    // Outputs: the most recently created gates (deepest logic).
    let n = signals.len();
    for o in 0..config.outputs as usize {
        let s = signals[n - 1 - o % (config.gates as usize).max(1)];
        net.set_output(format!("o{o}"), s);
    }
    net
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sop_is_deterministic_for_a_seed() {
        let cfg = SopConfig {
            inputs: 10,
            outputs: 5,
            cubes_per_output: 6,
            literals_per_cube: 4,
            seed: 42,
        };
        let a = random_sop(cfg);
        let b = random_sop(cfg);
        let patterns: Vec<u64> = (0..10)
            .map(|i| 0x123456789abcdef0u64.rotate_left(i))
            .collect();
        assert_eq!(a.simulate(&patterns), b.simulate(&patterns));
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn sop_interface_matches_config() {
        let cfg = SopConfig {
            inputs: 17,
            outputs: 39,
            cubes_per_output: 8,
            literals_per_cube: 5,
            seed: 7,
        };
        let net = random_sop(cfg);
        assert_eq!(net.inputs().len(), 17);
        assert_eq!(net.outputs().len(), 39);
        let c = net.gate_counts();
        assert!(c.and > 0 && c.or == 39);
    }

    #[test]
    fn sop_outputs_are_nonconstant() {
        let cfg = SopConfig {
            inputs: 12,
            outputs: 8,
            cubes_per_output: 5,
            literals_per_cube: 4,
            seed: 3,
        };
        let net = random_sop(cfg);
        let mut rng = XorShift64::new(99);
        let mut any_zero = [false; 8];
        let mut any_one = vec![false; 8];
        for _ in 0..64 {
            let patterns: Vec<u64> = (0..12).map(|_| rng.next_u64()).collect();
            for (o, w) in net.simulate(&patterns).iter().enumerate() {
                if *w != u64::MAX {
                    any_zero[o] = true;
                }
                if *w != 0 {
                    any_one[o] = true;
                }
            }
        }
        let live = any_zero
            .iter()
            .zip(&any_one)
            .filter(|(z, o)| **z && **o)
            .count();
        assert!(
            live >= 6,
            "most SOP outputs should be non-constant, got {live}"
        );
    }

    #[test]
    fn control_dag_is_deterministic_and_sized() {
        let cfg = ControlConfig {
            inputs: 20,
            outputs: 10,
            gates: 200,
            seed: 5,
        };
        let a = random_control(cfg);
        let b = random_control(cfg);
        assert_eq!(a.len(), b.len());
        assert_eq!(a.inputs().len(), 20);
        assert_eq!(a.outputs().len(), 10);
        assert!(a.len() >= 200, "requested gate count present");
        let patterns: Vec<u64> = (0..20)
            .map(|i| (i as u64).wrapping_mul(0x9e3779b9))
            .collect();
        assert_eq!(a.simulate(&patterns), b.simulate(&patterns));
    }

    #[test]
    fn control_dag_has_depth() {
        let cfg = ControlConfig {
            inputs: 16,
            outputs: 8,
            gates: 300,
            seed: 11,
        };
        let net = random_control(cfg);
        assert!(
            net.depth() > 5,
            "multi-level structure expected, depth {}",
            net.depth()
        );
    }
}
