//! Benchmark circuit generators for the BDS-MAJ reproduction.
//!
//! The MCNC `.blif` distribution is not available offline, so each paper
//! benchmark is replaced by a structural generator of the same functional
//! family and comparable size (see DESIGN.md §3/§4): arithmetic datapaths
//! are generated exactly (multipliers, dividers, square root, ...) and
//! control benchmarks are seeded pseudo-random circuits with matched
//! interfaces.
//!
//! # Example
//!
//! The 17-benchmark suite is built once per process and shared as a
//! `&'static [Benchmark]` (safe to read from concurrent suite workers):
//!
//! ```
//! use circuits::suite::paper_suite;
//! let suite = paper_suite();
//! assert_eq!(suite.len(), 17);
//! ```

pub mod alu;
pub mod arith;
pub mod bus;
pub mod control;
pub mod crypto;
pub mod ecc;
pub mod extra;
pub mod suite;
