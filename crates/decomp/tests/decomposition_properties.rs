//! Property-based tests of the decomposition kernels: every step found on
//! a random function must recompose to the original, and the balanced XOR
//! split must satisfy its defining equation.

use bdd::{Manager, Ref};
use decomp::{find_decomposition, xor_decompose_balanced, Decomposition, SearchOptions};
use proptest::prelude::*;

const NVARS: u32 = 7;

#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Maj(Box<Expr>, Box<Expr>, Box<Expr>),
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(6, 96, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Maj(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

fn to_bdd(e: &Expr, m: &mut Manager) -> Ref {
    match e {
        Expr::Var(i) => m.var(*i),
        Expr::Not(x) => !to_bdd(x, m),
        Expr::And(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.and(x, y)
        }
        Expr::Or(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.or(x, y)
        }
        Expr::Xor(a, b) => {
            let (x, y) = (to_bdd(a, m), to_bdd(b, m));
            m.xor(x, y)
        }
        Expr::Maj(a, b, c) => {
            let (x, y, z) = (to_bdd(a, m), to_bdd(b, m), to_bdd(c, m));
            m.maj(x, y, z)
        }
    }
}

fn recompose(m: &mut Manager, d: &Decomposition) -> Ref {
    match *d {
        Decomposition::And { g, d } => m.and(g, d),
        Decomposition::Or { g, d } => m.or(g, d),
        Decomposition::Xnor { g, d } => m.xnor(g, d),
        Decomposition::Mux { var, hi, lo } => {
            let v = m.var(var.0);
            m.ite(v, hi, lo)
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn every_found_decomposition_recomposes(e in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&e, &mut m);
        prop_assume!(!f.is_const());
        let d = find_decomposition(&mut m, f, &SearchOptions::default());
        let back = recompose(&mut m, &d);
        prop_assert_eq!(back, f, "decomposition {:?} of {:?} is invalid", d, f);
    }

    #[test]
    fn non_mux_decompositions_shrink_both_parts(e in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&e, &mut m);
        prop_assume!(!f.is_const());
        let fsize = m.size(f);
        let d = find_decomposition(&mut m, f, &SearchOptions::default());
        if !matches!(d, Decomposition::Mux { .. }) {
            let (g, divisor) = d.parts();
            prop_assert!(m.size(g) < fsize, "residual must shrink");
            prop_assert!(m.size(divisor) < fsize, "divisor must shrink");
        }
    }

    #[test]
    fn xor_split_satisfies_defining_equation(e in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let fx = to_bdd(&e, &mut m);
        let (mp, kp) = xor_decompose_balanced(&mut m, fx, &SearchOptions::default());
        let back = m.xor(mp, kp);
        prop_assert_eq!(back, fx, "M ⊕ K must equal Fx");
    }

    #[test]
    fn mux_fallback_always_valid(e in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = to_bdd(&e, &mut m);
        prop_assume!(!f.is_const());
        let d = decomp::mux_fallback(&mut m, f);
        let back = recompose(&mut m, &d);
        prop_assert_eq!(back, f);
    }
}
