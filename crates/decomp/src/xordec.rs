//! Balanced XOR decomposition: split a function `fx` into `(M, K)` with
//! `fx = M ⊕ K`, preferring splits whose two halves have similar BDD size.
//!
//! This is the BDS core technique reused by the majority-balancing step of
//! BDS-MAJ (§III-D): given `fx = X ⊕ Y`, a balanced `(M, K)` pair rewrites
//! the couple `(X, Y)` into smaller functions.

use crate::dominators::SearchOptions;
use bdd::{Manager, Ref};

/// Splits `fx` into `(m_part, k_part)` with `fx = m_part ⊕ k_part`.
///
/// The search walks the x-dominator candidates of `fx` (functional check
/// `F0 = F1'`) and picks the split minimizing `max(|M|, |K|)`. When no
/// x-dominator exists, the split falls back to Shannon cofactoring on the
/// top variable, `fx = v ⊕ (v ⊕ fx)` being rejected in favour of the
/// trivial `(fx, 0)` when it would not reduce the balance.
pub fn xor_decompose_balanced(m: &mut Manager, fx: Ref, options: &SearchOptions) -> (Ref, Ref) {
    let trivial = (fx, Ref::ZERO);
    let fsize = m.size(fx);
    if fsize <= 1 {
        return trivial;
    }
    let mut best = trivial;
    let mut best_score = fsize; // the trivial split scores |fx|
    if fsize <= options.max_bdd_size {
        let stats = m.node_stats(fx);
        let mut candidates: Vec<_> = stats.nodes().to_vec();
        candidates.sort_by_key(|&id| std::cmp::Reverse(stats.in_degree(id).total()));
        candidates.truncate(options.max_candidates);
        for id in candidates {
            if id == fx.node() {
                continue;
            }
            let f1 = m.replace_node_with_const(fx, id, true);
            let f0 = m.replace_node_with_const(fx, id, false);
            if f0 != !f1 {
                continue;
            }
            // fx = f_d ⊙ F1 = f_d ⊕ F1'.
            let k = m.function_of(id);
            let m_part = !f1;
            let score = m.size(k).max(m.size(m_part));
            if score < best_score {
                best_score = score;
                best = (m_part, k);
            }
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_recomposes() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..6).map(|i| m.var(i)).collect();
        let a01 = m.and(vars[0], vars[1]);
        let a23 = m.and(vars[2], vars[3]);
        let x45 = m.xor(vars[4], vars[5]);
        let part = m.xor(a01, a23);
        let fx = m.xor(part, x45);
        let (mp, kp) = xor_decompose_balanced(&mut m, fx, &SearchOptions::default());
        let back = m.xor(mp, kp);
        assert_eq!(back, fx);
    }

    #[test]
    fn parity_splits_nontrivially() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let fx = m.xor_all(vars);
        let (mp, kp) = xor_decompose_balanced(&mut m, fx, &SearchOptions::default());
        assert!(!kp.is_zero(), "parity must split");
        let back = m.xor(mp, kp);
        assert_eq!(back, fx);
        // Balance: both halves well below the original 8 nodes.
        assert!(m.size(mp).max(m.size(kp)) < m.size(fx));
    }

    #[test]
    fn b_xor_c_splits_into_literals() {
        // The paper's running example: (b+c) ⊕ (bc) = b ⊕ c, which the
        // XOR decomposition must split into the two literals.
        let mut m = Manager::new();
        let b = m.var(1);
        let c = m.var(2);
        let or = m.or(b, c);
        let and = m.and(b, c);
        let fx = m.xor(or, and);
        let expected = m.xor(b, c);
        assert_eq!(fx, expected, "sanity: (b+c)⊕(bc) = b⊕c");
        let (mp, kp) = xor_decompose_balanced(&mut m, fx, &SearchOptions::default());
        let back = m.xor(mp, kp);
        assert_eq!(back, fx);
        assert_eq!(m.size(mp), 1, "one literal per side");
        assert_eq!(m.size(kp), 1, "one literal per side");
    }

    #[test]
    fn constant_and_literal_are_trivial() {
        let mut m = Manager::new();
        let a = m.var(0);
        assert_eq!(
            xor_decompose_balanced(&mut m, Ref::ONE, &SearchOptions::default()),
            (Ref::ONE, Ref::ZERO)
        );
        assert_eq!(
            xor_decompose_balanced(&mut m, a, &SearchOptions::default()),
            (a, Ref::ZERO)
        );
    }
}
