//! Factoring-tree emission: turns decomposition results into [`Network`]
//! gates with *online logic sharing*.
//!
//! BDS stores decomposition results in factoring trees and detects sharing
//! during construction; BDD canonicity makes the detection a table lookup.
//! Here the same effect is obtained with two layers of memoization: a
//! per-supernode map from BDD [`Ref`]s to emitted signals, and a global
//! structural-hash table so identical gates are reused across factoring
//! trees.

use bdd::{BuildFxHasher, Manager, Ref};
use logic::{strash_key, GateKind, Network, SignalId};
use std::collections::HashMap;

/// Emits gates into a [`Network`] with structural hashing (keys are the
/// allocation-free fixed-arity arrays built by [`logic::strash_key`]).
#[derive(Debug, Default)]
pub struct Emitter {
    strash: HashMap<(u8, [SignalId; 3]), SignalId, BuildFxHasher>,
    consts: HashMap<bool, SignalId>,
}

fn kind_code(kind: &GateKind) -> u8 {
    match kind {
        GateKind::Inv => 1,
        GateKind::And => 2,
        GateKind::Or => 3,
        GateKind::Xor => 4,
        GateKind::Xnor => 5,
        GateKind::Maj => 6,
        GateKind::Mux => 7,
        _ => 0,
    }
}

impl Emitter {
    /// Creates an emitter with empty hash tables.
    pub fn new() -> Emitter {
        Emitter::default()
    }

    /// Adds (or reuses) a gate. Commutative gates normalize their fanin
    /// order so equal functions hash equally.
    pub fn gate(
        &mut self,
        net: &mut Network,
        kind: GateKind,
        mut fanins: Vec<SignalId>,
    ) -> SignalId {
        match kind {
            GateKind::And | GateKind::Or | GateKind::Xor | GateKind::Xnor | GateKind::Maj => {
                fanins.sort();
            }
            _ => {}
        }
        // Local constant/identity simplifications.
        if let Some(s) = self.simplify(net, &kind, &fanins) {
            return s;
        }
        let key = strash_key(kind_code(&kind), &fanins);
        if let Some(key) = key {
            if let Some(&s) = self.strash.get(&key) {
                return s;
            }
        }
        let s = net.add_gate(kind, fanins);
        if let Some(key) = key {
            self.strash.insert(key, s);
        }
        s
    }

    /// Returns (or creates) the constant driver for `value`.
    pub fn constant(&mut self, net: &mut Network, value: bool) -> SignalId {
        if let Some(&s) = self.consts.get(&value) {
            return s;
        }
        let s = net.add_const(value);
        self.consts.insert(value, s);
        s
    }

    /// Inverter with double-negation elimination.
    pub fn invert(&mut self, net: &mut Network, s: SignalId) -> SignalId {
        if let GateKind::Inv = net.node(s).kind {
            return net.node(s).fanins[0];
        }
        if let GateKind::Const(b) = net.node(s).kind {
            let v = !b;
            return self.constant(net, v);
        }
        self.gate(net, GateKind::Inv, vec![s])
    }

    fn simplify(
        &mut self,
        net: &mut Network,
        kind: &GateKind,
        fanins: &[SignalId],
    ) -> Option<SignalId> {
        let value_of = |net: &Network, s: SignalId| match net.node(s).kind {
            GateKind::Const(b) => Some(b),
            _ => None,
        };
        match kind {
            GateKind::And | GateKind::Or => {
                let identity = matches!(kind, GateKind::And);
                if fanins.iter().any(|&f| value_of(net, f) == Some(!identity)) {
                    return Some(self.constant(net, !identity));
                }
                let live: Vec<SignalId> = fanins
                    .iter()
                    .copied()
                    .filter(|&f| value_of(net, f).is_none())
                    .collect();
                match live.len() {
                    0 => Some(self.constant(net, identity)),
                    1 => Some(live[0]),
                    2 if live[0] == live[1] => Some(live[0]),
                    _ if live.len() < fanins.len() => Some(self.gate(net, kind.clone(), live)),
                    _ => None,
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                if fanins.len() == 2 && fanins[0] == fanins[1] {
                    return Some(self.constant(net, matches!(kind, GateKind::Xnor)));
                }
                // Absorb input inverters into the gate polarity:
                // xnor(!a, b) = xor(a, b), xor(!a, b) = xnor(a, b).
                let mut odd = matches!(kind, GateKind::Xnor);
                let mut stripped: Vec<SignalId> = Vec::with_capacity(fanins.len());
                let mut changed = false;
                for &f in fanins {
                    if let GateKind::Inv = net.node(f).kind {
                        stripped.push(net.node(f).fanins[0]);
                        odd = !odd;
                        changed = true;
                    } else {
                        stripped.push(f);
                    }
                }
                if changed {
                    let new_kind = if odd { GateKind::Xnor } else { GateKind::Xor };
                    return Some(self.gate(net, new_kind, stripped));
                }
                None
            }
            GateKind::Mux => {
                let (s, t, e) = (fanins[0], fanins[1], fanins[2]);
                match value_of(net, s) {
                    Some(true) => Some(t),
                    Some(false) => Some(e),
                    None if t == e => Some(t),
                    None => None,
                }
            }
            GateKind::Maj => {
                let (a, b, c) = (fanins[0], fanins[1], fanins[2]);
                if a == b {
                    return Some(a);
                }
                if b == c {
                    return Some(b);
                }
                if a == c {
                    return Some(a);
                }
                None
            }
            _ => None,
        }
    }
}

/// Builds network signals for BDD functions of one supernode.
///
/// `var_signals[i]` is the network signal of BDD variable `i`. A map from
/// (possibly complemented) references to signals provides the
/// canonicity-based sharing inside the factoring tree.
#[derive(Debug)]
pub struct FunctionEmitter {
    var_signals: Vec<SignalId>,
    memo: HashMap<Ref, SignalId, BuildFxHasher>,
}

impl FunctionEmitter {
    /// Creates an emitter for a supernode whose BDD variable `i` is driven
    /// by `var_signals[i]`.
    pub fn new(var_signals: Vec<SignalId>) -> FunctionEmitter {
        FunctionEmitter {
            var_signals,
            memo: HashMap::default(),
        }
    }

    /// Signal driving BDD variable `index`.
    ///
    /// # Panics
    ///
    /// Panics if the variable is not mapped.
    pub fn var_signal(&self, index: u32) -> SignalId {
        self.var_signals[index as usize]
    }

    /// Looks up a memoized emission.
    pub fn get(&self, f: Ref) -> Option<SignalId> {
        self.memo.get(&f).copied()
    }

    /// Records the signal implementing `f` (and its complement's inverter
    /// when already present).
    pub fn insert(&mut self, f: Ref, s: SignalId) {
        self.memo.insert(f, s);
    }

    /// Emits (or reuses) the literal / constant base cases; returns `None`
    /// for functions that need real decomposition.
    pub fn emit_base(
        &mut self,
        m: &Manager,
        emitter: &mut Emitter,
        net: &mut Network,
        f: Ref,
    ) -> Option<SignalId> {
        if let Some(s) = self.get(f) {
            return Some(s);
        }
        if f.is_const() {
            let s = emitter.constant(net, f.is_one());
            self.insert(f, s);
            return Some(s);
        }
        let node = m.node(f.node());
        if node.low.is_const() && node.high.is_const() {
            // A single node over one variable: the literal v or !v.
            let var = m.top_var(f).expect("non-constant");
            let base = self.var_signal(var.0);
            let positive = m.eval_literal(f);
            let s = if positive {
                base
            } else {
                emitter.invert(net, base)
            };
            self.insert(f, s);
            return Some(s);
        }
        None
    }
}

/// Manager extension used by the emitter for single-node functions.
trait LiteralPolarity {
    /// For a single-node function, whether it is the positive literal.
    fn eval_literal(&self, f: Ref) -> bool;
}

impl LiteralPolarity for Manager {
    fn eval_literal(&self, f: Ref) -> bool {
        // A size-1 BDD is var (low=0, high=1) possibly complemented.
        let node = self.node(f.node());
        let positive_stored = node.low.is_zero() && node.high.is_one();
        debug_assert!(
            positive_stored,
            "canonical single-variable node must be the positive literal"
        );
        !f.is_complemented()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strash_reuses_equal_gates() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let mut e = Emitter::new();
        let g1 = e.gate(&mut net, GateKind::And, vec![a, b]);
        let g2 = e.gate(&mut net, GateKind::And, vec![b, a]);
        assert_eq!(g1, g2, "commutative gates must hash equally");
        let g3 = e.gate(&mut net, GateKind::Or, vec![a, b]);
        assert_ne!(g1, g3);
    }

    #[test]
    fn constants_are_shared_and_folded() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let mut e = Emitter::new();
        let one = e.constant(&mut net, true);
        let and = e.gate(&mut net, GateKind::And, vec![a, one]);
        assert_eq!(and, a, "and with true folds away");
        let or = e.gate(&mut net, GateKind::Or, vec![a, one]);
        assert_eq!(or, one, "or with true is true");
        assert_eq!(e.constant(&mut net, true), one);
    }

    #[test]
    fn invert_cancels() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let mut e = Emitter::new();
        let na = e.invert(&mut net, a);
        let nna = e.invert(&mut net, na);
        assert_eq!(nna, a);
    }

    #[test]
    fn function_emitter_handles_literals() {
        let mut m = Manager::new();
        let f = m.var(0);
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let mut e = Emitter::new();
        let mut fe = FunctionEmitter::new(vec![a]);
        let s = fe.emit_base(&m, &mut e, &mut net, f).expect("literal");
        assert_eq!(s, a);
        let ns = fe.emit_base(&m, &mut e, &mut net, !f).expect("neg literal");
        assert!(matches!(net.node(ns).kind, GateKind::Inv));
        // Memoized on second ask.
        assert_eq!(fe.emit_base(&m, &mut e, &mut net, !f), Some(ns));
    }

    #[test]
    fn wide_gates_skip_strash_but_still_emit() {
        let mut net = Network::new("t");
        let ins: Vec<SignalId> = (0..5).map(|i| net.add_input(format!("i{i}"))).collect();
        let mut e = Emitter::new();
        let g1 = e.gate(&mut net, GateKind::And, ins.clone());
        let g2 = e.gate(&mut net, GateKind::And, ins.clone());
        // Wide gates fall outside the fixed-arity strash: emitted twice,
        // but both are valid AND gates over the same fanins.
        assert!(matches!(net.node(g1).kind, GateKind::And));
        assert!(matches!(net.node(g2).kind, GateKind::And));
        assert_eq!(net.node(g1).fanins.len(), 5);
    }

    #[test]
    fn maj_duplicate_inputs_simplify() {
        let mut net = Network::new("t");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let mut e = Emitter::new();
        let g = e.gate(&mut net, GateKind::Maj, vec![a, a, b]);
        assert_eq!(g, a, "Maj(a,a,b) = a");
    }
}
