//! The BDS decomposition engine: the recursive driver that turns a
//! partitioned network of supernode BDDs into a decomposed logic network.
//!
//! The engine itself knows the BDS repertoire (AND / OR / XNOR dominators
//! and the MUX fallback). Majority decomposition plugs in through the
//! [`MajorityHook`] trait, implemented by the `bdsmaj` core crate — this is
//! exactly how the paper layers BDS-MAJ on top of the BDS-PGA engine
//! (§IV-B: "We embed our majority decomposition method on top of the
//! dominator nodes search").

use crate::dominators::{try_find_decomposition, Decomposition, SearchOptions};
use crate::emit::{Emitter, FunctionEmitter};
use bdd::{LimitExceeded, Manager, Ref, ResourceLimits};
use logic::{partition_with_limits, GateKind, Network, PartitionConfig, SignalId};
use std::collections::HashMap;
use std::time::Instant;

/// Pluggable majority decomposition: given `f`, return `[Fa, Fb, Fc]` with
/// `f = Maj(Fa, Fb, Fc)`, or `None` to let the standard dominator search
/// proceed.
pub trait MajorityHook {
    /// Attempts a majority decomposition of `f`.
    fn try_majority(&mut self, m: &mut Manager, f: Ref) -> Option<[Ref; 3]>;
}

/// The hook used by plain BDS / BDS-PGA: never decomposes through MAJ.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMajority;

impl MajorityHook for NoMajority {
    fn try_majority(&mut self, _m: &mut Manager, _f: Ref) -> Option<[Ref; 3]> {
        None
    }
}

/// Which variable-reordering machinery runs on each supernode BDD before
/// decomposition (§IV-B: "it performs variable reordering to compact the
/// size of the input BDD"). All policies are *in place* — the supernode's
/// `Ref` and its variable-to-signal binding survive unchanged; only the
/// manager's level order moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderPolicy {
    /// Keep the static DFS-discovery order from the partition.
    None,
    /// Sliding window-permutation search (`bdd::window_reorder`).
    Window,
    /// Rudell sifting (`bdd::sift_reorder` per cone, plus the manager's
    /// threshold-gated `maybe_sift` at the engine's quiescent points).
    Sift,
    /// Converging sift (`bdd::sift_converge_reorder` per cone:
    /// budget-relaxed passes with symmetric-group sifting repeated to a
    /// fixpoint; `maybe_sift` is armed with the same fixpoint options).
    SiftConverge,
}

impl ReorderPolicy {
    /// Parses the `--reorder {none,window,sift,sift-converge}`
    /// command-line spelling.
    pub fn from_flag(s: &str) -> Option<ReorderPolicy> {
        match s {
            "none" => Some(ReorderPolicy::None),
            "window" => Some(ReorderPolicy::Window),
            "sift" => Some(ReorderPolicy::Sift),
            "sift-converge" => Some(ReorderPolicy::SiftConverge),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Debug)]
pub struct EngineOptions {
    /// Network partitioning bounds.
    pub partition: PartitionConfig,
    /// Dominator search bounds.
    pub search: SearchOptions,
    /// Expand MUX fallbacks into AND/OR/INV gates (the paper's node
    /// accounting has no MUX column; BDS reports muxes as AND/OR logic).
    pub expand_mux: bool,
    /// Per-supernode reordering policy.
    pub reorder: ReorderPolicy,
    /// Window size for [`ReorderPolicy::Window`] (`< 2` disables).
    pub reorder_window: usize,
    /// Skip per-cone reordering for supernode BDDs larger than this (the
    /// search cost grows with BDD size).
    pub reorder_size_limit: usize,
    /// Skip per-cone reordering below this size: in-place searches move
    /// the *shared* level order, so tiny cones pay global swap cost for
    /// node counts that cannot meaningfully shrink.
    pub reorder_min_size: usize,
    /// Per-cone resource budget for both the partition's cone builds and
    /// the decomposition recursion (the step counter resets per cone; a
    /// deadline is absolute, bounding the whole run). All-`None` (the
    /// default) runs unbudgeted. A cone that blows the budget degrades
    /// gracefully: its original gates are copied un-decomposed and the
    /// outcome lands in [`FlowReport`].
    pub limits: ResourceLimits,
    /// After a budget abort, sift the cone's BDD and retry the
    /// decomposition once before degrading (a smaller BDD often fits the
    /// same budget).
    pub retry_after_sift: bool,
    /// Thread permits for intra-cone parallelism. Installed into the
    /// run's manager ([`bdd::Manager::set_job_budget`]) before any cone
    /// is built, so large unbudgeted cones fork their apply across the
    /// permits (`bdd::Manager::par_and` and friends). `None` (the
    /// default) keeps every build on the exact sequential path. The
    /// budget is shared and machine-wide: a suite runner hands every
    /// task the same budget, so nested parallelism never oversubscribes
    /// the `--jobs` cap.
    pub job_budget: Option<bdd::JobBudget>,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            partition: PartitionConfig::default(),
            search: SearchOptions::default(),
            expand_mux: true,
            reorder: ReorderPolicy::Window,
            reorder_window: 3,
            reorder_size_limit: 400,
            reorder_min_size: 0,
            limits: ResourceLimits::default(),
            retry_after_sift: true,
            job_budget: None,
        }
    }
}

/// Outcome of one supernode cone under the engine's resource budget.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ConeStatus {
    /// Decomposed within budget on the first attempt.
    Ok,
    /// The first attempt blew the budget; a sift + retry succeeded.
    RetriedOk,
    /// Budget exceeded: the cone's original gates were copied verbatim
    /// (functionally correct, just not decomposed).
    Degraded,
}

/// Per-cone status of a [`decompose_network`] run — how much of the
/// network was actually decomposed versus carried through un-decomposed
/// under resource pressure.
#[derive(Clone, Debug, Default)]
pub struct FlowReport {
    /// One entry per supernode cone: root signal name and its outcome.
    pub cones: Vec<(String, ConeStatus)>,
}

impl FlowReport {
    /// Cones decomposed within budget (first try or after retry).
    pub fn ok_count(&self) -> usize {
        self.cones
            .iter()
            .filter(|(_, s)| *s != ConeStatus::Degraded)
            .count()
    }

    /// Cones that needed the sift + retry to fit the budget.
    pub fn retried_count(&self) -> usize {
        self.cones
            .iter()
            .filter(|(_, s)| *s == ConeStatus::RetriedOk)
            .count()
    }

    /// Cones that fell back to their original, un-decomposed gates.
    pub fn degraded_count(&self) -> usize {
        self.cones
            .iter()
            .filter(|(_, s)| *s == ConeStatus::Degraded)
            .count()
    }

    /// True when at least one cone degraded.
    pub fn is_degraded(&self) -> bool {
        self.degraded_count() > 0
    }
}

/// Outcome of decomposing a whole network.
#[derive(Clone, Debug)]
pub struct DecomposeResult {
    /// The decomposed network (AND/OR/XOR/XNOR/MAJ/MUX/INV over the PIs).
    pub network: Network,
    /// Wall-clock runtime of the decomposition (excluding parsing etc.).
    pub runtime: std::time::Duration,
    /// Per-cone budget outcomes (all `Ok` when running unbudgeted).
    pub report: FlowReport,
}

/// Decomposes every supernode of `net` with the BDS engine, calling `hook`
/// first at each recursion step (the BDS-MAJ layering).
///
/// The result is a functionally equivalent network over the same primary
/// inputs/outputs, built from two-input AND/OR/XNOR gates, MAJ-3, MUX and
/// inverters, with sharing across factoring trees.
///
/// Memory-wise the flow is bounded: the partition protects each supernode
/// function as a collection root, the engine releases it once the
/// supernode's gates are emitted, and the manager is offered a collection
/// between supernodes — so the arena tracks the largest live working set
/// instead of accumulating every intermediate of the whole run.
// bdslint: allow(protect-release) -- releases roots protected by
// partition_with_limits: ownership transfers in with the Partition
pub fn decompose_network(
    net: &Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
) -> DecomposeResult {
    let start = Instant::now();
    // Pre-size the kernel's tables for the whole run: the partition pass
    // builds every supernode BDD into this one manager, so starting at the
    // default table size would pay a cascade of rehash doublings.
    let mut manager = Manager::with_capacity(
        (net.len() * 16).clamp(1 << 12, 1 << 20),
        bdd::DEFAULT_CACHE_BITS,
    );
    match options.reorder {
        // Arm the manager-global hook too: partition and this engine offer
        // `maybe_sift` at every quiescent point alongside `maybe_collect`.
        ReorderPolicy::Sift => {
            manager.set_sift_config(bdd::AutoSiftConfig {
                enabled: true,
                ..Default::default()
            });
        }
        ReorderPolicy::SiftConverge => {
            manager.set_sift_config(bdd::AutoSiftConfig {
                enabled: true,
                fixpoint: Some(bdd::ConvergeConfig::default()),
                ..Default::default()
            });
        }
        ReorderPolicy::None | ReorderPolicy::Window => {}
    }
    // Install the thread budget before the partition pass: the cone
    // builds it runs are the largest applies of the whole flow, exactly
    // where intra-cone forking pays.
    manager.set_job_budget(options.job_budget.clone());
    let part = partition_with_limits(net, &mut manager, options.partition, options.limits);
    let governed = options.limits.is_limited();

    let mut out = Network::new(net.name().to_string());
    let mut emitter = Emitter::new();
    let mut report = FlowReport::default();
    let mut signal_map: HashMap<SignalId, SignalId> = HashMap::new();
    for &pi in net.inputs() {
        let new = out.add_input(net.signal_name(pi));
        signal_map.insert(pi, new);
    }
    for sn in &part.supernodes {
        if sn.degraded {
            // The partition could not even build this cone's BDD under
            // budget: carry the original gates through verbatim.
            copy_original_cone(net, &mut out, &mut signal_map, sn.root);
            report
                .cones
                .push((net.signal_name(sn.root), ConeStatus::Degraded));
            continue;
        }
        let var_signals: Vec<SignalId> = sn.inputs.iter().map(|s| signal_map[s]).collect();
        let function = sn.function;
        // Per-supernode reordering pass (BDS §IV-B). Reordering is in
        // place on the shared level maps: the cone's `Ref` and its
        // variable-to-signal binding are untouched, only node counts move.
        let cone_size = manager.size(function);
        if var_signals.len() >= 3
            && cone_size >= options.reorder_min_size
            && cone_size <= options.reorder_size_limit
        {
            match options.reorder {
                ReorderPolicy::None => {}
                ReorderPolicy::Window => {
                    if options.reorder_window >= 2 {
                        bdd::window_reorder(&mut manager, function, options.reorder_window, 4);
                    }
                }
                ReorderPolicy::Sift => {
                    bdd::sift_reorder(&mut manager, function, &bdd::SiftConfig::default());
                }
                ReorderPolicy::SiftConverge => {
                    bdd::sift_converge_reorder(
                        &mut manager,
                        function,
                        &bdd::ConvergeConfig::default(),
                    );
                }
            }
        }
        // The function under decomposition is the iteration's root;
        // everything decompose_function creates below it is transient and
        // reclaimable once the supernode is emitted.
        manager.protect(function);
        let mut status = ConeStatus::Ok;
        if governed {
            manager.set_limits(options.limits); // fresh step budget per cone
        }
        let mut attempt = {
            let mut fe = FunctionEmitter::new(var_signals.clone());
            let r = try_decompose_function(
                &mut manager,
                function,
                &mut fe,
                &mut emitter,
                &mut out,
                options,
                hook,
                0,
            );
            // fe's Ref-keyed memo must not outlive a collection.
            drop(fe);
            r
        };
        if attempt.is_err() && options.retry_after_sift {
            // Reclaim the aborted attempt's garbage, shrink the cone, and
            // retry once with a fresh budget. Any gates the first attempt
            // emitted stay valid (the emitter's strash may even reuse
            // them); unreachable ones are dropped by the final clean.
            manager.clear_limits();
            manager.collect();
            bdd::sift_reorder(&mut manager, function, &bdd::SiftConfig::default());
            manager.set_limits(options.limits);
            let mut fe = FunctionEmitter::new(var_signals.clone());
            attempt = try_decompose_function(
                &mut manager,
                function,
                &mut fe,
                &mut emitter,
                &mut out,
                options,
                hook,
                0,
            );
            drop(fe);
            if attempt.is_ok() {
                status = ConeStatus::RetriedOk;
            }
        }
        if governed {
            manager.clear_limits();
        }
        match attempt {
            Ok(sig) => {
                signal_map.insert(sn.root, sig);
            }
            Err(_) => {
                // Graceful degradation: reclaim the aborted garbage and
                // copy the original cone's gates through un-decomposed.
                status = ConeStatus::Degraded;
                manager.collect();
                copy_original_cone(net, &mut out, &mut signal_map, sn.root);
            }
        }
        report.cones.push((net.signal_name(sn.root), status));
        manager.release(function); // the engine's claim from above
                                   // The partition's claim on this supernode is done too: its gates
                                   // are emitted, and later supernodes reference *signals*, not Refs.
        manager.release(sn.function);
        // Quiescent point: every live function is a protected root, so
        // offer dynamic reordering (no-op unless armed) and then let the
        // collector recycle decomposition garbage plus whatever nodes the
        // sift displaced.
        manager.maybe_sift();
        manager.maybe_collect();
    }
    for (name, s) in net.outputs() {
        out.set_output(name.clone(), signal_map[s]);
    }
    let network = out.cleaned();
    DecomposeResult {
        network,
        runtime: start.elapsed(),
        report,
    }
}

/// The graceful-degradation fallback: copies the original network's gates
/// for the cone rooted at `root` into `out` verbatim, stopping at signals
/// already mapped (primary inputs and previously finished supernode
/// roots — the partition emits supernodes in topological order, so every
/// boundary signal below `root` is mapped by the time this runs).
/// Iterative so a deep un-decomposed cone cannot blow the native stack.
fn copy_original_cone(
    net: &Network,
    out: &mut Network,
    signal_map: &mut HashMap<SignalId, SignalId>,
    root: SignalId,
) -> SignalId {
    let mut stack = vec![(root, false)];
    while let Some((id, expanded)) = stack.pop() {
        if signal_map.contains_key(&id) {
            continue;
        }
        let node = net.node(id);
        if expanded {
            let fanins: Vec<SignalId> = node.fanins.iter().map(|f| signal_map[f]).collect();
            let new = out.add_gate(node.kind.clone(), fanins);
            signal_map.insert(id, new);
        } else {
            stack.push((id, true));
            for &f in node.fanins.iter().rev() {
                if !signal_map.contains_key(&f) {
                    stack.push((f, false));
                }
            }
        }
    }
    signal_map[&root]
}

/// Recursion depth guard: decomposition strictly shrinks functions, so this
/// is only a defensive bound.
const MAX_DEPTH: usize = 512;

/// Recursively decomposes `f` and emits its gates; returns the signal
/// implementing `f`.
#[allow(clippy::too_many_arguments)]
pub fn decompose_function(
    m: &mut Manager,
    f: Ref,
    fe: &mut FunctionEmitter,
    emitter: &mut Emitter,
    net: &mut Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
    depth: usize,
) -> SignalId {
    m.ungoverned(|m| try_decompose_function(m, f, fe, emitter, net, options, hook, depth))
}

/// Budget-governed [`decompose_function`]: aborts with [`LimitExceeded`]
/// when the manager's installed [`ResourceLimits`] are crossed. Gates
/// already emitted for finished subfunctions stay in `net` (they are
/// valid, possibly shared logic); if the whole cone is then abandoned,
/// the caller's final [`Network::cleaned`] drops the unreachable ones.
#[allow(clippy::too_many_arguments)]
pub fn try_decompose_function(
    m: &mut Manager,
    f: Ref,
    fe: &mut FunctionEmitter,
    emitter: &mut Emitter,
    net: &mut Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
    depth: usize,
) -> Result<SignalId, LimitExceeded> {
    if let Some(s) = fe.emit_base(m, emitter, net, f) {
        return Ok(s);
    }
    if depth >= MAX_DEPTH {
        // Defensive fallback: emit by Shannon expansion without search.
        let d = crate::dominators::try_mux_fallback(m, f)?;
        return try_emit_step(m, f, d, fe, emitter, net, options, hook, depth);
    }
    // (1) Majority decomposition, if the hook accepts the function.
    if let Some([fa, fb, fc]) = hook.try_majority(m, f) {
        debug_assert_eq!(m.maj(fa, fb, fc), f, "hook must return a valid MAJ split");
        let sa = try_decompose_function(m, fa, fe, emitter, net, options, hook, depth + 1)?;
        let sb = try_decompose_function(m, fb, fe, emitter, net, options, hook, depth + 1)?;
        let sc = try_decompose_function(m, fc, fe, emitter, net, options, hook, depth + 1)?;
        let s = emitter.gate(net, GateKind::Maj, vec![sa, sb, sc]);
        fe.insert(f, s);
        return Ok(s);
    }
    // (2) Standard dominator search, MUX as last resort.
    let d = try_find_decomposition(m, f, &options.search)?;
    try_emit_step(m, f, d, fe, emitter, net, options, hook, depth)
}

#[allow(clippy::too_many_arguments)]
fn try_emit_step(
    m: &mut Manager,
    f: Ref,
    d: Decomposition,
    fe: &mut FunctionEmitter,
    emitter: &mut Emitter,
    net: &mut Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
    depth: usize,
) -> Result<SignalId, LimitExceeded> {
    let s = match d {
        Decomposition::And { g, d } => {
            let sg = try_decompose_function(m, g, fe, emitter, net, options, hook, depth + 1)?;
            let sd = try_decompose_function(m, d, fe, emitter, net, options, hook, depth + 1)?;
            emitter.gate(net, GateKind::And, vec![sg, sd])
        }
        Decomposition::Or { g, d } => {
            let sg = try_decompose_function(m, g, fe, emitter, net, options, hook, depth + 1)?;
            let sd = try_decompose_function(m, d, fe, emitter, net, options, hook, depth + 1)?;
            emitter.gate(net, GateKind::Or, vec![sg, sd])
        }
        Decomposition::Xnor { g, d } => {
            let sg = try_decompose_function(m, g, fe, emitter, net, options, hook, depth + 1)?;
            let sd = try_decompose_function(m, d, fe, emitter, net, options, hook, depth + 1)?;
            emitter.gate(net, GateKind::Xnor, vec![sg, sd])
        }
        Decomposition::Mux { var, hi, lo } => {
            let sv = fe.var_signal(var.0);
            let sh = try_decompose_function(m, hi, fe, emitter, net, options, hook, depth + 1)?;
            let sl = try_decompose_function(m, lo, fe, emitter, net, options, hook, depth + 1)?;
            if options.expand_mux {
                let t1 = emitter.gate(net, GateKind::And, vec![sv, sh]);
                let nv = emitter.invert(net, sv);
                let t2 = emitter.gate(net, GateKind::And, vec![nv, sl]);
                emitter.gate(net, GateKind::Or, vec![t1, t2])
            } else {
                emitter.gate(net, GateKind::Mux, vec![sv, sh, sl])
            }
        }
    };
    fe.insert(f, s);
    Ok(s)
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::equiv_sim;

    fn small_mixed_network() -> Network {
        let mut net = Network::new("mixed");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let o = net.add_gate(GateKind::Or, vec![c, d]);
        let m1 = net.add_gate(GateKind::Maj, vec![x, o, a]);
        let y = net.add_gate(GateKind::And, vec![m1, c]);
        net.set_output("y", y);
        net.set_output("x", x);
        net
    }

    #[test]
    fn decomposed_network_is_equivalent() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(
            equiv_sim(&net, &result.network, 16, 7),
            Ok(()),
            "BDS engine must preserve the function"
        );
    }

    #[test]
    fn no_majority_hook_emits_no_maj() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(result.network.gate_counts().maj, 0);
    }

    #[test]
    fn parity_network_decomposes_into_xor_chain() {
        let mut net = Network::new("parity");
        let bits: Vec<SignalId> = (0..8).map(|i| net.add_input(format!("i{i}"))).collect();
        let p = net.add_gate(GateKind::Xor, bits);
        net.set_output("p", p);
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 8, 3), Ok(()));
        let counts = result.network.gate_counts();
        assert!(
            counts.xor + counts.xnor >= 4,
            "parity must decompose through x-dominators: {counts:?}"
        );
        assert_eq!(counts.mux, 0, "no MUX needed for parity");
    }

    #[test]
    fn adder_decomposition_preserves_function() {
        let mut net = Network::new("add4");
        let a: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry: Option<SignalId> = None;
        for i in 0..4 {
            let (s, c) = match carry {
                None => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i]]);
                    let c = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    (s, c)
                }
                Some(cin) => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i], cin]);
                    let c = net.add_gate(GateKind::Maj, vec![a[i], b[i], cin]);
                    (s, c)
                }
            };
            net.set_output(format!("s{i}"), s);
            carry = Some(c);
        }
        net.set_output("cout", carry.unwrap());
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 16, 5), Ok(()));
    }

    #[test]
    fn runtime_is_reported() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        // Sanity: sub-second on a toy network; nonzero measurement type.
        assert!(result.runtime.as_secs() < 5);
    }

    #[test]
    fn constant_output_network() {
        let mut net = Network::new("c");
        let a = net.add_input("a");
        let na = net.add_gate(GateKind::Inv, vec![a]);
        let zero = net.add_gate(GateKind::And, vec![a, na]);
        net.set_output("z", zero);
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 4, 1), Ok(()));
    }

    #[test]
    fn unbudgeted_run_reports_all_cones_ok() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert!(!result.report.cones.is_empty());
        assert!(!result.report.is_degraded());
        assert_eq!(result.report.ok_count(), result.report.cones.len());
    }

    /// A wide parity cone under a starvation-level step budget must
    /// degrade gracefully: the report says so, and the output network is
    /// still functionally equivalent because the original gates were
    /// copied through verbatim.
    #[test]
    fn tiny_step_budget_degrades_but_stays_equivalent() {
        let mut net = Network::new("parity_budget");
        let bits: Vec<SignalId> = (0..10).map(|i| net.add_input(format!("i{i}"))).collect();
        let p = net.add_gate(GateKind::Xor, bits.clone());
        let q = net.add_gate(GateKind::And, bits);
        net.set_output("p", p);
        net.set_output("q", q);
        let options = EngineOptions {
            limits: ResourceLimits {
                max_steps: Some(2),
                ..ResourceLimits::default()
            },
            retry_after_sift: false,
            ..EngineOptions::default()
        };
        let result = decompose_network(&net, &options, &mut NoMajority);
        assert!(
            result.report.is_degraded(),
            "a 2-step budget cannot build a 10-input cone: {:?}",
            result.report
        );
        assert_eq!(
            equiv_sim(&net, &result.network, 64, 11),
            Ok(()),
            "degraded cones must carry the original logic through"
        );
    }

    /// A budget generous enough for the cones must leave the result
    /// identical to the unbudgeted run — governance is pay-per-abort.
    #[test]
    fn ample_budget_changes_nothing() {
        let net = small_mixed_network();
        let options = EngineOptions {
            limits: ResourceLimits {
                max_steps: Some(1_000_000),
                max_live_nodes: Some(1 << 20),
                ..ResourceLimits::default()
            },
            ..EngineOptions::default()
        };
        let budgeted = decompose_network(&net, &options, &mut NoMajority);
        let free = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert!(!budgeted.report.is_degraded());
        assert_eq!(
            budgeted.network.gate_counts(),
            free.network.gate_counts(),
            "an ample budget must not perturb the decomposition"
        );
        assert_eq!(equiv_sim(&net, &budgeted.network, 16, 7), Ok(()));
    }

    /// The retry path: when the budget is tight (but not hopeless) the
    /// engine may sift and retry; whatever the outcome, the function is
    /// preserved and every cone lands in the report.
    #[test]
    fn retry_after_sift_preserves_function() {
        let mut net = Network::new("add_budget");
        let a: Vec<SignalId> = (0..6).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<SignalId> = (0..6).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry: Option<SignalId> = None;
        for i in 0..6 {
            let (s, c) = match carry {
                None => (
                    net.add_gate(GateKind::Xor, vec![a[i], b[i]]),
                    net.add_gate(GateKind::And, vec![a[i], b[i]]),
                ),
                Some(cin) => (
                    net.add_gate(GateKind::Xor, vec![a[i], b[i], cin]),
                    net.add_gate(GateKind::Maj, vec![a[i], b[i], cin]),
                ),
            };
            net.set_output(format!("s{i}"), s);
            carry = Some(c);
        }
        net.set_output("cout", carry.unwrap());
        let options = EngineOptions {
            limits: ResourceLimits {
                max_steps: Some(40),
                ..ResourceLimits::default()
            },
            retry_after_sift: true,
            ..EngineOptions::default()
        };
        let result = decompose_network(&net, &options, &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 64, 13), Ok(()));
        assert_eq!(
            result.report.cones.len(),
            result.report.ok_count() + result.report.degraded_count()
        );
    }
}
