//! The BDS decomposition engine: the recursive driver that turns a
//! partitioned network of supernode BDDs into a decomposed logic network.
//!
//! The engine itself knows the BDS repertoire (AND / OR / XNOR dominators
//! and the MUX fallback). Majority decomposition plugs in through the
//! [`MajorityHook`] trait, implemented by the `bdsmaj` core crate — this is
//! exactly how the paper layers BDS-MAJ on top of the BDS-PGA engine
//! (§IV-B: "We embed our majority decomposition method on top of the
//! dominator nodes search").

use crate::dominators::{find_decomposition, Decomposition, SearchOptions};
use crate::emit::{Emitter, FunctionEmitter};
use bdd::{Manager, Ref};
use logic::{partition, GateKind, Network, PartitionConfig, SignalId};
use std::collections::HashMap;
use std::time::Instant;

/// Pluggable majority decomposition: given `f`, return `[Fa, Fb, Fc]` with
/// `f = Maj(Fa, Fb, Fc)`, or `None` to let the standard dominator search
/// proceed.
pub trait MajorityHook {
    /// Attempts a majority decomposition of `f`.
    fn try_majority(&mut self, m: &mut Manager, f: Ref) -> Option<[Ref; 3]>;
}

/// The hook used by plain BDS / BDS-PGA: never decomposes through MAJ.
#[derive(Clone, Copy, Debug, Default)]
pub struct NoMajority;

impl MajorityHook for NoMajority {
    fn try_majority(&mut self, _m: &mut Manager, _f: Ref) -> Option<[Ref; 3]> {
        None
    }
}

/// Which variable-reordering machinery runs on each supernode BDD before
/// decomposition (§IV-B: "it performs variable reordering to compact the
/// size of the input BDD"). All policies are *in place* — the supernode's
/// `Ref` and its variable-to-signal binding survive unchanged; only the
/// manager's level order moves.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReorderPolicy {
    /// Keep the static DFS-discovery order from the partition.
    None,
    /// Sliding window-permutation search (`bdd::window_reorder`).
    Window,
    /// Rudell sifting (`bdd::sift_reorder` per cone, plus the manager's
    /// threshold-gated `maybe_sift` at the engine's quiescent points).
    Sift,
    /// Converging sift (`bdd::sift_converge_reorder` per cone:
    /// budget-relaxed passes with symmetric-group sifting repeated to a
    /// fixpoint; `maybe_sift` is armed with the same fixpoint options).
    SiftConverge,
}

impl ReorderPolicy {
    /// Parses the `--reorder {none,window,sift,sift-converge}`
    /// command-line spelling.
    pub fn from_flag(s: &str) -> Option<ReorderPolicy> {
        match s {
            "none" => Some(ReorderPolicy::None),
            "window" => Some(ReorderPolicy::Window),
            "sift" => Some(ReorderPolicy::Sift),
            "sift-converge" => Some(ReorderPolicy::SiftConverge),
            _ => None,
        }
    }
}

/// Engine configuration.
#[derive(Clone, Copy, Debug)]
pub struct EngineOptions {
    /// Network partitioning bounds.
    pub partition: PartitionConfig,
    /// Dominator search bounds.
    pub search: SearchOptions,
    /// Expand MUX fallbacks into AND/OR/INV gates (the paper's node
    /// accounting has no MUX column; BDS reports muxes as AND/OR logic).
    pub expand_mux: bool,
    /// Per-supernode reordering policy.
    pub reorder: ReorderPolicy,
    /// Window size for [`ReorderPolicy::Window`] (`< 2` disables).
    pub reorder_window: usize,
    /// Skip per-cone reordering for supernode BDDs larger than this (the
    /// search cost grows with BDD size).
    pub reorder_size_limit: usize,
    /// Skip per-cone reordering below this size: in-place searches move
    /// the *shared* level order, so tiny cones pay global swap cost for
    /// node counts that cannot meaningfully shrink.
    pub reorder_min_size: usize,
}

impl Default for EngineOptions {
    fn default() -> Self {
        EngineOptions {
            partition: PartitionConfig::default(),
            search: SearchOptions::default(),
            expand_mux: true,
            reorder: ReorderPolicy::Window,
            reorder_window: 3,
            reorder_size_limit: 400,
            reorder_min_size: 0,
        }
    }
}

/// Outcome of decomposing a whole network.
#[derive(Clone, Debug)]
pub struct DecomposeResult {
    /// The decomposed network (AND/OR/XOR/XNOR/MAJ/MUX/INV over the PIs).
    pub network: Network,
    /// Wall-clock runtime of the decomposition (excluding parsing etc.).
    pub runtime: std::time::Duration,
}

/// Decomposes every supernode of `net` with the BDS engine, calling `hook`
/// first at each recursion step (the BDS-MAJ layering).
///
/// The result is a functionally equivalent network over the same primary
/// inputs/outputs, built from two-input AND/OR/XNOR gates, MAJ-3, MUX and
/// inverters, with sharing across factoring trees.
///
/// Memory-wise the flow is bounded: the partition protects each supernode
/// function as a collection root, the engine releases it once the
/// supernode's gates are emitted, and the manager is offered a collection
/// between supernodes — so the arena tracks the largest live working set
/// instead of accumulating every intermediate of the whole run.
pub fn decompose_network(
    net: &Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
) -> DecomposeResult {
    let start = Instant::now();
    // Pre-size the kernel's tables for the whole run: the partition pass
    // builds every supernode BDD into this one manager, so starting at the
    // default table size would pay a cascade of rehash doublings.
    let mut manager = Manager::with_capacity(
        (net.len() * 16).clamp(1 << 12, 1 << 20),
        bdd::DEFAULT_CACHE_BITS,
    );
    match options.reorder {
        // Arm the manager-global hook too: partition and this engine offer
        // `maybe_sift` at every quiescent point alongside `maybe_collect`.
        ReorderPolicy::Sift => {
            manager.set_sift_config(bdd::AutoSiftConfig {
                enabled: true,
                ..Default::default()
            });
        }
        ReorderPolicy::SiftConverge => {
            manager.set_sift_config(bdd::AutoSiftConfig {
                enabled: true,
                fixpoint: Some(bdd::ConvergeConfig::default()),
                ..Default::default()
            });
        }
        ReorderPolicy::None | ReorderPolicy::Window => {}
    }
    let part = partition(net, &mut manager, options.partition);

    let mut out = Network::new(net.name().to_string());
    let mut emitter = Emitter::new();
    let mut signal_map: HashMap<SignalId, SignalId> = HashMap::new();
    for &pi in net.inputs() {
        let new = out.add_input(net.signal_name(pi));
        signal_map.insert(pi, new);
    }
    for sn in &part.supernodes {
        let var_signals: Vec<SignalId> = sn.inputs.iter().map(|s| signal_map[s]).collect();
        let function = sn.function;
        // Per-supernode reordering pass (BDS §IV-B). Reordering is in
        // place on the shared level maps: the cone's `Ref` and its
        // variable-to-signal binding are untouched, only node counts move.
        let cone_size = manager.size(function);
        if var_signals.len() >= 3
            && cone_size >= options.reorder_min_size
            && cone_size <= options.reorder_size_limit
        {
            match options.reorder {
                ReorderPolicy::None => {}
                ReorderPolicy::Window => {
                    if options.reorder_window >= 2 {
                        bdd::window_reorder(&mut manager, function, options.reorder_window, 4);
                    }
                }
                ReorderPolicy::Sift => {
                    bdd::sift_reorder(&mut manager, function, &bdd::SiftConfig::default());
                }
                ReorderPolicy::SiftConverge => {
                    bdd::sift_converge_reorder(
                        &mut manager,
                        function,
                        &bdd::ConvergeConfig::default(),
                    );
                }
            }
        }
        // The function under decomposition is the iteration's root;
        // everything decompose_function creates below it is transient and
        // reclaimable once the supernode is emitted.
        manager.protect(function);
        let mut fe = FunctionEmitter::new(var_signals);
        let sig = decompose_function(
            &mut manager,
            function,
            &mut fe,
            &mut emitter,
            &mut out,
            options,
            hook,
            0,
        );
        signal_map.insert(sn.root, sig);
        manager.release(function); // the engine's claim from above
        // The partition's claim on this supernode is done too: its gates
        // are emitted, and later supernodes reference *signals*, not Refs.
        manager.release(sn.function);
        drop(fe); // fe's Ref-keyed memo must not outlive a collection
        // Quiescent point: every live function is a protected root, so
        // offer dynamic reordering (no-op unless armed) and then let the
        // collector recycle decomposition garbage plus whatever nodes the
        // sift displaced.
        manager.maybe_sift();
        manager.maybe_collect();
    }
    for (name, s) in net.outputs() {
        out.set_output(name.clone(), signal_map[s]);
    }
    let network = out.cleaned();
    DecomposeResult {
        network,
        runtime: start.elapsed(),
    }
}

/// Recursion depth guard: decomposition strictly shrinks functions, so this
/// is only a defensive bound.
const MAX_DEPTH: usize = 512;

/// Recursively decomposes `f` and emits its gates; returns the signal
/// implementing `f`.
#[allow(clippy::too_many_arguments)]
pub fn decompose_function(
    m: &mut Manager,
    f: Ref,
    fe: &mut FunctionEmitter,
    emitter: &mut Emitter,
    net: &mut Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
    depth: usize,
) -> SignalId {
    if let Some(s) = fe.emit_base(m, emitter, net, f) {
        return s;
    }
    if depth >= MAX_DEPTH {
        // Defensive fallback: emit by Shannon expansion without search.
        let d = crate::dominators::mux_fallback(m, f);
        return emit_step(m, f, d, fe, emitter, net, options, hook, depth);
    }
    // (1) Majority decomposition, if the hook accepts the function.
    if let Some([fa, fb, fc]) = hook.try_majority(m, f) {
        debug_assert_eq!(m.maj(fa, fb, fc), f, "hook must return a valid MAJ split");
        let sa = decompose_function(m, fa, fe, emitter, net, options, hook, depth + 1);
        let sb = decompose_function(m, fb, fe, emitter, net, options, hook, depth + 1);
        let sc = decompose_function(m, fc, fe, emitter, net, options, hook, depth + 1);
        let s = emitter.gate(net, GateKind::Maj, vec![sa, sb, sc]);
        fe.insert(f, s);
        return s;
    }
    // (2) Standard dominator search, MUX as last resort.
    let d = find_decomposition(m, f, &options.search);
    emit_step(m, f, d, fe, emitter, net, options, hook, depth)
}

#[allow(clippy::too_many_arguments)]
fn emit_step(
    m: &mut Manager,
    f: Ref,
    d: Decomposition,
    fe: &mut FunctionEmitter,
    emitter: &mut Emitter,
    net: &mut Network,
    options: &EngineOptions,
    hook: &mut dyn MajorityHook,
    depth: usize,
) -> SignalId {
    let s = match d {
        Decomposition::And { g, d } => {
            let sg = decompose_function(m, g, fe, emitter, net, options, hook, depth + 1);
            let sd = decompose_function(m, d, fe, emitter, net, options, hook, depth + 1);
            emitter.gate(net, GateKind::And, vec![sg, sd])
        }
        Decomposition::Or { g, d } => {
            let sg = decompose_function(m, g, fe, emitter, net, options, hook, depth + 1);
            let sd = decompose_function(m, d, fe, emitter, net, options, hook, depth + 1);
            emitter.gate(net, GateKind::Or, vec![sg, sd])
        }
        Decomposition::Xnor { g, d } => {
            let sg = decompose_function(m, g, fe, emitter, net, options, hook, depth + 1);
            let sd = decompose_function(m, d, fe, emitter, net, options, hook, depth + 1);
            emitter.gate(net, GateKind::Xnor, vec![sg, sd])
        }
        Decomposition::Mux { var, hi, lo } => {
            let sv = fe.var_signal(var.0);
            let sh = decompose_function(m, hi, fe, emitter, net, options, hook, depth + 1);
            let sl = decompose_function(m, lo, fe, emitter, net, options, hook, depth + 1);
            if options.expand_mux {
                let t1 = emitter.gate(net, GateKind::And, vec![sv, sh]);
                let nv = emitter.invert(net, sv);
                let t2 = emitter.gate(net, GateKind::And, vec![nv, sl]);
                emitter.gate(net, GateKind::Or, vec![t1, t2])
            } else {
                emitter.gate(net, GateKind::Mux, vec![sv, sh, sl])
            }
        }
    };
    fe.insert(f, s);
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use logic::equiv_sim;

    fn small_mixed_network() -> Network {
        let mut net = Network::new("mixed");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let o = net.add_gate(GateKind::Or, vec![c, d]);
        let m1 = net.add_gate(GateKind::Maj, vec![x, o, a]);
        let y = net.add_gate(GateKind::And, vec![m1, c]);
        net.set_output("y", y);
        net.set_output("x", x);
        net
    }

    #[test]
    fn decomposed_network_is_equivalent() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(
            equiv_sim(&net, &result.network, 16, 7),
            Ok(()),
            "BDS engine must preserve the function"
        );
    }

    #[test]
    fn no_majority_hook_emits_no_maj() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(result.network.gate_counts().maj, 0);
    }

    #[test]
    fn parity_network_decomposes_into_xor_chain() {
        let mut net = Network::new("parity");
        let bits: Vec<SignalId> = (0..8).map(|i| net.add_input(format!("i{i}"))).collect();
        let p = net.add_gate(GateKind::Xor, bits);
        net.set_output("p", p);
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 8, 3), Ok(()));
        let counts = result.network.gate_counts();
        assert!(
            counts.xor + counts.xnor >= 4,
            "parity must decompose through x-dominators: {counts:?}"
        );
        assert_eq!(counts.mux, 0, "no MUX needed for parity");
    }

    #[test]
    fn adder_decomposition_preserves_function() {
        let mut net = Network::new("add4");
        let a: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<SignalId> = (0..4).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry: Option<SignalId> = None;
        for i in 0..4 {
            let (s, c) = match carry {
                None => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i]]);
                    let c = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    (s, c)
                }
                Some(cin) => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i], cin]);
                    let c = net.add_gate(GateKind::Maj, vec![a[i], b[i], cin]);
                    (s, c)
                }
            };
            net.set_output(format!("s{i}"), s);
            carry = Some(c);
        }
        net.set_output("cout", carry.unwrap());
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 16, 5), Ok(()));
    }

    #[test]
    fn runtime_is_reported() {
        let net = small_mixed_network();
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        // Sanity: sub-second on a toy network; nonzero measurement type.
        assert!(result.runtime.as_secs() < 5);
    }

    #[test]
    fn constant_output_network() {
        let mut net = Network::new("c");
        let a = net.add_input("a");
        let na = net.add_gate(GateKind::Inv, vec![a]);
        let zero = net.add_gate(GateKind::And, vec![a, na]);
        net.set_output("z", zero);
        let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
        assert_eq!(equiv_sim(&net, &result.network, 4, 1), Ok(()));
    }
}
