//! The BDS decomposition engine: dominator-driven BDD decomposition with
//! factoring-tree emission, reimplementing the Yang–Ciesielski BDS core
//! that BDS-MAJ builds on.
//!
//! The engine exposes a [`MajorityHook`] so the `bdsmaj` crate can layer
//! the paper's majority decomposition on top of the standard dominator
//! search, exactly mirroring how the paper extends BDS-PGA.
//!
//! # Example
//!
//! ```
//! use logic::{Network, GateKind, equiv_sim};
//! use decomp::{decompose_network, EngineOptions, NoMajority};
//!
//! let mut net = Network::new("f");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let c = net.add_input("c");
//! let x = net.add_gate(GateKind::Xor, vec![a, b]);
//! let y = net.add_gate(GateKind::And, vec![x, c]);
//! net.set_output("y", y);
//!
//! let result = decompose_network(&net, &EngineOptions::default(), &mut NoMajority);
//! assert!(equiv_sim(&net, &result.network, 8, 1).is_ok());
//! ```

mod dominators;
mod emit;
mod engine;
mod xordec;

pub use dominators::{
    classify_dominator, find_decomposition, mux_fallback, try_classify_dominator,
    try_find_decomposition, try_mux_fallback, Decomposition, DominatorKind, SearchOptions,
};
pub use emit::{Emitter, FunctionEmitter};
pub use engine::{
    decompose_function, decompose_network, try_decompose_function, ConeStatus, DecomposeResult,
    EngineOptions, FlowReport, MajorityHook, NoMajority, ReorderPolicy,
};
pub use xordec::xor_decompose_balanced;
