//! Functional dominator detection on BDDs.
//!
//! BDS drives decomposition with *dominator* nodes. This module detects
//! them functionally: for an internal node `d` of the BDD of `f`, write
//! `f = F(z)` with `z` the output of `d` (see
//! [`bdd::Manager::replace_node_with_const`]). Then with `F1 = F(1)` and
//! `F0 = F(0)`:
//!
//! * `F0 = 0`   ⇒ `f = F1 · f_d`   — (generalized) **1-dominator**, AND;
//! * `F1 = 1`   ⇒ `f = F0 + f_d`   — (generalized) **0-dominator**, OR;
//! * `F0 = F1'` ⇒ `f = F1 ⊙ f_d`   — (generalized) **x-dominator**, XNOR.
//!
//! Structural 0-/1-/x-dominators in the sense of Yang–Ciesielski are the
//! disjoint special cases of these conditions; the functional check also
//! captures the "generalized dominators" that BDS uses for non-disjoint
//! decomposition.

use bdd::{LimitExceeded, Manager, NodeId, Ref, Var};

/// A two-operand decomposition step discovered on a BDD.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Decomposition {
    /// `f = g · d`.
    And { g: Ref, d: Ref },
    /// `f = g + d`.
    Or { g: Ref, d: Ref },
    /// `f = g ⊙ d` (XNOR).
    Xnor { g: Ref, d: Ref },
    /// Shannon cofactoring on the top variable: `f = ite(var, hi, lo)`.
    Mux { var: Var, hi: Ref, lo: Ref },
}

impl Decomposition {
    /// The two sub-functions this step recurses into.
    pub fn parts(&self) -> (Ref, Ref) {
        match *self {
            Decomposition::And { g, d }
            | Decomposition::Or { g, d }
            | Decomposition::Xnor { g, d } => (g, d),
            Decomposition::Mux { hi, lo, .. } => (hi, lo),
        }
    }
}

/// The kind of simple dominator a node is, if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum DominatorKind {
    /// Conjunctive (1-dominator).
    And,
    /// Disjunctive (0-dominator).
    Or,
    /// Equivalence (x-dominator).
    Xnor,
}

/// Classifies node `d` of the DAG of `f` as a dominator, if it is one.
///
/// Returns the dominator kind, the residual function `g`, and the divisor
/// reference (the node function, complemented when the dominator condition
/// holds for the complemented divisor — edges into `d` may carry the
/// complement attribute).
pub fn classify_dominator(m: &mut Manager, f: Ref, d: NodeId) -> Option<(DominatorKind, Ref, Ref)> {
    m.ungoverned(|m| try_classify_dominator(m, f, d))
}

/// Budget-governed [`classify_dominator`]: aborts with [`LimitExceeded`]
/// when the manager's installed [`bdd::ResourceLimits`] are crossed.
pub fn try_classify_dominator(
    m: &mut Manager,
    f: Ref,
    d: NodeId,
) -> Result<Option<(DominatorKind, Ref, Ref)>, LimitExceeded> {
    if d == f.node() {
        return Ok(None); // the root is always a trivial dominator
    }
    let fd = m.function_of(d);
    let f1 = m.try_replace_node_with_const(f, d, true)?;
    let f0 = m.try_replace_node_with_const(f, d, false)?;
    // f = F1·fd + F0·fd', so:
    Ok(if f0.is_zero() {
        Some((DominatorKind::And, f1, fd))
    } else if f1.is_zero() {
        Some((DominatorKind::And, f0, !fd))
    } else if f1.is_one() {
        Some((DominatorKind::Or, f0, fd))
    } else if f0.is_one() {
        Some((DominatorKind::Or, f1, !fd))
    } else if f0 == !f1 {
        Some((DominatorKind::Xnor, f1, fd))
    } else {
        None
    })
}

/// Options bounding the dominator search.
#[derive(Clone, Copy, Debug)]
pub struct SearchOptions {
    /// Skip the dominator scan entirely for BDDs larger than this.
    pub max_bdd_size: usize,
    /// Consider at most this many candidate nodes (highest fan-in first).
    pub max_candidates: usize,
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions {
            max_bdd_size: 4000,
            max_candidates: 128,
        }
    }
}

/// Finds the best simple/generalized dominator decomposition of `f`, or
/// falls back to top-variable cofactoring (MUX).
///
/// "Best" prefers the candidate whose larger part is smallest (balance),
/// and requires both parts to be strictly smaller than `f` so the
/// decomposition recursion always terminates.
pub fn find_decomposition(m: &mut Manager, f: Ref, options: &SearchOptions) -> Decomposition {
    m.ungoverned(|m| try_find_decomposition(m, f, options))
}

/// Budget-governed [`find_decomposition`].
pub fn try_find_decomposition(
    m: &mut Manager,
    f: Ref,
    options: &SearchOptions,
) -> Result<Decomposition, LimitExceeded> {
    let mux = try_mux_fallback(m, f)?;
    let fsize = m.size(f);
    if fsize <= 1 || fsize > options.max_bdd_size {
        return Ok(mux);
    }
    let stats = m.node_stats(f);
    let mut candidates: Vec<NodeId> = stats.nodes().to_vec();
    // Highest fan-in nodes first: they are the most promising divisors and
    // the most likely shared subfunctions.
    candidates.sort_by_key(|&id| std::cmp::Reverse(stats.in_degree(id).total()));
    candidates.truncate(options.max_candidates);

    let mut best: Option<(usize, Decomposition)> = None;
    for id in candidates {
        let Some((kind, g, d)) = try_classify_dominator(m, f, id)? else {
            continue;
        };
        let (gs, ds) = (m.size(g), m.size(d));
        if gs >= fsize || ds >= fsize {
            continue; // no progress: reject to guarantee termination
        }
        let score = gs.max(ds);
        let decomp = match kind {
            DominatorKind::And => Decomposition::And { g, d },
            DominatorKind::Or => Decomposition::Or { g, d },
            DominatorKind::Xnor => Decomposition::Xnor { g, d },
        };
        if best.as_ref().is_none_or(|(s, _)| score < *s) {
            best = Some((score, decomp));
        }
    }
    Ok(best.map(|(_, d)| d).unwrap_or(mux))
}

/// Shannon cofactoring on the top variable — the last-resort decomposition.
///
/// # Panics
///
/// Panics if `f` is constant (constants are handled before decomposition).
pub fn mux_fallback(m: &mut Manager, f: Ref) -> Decomposition {
    m.ungoverned(|m| try_mux_fallback(m, f))
}

/// Budget-governed [`mux_fallback`].
///
/// # Panics
///
/// Panics if `f` is constant, like the infallible form.
pub fn try_mux_fallback(m: &mut Manager, f: Ref) -> Result<Decomposition, LimitExceeded> {
    let var = m.top_var(f).expect("constant reached decomposition");
    let hi = m.try_cofactor(f, var, true)?;
    let lo = m.try_cofactor(f, var, false)?;
    Ok(Decomposition::Mux { var, hi, lo })
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Reconstructs `f` from a decomposition, for validity checks.
    fn recompose(m: &mut Manager, d: &Decomposition) -> Ref {
        match *d {
            Decomposition::And { g, d } => m.and(g, d),
            Decomposition::Or { g, d } => m.or(g, d),
            Decomposition::Xnor { g, d } => m.xnor(g, d),
            Decomposition::Mux { var, hi, lo } => {
                let v = m.var(var.0);
                m.ite(v, hi, lo)
            }
        }
    }

    #[test]
    fn and_dominator_found_on_conjunction() {
        let mut m = Manager::new();
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let left = m.or(a, b);
        let right = m.xor(c, d);
        let f = m.and(left, right);
        let found = find_decomposition(&mut m, f, &SearchOptions::default());
        assert!(
            matches!(found, Decomposition::And { .. }),
            "expected AND decomposition, got {found:?}"
        );
        let back = recompose(&mut m, &found);
        assert_eq!(back, f);
    }

    #[test]
    fn or_dominator_found_on_disjunction() {
        let mut m = Manager::new();
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let left = m.and(a, b);
        let right = m.and(c, d);
        let f = m.or(left, right);
        let found = find_decomposition(&mut m, f, &SearchOptions::default());
        let back = recompose(&mut m, &found);
        assert_eq!(back, f);
        assert!(
            matches!(found, Decomposition::Or { .. } | Decomposition::And { .. }),
            "disjunction should decompose without MUX, got {found:?}"
        );
    }

    #[test]
    fn xnor_dominator_found_on_parity() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..6).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        let found = find_decomposition(&mut m, f, &SearchOptions::default());
        assert!(
            matches!(found, Decomposition::Xnor { .. }),
            "parity must yield an x-dominator, got {found:?}"
        );
        let back = recompose(&mut m, &found);
        assert_eq!(back, f);
    }

    #[test]
    fn mux_fallback_on_majority() {
        // Maj(a,b,c) has no simple AND/OR/XNOR dominator with both parts
        // smaller — the engine must fall back to MUX (until the majority
        // hook of BDS-MAJ takes over).
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let found = find_decomposition(&mut m, f, &SearchOptions::default());
        let back = recompose(&mut m, &found);
        assert_eq!(back, f);
    }

    #[test]
    fn classify_rejects_root() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(classify_dominator(&mut m, f, f.node()), None);
    }

    #[test]
    fn size_guard_skips_search() {
        let mut m = Manager::new();
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.and(a, b);
        let cd = m.and(c, d);
        let f = m.or(ab, cd);
        let opts = SearchOptions {
            max_bdd_size: 1,
            max_candidates: 128,
        };
        let found = find_decomposition(&mut m, f, &opts);
        assert!(matches!(found, Decomposition::Mux { .. }));
    }

    #[test]
    fn every_decomposition_recomposes_on_random_functions() {
        let mut m = Manager::new();
        // A bank of structured functions exercising all branches.
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let mut funcs = Vec::new();
        let x01 = m.xor(vars[0], vars[1]);
        let a23 = m.and(vars[2], vars[3]);
        funcs.push(m.or(x01, a23));
        let m567 = m.maj(vars[5], vars[6], vars[7]);
        funcs.push(m.and(x01, m567));
        let o45 = m.or(vars[4], vars[5]);
        let chain = m.xor(x01, o45);
        funcs.push(m.xnor(chain, vars[6]));
        for f in funcs {
            let found = find_decomposition(&mut m, f, &SearchOptions::default());
            let back = recompose(&mut m, &found);
            assert_eq!(back, f, "decomposition of {f:?} must recompose");
        }
    }
}
