//! Parallel-apply storm tests: the PR 9 concurrency contract, pinned.
//!
//! * At every tested width (`threads` ∈ {1, 2, 4}) the forked apply
//!   returns the *identical `Ref`* the sequential kernel produces in the
//!   same manager — canonicity makes oracle equality checkable as plain
//!   ref equality, with no truth-table enumeration.
//! * A mirror manager runs the same op sequence fully sequentially and
//!   is sampled as an independent functional oracle (refs are arena
//!   indices and may differ across managers once workers race, so the
//!   cross-manager comparison is by evaluation, not by ref).
//! * `threads = 1` (a zero-permit budget) is the exact sequential path:
//!   bit-identical refs *and* identical node counts against a manager
//!   with no budget at all.
//! * After quiescence the structural verifiers and a stop-the-world
//!   collection must pass — parallel publication may not corrupt
//!   interior refcounts or canonical edge form.

use bdd::{JobBudget, Manager, Ref};

const NVARS: u32 = 16;

/// Deterministic xorshift64* — the storm must replay identically across
/// managers and runs.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// Seeds a pool of wide cones: XOR/MAJ ladders over cross-products of
/// *distant* variables, which under the natural order are hundreds of
/// shared nodes wide — comfortably past the parallel fork cutoff.
fn seed_pool(m: &mut Manager) -> Vec<Ref> {
    let vars: Vec<Ref> = (0..NVARS).map(|i| m.var(i)).collect();
    let half = (NVARS / 2) as usize;
    let mut pool = Vec::new();
    let mut acc = Ref::ZERO;
    let mut alt = Ref::ONE;
    for i in 0..half {
        let p = m.and(vars[i], vars[i + half]);
        acc = m.xor(acc, p);
        let q = m.or(vars[i], vars[(i + half + 1) % NVARS as usize]);
        alt = m.maj(alt, q, p);
        pool.push(acc);
        pool.push(alt);
    }
    pool.extend(vars);
    pool
}

/// One storm step: index choices + op selector, derived from the rng so
/// both managers replay the same sequence.
struct Step {
    op: usize,
    a: usize,
    b: usize,
    c: usize,
}

fn steps(rng: &mut Rng, pool_len: usize, n: usize) -> Vec<Step> {
    (0..n)
        .map(|_| Step {
            op: rng.below(3),
            a: rng.below(pool_len),
            b: rng.below(pool_len),
            c: rng.below(pool_len),
        })
        .collect()
}

#[test]
fn parallel_apply_storm_matches_sequential_at_all_widths() {
    for threads in [1usize, 2, 4] {
        // The mirror oracle: no budget, plain sequential kernels.
        let mut seq = Manager::new();
        let seq_pool = seed_pool(&mut seq);

        let mut par = Manager::new();
        par.set_job_budget(Some(JobBudget::new(threads - 1)));
        let mut par_pool = seed_pool(&mut par);
        // Guard: the seed must clear the fork granularity cutoff (256
        // shared nodes), or this storm silently stops testing the
        // parallel path.
        assert!(
            par.shared_size(&par_pool) >= 512,
            "seed pool shrank to {} shared nodes",
            par.shared_size(&par_pool)
        );

        let mut rng = Rng(0x9E37_79B9_7F4A_7C15);
        let plan = steps(&mut rng, par_pool.len(), 40);
        let mut seq_results: Vec<Ref> = Vec::new();

        for (i, s) in plan.iter().enumerate() {
            let (pa, pb, pc) = (par_pool[s.a], par_pool[s.b], par_pool[s.c]);
            let forked = match s.op {
                0 => par.par_and(pa, pb),
                1 => par.par_xor(pa, pb),
                _ => par.par_ite(pa, pb, pc),
            };
            // In-manager oracle: the sequential kernel on the same
            // operands must return the identical ref (canonicity).
            let sequential = match s.op {
                0 => par.and(pa, pb),
                1 => par.xor(pa, pb),
                _ => par.ite(pa, pb, pc),
            };
            assert_eq!(
                forked, sequential,
                "threads={threads} step {i}: forked apply diverged from the \
                 sequential kernel in the same manager"
            );
            par_pool.push(forked);

            let (sa, sb, sc) = (seq_pool[s.a], seq_pool[s.b], seq_pool[s.c]);
            let mirror = match s.op {
                0 => seq.and(sa, sb),
                1 => seq.xor(sa, sb),
                _ => seq.ite(sa, sb, sc),
            };
            seq_results.push(mirror);
        }

        // Cross-manager functional oracle: sample assignments (refs may
        // differ across managers once workers race for arena slots).
        let mut sample = Rng(0xDEAD_BEEF_CAFE_F00D);
        for _ in 0..64 {
            let row = sample.next();
            let assignment: Vec<bool> = (0..NVARS).map(|v| row >> v & 1 == 1).collect();
            for (i, (p, s)) in par_pool[par_pool.len() - plan.len()..]
                .iter()
                .zip(&seq_results)
                .enumerate()
            {
                assert_eq!(
                    par.eval(*p, &assignment),
                    seq.eval(*s, &assignment),
                    "threads={threads} result {i}: function diverged from the \
                     sequential mirror manager"
                );
            }
        }

        // Quiescence: structure must be intact and stop-the-world GC
        // must still work after parallel regions.
        par.verify_interior_refs();
        par.verify_edge_canonical_form();
        let last = *par_pool.last().unwrap();
        par.protect(last);
        par.collect();
        par.verify_interior_refs();
        par.verify_edge_canonical_form();
        let assignment = vec![true; NVARS as usize];
        assert_eq!(
            par.eval(last, &assignment),
            seq.eval(*seq_results.last().unwrap(), &assignment),
            "threads={threads}: survivor diverged after collection"
        );
        par.release(last);
    }
}

#[test]
fn single_thread_budget_is_bit_identical_to_no_budget() {
    // threads = 1 is not "parallel with one worker" — it must be the
    // exact sequential code path: same refs, same node counts.
    let mut plain = Manager::new();
    let plain_pool = seed_pool(&mut plain);

    let mut budgeted = Manager::new();
    budgeted.set_job_budget(Some(JobBudget::new(0)));
    let budgeted_pool = seed_pool(&mut budgeted);
    assert_eq!(plain_pool, budgeted_pool);

    let mut rng = Rng(0x0123_4567_89AB_CDEF);
    let plan = steps(&mut rng, plain_pool.len(), 30);
    for (i, s) in plan.iter().enumerate() {
        let want = match s.op {
            0 => plain.and(plain_pool[s.a], plain_pool[s.b]),
            1 => plain.xor(plain_pool[s.a], plain_pool[s.b]),
            _ => plain.ite(plain_pool[s.a], plain_pool[s.b], plain_pool[s.c]),
        };
        let got = match s.op {
            0 => budgeted.par_and(budgeted_pool[s.a], budgeted_pool[s.b]),
            1 => budgeted.par_xor(budgeted_pool[s.a], budgeted_pool[s.b]),
            _ => budgeted.par_ite(budgeted_pool[s.a], budgeted_pool[s.b], budgeted_pool[s.c]),
        };
        assert_eq!(got, want, "step {i}: refs must be bit-identical");
        assert_eq!(
            plain.num_nodes(),
            budgeted.num_nodes(),
            "step {i}: node counts must be identical"
        );
        assert_eq!(
            plain.live_nodes(),
            budgeted.live_nodes(),
            "step {i}: live counts must be identical"
        );
    }
}

#[test]
fn forked_apply_stays_exact_across_interleaved_collections() {
    // Randomized property: interleave forked applies with protect /
    // release churn and stop-the-world collections. Every collection
    // runs at a quiescent point, sweeps dead intermediates (possibly
    // nodes the workers just published), scrubs both cache tiers — and
    // afterwards the forked apply must still return the in-manager
    // sequential kernel's exact ref, while a sequential mirror manager
    // replaying the identical op/GC schedule stays functionally equal.
    for threads in [2usize, 4] {
        let mut par = Manager::new();
        par.set_job_budget(Some(JobBudget::new(threads - 1)));
        let mut par_pool = seed_pool(&mut par);
        let mut seq = Manager::new();
        let mut seq_pool = seed_pool(&mut seq);

        // The seed pool is the live set: protect it in both managers so
        // collections reclaim only storm intermediates.
        for r in &par_pool {
            par.protect(*r);
        }
        for r in &seq_pool {
            seq.protect(*r);
        }

        let mut rng = Rng(0xFEED_FACE_0DD5_EED5 ^ threads as u64);
        let pool_len = par_pool.len();
        let plan = steps(&mut rng, pool_len, 48);
        let mut gc_rng = Rng(0x5EED_5EED_5EED_5EED);
        for (i, s) in plan.iter().enumerate() {
            let forked = match s.op {
                0 => par.par_and(par_pool[s.a], par_pool[s.b]),
                1 => par.par_xor(par_pool[s.a], par_pool[s.b]),
                _ => par.par_ite(par_pool[s.a], par_pool[s.b], par_pool[s.c]),
            };
            let sequential = match s.op {
                0 => par.and(par_pool[s.a], par_pool[s.b]),
                1 => par.xor(par_pool[s.a], par_pool[s.b]),
                _ => par.ite(par_pool[s.a], par_pool[s.b], par_pool[s.c]),
            };
            assert_eq!(
                forked, sequential,
                "threads={threads} step {i}: forked apply diverged after GC churn"
            );
            let mirror = match s.op {
                0 => seq.and(seq_pool[s.a], seq_pool[s.b]),
                1 => seq.xor(seq_pool[s.a], seq_pool[s.b]),
                _ => seq.ite(seq_pool[s.a], seq_pool[s.b], seq_pool[s.c]),
            };
            // Keep the newest result live in both managers, replacing a
            // pseudo-random victim so dead cones accumulate for the GC.
            let victim = gc_rng.below(pool_len);
            par.release(par_pool[victim]);
            par_pool[victim] = par.protect(forked);
            seq.release(seq_pool[victim]);
            seq_pool[victim] = seq.protect(mirror);

            if i % 8 == 7 {
                par.collect();
                par.verify_interior_refs();
                par.verify_edge_canonical_form();
                seq.collect();
                // Functional oracle across managers right after the
                // sweep: reclaimed-and-rebuilt state must not drift.
                let row = gc_rng.next();
                let assignment: Vec<bool> = (0..NVARS).map(|v| row >> v & 1 == 1).collect();
                for (p, s) in par_pool.iter().zip(&seq_pool) {
                    assert_eq!(
                        par.eval(*p, &assignment),
                        seq.eval(*s, &assignment),
                        "threads={threads} step {i}: pool diverged after collection"
                    );
                }
            }
        }
    }
}

#[test]
fn budget_permits_are_returned_after_every_call() {
    let mut m = Manager::new();
    let budget = JobBudget::new(3);
    m.set_job_budget(Some(budget.clone()));
    let pool = seed_pool(&mut m);
    let (f, g) = (pool[pool.len() - 1], pool[pool.len() - 2]);
    for _ in 0..4 {
        let _ = m.par_and(f, g);
        let _ = m.par_xor(f, g);
        let _ = m.par_ite(f, g, pool[0]);
        assert_eq!(budget.available(), 3, "permits must drain back to the cap");
    }
}
