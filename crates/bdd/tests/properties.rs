//! Property-based tests for the BDD package: every algebraic law is checked
//! against randomly generated Boolean expressions, with the BDD compared to
//! a bit-parallel truth-vector oracle.

use bdd::{ConvergeConfig, GcConfig, LimitKind, Manager, Ref, SiftConfig};
use proptest::prelude::*;

/// A random Boolean expression over `NVARS` variables.
#[derive(Clone, Debug)]
enum Expr {
    Var(u32),
    Not(Box<Expr>),
    And(Box<Expr>, Box<Expr>),
    Or(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Ite(Box<Expr>, Box<Expr>, Box<Expr>),
    Maj(Box<Expr>, Box<Expr>, Box<Expr>),
}

const NVARS: u32 = 6;

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = (0..NVARS).prop_map(Expr::Var);
    leaf.prop_recursive(5, 64, 3, |inner| {
        prop_oneof![
            inner.clone().prop_map(|e| Expr::Not(Box::new(e))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::And(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Or(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(Box::new(a), Box::new(b))),
            (inner.clone(), inner.clone(), inner.clone()).prop_map(|(a, b, c)| Expr::Ite(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
            (inner.clone(), inner.clone(), inner).prop_map(|(a, b, c)| Expr::Maj(
                Box::new(a),
                Box::new(b),
                Box::new(c)
            )),
        ]
    })
}

impl Expr {
    fn to_bdd(&self, m: &mut Manager) -> Ref {
        match self {
            Expr::Var(i) => m.var(*i),
            Expr::Not(e) => !e.to_bdd(m),
            Expr::And(a, b) => {
                let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                m.and(x, y)
            }
            Expr::Or(a, b) => {
                let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                m.or(x, y)
            }
            Expr::Xor(a, b) => {
                let (x, y) = (a.to_bdd(m), b.to_bdd(m));
                m.xor(x, y)
            }
            Expr::Ite(a, b, c) => {
                let (x, y, z) = (a.to_bdd(m), b.to_bdd(m), c.to_bdd(m));
                m.ite(x, y, z)
            }
            Expr::Maj(a, b, c) => {
                let (x, y, z) = (a.to_bdd(m), b.to_bdd(m), c.to_bdd(m));
                m.maj(x, y, z)
            }
        }
    }

    /// Truth vector over all 2^NVARS assignments, one bit per assignment.
    fn truth(&self) -> u64 {
        match self {
            Expr::Var(i) => var_truth(*i),
            Expr::Not(e) => !e.truth() & mask(),
            Expr::And(a, b) => a.truth() & b.truth(),
            Expr::Or(a, b) => a.truth() | b.truth(),
            Expr::Xor(a, b) => a.truth() ^ b.truth(),
            Expr::Ite(a, b, c) => {
                let t = a.truth();
                (t & b.truth()) | (!t & c.truth() & mask())
            }
            Expr::Maj(a, b, c) => {
                let (x, y, z) = (a.truth(), b.truth(), c.truth());
                (x & y) | (y & z) | (x & z)
            }
        }
    }
}

fn mask() -> u64 {
    u64::MAX >> (64 - (1 << NVARS))
}

fn var_truth(i: u32) -> u64 {
    let mut t = 0u64;
    for row in 0..(1u64 << NVARS) {
        if row >> i & 1 == 1 {
            t |= 1 << row;
        }
    }
    t
}

fn bdd_truth(m: &Manager, f: Ref) -> u64 {
    let mut t = 0u64;
    for row in 0..(1u64 << NVARS) {
        let assignment: Vec<bool> = (0..NVARS).map(|i| row >> i & 1 == 1).collect();
        if m.eval(f, &assignment) {
            t |= 1 << row;
        }
    }
    t
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn bdd_matches_truth_vector(e in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        prop_assert_eq!(bdd_truth(&m, f), e.truth());
    }

    #[test]
    fn canonicity_equal_truth_implies_equal_ref(a in arb_expr(), b in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let fa = a.to_bdd(&mut m);
        let fb = b.to_bdd(&mut m);
        prop_assert_eq!(a.truth() == b.truth(), fa == fb);
    }

    #[test]
    fn negation_is_involutive_and_sizes_match(e in arb_expr()) {
        let mut m = Manager::new();
        let f = e.to_bdd(&mut m);
        prop_assert_eq!(!!f, f);
        prop_assert_eq!(m.size(f), m.size(!f));
    }

    #[test]
    fn generalized_cofactors_agree_on_care_set(fe in arb_expr(), ce in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = fe.to_bdd(&mut m);
        let c = ce.to_bdd(&mut m);
        prop_assume!(!c.is_zero());
        let fc = m.and(f, c);
        let r = m.restrict(f, c);
        let rc = m.and(r, c);
        prop_assert_eq!(rc, fc, "restrict violates care-set agreement");
        let k = m.constrain(f, c);
        let kc = m.and(k, c);
        prop_assert_eq!(kc, fc, "constrain violates care-set agreement");
    }

    #[test]
    fn restrict_never_grows_past_f_times_c(fe in arb_expr(), ce in arb_expr()) {
        // restrict is a heuristic minimizer: it must stay within the manager
        // and produce a function over the same support universe.
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = fe.to_bdd(&mut m);
        let c = ce.to_bdd(&mut m);
        prop_assume!(!c.is_zero());
        let r = m.restrict(f, c);
        let sup_f = m.support(f);
        let sup_r = m.support(r);
        // restrict never introduces variables outside supp(f) ∪ supp(c).
        let sup_c = m.support(c);
        for v in sup_r {
            prop_assert!(sup_f.contains(&v) || sup_c.contains(&v));
        }
    }

    #[test]
    fn node_replacement_recomposes(e in arb_expr(), pick in 0usize..8) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        let stats = m.node_stats(f);
        prop_assume!(!stats.is_empty());
        let d = stats.nodes()[pick % stats.len()];
        let fd = m.function_of(d);
        let f1 = m.replace_node_with_const(f, d, true);
        let f0 = m.replace_node_with_const(f, d, false);
        let recomposed = m.ite(fd, f1, f0);
        prop_assert_eq!(recomposed, f, "f must equal F(f_d)");
    }

    #[test]
    fn density_matches_popcount(e in arb_expr()) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        let expected = e.truth().count_ones() as f64 / (1u64 << NVARS) as f64;
        prop_assert!((m.density(f) - expected).abs() < 1e-9);
    }

    #[test]
    fn sift_preserves_semantics(e in arb_expr(), g in arb_expr()) {
        // Rudell sifting moves the whole order in place; every protected
        // function must keep its exact truth vector, and canonicity must
        // hold under the new order (recomputing returns identical refs).
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        let h = g.to_bdd(&mut m);
        let (tf, th) = (e.truth(), g.truth());
        m.protect(f);
        m.protect(h);
        let report = m.sift(&SiftConfig::default());
        prop_assert!(report.final_size <= report.initial_size);
        prop_assert_eq!(bdd_truth(&m, f), tf, "sift changed f");
        prop_assert_eq!(bdd_truth(&m, h), th, "sift changed g");
        // Canonicity under the installed order.
        let f2 = e.to_bdd(&mut m);
        let h2 = g.to_bdd(&mut m);
        prop_assert_eq!(f2, f);
        prop_assert_eq!(h2, h);
        // The order maps stay inverse permutations of each other.
        let v2l = m.var2level();
        let l2v = m.level2var();
        for v in 0..NVARS as usize {
            prop_assert_eq!(l2v[v2l[v] as usize], v as u32);
        }
    }

    #[test]
    fn swap_levels_is_an_involution(e in arb_expr(), g in arb_expr(), l in 0..NVARS - 1) {
        // Swapping the same adjacent pair twice restores the order maps
        // and every function; the refs themselves never change.
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        let h = g.to_bdd(&mut m);
        let (tf, th) = (e.truth(), g.truth());
        let order_before = m.var2level().to_vec();
        let size_before = (m.size(f), m.size(h));
        m.swap_levels(l);
        prop_assert_eq!(bdd_truth(&m, f), tf, "single swap changed f");
        prop_assert_eq!(bdd_truth(&m, h), th, "single swap changed g");
        m.swap_levels(l);
        prop_assert_eq!(m.var2level(), &order_before[..], "maps must roundtrip");
        prop_assert_eq!((m.size(f), m.size(h)), size_before, "sizes must roundtrip");
        prop_assert_eq!(bdd_truth(&m, f), tf);
        prop_assert_eq!(bdd_truth(&m, h), th);
        // Canonicity: rebuilding after the double swap lands on the same refs.
        prop_assert_eq!(e.to_bdd(&mut m), f);
        prop_assert_eq!(g.to_bdd(&mut m), h);
    }

    #[test]
    fn sift_with_tiny_budget_stays_valid(e in arb_expr(), g in arb_expr(), budget in 0usize..8) {
        // Budget exhaustion — including 0 and mid-restore — must leave a
        // valid var2level permutation and every protected function intact
        // against the truth oracle; restores past the budget surface as
        // restore_overage, never as a stranded half-moved variable.
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        let h = g.to_bdd(&mut m);
        let (tf, th) = (e.truth(), g.truth());
        m.protect(f);
        m.protect(h);
        let report = m.sift(&SiftConfig { max_swaps: budget, ..SiftConfig::default() });
        // Walk swaps respect the budget; only restores may overshoot it,
        // and the overshoot is exactly what restore_overage reports.
        prop_assert!(report.swaps - report.restore_overage <= budget,
            "non-restore swaps {} must fit the budget {}", report.swaps - report.restore_overage, budget);
        prop_assert_eq!(report.restore_overage, report.swaps.saturating_sub(budget));
        if budget == 0 { prop_assert_eq!(report.swaps, 0); }
        m.verify_interior_refs();
        let v2l = m.var2level();
        let l2v = m.level2var();
        let mut seen = vec![false; v2l.len()];
        for &l in v2l {
            prop_assert!((l as usize) < seen.len() && !std::mem::replace(&mut seen[l as usize], true),
                "var2level must stay a permutation");
        }
        for v in 0..NVARS as usize {
            prop_assert_eq!(l2v[v2l[v] as usize], v as u32, "maps must stay inverse");
        }
        prop_assert_eq!(bdd_truth(&m, f), tf, "tiny-budget sift changed f");
        prop_assert_eq!(bdd_truth(&m, h), th, "tiny-budget sift changed g");
        // Canonicity under whatever order the aborted pass installed.
        prop_assert_eq!(e.to_bdd(&mut m), f);
        prop_assert_eq!(g.to_bdd(&mut m), h);
    }

    #[test]
    fn converge_sift_preserves_semantics_and_terminates(e in arb_expr(), g in arb_expr()) {
        // The fixpoint driver (symmetric groups on, relaxed budgets) must
        // terminate within its pass cap, never increase the rooted size,
        // and preserve every protected function exactly.
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = e.to_bdd(&mut m);
        let h = g.to_bdd(&mut m);
        let (tf, th) = (e.truth(), g.truth());
        m.protect(f);
        m.protect(h);
        let cfg = ConvergeConfig::default();
        let report = m.sift_to_fixpoint(&cfg);
        prop_assert!(report.passes >= 1 && report.passes <= cfg.max_passes);
        prop_assert!(report.final_size <= report.initial_size);
        m.verify_interior_refs();
        prop_assert_eq!(bdd_truth(&m, f), tf, "converging sift changed f");
        prop_assert_eq!(bdd_truth(&m, h), th, "converging sift changed g");
        prop_assert_eq!(e.to_bdd(&mut m), f);
        prop_assert_eq!(g.to_bdd(&mut m), h);
    }

    #[test]
    fn compose_matches_substitution(fe in arb_expr(), ge in arb_expr(), v in 0..NVARS) {
        let mut m = Manager::new();
        for i in 0..NVARS { m.var(i); }
        let f = fe.to_bdd(&mut m);
        let g = ge.to_bdd(&mut m);
        let composed = m.compose(f, bdd::Var(v), g);
        // Oracle: evaluate f with variable v replaced by g's value.
        for row in 0..(1u64 << NVARS) {
            let mut assignment: Vec<bool> = (0..NVARS).map(|i| row >> i & 1 == 1).collect();
            let gv = m.eval(g, &assignment);
            assignment[v as usize] = gv;
            let want = m.eval(f, &assignment);
            let mut orig: Vec<bool> = (0..NVARS).map(|i| row >> i & 1 == 1).collect();
            orig[v as usize] = row >> v & 1 == 1;
            prop_assert_eq!(m.eval(composed, &orig), want);
        }
    }
}

/// Deterministic xorshift64* for the storm test below (independent of the
/// proptest harness so the op sequence is stable across runs).
struct Storm(u64);

impl Storm {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }
}

/// The memory-system stress test: ~10k random ite/and/xor/or/maj/not ops
/// through a deliberately tiny manager, so the direct-mapped computed cache
/// evicts constantly and the open-addressed unique table resizes several
/// times. Checks, for every op:
///
/// (a) the result's truth vector matches a bit-parallel oracle, and
/// (b) hash-consing canonicity: whenever two op sequences produce the same
///     function, they produce the *identical* `Ref` — even across cache
///     evictions and unique-table growth.
///
/// Also asserts the computed cache stayed at its construction-time
/// capacity while observing far more insertions than slots (i.e. the cache
/// is bounded and lossy, not growing with operation count).
#[test]
fn storm_of_ops_stays_canonical_and_bounded() {
    const OPS: usize = 10_000;
    // 16-node arena hint → unique table starts at its floor; 8 cache bits
    // → 64 three-way sets = 192 computed-cache entries, thousands of
    // evictions over the storm.
    let mut m = Manager::with_capacity(16, 8);
    let mut rng = Storm(0xB0D5_DAC1_3BDD_5EED);
    let mut pool: Vec<(Ref, u64)> = Vec::new();
    for i in 0..NVARS {
        let v = m.var(i);
        pool.push((v, var_truth(i)));
    }
    let mut canon: std::collections::HashMap<u64, Ref> = std::collections::HashMap::new();
    let initial_buckets = m.cache_stats().unique_buckets;
    let cache_entries = m.cache_stats().cache_entries;
    assert_eq!(cache_entries, 3 << 6);

    for step in 0..OPS {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let (r, truth) = match rng.below(6) {
            0 => (m.and(a.0, b.0), a.1 & b.1),
            1 => (m.or(a.0, b.0), a.1 | b.1),
            2 => (m.xor(a.0, b.0), a.1 ^ b.1),
            3 => (m.ite(a.0, b.0, c.0), (a.1 & b.1) | (!a.1 & c.1 & mask())),
            4 => (
                m.maj(a.0, b.0, c.0),
                (a.1 & b.1) | (b.1 & c.1) | (a.1 & c.1),
            ),
            _ => (!a.0, !a.1 & mask()),
        };
        let truth = truth & mask();
        // (a) semantic correctness against the truth-table oracle.
        assert_eq!(
            bdd_truth(&m, r),
            truth,
            "storm step {step}: BDD disagrees with oracle"
        );
        // (b) canonicity across evictions/resizes.
        match canon.entry(truth) {
            std::collections::hash_map::Entry::Occupied(e) => {
                assert_eq!(
                    *e.get(),
                    r,
                    "storm step {step}: equal truth vectors, different refs"
                );
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r);
            }
        }
        // Occasionally clear the cache mid-storm: canonicity must survive.
        if step % 2_500 == 2_499 {
            m.clear_caches();
        }
        // Keep the pool from growing without bound.
        if pool.len() < 400 {
            pool.push((r, truth));
        } else {
            pool[rng.below(400)] = (r, truth);
        }
    }

    let stats = m.cache_stats();
    assert_eq!(
        stats.cache_entries, cache_entries,
        "computed cache must not grow with operation count"
    );
    assert!(
        stats.insertions > 4 * cache_entries as u64,
        "storm must exercise evictions (insertions {} vs {} slots)",
        stats.insertions,
        cache_entries
    );
    assert!(
        stats.unique_buckets > initial_buckets,
        "storm must force unique-table growth"
    );
    assert!(stats.hits > 0, "storm must reuse memoized results");
    assert_eq!(stats.peak_nodes, m.num_nodes());
}

/// The collector stress test: a 100k-op random storm over a protected
/// working set, with a forced collection every few thousand ops. Between
/// collections this is the same canonicity + truth-table-oracle discipline
/// as [`storm_of_ops_stays_canonical_and_bounded`]; at every collection
/// point it additionally checks that
///
/// (a) every protected pool function still matches its truth vector after
///     the sweep (nothing live was reclaimed, nothing dangles),
/// (b) hash-consing stays canonical across reclaim-and-reuse: rebuilding a
///     pool function from scratch returns the *identical* `Ref`, and
/// (c) the collector actually reclaims: over the storm, far more nodes are
///     reclaimed than the arena ever holds.
#[test]
fn gc_storm_stays_canonical_across_collections() {
    const OPS: usize = 100_000;
    const POOL: usize = 200;
    const COLLECT_EVERY: usize = 5_000;
    let mut m = Manager::with_capacity(16, 8);
    let mut rng = Storm(0x6C_C0_11_EC_70_12_57_AB);
    let mut pool: Vec<(Ref, u64)> = Vec::new();
    for i in 0..NVARS {
        let v = m.var(i);
        m.protect(v);
        pool.push((v, var_truth(i)));
    }
    // Canonicity witness map; only valid between collections (a sweep may
    // recycle the slot behind an unprotected ref), so it is rebuilt from
    // the protected pool after every collect.
    let mut canon: std::collections::HashMap<u64, Ref> = std::collections::HashMap::new();
    let mut collections = 0u64;

    for step in 0..OPS {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let (r, truth) = match rng.below(6) {
            0 => (m.and(a.0, b.0), a.1 & b.1),
            1 => (m.or(a.0, b.0), a.1 | b.1),
            2 => (m.xor(a.0, b.0), a.1 ^ b.1),
            3 => (m.ite(a.0, b.0, c.0), (a.1 & b.1) | (!a.1 & c.1 & mask())),
            4 => (
                m.maj(a.0, b.0, c.0),
                (a.1 & b.1) | (b.1 & c.1) | (a.1 & c.1),
            ),
            _ => (!a.0, !a.1 & mask()),
        };
        let truth = truth & mask();
        assert_eq!(
            bdd_truth(&m, r),
            truth,
            "gc storm step {step}: BDD disagrees with oracle"
        );
        match canon.entry(truth) {
            std::collections::hash_map::Entry::Occupied(e) => {
                assert_eq!(*e.get(), r, "gc storm step {step}: canonicity broken");
            }
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(r);
            }
        }
        // Rotate the protected working set: release the evicted root.
        if pool.len() < POOL {
            m.protect(r);
            pool.push((r, truth));
        } else {
            let k = rng.below(POOL);
            m.release(pool[k].0);
            m.protect(r);
            pool[k] = (r, truth);
        }

        if step % COLLECT_EVERY == COLLECT_EVERY - 1 {
            m.collect();
            collections += 1;
            // (a) the protected pool survived intact.
            for &(f, t) in &pool {
                assert_eq!(bdd_truth(&m, f), t, "protected function corrupted by sweep");
            }
            // (b) reclaim-and-reuse keeps the unique table canonical: any
            // op over surviving pool entries lands on its canonical node.
            let x = pool[rng.below(pool.len())];
            let y = pool[rng.below(pool.len())];
            let redo1 = m.and(x.0, y.0);
            let redo2 = m.and(x.0, y.0);
            assert_eq!(redo1, redo2);
            assert_eq!(bdd_truth(&m, redo1), x.1 & y.1 & mask());
            // Unprotected refs (canon values, the redo above) may dangle
            // after the *next* collect: drop them and re-seed from the
            // protected pool.
            canon.clear();
            for &(f, t) in &pool {
                canon.insert(t, f);
            }
        }
    }

    let stats = m.cache_stats();
    assert!(collections >= 19);
    assert!(
        stats.reclaimed_total > stats.peak_nodes as u64,
        "storm must recycle more nodes than the arena ever held \
         (reclaimed {}, peak {})",
        stats.reclaimed_total,
        stats.peak_nodes
    );
    assert_eq!(stats.live_nodes + stats.free_nodes, m.num_nodes());
}

/// Sifting under a full truth-table oracle at flow-realistic width: the
/// order-hostile pairing function over 12 variables (`Σ x_i·x_{i+6}`,
/// exponential interleaved, linear paired) plus a parity sharing the same
/// manager. After sifting, every one of the 4096 assignments must agree
/// with the oracle for both functions, the pairing function must reach
/// its linear-order size, and the installed maps must stay inverse
/// permutations.
#[test]
fn sift_truth_oracle_on_twelve_vars() {
    const VARS: u32 = 12;
    let mut m = Manager::new();
    let mut pairs = Ref::ZERO;
    for i in 0..VARS / 2 {
        let a = m.var(i);
        let b = m.var(i + VARS / 2);
        let ab = m.and(a, b);
        pairs = m.or(pairs, ab);
    }
    let vars: Vec<Ref> = (0..VARS).map(|i| m.var(i)).collect();
    let parity = m.xor_all(vars);
    m.protect(pairs);
    m.protect(parity);
    let before = m.size(pairs);
    let report = m.sift(&SiftConfig::default());
    let after = m.size(pairs);
    assert!(report.swaps > 0);
    assert!(
        after < before,
        "sift must shrink the interleaved pairing ({before} -> {after})"
    );
    assert_eq!(after, VARS as usize, "pairing order is linear");
    assert_eq!(
        m.size(parity),
        VARS as usize,
        "parity stays linear under any order"
    );
    for row in 0u32..1 << VARS {
        let assignment: Vec<bool> = (0..VARS).map(|i| row >> i & 1 == 1).collect();
        let want_pairs =
            (0..VARS / 2).any(|i| assignment[i as usize] && assignment[(i + VARS / 2) as usize]);
        let want_parity = assignment.iter().filter(|&&b| b).count() % 2 == 1;
        assert_eq!(m.eval(pairs, &assignment), want_pairs, "pairs row {row}");
        assert_eq!(m.eval(parity, &assignment), want_parity, "parity row {row}");
    }
    let (v2l, l2v) = (m.var2level(), m.level2var());
    for v in 0..VARS as usize {
        assert_eq!(l2v[v2l[v] as usize], v as u32, "maps must stay inverse");
    }
}

/// The reordering-under-reclamation storm: random ops over a protected
/// pool with periodic *sifting* interleaved with forced collections. At
/// every sift point each pool function must keep its truth vector and the
/// unique table must stay canonical (rebuilding a pool function returns
/// the identical `Ref`) — across arbitrary interleavings of level swaps,
/// slot reuse and unique-table rebuilds.
#[test]
fn sift_storm_interleaved_with_gc_stays_canonical() {
    const OPS: usize = 20_000;
    const POOL: usize = 100;
    const SIFT_EVERY: usize = 2_500;
    let mut m = Manager::with_capacity(16, 8);
    let mut rng = Storm(0x51F7_BDD5_EED0_0D5E);
    let mut pool: Vec<(Ref, u64)> = Vec::new();
    for i in 0..NVARS {
        let v = m.var(i);
        m.protect(v);
        pool.push((v, var_truth(i)));
    }
    let mut sift_reports = 0usize;
    for step in 0..OPS {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let (r, truth) = match rng.below(6) {
            0 => (m.and(a.0, b.0), a.1 & b.1),
            1 => (m.or(a.0, b.0), a.1 | b.1),
            2 => (m.xor(a.0, b.0), a.1 ^ b.1),
            3 => (m.ite(a.0, b.0, c.0), (a.1 & b.1) | (!a.1 & c.1 & mask())),
            4 => (
                m.maj(a.0, b.0, c.0),
                (a.1 & b.1) | (b.1 & c.1) | (a.1 & c.1),
            ),
            _ => (!a.0, !a.1 & mask()),
        };
        let truth = truth & mask();
        assert_eq!(
            bdd_truth(&m, r),
            truth,
            "step {step}: BDD disagrees with oracle"
        );
        if pool.len() < POOL {
            m.protect(r);
            pool.push((r, truth));
        } else {
            let k = rng.below(POOL);
            m.release(pool[k].0);
            m.protect(r);
            pool[k] = (r, truth);
        }
        if step % SIFT_EVERY == SIFT_EVERY - 1 {
            // Alternate sift-then-collect and collect-then-sift so both
            // interleavings are exercised (sift itself also collects).
            if (step / SIFT_EVERY).is_multiple_of(2) {
                m.sift(&SiftConfig::default());
                m.collect();
            } else {
                m.collect();
                m.sift(&SiftConfig::default());
            }
            sift_reports += 1;
            // (a) every protected function survives reordering + sweeps.
            for &(f, t) in &pool {
                assert_eq!(
                    bdd_truth(&m, f),
                    t,
                    "pool function corrupted at step {step}"
                );
            }
            // (b) canonicity under the installed order and recycled slots.
            let x = pool[rng.below(pool.len())];
            let y = pool[rng.below(pool.len())];
            let redo1 = m.and(x.0, y.0);
            let redo2 = m.and(x.0, y.0);
            assert_eq!(redo1, redo2);
            assert_eq!(bdd_truth(&m, redo1), x.1 & y.1 & mask());
            let xor1 = m.xor(x.0, y.0);
            assert_eq!(bdd_truth(&m, xor1), (x.1 ^ y.1) & mask());
        }
    }
    assert!(sift_reports >= 7, "the storm must actually sift");
    let stats = m.cache_stats();
    assert!(stats.sifts >= sift_reports as u64);
    assert!(stats.sift_swaps > 0, "sifting must perform swaps");
    assert!(stats.reclaimed_total > 0, "collections must reclaim");
}

/// The converge storm: random ops over a protected pool with periodic
/// *fixpoint* sifting (symmetric groups on, relaxed budgets) interleaved
/// with forced collections — the sift-converge flow's interleaving. At
/// every converge point each pool function must keep its truth vector,
/// the interior refcounts must survive a full recount audit, and the
/// unique table must stay canonical under the converged order.
#[test]
fn converge_sift_storm_with_gc_stays_canonical() {
    const OPS: usize = 10_000;
    const POOL: usize = 80;
    const CONVERGE_EVERY: usize = 2_000;
    let mut m = Manager::with_capacity(16, 8);
    let mut rng = Storm(0xC0_4E_46_3B_DD_51_F7_01);
    let mut pool: Vec<(Ref, u64)> = Vec::new();
    for i in 0..NVARS {
        let v = m.var(i);
        m.protect(v);
        pool.push((v, var_truth(i)));
    }
    let cfg = ConvergeConfig::default();
    let mut converges = 0usize;
    for step in 0..OPS {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let (r, truth) = match rng.below(6) {
            0 => (m.and(a.0, b.0), a.1 & b.1),
            1 => (m.or(a.0, b.0), a.1 | b.1),
            2 => (m.xor(a.0, b.0), a.1 ^ b.1),
            3 => (m.ite(a.0, b.0, c.0), (a.1 & b.1) | (!a.1 & c.1 & mask())),
            4 => (
                m.maj(a.0, b.0, c.0),
                (a.1 & b.1) | (b.1 & c.1) | (a.1 & c.1),
            ),
            _ => (!a.0, !a.1 & mask()),
        };
        let truth = truth & mask();
        assert_eq!(
            bdd_truth(&m, r),
            truth,
            "step {step}: BDD disagrees with oracle"
        );
        if pool.len() < POOL {
            m.protect(r);
            pool.push((r, truth));
        } else {
            let k = rng.below(POOL);
            m.release(pool[k].0);
            m.protect(r);
            pool[k] = (r, truth);
        }
        if step % CONVERGE_EVERY == CONVERGE_EVERY - 1 {
            let report = m.sift_to_fixpoint(&cfg);
            assert!(report.passes <= cfg.max_passes, "fixpoint must terminate");
            assert!(report.final_size <= report.initial_size);
            m.collect();
            m.verify_interior_refs();
            converges += 1;
            for &(f, t) in &pool {
                assert_eq!(
                    bdd_truth(&m, f),
                    t,
                    "pool function corrupted at step {step}"
                );
            }
            let x = pool[rng.below(pool.len())];
            let y = pool[rng.below(pool.len())];
            let redo1 = m.and(x.0, y.0);
            let redo2 = m.and(x.0, y.0);
            assert_eq!(redo1, redo2, "canonicity under the converged order");
            assert_eq!(bdd_truth(&m, redo1), x.1 & y.1 & mask());
        }
    }
    assert!(converges >= 4, "the storm must actually converge-sift");
    let stats = m.cache_stats();
    assert!(
        stats.sifts as usize >= converges,
        "each converge runs at least one pass"
    );
}

/// The bounded-memory proof for long flows: a storm over enough variables
/// that, without reclamation, the arena would grow monotonically with
/// operation count (the PR-1 leak-by-design). With periodic
/// [`Manager::maybe_collect`] the arena footprint must instead stay within
/// a small constant factor of the live working set.
#[test]
fn gc_keeps_arena_within_constant_factor_of_live_size() {
    const OPS: usize = 100_000;
    const ACCS: usize = 8;
    let mut m = Manager::new();
    m.set_gc_config(GcConfig {
        dead_fraction: 0.25,
        min_nodes: 1 << 12,
    });
    let mut rng = Storm(0xBD_D6_CB_DD_6C);
    // The projection variables are used as operands across collection
    // points, so they are roots too.
    let vars: Vec<Ref> = (0..24)
        .map(|i| {
            let v = m.var(i);
            m.protect(v)
        })
        .collect();
    // A rotating set of protected accumulators keeps a live working set
    // while every overwritten value becomes garbage.
    let mut accs: Vec<Ref> = vars.iter().take(ACCS).map(|&v| m.protect(v)).collect();
    let mut arena_after_collect = Vec::new();
    for step in 0..OPS {
        let i = rng.below(ACCS);
        let a = accs[i];
        let b = accs[rng.below(ACCS)];
        let v = vars[rng.below(vars.len())];
        let r = match rng.below(5) {
            0 => m.and(a, v),
            1 => m.or(a, v),
            2 => m.xor(a, v),
            3 => m.ite(v, a, b),
            _ => m.ite(a, v, b),
        };
        // Random 24-variable combinations grow without bound; reset an
        // accumulator that outgrows the working-set budget (the discarded
        // function is exactly the kind of garbage the collector exists
        // for).
        let r = if m.size(r) > 500 { v } else { r };
        m.release(accs[i]);
        accs[i] = m.protect(r);
        // The flow-level discipline: offer a collection at every quiescent
        // point; the threshold gate keeps almost all of these free.
        m.maybe_collect();
        if step % 1_000 == 999 {
            arena_after_collect.push((m.num_nodes(), m.live_nodes()));
        }
    }
    m.collect();
    let stats = m.cache_stats();
    let live = m.live_nodes();
    // Far more nodes were created than the arena ever held: reclamation,
    // not growth, absorbed the storm.
    assert!(
        stats.reclaimed_total > 4 * stats.peak_nodes as u64,
        "expected heavy recycling (reclaimed {}, peak arena {})",
        stats.reclaimed_total,
        stats.peak_nodes
    );
    assert!(stats.collections >= 5, "threshold collections must trigger");
    // The arena footprint is a constant factor of the live size, not of
    // the operation count: between-collection growth is bounded by the
    // churn of one threshold window, far below the 100k-op total.
    let max_arena = arena_after_collect
        .iter()
        .map(|&(a, _)| a)
        .max()
        .unwrap_or(0);
    let max_live = arena_after_collect
        .iter()
        .map(|&(_, l)| l)
        .max()
        .unwrap_or(1);
    assert!(
        max_arena < 16 * max_live,
        "arena footprint {max_arena} not within constant factor of live {max_live}"
    );
    // And the final sweep leaves exactly the protected working set (plus
    // free slots) in the arena.
    let mut roots = accs.clone();
    roots.extend(vars.iter().copied());
    let reachable = m.shared_size(&roots);
    assert!(
        live <= reachable + 1 + vars.len(),
        "live nodes {live} must be the protected set (reachable {reachable})"
    );
}

/// The abort-recovery property: a random op storm through the *fallible*
/// kernels with a fault injected at an arbitrary recursion step. Whatever
/// interior point the abort lands on, the manager must come back fully
/// consistent — `verify_interior_refs` passes before and after a recovery
/// `collect()`, every protected function still matches its truth vector,
/// and rebuilding over the survivors stays canonical against the oracle.
mod abort_injection {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        #[test]
        fn injected_abort_leaves_manager_consistent(
            seed in any::<u64>(),
            abort_at in 1u64..600,
        ) {
            const OPS: usize = 250;
            const POOL: usize = 48;
            // Tiny tables so the storm exercises unique-table growth and
            // cache evictions around the abort point too.
            let mut m = Manager::with_capacity(16, 8);
            let mut rng = Storm(seed | 1);
            let mut pool: Vec<(Ref, u64)> = Vec::new();
            for i in 0..NVARS {
                let v = m.var(i);
                m.protect(v);
                pool.push((v, var_truth(i)));
            }
            m.fault_inject_abort_after(Some(abort_at));
            let mut aborted = false;
            for _ in 0..OPS {
                let a = pool[rng.below(pool.len())];
                let b = pool[rng.below(pool.len())];
                let c = pool[rng.below(pool.len())];
                let (r, truth) = match rng.below(6) {
                    0 => (m.try_and(a.0, b.0), a.1 & b.1),
                    1 => (m.try_or(a.0, b.0), a.1 | b.1),
                    2 => (m.try_xor(a.0, b.0), a.1 ^ b.1),
                    3 => (
                        m.try_ite(a.0, b.0, c.0),
                        (a.1 & b.1) | (!a.1 & c.1 & mask()),
                    ),
                    4 => (
                        m.try_maj(a.0, b.0, c.0),
                        (a.1 & b.1) | (b.1 & c.1) | (a.1 & c.1),
                    ),
                    _ => (Ok(!a.0), !a.1 & mask()),
                };
                match r {
                    Ok(r) => {
                        let truth = truth & mask();
                        // Completed ops are exact even while armed.
                        prop_assert_eq!(bdd_truth(&m, r), truth);
                        if pool.len() < POOL {
                            m.protect(r);
                            pool.push((r, truth));
                        } else {
                            let k = rng.below(POOL);
                            m.release(pool[k].0);
                            m.protect(r);
                            pool[k] = (r, truth);
                        }
                    }
                    Err(e) => {
                        prop_assert_eq!(e.kind, LimitKind::Injected);
                        aborted = true;
                        break;
                    }
                }
            }
            // Low abort steps must actually fire within the storm; high
            // ones may outlive it — both paths audit the same way.
            if abort_at < 64 {
                prop_assert!(aborted, "a {abort_at}-step fuse must blow");
            }
            m.fault_inject_abort_after(None);
            // The manager must already be consistent before any cleanup...
            m.verify_interior_refs();
            // ...and the aborted garbage must be collectable.
            m.collect();
            m.verify_interior_refs();
            // Oracle + canonicity over the survivors.
            for &(f, t) in &pool {
                prop_assert_eq!(bdd_truth(&m, f), t, "protected function corrupted");
            }
            let x = pool[rng.below(pool.len())];
            let y = pool[rng.below(pool.len())];
            let redo1 = m.and(x.0, y.0);
            let redo2 = m.and(x.0, y.0);
            prop_assert_eq!(redo1, redo2, "canonicity after recovery");
            prop_assert_eq!(bdd_truth(&m, redo1), x.1 & y.1 & mask());
            let xor = m.try_xor(x.0, y.0);
            prop_assert!(xor.is_ok(), "disarmed kernels must not abort");
            prop_assert_eq!(bdd_truth(&m, xor.unwrap()), (x.1 ^ y.1) & mask());
        }
    }
}

/// Exhaustive complement-edge oracle over every 4-variable function: all
/// 65 536 truth tables are built through the public kernels and the
/// manager must represent each function `f` and its negation `¬f` by the
/// *same* node with only the sign bit differing. Together with the
/// canonical-form audit this proves no node and its complement ever
/// coexist in the unique table — the entire point of the encoding.
#[test]
fn exhaustive_four_var_complement_pairs_share_one_node() {
    const VARS: u32 = 4;
    const TABLES: usize = 1 << (1 << VARS);
    let mut m = Manager::new();
    let vars: Vec<Ref> = (0..VARS).map(|i| m.var(i)).collect();

    // Build every function bottom-up by Shannon expansion on the topmost
    // variable: a 2^k-bit table over k variables splits into two
    // 2^(k-1)-bit cofactor tables over k-1 variables.
    fn build(
        m: &mut Manager,
        vars: &[Ref],
        table: u64,
        k: u32,
        memo: &mut std::collections::HashMap<(u32, u64), Ref>,
    ) -> Ref {
        let bits = 1u32 << k;
        let mask = if bits == 64 {
            u64::MAX
        } else {
            (1 << bits) - 1
        };
        let table = table & mask;
        if table == 0 {
            return Ref::ZERO;
        }
        if table == mask {
            return Ref::ONE;
        }
        if let Some(&r) = memo.get(&(k, table)) {
            return r;
        }
        let half = bits / 2;
        let lo = build(m, vars, table, k - 1, memo);
        let hi = build(m, vars, table >> half, k - 1, memo);
        let r = m.ite(vars[(k - 1) as usize], hi, lo);
        memo.insert((k, table), r);
        r
    }

    let mut memo = std::collections::HashMap::new();
    let mut refs: Vec<Ref> = Vec::with_capacity(TABLES);
    for t in 0..TABLES {
        refs.push(build(&mut m, &vars, t as u64, VARS, &mut memo));
    }

    for t in 0..TABLES {
        let f = refs[t];
        let g = refs[t ^ (TABLES - 1)];
        // `¬f` is the same node, opposite sign: complement is free.
        assert_eq!(g, !f, "table {t:#06x}: negation must be a sign flip");
        assert_eq!(f.node(), g.node(), "table {t:#06x}: pair must share a node");
        // Double negation is the identity at the `Ref` level.
        assert_eq!(!!f, f, "table {t:#06x}: double negation");
        // Semantic spot-proof against the table itself.
        for row in 0..1u32 << VARS {
            let assignment: Vec<bool> = (0..VARS).map(|i| row >> i & 1 == 1).collect();
            assert_eq!(
                m.eval(f, &assignment),
                t as u64 >> row & 1 == 1,
                "table {t:#06x} row {row}"
            );
        }
    }
    // The structural half of the claim: every stored node is in canonical
    // form (1-edge regular), which makes a node/complement collision
    // unrepresentable in the unique table.
    m.verify_edge_canonical_form();
    m.verify_interior_refs();
}

/// Complement-edge ⨯ GC ⨯ converge-sift storm: a negation-heavy op mix
/// (every result also enters the pool complemented) driven through
/// periodic `sift_to_fixpoint` + `collect` cycles. After every quiescent
/// point the canonical-form audit must hold, every pool function and its
/// complement must still agree with the truth-table oracle, and negation
/// must still be a pure sign flip on the reordered, compacted arena.
#[test]
fn complement_storm_with_gc_and_converge_sift_stays_canonical() {
    const OPS: usize = 8_000;
    const POOL: usize = 80;
    const QUIESCE_EVERY: usize = 2_000;
    let mut m = Manager::with_capacity(16, 8);
    let mut rng = Storm(0x3BDD_C0DE_5EED_F00D);
    let mut pool: Vec<(Ref, u64)> = Vec::new();
    for i in 0..NVARS {
        let v = m.var(i);
        m.protect(v);
        pool.push((v, var_truth(i)));
    }
    let cfg = ConvergeConfig::default();
    let mut quiesces = 0usize;
    for step in 0..OPS {
        let a = pool[rng.below(pool.len())];
        let b = pool[rng.below(pool.len())];
        let c = pool[rng.below(pool.len())];
        let (r, truth) = match rng.below(6) {
            0 => (m.and(a.0, b.0), a.1 & b.1),
            1 => {
                // De Morgan through the sign bit: ¬(¬a ∨ ¬b) = a ∧ b.
                let nor = !m.or(!a.0, !b.0);
                (nor, a.1 & b.1)
            }
            2 => (m.xor(a.0, !b.0), a.1 ^ !b.1),
            3 => (m.ite(!a.0, b.0, c.0), (!a.1 & b.1) | (a.1 & c.1)),
            4 => (
                m.maj(!a.0, !b.0, !c.0),
                !((a.1 & b.1) | (b.1 & c.1) | (a.1 & c.1)),
            ),
            _ => (!a.0, !a.1),
        };
        let truth = truth & mask();
        assert_eq!(
            bdd_truth(&m, r),
            truth,
            "step {step}: BDD disagrees with oracle"
        );
        assert_eq!(!!r, r, "step {step}: double negation at the Ref level");
        // Half the inserts go in complemented, so the working set is
        // saturated with signed edges before every sift/collect cycle.
        let (ins, ins_t) = if step % 2 == 0 {
            (r, truth)
        } else {
            (!r, !truth & mask())
        };
        if pool.len() < POOL {
            m.protect(ins);
            pool.push((ins, ins_t));
        } else {
            let k = rng.below(POOL);
            m.release(pool[k].0);
            m.protect(ins);
            pool[k] = (ins, ins_t);
        }
        if step % QUIESCE_EVERY == QUIESCE_EVERY - 1 {
            let report = m.sift_to_fixpoint(&cfg);
            assert!(report.passes <= cfg.max_passes, "fixpoint must terminate");
            m.collect();
            m.verify_edge_canonical_form();
            m.verify_interior_refs();
            quiesces += 1;
            for &(f, t) in &pool {
                assert_eq!(bdd_truth(&m, f), t, "pool function corrupted at {step}");
                assert_eq!(
                    bdd_truth(&m, !f),
                    !t & mask(),
                    "complement corrupted at {step}"
                );
            }
            // Negation stays free after reordering: same node, new sign.
            let x = pool[rng.below(pool.len())].0;
            assert_eq!((!x).node(), x.node(), "sift must not split a pair");
        }
    }
    assert!(quiesces >= 4, "the storm must actually quiesce");
}
