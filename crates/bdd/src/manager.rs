//! The node arena, the open-addressed unique table, the direct-mapped
//! computed cache and the dead-node collector — the memory system of the
//! BDD kernel.
//!
//! Layout (CUDD-style):
//!
//! * **Nodes** live in a flat arena (`Vec<Node>`); a node is identified by
//!   its index and never moves. Reclaimed slots are poisoned, linked into a
//!   free list, and reused by [`Manager::mk`] before the arena grows.
//! * The **unique table** is a power-of-two `Vec<u32>` bucket array mapping
//!   a multiply-mixed hash of `(var, low, high)` to a node index by linear
//!   probing. Index `0` (the terminal, which is never hash-consed) doubles
//!   as the empty-bucket sentinel, so a probe touches exactly one `u32` per
//!   step. The table doubles when 3/4 full. There are no tombstones:
//!   deletions happen only in bulk during a collection, which rebuilds the
//!   bucket array from the surviving nodes (and shrinks it when they would
//!   fit a table a quarter of the size).
//! * The **computed cache** ([`ComputedCache`]) memoizes operation results
//!   in a fixed-size, direct-mapped, lossy table: a colliding insert simply
//!   overwrites. Entries are generation-tagged, so [`Manager::clear_caches`]
//!   is O(1) (it bumps the generation). Every recursive kernel (ITE, AND,
//!   XOR, cofactor, restrict, constrain, scoped rebuilds) shares this cache
//!   through per-operation tag codes.
//!
//! # Reference counts and garbage collection
//!
//! Long decomposition flows create orders of magnitude more intermediate
//! functions than they keep. Two reference counts govern node lifetime:
//!
//! * **External counts** (`refs`): callers declare the functions they
//!   hold across collection points with [`Manager::protect`] and drop the
//!   claim with [`Manager::release`] — the explicit `ref`/`deref` pair of
//!   every production BDD package.
//! * **Interior counts** (`int_refs`): exactly how many arena nodes name
//!   a slot as a child. Every code path that creates, rewrites or
//!   destroys an edge keeps them exact — `mk` increments the children of
//!   each node it creates (fresh slots and free-list reuse alike), the
//!   level swap's slot patching increments the new children and
//!   decrements the old, and the sweep decrements the children of every
//!   node it reclaims. A debug-mode full recount
//!   ([`Manager::verify_interior_refs`]) audits the bookkeeping after
//!   every collection and sift walk.
//!
//! A node with both counts at zero is dead by definition, which buys two
//! things. [`Manager::collect`] reclaims **without a mark phase**: one
//! arena scan seeds the zero-count nodes and reclamation cascades through
//! their children — O(arena + dead), never a traversal of the live set —
//! then the unique table is rebuilt without the dead entries (shrinking
//! when sparse) and the computed cache is *scrubbed* (exactly the entries
//! naming a reclaimed slot are dropped), so no dangling [`Ref`] survives
//! anywhere in the kernel while the memo stays warm across collections.
//! And sifting's level swaps know *immediately* when a displaced node
//! died, which is what makes their size deltas exact (see below).
//! [`Manager::maybe_collect`] is the cheap flow-level hook: it runs a
//! collection only once enough allocation has happened since the last
//! one *and* a mark pass confirms the dead fraction exceeds the
//! configured threshold ([`GcConfig::dead_fraction`]).
//!
//! Collection never runs implicitly inside an operation: the recursive
//! kernels (`ite`, `and`, `xor`, the cofactor family, scoped rebuilds)
//! create unprotected intermediates freely, and callers invoke
//! `collect`/`maybe_collect` only at quiescent points where every live
//! function is protected. The hot `mk` path pays only the two interior
//! increments, and arena growth stays bounded to a constant factor of
//! the live size.
//!
//! # Variable order
//!
//! A variable's *index* is its identity (what callers, assignments and
//! gate bindings name); its *level* is its current position in the
//! decision order, `0` being the root. The two are decoupled through the
//! [`Manager`]'s `var2level`/`level2var` permutation maps, and every
//! recursive kernel branches on levels, so the order can change without
//! rebuilding a single function:
//!
//! * [`Manager::swap_levels`] exchanges two *adjacent* levels in place:
//!   only the nodes at the upper level that reference the lower one are
//!   rewritten (their arena slots are patched through the unique table),
//!   so every outstanding [`Ref`] keeps denoting the same function.
//! * [`Manager::sift`] is Rudell's sifting on top of the swap: each
//!   variable (live-densest first, re-ranked before every walk) is moved
//!   through the whole order and parked at the position minimizing the
//!   protected-root node count, with a growth abort bounded against each
//!   variable's own starting size and a total swap budget
//!   ([`SiftConfig`]). The pass tracks the rooted size **in O(1) per
//!   swap** from the swaps' exact deltas: sift swaps run in eager-reclaim
//!   mode (a displaced node whose interior and external counts both hit
//!   zero is reclaimed on the spot, cascading), so the live arena *is*
//!   the rooted set for the whole pass — no per-swap re-traversal, and no
//!   swap garbage to drag through later moves.
//! * [`Manager::sift_to_fixpoint`] repeats budget-relaxed passes until a
//!   pass stops paying ([`ConvergeConfig`]), and
//!   [`SiftConfig::symmetric_groups`] fuses adjacent symmetric variables
//!   ([`Manager::symmetric_levels`], the Panda–Somenzi check over the
//!   interior counts) into blocks that walk the order as one unit.
//! * [`Manager::maybe_sift`] is the flow-level hook, threshold-gated like
//!   [`Manager::maybe_collect`] ([`AutoSiftConfig`], disabled by
//!   default): flows offer it at the same quiescent points as collection.
//!
//! The public [`Manager::swap_levels`] preserves the function behind
//! every existing `Ref` (unlike collection, which invalidates unprotected
//! ones), but it does create garbage — the displaced lower-level nodes —
//! so flows pair direct swaps with a following `maybe_collect`. Sifting
//! needs no such pairing: its eager-reclaim swaps leave nothing behind.

use crate::reference::{NodeId, Ref, Var};
use std::cell::RefCell;

/// A stored BDD node: the Shannon expansion of a function with respect to
/// its top variable.
///
/// Invariants maintained by the [`Manager`]:
/// * `high` (the 1-edge) is never complemented;
/// * `low != high`;
/// * the top variables of `low` and `high` sit at strictly deeper
///   *levels* than `var` (in the current `var2level` order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Node {
    /// Decision variable *index* (its identity). The variable's current
    /// position in the order is `Manager::var2level`; the two coincide
    /// only until the first reordering.
    pub var: Var,
    /// Negative (0-edge) cofactor; may be complemented.
    pub low: Ref,
    /// Positive (1-edge) cofactor; always regular.
    pub high: Ref,
}

/// Sentinel variable index used by the terminal node; compares below every
/// real variable when ordered by *level depth* (larger index = deeper).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Sentinel variable index poisoning a reclaimed arena slot. A slot with
/// this variable is on the free list: it is never reachable from a live
/// [`Ref`], never listed in the unique table, and is overwritten on reuse.
pub(crate) const FREE_VAR: u32 = u32::MAX - 1;

/// Operation tags for the shared computed cache. Tag 0 is reserved so a
/// zero-initialized entry can never match a real key.
pub(crate) mod op {
    /// Three-operand if-then-else.
    pub const ITE: u32 = 1;
    /// Two-operand conjunction (specialized kernel).
    pub const AND: u32 = 2;
    /// Two-operand exclusive-or (specialized kernel).
    pub const XOR: u32 = 3;
    /// Single-variable cofactor `f|v=b`.
    pub const COFACTOR: u32 = 4;
    /// Coudert–Madre restrict.
    pub const RESTRICT: u32 = 5;
    /// Coudert–Madre constrain.
    pub const CONSTRAIN: u32 = 6;
    /// Call-scoped rebuilds (permute, node replacement): the second key
    /// word is a per-call epoch, so stale entries can never be observed.
    pub const SCOPED: u32 = 7;
}

/// Best-effort prefetch of the cache line holding `*p` (x86_64 only; a
/// no-op elsewhere). Unique-table probes use it to overlap the *next*
/// probe slot's node fetch with the current slot's key comparison — on a
/// collision chain the bucket words share a line but the arena nodes they
/// name do not.
#[inline(always)]
fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure performance hint with no memory effects;
    // the CPU ignores addresses it cannot fetch.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Multiply-mix of a `(var, low, high)` triple — the unique-table hash.
#[inline(always)]
fn triple_hash(a: u32, b: u32, c: u32) -> u64 {
    let x = ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let y = (c as u64 ^ 0xD1B5_4A32_D192_ED03).wrapping_mul(0xA24B_AED4_963E_E407);
    let mut h = x ^ y;
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Running statistics of the kernel's memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Computed-cache probes.
    pub lookups: u64,
    /// Computed-cache probes that returned a memoized result.
    pub hits: u64,
    /// Computed-cache insertions (including overwrites of colliding slots).
    pub insertions: u64,
    /// Largest node-arena size (slot count, including reclaimed slots)
    /// observed over the manager's lifetime.
    pub peak_nodes: usize,
    /// Computed-cache capacity in entries (fixed after construction).
    pub cache_entries: usize,
    /// Unique-table bucket count (shrinks when a collection leaves the
    /// table sparse).
    pub unique_buckets: usize,
    /// Arena slots known to be reclaimable or already reclaimed: the
    /// current free list, plus — when computed via
    /// [`Manager::cache_stats_with_roots`] — the in-use nodes unreachable
    /// from the supplied roots (what the next sweep from those roots would
    /// add to the free list).
    pub garbage_estimate: usize,
    /// Arena slots currently holding a live (not reclaimed) node,
    /// including the terminal.
    pub live_nodes: usize,
    /// Reclaimed arena slots currently awaiting reuse on the free list.
    pub free_nodes: usize,
    /// Total nodes reclaimed by the collector over the manager's lifetime.
    pub reclaimed_total: u64,
    /// Number of collections that actually swept (mark passes that found
    /// nothing to reclaim are not counted).
    pub collections: u64,
    /// Adjacent-level swaps over the manager's lifetime, counted at the
    /// swap primitive itself — sift walks and restores, window-reorder
    /// installs, and direct [`Manager::swap_levels`] calls alike (the
    /// window install path used to bypass this counter and under-report
    /// reorder work).
    pub sift_swaps: u64,
    /// Number of [`Manager::sift`] passes run (including those triggered
    /// through [`Manager::maybe_sift`]).
    pub sifts: u64,
}

impl CacheStats {
    /// Fraction of computed-cache lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Tuning knobs of the dead-node collector (see [`Manager::maybe_collect`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcConfig {
    /// A [`Manager::maybe_collect`] call sweeps only when at least this
    /// fraction of the in-use nodes is dead (unreachable from any
    /// protected node). Also gates how much allocation must happen between
    /// collection attempts, so repeated `maybe_collect` calls on a quiet
    /// manager cost O(1).
    pub dead_fraction: f64,
    /// Collections are skipped entirely while fewer than this many nodes
    /// are in use — tiny managers are cheaper to let grow.
    pub min_nodes: usize,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            dead_fraction: 0.25,
            min_nodes: 4096,
        }
    }
}

/// Tuning knobs of one [`Manager::sift`] pass (Rudell's algorithm).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiftConfig {
    /// While moving one variable through the order, abort the current
    /// direction once the rooted size exceeds this factor of the size at
    /// the variable's *starting position* (CUDD's `maxGrowth`). Bounding
    /// against the start — not the best size seen this pass — keeps one
    /// variable's big win from licensing a later variable to balloon the
    /// global size.
    pub max_growth: f64,
    /// Total adjacent-swap budget of the pass. Once exhausted no further
    /// variable is sifted; the in-flight variable (or group) still
    /// returns to its best position — those restore swaps exceed the
    /// budget and are reported as [`SiftReport::restore_overage`].
    pub max_swaps: usize,
    /// Sift at most this many variables (each walked group counts once),
    /// densest level first.
    pub max_vars: usize,
    /// Detect adjacent symmetric variables at each walk's start
    /// ([`Manager::symmetric_levels`]) and move the whole group through
    /// the order as a block (Panda–Somenzi symmetric sifting). Off by
    /// default; [`ConvergeConfig`] turns it on.
    pub symmetric_groups: bool,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            max_swaps: 4096,
            max_vars: usize::MAX,
            symmetric_groups: false,
        }
    }
}

/// Tuning knobs of [`Manager::sift_to_fixpoint`]: budget-relaxed
/// [`Manager::sift`] passes repeated until one stops paying.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergeConfig {
    /// Per-pass configuration. The default relaxes the swap budget far
    /// beyond [`SiftConfig::default`] (the O(1) swap deltas make long
    /// passes affordable) and enables symmetric-group sifting.
    pub pass: SiftConfig,
    /// Convergence threshold: stop once a pass shrinks the rooted size
    /// by less than this fraction of its starting size.
    pub min_gain: f64,
    /// Hard cap on the number of passes.
    pub max_passes: usize,
}

impl Default for ConvergeConfig {
    fn default() -> Self {
        ConvergeConfig {
            pass: SiftConfig {
                max_growth: 1.2,
                max_swaps: 1 << 20,
                max_vars: usize::MAX,
                symmetric_groups: true,
            },
            min_gain: 0.01,
            max_passes: 8,
        }
    }
}

/// Outcome of a [`Manager::sift`] pass (or an accumulated
/// [`Manager::sift_to_fixpoint`] run). Sizes are rooted sizes (nodes
/// reachable from the protected roots, see [`Manager::rooted_size`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiftReport {
    /// Rooted size before the pass.
    pub initial_size: usize,
    /// Rooted size after the pass (never larger than `initial_size`).
    pub final_size: usize,
    /// Adjacent-level swaps performed, restores included.
    pub swaps: usize,
    /// Variables actively walked through the order (a symmetric group
    /// walked as a block counts once).
    pub vars_sifted: usize,
    /// Swaps spent past [`SiftConfig::max_swaps`] returning the
    /// in-flight variable or group to its best position — restores are
    /// never budget-gated, so this is the budget overshoot.
    pub restore_overage: usize,
    /// Symmetric groups (two or more variables) moved as blocks.
    pub groups: usize,
    /// Sift passes accumulated into this report (1 from [`Manager::sift`],
    /// up to [`ConvergeConfig::max_passes`] from the fixpoint driver).
    pub passes: usize,
}

/// Gating of the automatic [`Manager::maybe_sift`] hook. Disabled by
/// default; flows that want dynamic reordering enable it and then offer
/// `maybe_sift` at the same quiescent points as `maybe_collect`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoSiftConfig {
    /// Master switch; when false, [`Manager::maybe_sift`] is a no-op.
    pub enabled: bool,
    /// The first sift triggers once this many nodes are live; after each
    /// sift the threshold is re-armed at twice the post-sift live size
    /// (never below this floor).
    pub min_nodes: usize,
    /// Per-pass budgets forwarded to [`Manager::sift`].
    pub sift: SiftConfig,
    /// When set, a triggered sift runs [`Manager::sift_to_fixpoint`]
    /// under this configuration instead of the single `sift` pass.
    pub fixpoint: Option<ConvergeConfig>,
}

impl Default for AutoSiftConfig {
    fn default() -> Self {
        AutoSiftConfig {
            enabled: false,
            min_nodes: 4096,
            sift: SiftConfig::default(),
            fixpoint: None,
        }
    }
}

/// One computed-cache entry: the full operation key, the result, and the
/// generation that wrote it. 20 bytes — the key is three full words plus
/// a tag, because a lossy *match* (as opposed to a lossy *eviction*)
/// would return a wrong function, so the key can never be hashed down.
#[derive(Clone, Copy, Default)]
struct CacheEntry {
    a: u32,
    b: u32,
    c: u32,
    /// `generation << 3 | op` — op tags fit in 3 bits, and generation 0 is
    /// never current, so zero-initialized slots never match.
    tag: u32,
    result: u32,
}

/// Associativity of one computed-cache set. Three 20-byte entries plus
/// the 4-byte victim cursor fill a 64-byte line exactly; a fourth way
/// would need lossy keys, which rules it out (see [`CacheEntry`]).
const CACHE_WAYS: usize = 3;

/// One cache-line-sized associativity set of the computed cache: three
/// ways probed together, plus a round-robin victim cursor for inserts
/// that find no matching or stale way. The alignment pins each set to
/// one line, so a probe that misses all three ways still costs a single
/// memory access — where the old direct-mapped layout paid a full miss
/// per conflicting key.
#[repr(align(64))]
#[derive(Clone, Copy)]
struct CacheSet {
    ways: [CacheEntry; CACHE_WAYS],
    victim: u32,
}

impl Default for CacheSet {
    fn default() -> CacheSet {
        CacheSet {
            ways: [CacheEntry::default(); CACHE_WAYS],
            victim: 0,
        }
    }
}

// The whole point of the set geometry: one set, one cache line.
const _: () = assert!(std::mem::size_of::<CacheSet>() == 64);

/// The fixed-size, set-associative, lossy operation cache: power-of-two
/// [`CacheSet`] groups (three ways per 64-byte line), indexed by the same
/// multiply-mix hash as the unique table. Within a set, inserts overwrite
/// a stale way first and round-robin among live ones, so two hot keys
/// that collide no longer evict each other every call.
///
/// Entries are tagged by one of *two* generations: most operations are
/// function-valued (their keys and results are `Ref`s whose functions the
/// in-place level swap preserves), but the Coudert–Madre generalized
/// cofactors pick their result *using the variable order*, so their memo
/// must not survive a reordering. [`ComputedCache::clear_order_sensitive`]
/// retires only the latter in O(1), keeping the ITE/AND/XOR/cofactor memo
/// warm across level swaps — the same warm-memo philosophy as the GC's
/// selective scrub.
pub(crate) struct ComputedCache {
    sets: Vec<CacheSet>,
    mask: usize,
    generation: u32,
    /// Generation of the order-sensitive ops (`RESTRICT`, `CONSTRAIN`);
    /// bumped by every node-rewriting level swap.
    order_generation: u32,
    lookups: u64,
    hits: u64,
    insertions: u64,
}

/// Generations live in the upper bits of the entry tag; op tags occupy the
/// low `GEN_SHIFT` bits.
const GEN_SHIFT: u32 = 3;

/// Mask extracting the op code from an entry tag.
const OP_MASK: u32 = (1 << GEN_SHIFT) - 1;

/// Whether a memoized result of `op` depends on the current variable
/// order (rather than only on the operand functions).
#[inline(always)]
fn order_sensitive(op: u32) -> bool {
    op == op::RESTRICT || op == op::CONSTRAIN
}

impl ComputedCache {
    /// `bits` is the historical entry-count budget (`2^bits` direct-mapped
    /// slots); the set geometry spends it as `2^(bits-2)` three-way sets,
    /// i.e. three quarters of the entries in four fifths of the memory,
    /// with the associativity buying back far more than the lost quarter.
    fn with_bits(bits: u32) -> ComputedCache {
        let n = 1usize << (bits.clamp(8, 28) - 2);
        ComputedCache {
            sets: vec![CacheSet::default(); n],
            mask: n - 1,
            generation: 1,
            order_generation: 1,
            lookups: 0,
            hits: 0,
            insertions: 0,
        }
    }

    /// Total entry capacity (all ways of all sets), for stats.
    fn entry_capacity(&self) -> usize {
        self.sets.len() * CACHE_WAYS
    }

    #[inline(always)]
    fn set_of(&self, op: u32, a: u32, b: u32, c: u32) -> usize {
        (triple_hash(a, b ^ op.rotate_left(27), c) as usize) & self.mask
    }

    #[inline(always)]
    fn tag_for(&self, op: u32) -> u32 {
        let gen = if order_sensitive(op) {
            self.order_generation
        } else {
            self.generation
        };
        gen << GEN_SHIFT | op
    }

    #[inline(always)]
    pub(crate) fn lookup(&mut self, op: u32, a: u32, b: u32, c: u32) -> Option<Ref> {
        self.lookups += 1;
        let tag = self.tag_for(op);
        let idx = self.set_of(op, a, b, c);
        let set = &mut self.sets[idx];
        for i in 0..CACHE_WAYS {
            let e = set.ways[i];
            if e.tag == tag && e.a == a && e.b == b && e.c == c {
                self.hits += 1;
                // MRU promotion: hot keys migrate to way 0, so their next
                // probe matches on the first compare. Both ways share one
                // cache line, so the swap is register traffic.
                if i != 0 {
                    set.ways[i] = set.ways[0];
                    set.ways[0] = e;
                }
                return Some(Ref::from_raw(e.result));
            }
        }
        None
    }

    #[inline(always)]
    pub(crate) fn insert(&mut self, op: u32, a: u32, b: u32, c: u32, result: Ref) {
        self.insertions += 1;
        let tag = self.tag_for(op);
        let idx = self.set_of(op, a, b, c);
        let (generation, order_generation) = (self.generation, self.order_generation);
        let set = &mut self.sets[idx];
        // Way choice: the way already holding this key, else the first
        // stale way (its generation was retired by a clear), else the
        // round-robin victim — so re-memoizing refreshes in place and
        // live conflicting keys take turns instead of thrashing one slot.
        let mut way = None;
        for (i, e) in set.ways.iter().enumerate() {
            if e.tag == tag && e.a == a && e.b == b && e.c == c {
                way = Some(i);
                break;
            }
            let live_gen = if order_sensitive(e.tag & OP_MASK) {
                order_generation
            } else {
                generation
            };
            if way.is_none() && e.tag >> GEN_SHIFT != live_gen {
                way = Some(i);
            }
        }
        let i = way.unwrap_or_else(|| {
            let v = set.victim as usize % CACHE_WAYS;
            set.victim = set.victim.wrapping_add(1);
            v
        });
        set.ways[i] = CacheEntry {
            a,
            b,
            c,
            tag,
            result: result.raw(),
        };
    }

    /// O(1) clear of everything: bump both generations so every slot is
    /// stale. On the (practically unreachable) generation wrap, pay one
    /// real wipe.
    fn clear(&mut self) {
        self.generation += 1;
        self.order_generation += 1;
        if self.generation >= u32::MAX >> GEN_SHIFT
            || self.order_generation >= u32::MAX >> GEN_SHIFT
        {
            self.sets.fill(CacheSet::default());
            self.generation = 1;
            self.order_generation = 1;
        }
    }

    /// O(1) clear of only the order-sensitive results (the conservative
    /// post-swap scrub); function-valued memos stay warm.
    fn clear_order_sensitive(&mut self) {
        self.order_generation += 1;
        if self.order_generation >= u32::MAX >> GEN_SHIFT {
            self.sets.fill(CacheSet::default());
            self.generation = 1;
            self.order_generation = 1;
        }
    }
}

impl std::fmt::Debug for ComputedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputedCache")
            .field("sets", &self.sets.len())
            .field("ways", &CACHE_WAYS)
            .field("generation", &self.generation)
            .field("lookups", &self.lookups)
            .field("hits", &self.hits)
            .finish()
    }
}

/// Reusable visited-stamp scratch for `&self` DAG traversals: `stamp[i] ==
/// gen` means node `i` was seen in the current traversal. Replaces a fresh
/// `HashSet` per call with two loads and a compare per visit.
#[derive(Debug, Default)]
pub(crate) struct VisitScratch {
    stamp: Vec<u32>,
    gen: u32,
}

impl VisitScratch {
    /// Starts a traversal over `n` nodes; returns the scratch ready to mark.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Marks a node; returns `true` the first time it is seen.
    #[inline(always)]
    pub(crate) fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }

    /// Whether node `i` was marked in the traversal opened by the most
    /// recent [`VisitScratch::begin`] (used by the sweep phase to read the
    /// mark phase's result).
    #[inline(always)]
    pub(crate) fn is_marked(&self, i: usize) -> bool {
        self.stamp.get(i) == Some(&self.gen)
    }
}

/// Resource budget governing the fallible (`try_*`) kernel entry points.
///
/// All fields default to `None` (unlimited). A manager with limits
/// installed ([`Manager::set_limits`]) checks them from a cheap step
/// counter ticked once per recursive kernel invocation; when any bound is
/// crossed the running `try_*` operation returns [`LimitExceeded`] and
/// unwinds cooperatively. The infallible kernels (`ite`, `and`, ...)
/// always run with this budget suspended — they are unlimited-budget
/// wrappers over the same recursions and can never abort.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceLimits {
    /// Abort once [`Manager::live_nodes`] exceeds this (the memory bound:
    /// a blowing-up cone is cut off before it can exhaust the arena).
    pub max_live_nodes: Option<usize>,
    /// Abort after this many kernel recursion steps since the limits were
    /// installed or last [`Manager::reset_steps`] (the work bound).
    pub max_steps: Option<u64>,
    /// Abort once `Instant::now()` passes this absolute deadline (checked
    /// every 256 steps to keep the clock off the hot path).
    pub deadline: Option<std::time::Instant>,
}

impl ResourceLimits {
    /// Whether any bound is actually set.
    pub fn is_limited(&self) -> bool {
        self.max_live_nodes.is_some() || self.max_steps.is_some() || self.deadline.is_some()
    }
}

/// Which bound of a [`ResourceLimits`] was crossed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitKind {
    /// [`ResourceLimits::max_live_nodes`].
    Nodes,
    /// [`ResourceLimits::max_steps`].
    Steps,
    /// [`ResourceLimits::deadline`].
    Deadline,
    /// A test-only injected fault ([`Manager::fault_inject_abort_after`]).
    Injected,
}

/// A `try_*` kernel aborted because a [`ResourceLimits`] bound was
/// crossed.
///
/// The abort is *clean*: the manager remains fully consistent — unique
/// table, computed cache, interior reference counts and per-variable
/// lists all intact. Nodes built by the aborted recursion are ordinary
/// unreferenced garbage for the next [`Manager::collect`]; no state needs
/// rolling back and every previously held [`Ref`] is still valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LimitExceeded {
    /// The bound that was crossed.
    pub kind: LimitKind,
    /// Kernel steps taken when the abort fired.
    pub steps: u64,
    /// Live node count when the abort fired.
    pub live_nodes: usize,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            LimitKind::Nodes => "node limit",
            LimitKind::Steps => "step limit",
            LimitKind::Deadline => "deadline",
            LimitKind::Injected => "injected fault",
        };
        write!(
            f,
            "BDD kernel aborted: {what} exceeded after {} steps ({} live nodes)",
            self.steps, self.live_nodes
        )
    }
}

impl std::error::Error for LimitExceeded {}

/// A BDD manager: owns the node arena, the unique table guaranteeing
/// canonicity, and the shared computed cache.
///
/// All functions created by one manager live in the same shared DAG, so
/// equality of [`Ref`]s is equality of Boolean functions.
///
/// # Example
///
/// ```
/// use bdd::Manager;
///
/// let mut m = Manager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.xor(a, b);
/// assert_eq!(m.not(f), m.xnor(a, b));
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    /// External reference count per arena slot (collection roots). Only
    /// [`Manager::protect`]/[`Manager::release`] touch these.
    refs: Vec<u32>,
    /// Interior reference count per arena slot: the number of *arena
    /// edges* into the slot, i.e. how many non-free nodes name it as
    /// `low` or `high` (edges to the terminal are not tracked — it is
    /// always live). Maintained exactly by every code path that creates,
    /// rewrites or destroys a node: `mk_regular` (fresh slots and
    /// free-list reuse alike increment their children), the level swap's
    /// slot patching (increment the new children, decrement the old), and
    /// the sweep (reclaiming a node decrements its children). A node with
    /// `refs == 0 && int_refs == 0` is dead by definition — nothing in
    /// the kernel can reach it — which is what makes the refcount-driven
    /// [`Manager::collect`] and the O(1) swap size deltas possible.
    /// Audited against a full recount by [`Manager::verify_interior_refs`]
    /// in debug builds.
    int_refs: Vec<u32>,
    /// Position of each slot inside its `var_nodes[var]` list, making
    /// single-slot removal O(1) (swap-remove + patch the displaced
    /// entry). Only meaningful for non-free slots.
    var_pos: Vec<u32>,
    /// Reclaimed arena slots awaiting reuse (LIFO).
    free: Vec<u32>,
    /// Open-addressed unique table (bucket => node index, 0 = empty).
    buckets: Vec<u32>,
    bucket_mask: usize,
    occupied: usize,
    pub(crate) cache: ComputedCache,
    /// Per-call epoch for [`op::SCOPED`] cache entries.
    pub(crate) scope_epoch: u32,
    /// Visited-stamp scratch shared by the `&self` traversals. This
    /// `RefCell` is what makes `Manager: !Sync` (pinned by a
    /// `compile_fail` doctest in the crate docs): a manager must be owned
    /// by one thread at a time — parallel suite harnesses build one
    /// manager per worker and never share it.
    pub(crate) visited: RefCell<VisitScratch>,
    num_vars: u32,
    /// Position of each variable in the decision order
    /// (`var2level[var] = level`; always a permutation of `0..num_vars`).
    var2level: Vec<u32>,
    /// Inverse of `var2level` (`level2var[level] = var`).
    level2var: Vec<u32>,
    /// Exact per-variable slot lists (`var_nodes[var]` holds every arena
    /// slot currently storing a node of that variable, live or
    /// dead-but-unswept). Maintained by `mk` on creation, by the level
    /// swap when nodes change variable, and rebuilt by the sweep — this
    /// is what makes [`Manager::swap_levels`] O(level population) instead
    /// of O(arena).
    var_nodes: Vec<Vec<u32>>,
    var_names: Vec<Option<String>>,
    gc: GcConfig,
    auto_sift: AutoSiftConfig,
    /// Live-node threshold re-arming [`Manager::maybe_sift`].
    next_sift: usize,
    sift_swaps: u64,
    sifts: u64,
    /// Reclamation epoch: bumped whenever any slot is reclaimed — by a
    /// sweeping collection *or* by the eager reclamation inside sifting's
    /// level swaps. Holders of `Ref`-keyed side tables (e.g. the majority
    /// hook's memo) compare this against a saved value to know when their
    /// keys may dangle.
    gc_epoch: u64,
    /// Number of sweeping collections (mark/refcount sweeps that
    /// reclaimed at least one node); excludes per-swap eager reclamation.
    collections: u64,
    reclaimed_total: u64,
    /// Nodes created since the last collection attempt (gates
    /// [`Manager::maybe_collect`]).
    allocs_since_gc: usize,
    peak_nodes: usize,
    /// Resource budget consulted by the `try_*` kernels (all-`None` =
    /// unlimited). Installed by [`Manager::set_limits`].
    limits: ResourceLimits,
    /// Fast gate for [`Manager::tick`]: true iff `limits.is_limited()` or
    /// a fault injection is armed, and governance is not suspended by an
    /// infallible wrapper.
    governed: bool,
    /// Kernel recursion steps since limits were installed / last reset.
    steps: u64,
    /// Test-only fault injection: abort with [`LimitKind::Injected`] once
    /// `steps` reaches this value.
    abort_at_step: Option<u64>,
}

/// Default unique-table bucket count (grows on demand).
const DEFAULT_BUCKETS: usize = 1 << 12;
/// Smallest bucket array [`Manager::with_capacity`] will allocate.
const MIN_BUCKETS: usize = 1 << 8;
/// Default computed-cache size in bits: the entry-count budget a
/// direct-mapped cache would spend as `1 << bits` slots; the
/// set-associative geometry spends it as `1 << (bits - 2)` three-way,
/// cache-line-sized sets (see [`ComputedCache`]).
pub const DEFAULT_CACHE_BITS: u32 = 14;

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager containing only the terminal node.
    pub fn new() -> Manager {
        Manager::with_capacity(DEFAULT_BUCKETS / 2, DEFAULT_CACHE_BITS)
    }

    /// Creates a manager pre-sized for `nodes` arena nodes and a computed
    /// cache budgeted at `cache_bits` (clamped to `[8, 28]`; the cache
    /// holds `3 << (cache_bits - 2)` entries in three-way line-sized sets).
    ///
    /// Sizing the tables up front avoids rehash churn while building large
    /// functions; the unique table still doubles on demand past `nodes`.
    pub fn with_capacity(nodes: usize, cache_bits: u32) -> Manager {
        let buckets = (nodes.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let mut arena = Vec::with_capacity(nodes.max(16));
        arena.push(Node {
            var: Var(TERMINAL_VAR),
            low: Ref::ONE,
            high: Ref::ONE,
        });
        Manager {
            nodes: arena,
            refs: vec![0u32; 1],
            int_refs: vec![0u32; 1],
            var_pos: vec![0u32; 1],
            free: Vec::new(),
            buckets: vec![0u32; buckets],
            bucket_mask: buckets - 1,
            occupied: 0,
            cache: ComputedCache::with_bits(cache_bits),
            scope_epoch: 0,
            visited: RefCell::new(VisitScratch::default()),
            num_vars: 0,
            var2level: Vec::new(),
            level2var: Vec::new(),
            var_nodes: Vec::new(),
            var_names: Vec::new(),
            gc: GcConfig::default(),
            auto_sift: AutoSiftConfig::default(),
            next_sift: AutoSiftConfig::default().min_nodes,
            sift_swaps: 0,
            sifts: 0,
            gc_epoch: 0,
            collections: 0,
            reclaimed_total: 0,
            allocs_since_gc: 0,
            peak_nodes: 1,
            limits: ResourceLimits::default(),
            governed: false,
            steps: 0,
            abort_at_step: None,
        }
    }

    /// Grows the unique table so at least `nodes` arena nodes fit without a
    /// rehash. No-op when already large enough.
    pub fn reserve_nodes(&mut self, nodes: usize) {
        let wanted = (nodes.max(8) * 4 / 3 + 1).next_power_of_two();
        if wanted > self.buckets.len() {
            self.nodes.reserve(nodes.saturating_sub(self.nodes.len()));
            self.grow_to(wanted);
        }
    }

    /// Installs a resource budget for the `try_*` kernels and resets the
    /// step counter. All-`None` limits (the default) disable governance.
    ///
    /// See [`ResourceLimits`] for what each bound means and
    /// [`LimitExceeded`] for the abort-recovery contract.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
        self.steps = 0;
        self.governed = limits.is_limited() || self.abort_at_step.is_some();
    }

    /// Removes any installed resource budget (and disarms fault
    /// injection); the `try_*` kernels become infallible in practice.
    pub fn clear_limits(&mut self) {
        self.limits = ResourceLimits::default();
        self.abort_at_step = None;
        self.steps = 0;
        self.governed = false;
    }

    /// The currently installed resource budget.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// Kernel recursion steps taken since the limits were installed or
    /// last reset — a cheap progress/cost indicator.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Resets the step counter without touching the installed bounds
    /// (e.g. to give each cone of a flow a fresh work budget).
    pub fn reset_steps(&mut self) {
        self.steps = 0;
    }

    /// Test-only fault injection: the next `try_*` kernel aborts with
    /// [`LimitKind::Injected`] once the step counter reaches `steps`
    /// (`None` disarms). Used by the abort-recovery property tests to
    /// stop recursions at arbitrary interior points.
    #[doc(hidden)]
    pub fn fault_inject_abort_after(&mut self, steps: Option<u64>) {
        self.abort_at_step = steps;
        self.steps = 0;
        self.governed = self.limits.is_limited() || steps.is_some();
    }

    /// One governance tick, called at the top of every fallible kernel
    /// recursion. A single predictable branch when ungoverned.
    #[inline(always)]
    pub(crate) fn tick(&mut self) -> Result<(), LimitExceeded> {
        if !self.governed {
            return Ok(());
        }
        self.tick_slow()
    }

    #[cold]
    fn tick_slow(&mut self) -> Result<(), LimitExceeded> {
        self.steps += 1;
        let exceeded = |kind, steps, live| LimitExceeded {
            kind,
            steps,
            live_nodes: live,
        };
        if let Some(at) = self.abort_at_step {
            if self.steps >= at {
                return Err(exceeded(LimitKind::Injected, self.steps, self.live_nodes()));
            }
        }
        if let Some(max) = self.limits.max_steps {
            if self.steps > max {
                return Err(exceeded(LimitKind::Steps, self.steps, self.live_nodes()));
            }
        }
        if let Some(max) = self.limits.max_live_nodes {
            if self.live_nodes() > max {
                return Err(exceeded(LimitKind::Nodes, self.steps, self.live_nodes()));
            }
        }
        if let Some(deadline) = self.limits.deadline {
            // The clock is the only expensive check: sample it every 256
            // steps so governed kernels stay within noise of ungoverned.
            if self.steps & 0xFF == 0 && std::time::Instant::now() >= deadline {
                return Err(exceeded(LimitKind::Deadline, self.steps, self.live_nodes()));
            }
        }
        Ok(())
    }

    /// Runs a fallible kernel closure with governance suspended, turning
    /// it into the unlimited-budget infallible form. This is how every
    /// classic entry point (`ite`, `and`, `xor`, the cofactor family, ...)
    /// wraps its `try_*` twin: the budget and any armed fault injection
    /// are ignored for the duration, then restored.
    pub fn ungoverned<T>(&mut self, f: impl FnOnce(&mut Manager) -> Result<T, LimitExceeded>) -> T {
        let saved = std::mem::replace(&mut self.governed, false);
        let r = f(self);
        self.governed = saved;
        match r {
            Ok(v) => v,
            Err(e) => unreachable!("ungoverned kernel reported {e}"),
        }
    }

    /// The constant true function.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// The constant false function.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::ONE
        } else {
            Ref::ZERO
        }
    }

    /// Returns the projection function of variable `index`, growing the
    /// variable count if needed (new variables enter at the deepest
    /// levels, leaving the existing order untouched).
    pub fn var(&mut self, index: u32) -> Ref {
        self.ensure_var(index);
        self.mk(Var(index), Ref::ZERO, Ref::ONE)
    }

    /// Registers `index` (and any gap below it) in the order maps; new
    /// variables are appended at the deepest levels in index order.
    fn ensure_var(&mut self, index: u32) {
        if index < self.num_vars {
            return;
        }
        self.num_vars = index + 1;
        while (self.var2level.len() as u32) < self.num_vars {
            let next = self.var2level.len() as u32;
            self.var2level.push(next);
            self.level2var.push(next);
            self.var_nodes.push(Vec::new());
        }
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Current arena size in slots, including the terminal and reclaimed
    /// slots awaiting reuse — the kernel's memory footprint. With periodic
    /// collection this stays within a constant factor of
    /// [`Manager::live_nodes`] instead of growing monotonically.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes (arena slots currently holding a node,
    /// including the terminal; excludes the free list).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Read access to a stored node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or out of bounds; in debug
    /// builds, also if `id` was reclaimed by a collection (a dangling
    /// reference the caller failed to protect).
    pub fn node(&self, id: NodeId) -> &Node {
        assert!(!id.is_terminal(), "terminal node has no decision variable");
        let n = &self.nodes[id.index()];
        debug_assert!(
            n.var.0 != FREE_VAR,
            "dangling reference to reclaimed node {id:?}"
        );
        n
    }

    /// The decision variable of an edge's top node; `None` for constants.
    pub fn top_var(&self, f: Ref) -> Option<Var> {
        if f.is_const() {
            None
        } else {
            Some(self.nodes[f.node().index()].var)
        }
    }

    /// Level of an edge's top node in the current variable order, the
    /// *one shared helper* every kernel branches on: constants (and the
    /// poisoned/unregistered sentinels) report `u32::MAX`, the pseudo-level
    /// below every real one. Smaller means closer to the root.
    #[inline(always)]
    pub fn level(&self, f: Ref) -> u32 {
        self.var_level(self.nodes[f.node().index()].var.0)
    }

    /// Level of a variable index; `u32::MAX` for the terminal/free
    /// sentinels and for variables the manager has never seen.
    #[inline(always)]
    pub(crate) fn var_level(&self, var: u32) -> u32 {
        match self.var2level.get(var as usize) {
            Some(&l) => l,
            None => u32::MAX,
        }
    }

    /// Level of variable `v` in the current order (`u32::MAX` if `v` is
    /// unknown to the manager).
    pub fn level_of_var(&self, v: Var) -> u32 {
        self.var_level(v.0)
    }

    /// The variable currently sitting at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars`.
    #[inline(always)]
    pub fn var_at_level(&self, level: u32) -> Var {
        Var(self.level2var[level as usize])
    }

    /// The current order as `var2level[var] = level` (a permutation of
    /// `0..num_vars`).
    pub fn var2level(&self) -> &[u32] {
        &self.var2level
    }

    /// The current order as `level2var[level] = var` (the inverse of
    /// [`Manager::var2level`]).
    pub fn level2var(&self) -> &[u32] {
        &self.level2var
    }

    /// Associates a display name with a variable (used by the DOT export).
    pub fn set_var_name(&mut self, index: u32, name: impl Into<String>) {
        let idx = index as usize;
        if self.var_names.len() <= idx {
            self.var_names.resize(idx + 1, None);
        }
        self.var_names[idx] = Some(name.into());
    }

    /// Display name of a variable, defaulting to `x<i>`.
    pub fn var_name(&self, index: u32) -> String {
        self.var_names
            .get(index as usize)
            .and_then(|n| n.clone())
            .unwrap_or_else(|| format!("x{index}"))
    }

    /// Finds or creates the node `(var, low, high)`, applying the reduction
    /// rules (equal children; complement pushed off the 1-edge). Unknown
    /// variables are registered at the deepest level first.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the children's levels are not strictly
    /// below `var`'s level (which would break canonicity).
    #[inline]
    pub fn mk(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        self.ensure_var(var.0);
        if low == high {
            return low;
        }
        debug_assert!(
            self.var_level(var.0) < self.level(low) && self.var_level(var.0) < self.level(high),
            "mk: ordering violated at {var:?}"
        );
        if high.is_complemented() {
            return !self.mk_regular(var, !low, !high);
        }
        self.mk_regular(var, low, high)
    }

    /// The unique-table probe/insert: finds the canonical node for a
    /// regular-`high` triple or appends a fresh arena node.
    #[inline]
    fn mk_regular(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        debug_assert!(!high.is_complemented());
        let h = triple_hash(var.0, low.raw(), high.raw());
        let mut i = (h as usize) & self.bucket_mask;
        loop {
            let b = self.buckets[i];
            if b == 0 {
                break;
            }
            // Overlap the next probe's node fetch with this comparison:
            // the next bucket word is (almost always) in the line already
            // loaded, but the arena node it names is not.
            let next = self.buckets[(i + 1) & self.bucket_mask];
            if next != 0 {
                prefetch(&self.nodes[next as usize]);
            }
            let n = &self.nodes[b as usize];
            if n.var == var && n.low == low && n.high == high {
                return Ref::new(NodeId(b), false);
            }
            i = (i + 1) & self.bucket_mask;
        }
        // Reclaim-before-grow: reuse a swept slot when one is available,
        // so the arena only grows once the free list is exhausted.
        let idx = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.nodes[slot as usize].var.0 == FREE_VAR);
                debug_assert!(self.refs[slot as usize] == 0);
                debug_assert!(self.int_refs[slot as usize] == 0);
                self.nodes[slot as usize] = Node { var, low, high };
                slot
            }
            None => {
                let idx = self.nodes.len() as u32;
                debug_assert!(idx < u32::MAX >> 1, "node arena exceeds Ref address space");
                self.nodes.push(Node { var, low, high });
                self.refs.push(0);
                self.int_refs.push(0);
                self.var_pos.push(0);
                self.peak_nodes = self.peak_nodes.max(self.nodes.len());
                idx
            }
        };
        // The new node's edges are arena edges: its children gain one
        // interior reference each (free-list reuse and fresh slots alike).
        self.inc_child(low);
        self.inc_child(high);
        self.var_pos[idx as usize] = self.var_nodes[var.index()].len() as u32;
        self.var_nodes[var.index()].push(idx);
        self.allocs_since_gc += 1;
        self.buckets[i] = idx;
        self.occupied += 1;
        if self.occupied * 4 >= self.buckets.len() * 3 {
            self.grow_to(self.buckets.len() * 2);
        }
        Ref::new(NodeId(idx), false)
    }

    /// Rebuilds the bucket array at `new_len` (a power of two) by
    /// re-inserting every live arena node; reclaimed slots are skipped.
    fn grow_to(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        for (idx, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var.0 == FREE_VAR {
                continue;
            }
            let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & mask;
            while buckets[i] != 0 {
                i = (i + 1) & mask;
            }
            buckets[i] = idx as u32;
        }
        self.buckets = buckets;
        self.bucket_mask = mask;
    }

    /// Adds one interior reference to `c`'s node (edges to the terminal
    /// are not tracked — it is unconditionally live).
    #[inline(always)]
    fn inc_child(&mut self, c: Ref) {
        let i = c.node().index();
        if i != 0 {
            self.int_refs[i] += 1;
        }
    }

    /// Drops one interior reference to `c`'s node. With `reclaim`, a node
    /// whose last reference (interior *and* external) just vanished is
    /// reclaimed on the spot, cascading into its own children — the eager
    /// mode sifting uses so swap garbage never exists and the live arena
    /// size *is* the rooted size.
    #[inline]
    fn dec_child(&mut self, c: Ref, reclaim: bool) {
        let i = c.node().index();
        if i == 0 {
            return;
        }
        debug_assert!(
            self.int_refs[i] > 0,
            "interior refcount underflow at slot {i}"
        );
        self.int_refs[i] -= 1;
        if reclaim && self.int_refs[i] == 0 && self.refs[i] == 0 {
            self.reclaim_cascade(i as u32);
        }
    }

    /// Removes `slot` from its `var_nodes` list in O(1) via the stored
    /// position (swap-remove; the displaced tail entry's position is
    /// patched).
    fn remove_from_var_list(&mut self, slot: u32, var: u32) {
        let p = self.var_pos[slot as usize] as usize;
        let list = &mut self.var_nodes[var as usize];
        debug_assert_eq!(list[p], slot, "var_pos out of sync at slot {slot}");
        list.swap_remove(p);
        if p < list.len() {
            self.var_pos[list[p] as usize] = p as u32;
        }
    }

    /// Reclaims a dead slot (`refs == 0 && int_refs == 0`) immediately:
    /// detaches it from the unique table and its per-variable list,
    /// poisons it onto the free list, and cascades into any child whose
    /// last reference this was. Iterative (worklist) so a long dead chain
    /// cannot overflow the stack.
    fn reclaim_cascade(&mut self, start: u32) {
        let mut stack = vec![start];
        while let Some(s) = stack.pop() {
            let n = self.nodes[s as usize];
            debug_assert!(n.var.0 != FREE_VAR, "double reclaim of slot {s}");
            self.remove_slot(s, &n);
            self.remove_from_var_list(s, n.var.0);
            self.nodes[s as usize] = Node {
                var: Var(FREE_VAR),
                low: Ref::ONE,
                high: Ref::ONE,
            };
            self.free.push(s);
            self.reclaimed_total += 1;
            for c in [n.low, n.high] {
                let i = c.node().index();
                if i == 0 {
                    continue;
                }
                debug_assert!(
                    self.int_refs[i] > 0,
                    "interior refcount underflow at slot {i}"
                );
                self.int_refs[i] -= 1;
                if self.int_refs[i] == 0 && self.refs[i] == 0 {
                    stack.push(i as u32);
                }
            }
        }
    }

    /// Full recount audit of the interior reference counts and the
    /// per-variable slot lists: recomputes every `int_refs` entry from the
    /// arena edges and every `var_pos` from the lists, and panics on the
    /// first disagreement. O(arena) — the debug-mode cross-check behind
    /// the O(1) swap deltas (called after every collection and after each
    /// variable's sift walk in debug builds; tests call it directly).
    pub fn verify_interior_refs(&self) {
        let n = self.nodes.len();
        let mut counts = vec![0u32; n];
        for node in self.nodes.iter().skip(1) {
            if node.var.0 == FREE_VAR {
                continue;
            }
            for c in [node.low, node.high] {
                let i = c.node().index();
                if i != 0 {
                    counts[i] += 1;
                }
            }
        }
        for (i, &count) in counts.iter().enumerate().skip(1) {
            if self.nodes[i].var.0 == FREE_VAR {
                assert_eq!(
                    self.int_refs[i], 0,
                    "reclaimed slot {i} carries interior references"
                );
            } else {
                assert_eq!(
                    self.int_refs[i], count,
                    "interior refcount of slot {i} disagrees with a full recount"
                );
            }
        }
        for (v, list) in self.var_nodes.iter().enumerate() {
            for (p, &s) in list.iter().enumerate() {
                assert_eq!(
                    self.nodes[s as usize].var.0, v as u32,
                    "var_nodes[{v}] lists slot {s} of another variable"
                );
                assert_eq!(
                    self.var_pos[s as usize] as usize, p,
                    "var_pos of slot {s} disagrees with its list position"
                );
            }
        }
    }

    /// Audits the complement-edge canonical form over the live arena: no
    /// stored node may carry a complemented 1-edge (`mk` pushes the
    /// complement onto the 0-edge and the incoming edge) and no stored
    /// node may have equal children (the reduction rule). Together with
    /// hash-consing this is exactly why a function and its negation can
    /// never occupy two nodes: the only stored form of `¬f` is `f`'s own
    /// node reached through a complemented edge. Panics on the first
    /// violation; O(arena), intended for tests and debug audits.
    pub fn verify_edge_canonical_form(&self) {
        for (i, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var.0 == FREE_VAR {
                continue;
            }
            assert!(
                !n.high.is_complemented(),
                "slot {i}: complemented 1-edge escaped mk's normalization"
            );
            assert_ne!(n.low, n.high, "slot {i}: redundant node escaped mk");
        }
    }

    /// Interior (arena-edge) reference count of `f`'s node — how many
    /// live nodes name it as a child (test/diagnostic hook; the terminal
    /// reports `u32::MAX` like [`Manager::protect_count`]).
    pub fn interior_count(&self, f: Ref) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.int_refs[f.node().index()]
        }
    }

    /// Cofactors `f` with respect to variable `v` assumed to be at or above
    /// `f`'s top level: returns `(f|v=0, f|v=1)`. Comparing the stored top
    /// variable covers the constant case too (the terminal's sentinel never
    /// equals a real variable), so there is no separate terminal branch.
    #[inline(always)]
    pub(crate) fn shallow_cofactors(&self, f: Ref, v: Var) -> (Ref, Ref) {
        let n = self.nodes[f.node().index()];
        if n.var != v {
            (f, f)
        } else {
            let c = f.is_complemented();
            (n.low.xor_complement(c), n.high.xor_complement(c))
        }
    }

    /// Drops every memoized operation result in O(1) (generation bump).
    /// The table keeps its allocation, so long-running flows can clear
    /// between phases without paying a re-allocation or a re-grow.
    /// Correctness is unaffected.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
    }

    /// Opens a fresh scope for [`op::SCOPED`] cache entries (per-call
    /// memoization of permute / node-replacement rebuilds).
    #[inline]
    pub(crate) fn new_scope(&mut self) -> u32 {
        self.scope_epoch = self.scope_epoch.wrapping_add(1);
        if self.scope_epoch == 0 {
            // An epoch reuse after wrap could alias old entries: flush.
            self.cache.clear();
            self.scope_epoch = 1;
        }
        self.scope_epoch
    }

    /// Snapshot of the kernel's memory-system counters. The
    /// `garbage_estimate` field reports the current free list (slots
    /// already reclaimed and awaiting reuse); use
    /// [`Manager::cache_stats_with_roots`] to also count not-yet-swept
    /// dead nodes.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.cache.lookups,
            hits: self.cache.hits,
            insertions: self.cache.insertions,
            peak_nodes: self.peak_nodes,
            cache_entries: self.cache.entry_capacity(),
            unique_buckets: self.buckets.len(),
            garbage_estimate: self.free.len(),
            live_nodes: self.live_nodes(),
            free_nodes: self.free.len(),
            reclaimed_total: self.reclaimed_total,
            collections: self.collections,
            sift_swaps: self.sift_swaps,
            sifts: self.sifts,
        }
    }

    /// [`Manager::cache_stats`] with `garbage_estimate` extended by the
    /// in-use nodes unreachable from `roots` — what a sweep from exactly
    /// those roots would reclaim, on top of the existing free list.
    pub fn cache_stats_with_roots(&self, roots: &[Ref]) -> CacheStats {
        let mut stats = self.cache_stats();
        let live = self.shared_size(roots);
        let in_use = self.live_nodes() - 1; // internal nodes currently held
        stats.garbage_estimate = self.free.len() + in_use.saturating_sub(live);
        stats
    }

    // ------------------------------------------------------------------
    // Dead-node reclamation (external refcounts + mark-and-sweep).
    // ------------------------------------------------------------------

    /// Declares `f` a collection root: the node it references (and
    /// everything reachable from it) survives [`Manager::collect`] until a
    /// matching [`Manager::release`]. Calls nest — `protect` twice,
    /// `release` twice. Constants are always live; protecting them is a
    /// no-op. Returns `f` for call-site convenience.
    pub fn protect(&mut self, f: Ref) -> Ref {
        if !f.is_const() {
            let slot = f.node().index();
            debug_assert!(
                self.nodes[slot].var.0 != FREE_VAR,
                "protect of reclaimed node"
            );
            self.refs[slot] = self.refs[slot].saturating_add(1);
        }
        f
    }

    /// Drops one [`Manager::protect`] claim on `f`. The node becomes
    /// eligible for collection once its external count reaches zero and no
    /// other protected function reaches it.
    pub fn release(&mut self, f: Ref) {
        if !f.is_const() {
            let slot = f.node().index();
            debug_assert!(self.refs[slot] > 0, "release without matching protect");
            self.refs[slot] = self.refs[slot].saturating_sub(1);
        }
    }

    /// External reference count of `f`'s node (test/diagnostic hook).
    pub fn protect_count(&self, f: Ref) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.refs[f.node().index()]
        }
    }

    /// Replaces the collector configuration (see [`GcConfig`]).
    pub fn set_gc_config(&mut self, config: GcConfig) {
        self.gc = config;
    }

    /// The active collector configuration.
    pub fn gc_config(&self) -> GcConfig {
        self.gc
    }

    /// Number of collections that reclaimed at least one node. Any
    /// `Ref`-keyed side table outside the manager is invalid once this
    /// changes: swept slots are reused, so a stale key may alias a
    /// *different* function.
    pub fn gc_epoch(&self) -> u64 {
        self.gc_epoch
    }

    /// Collects dead nodes now, **without a mark phase**: because the
    /// interior reference counts are exact, a node with `refs == 0 &&
    /// int_refs == 0` is dead by definition, and reclaiming it cascades
    /// into any child whose last reference it held — in a DAG this
    /// reclaims exactly the set a mark-and-sweep from the protected roots
    /// would (debug builds assert the equivalence). The cost is one
    /// arena scan plus O(dead), never a traversal of the live nodes.
    /// Sweeping rebuilds the unique table without the dead entries
    /// (shrinking it when the survivors would fit a table a quarter of
    /// the current size) and scrubs the computed-cache entries that name
    /// a reclaimed slot. Returns the number of reclaimed nodes.
    ///
    /// Every `Ref` the caller intends to keep using must be protected (or
    /// reachable from a protected one) — anything else dangles afterwards.
    pub fn collect(&mut self) -> usize {
        self.allocs_since_gc = 0;
        // Seed with every in-use node nothing references, then cascade:
        // each reclaimed node drops its children's counts, and a child
        // whose count reaches zero (with no external claim) joins the
        // dead set. Acyclicity guarantees this reaches everything a mark
        // pass would leave unmarked.
        let n = self.nodes.len();
        let mut stack: Vec<u32> = Vec::new();
        for i in 1..n {
            if self.nodes[i].var.0 != FREE_VAR && self.refs[i] == 0 && self.int_refs[i] == 0 {
                stack.push(i as u32);
            }
        }
        let mut dead: Vec<u32> = Vec::new();
        while let Some(s) = stack.pop() {
            dead.push(s);
            let node = self.nodes[s as usize];
            for c in [node.low, node.high] {
                let i = c.node().index();
                if i == 0 {
                    continue;
                }
                debug_assert!(
                    self.int_refs[i] > 0,
                    "interior refcount underflow at slot {i}"
                );
                self.int_refs[i] -= 1;
                if self.int_refs[i] == 0 && self.refs[i] == 0 {
                    stack.push(i as u32);
                }
            }
        }
        if dead.is_empty() {
            return 0;
        }
        // The cascade above already dropped the children's counts.
        let reclaimed = self.sweep_dead(dead, false);
        #[cfg(debug_assertions)]
        {
            self.verify_interior_refs();
            debug_assert_eq!(
                self.rooted_size(),
                self.live_nodes() - 1,
                "refcount collect and mark reachability disagree"
            );
        }
        reclaimed
    }

    /// Collects only when worthwhile: a no-op until the allocations since
    /// the last attempt reach [`GcConfig::dead_fraction`] of the in-use
    /// nodes (so calling this in a tight flow loop is cheap), then a mark
    /// pass measures the true dead fraction and sweeps only when it
    /// exceeds the threshold. Returns the number of reclaimed nodes.
    pub fn maybe_collect(&mut self) -> usize {
        let in_use = self.live_nodes() - 1;
        if in_use < self.gc.min_nodes {
            return 0;
        }
        // Gate on allocations relative to the arena *capacity*, not the
        // in-use count: a collection costs O(arena), so requiring a
        // proportional amount of fresh allocation first keeps the
        // amortized overhead per created node constant even under extreme
        // churn.
        if (self.allocs_since_gc as f64) < self.gc.dead_fraction * self.nodes.len() as f64 {
            return 0;
        }
        self.mark_and_sweep(false)
    }

    /// The collector core: mark from protected roots, then (when `force`
    /// or the dead fraction clears the threshold) sweep, rebuild the
    /// unique table and invalidate the computed cache.
    fn mark_and_sweep(&mut self, force: bool) -> usize {
        self.allocs_since_gc = 0;
        let n = self.nodes.len();
        let in_use = self.live_nodes() - 1;
        // Mark phase: flood from every externally referenced node. The
        // visited scratch doubles as the mark bitmap; nothing else may
        // traverse between mark and sweep.
        let mut live = 0usize;
        {
            let mut seen = self.visited.borrow_mut();
            seen.begin(n);
            let mut stack: Vec<u32> = Vec::new();
            for (i, &rc) in self.refs.iter().enumerate().skip(1) {
                if rc > 0 {
                    stack.push(i as u32);
                }
            }
            while let Some(i) = stack.pop() {
                if !seen.mark(i as usize) {
                    continue;
                }
                live += 1;
                let node = self.nodes[i as usize];
                debug_assert!(node.var.0 != FREE_VAR, "marked a reclaimed slot");
                if !node.low.node().is_terminal() {
                    stack.push(node.low.node().0);
                }
                if !node.high.node().is_terminal() {
                    stack.push(node.high.node().0);
                }
            }
        }
        let dead = in_use - live;
        if dead == 0 || (!force && (dead as f64) < self.gc.dead_fraction * in_use as f64) {
            return 0;
        }
        let dead_list: Vec<u32> = {
            let seen = self.visited.borrow();
            (1..n as u32)
                .filter(|&i| {
                    self.nodes[i as usize].var.0 != FREE_VAR && !seen.is_marked(i as usize)
                })
                .collect()
        };
        self.sweep_dead(dead_list, true)
    }

    /// The shared sweep finalization: poisons the `dead` slots onto the
    /// free list, rebuilds the per-variable slot lists and the unique
    /// table from the survivors (shrink-on-sparse), and scrubs the
    /// computed cache. With `dec_children`, the dead nodes' arena edges
    /// are first removed from the interior counts (the refcount-driven
    /// [`Manager::collect`] has already done so while cascading).
    fn sweep_dead(&mut self, dead: Vec<u32>, dec_children: bool) -> usize {
        let n = self.nodes.len();
        if dec_children {
            // Every dec below corresponds to a real arena edge from a dead
            // node, so no count underflows; dead slots' own counts are
            // zeroed when poisoned (order between the two loops is free).
            for &s in &dead {
                let node = self.nodes[s as usize];
                for c in [node.low, node.high] {
                    let i = c.node().index();
                    if i != 0 {
                        self.int_refs[i] -= 1;
                    }
                }
            }
        }
        for &s in &dead {
            self.nodes[s as usize] = Node {
                var: Var(FREE_VAR),
                low: Ref::ONE,
                high: Ref::ONE,
            };
            self.refs[s as usize] = 0;
            self.int_refs[s as usize] = 0;
            self.free.push(s);
        }
        // The sweep may have poisoned slots listed anywhere: rebuild the
        // per-variable slot lists (and the slots' positions in them) from
        // the survivors — one O(arena) pass the sweep already paid.
        for list in &mut self.var_nodes {
            list.clear();
        }
        for i in 1..n {
            let v = self.nodes[i].var.0 as usize;
            if let Some(list) = self.var_nodes.get_mut(v) {
                self.var_pos[i] = list.len() as u32;
                list.push(i as u32);
            }
        }
        // The unique table still lists the dead nodes: rebuild it from the
        // survivors, shrinking when they'd fit a quarter-size table.
        let live = self.live_nodes() - 1;
        self.occupied = live;
        let wanted = (live.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let new_len = if wanted * 4 <= self.buckets.len() {
            wanted
        } else {
            self.buckets.len()
        };
        self.grow_to(new_len);
        // Cached results naming a dead node must not survive — but wiping
        // the whole cache (a generation bump) makes every collection cost
        // a full memo rebuild, which dominates high-churn flows. Instead,
        // scrub: drop exactly the entries with a reclaimed slot behind any
        // word. Key words that are not `Ref`s (cofactor variable codes,
        // scope epochs) are treated as if they were — a false hit there
        // only costs a spurious miss, while every word that *is* a `Ref`
        // gets checked, so no dangling reference survives in the cache.
        let nodes = &self.nodes;
        let live_word = |w: u32| {
            let idx = (w >> 1) as usize;
            idx >= nodes.len() || nodes[idx].var.0 != FREE_VAR
        };
        for set in self.cache.sets.iter_mut() {
            for e in set.ways.iter_mut() {
                if e.tag != 0
                    && !(live_word(e.a) && live_word(e.b) && live_word(e.c) && live_word(e.result))
                {
                    *e = CacheEntry::default();
                }
            }
        }
        self.gc_epoch += 1;
        self.collections += 1;
        self.reclaimed_total += dead.len() as u64;
        dead.len()
    }

    // ------------------------------------------------------------------
    // Dynamic variable ordering (in-place adjacent swap + Rudell sifting).
    // ------------------------------------------------------------------

    /// Number of internal nodes reachable from the externally protected
    /// roots — the size metric sifting minimizes. Unprotected garbage
    /// (dead intermediates awaiting collection) is excluded, so the
    /// metric is stable under churn.
    pub fn rooted_size(&self) -> usize {
        let mut seen = self.visited.borrow_mut();
        seen.begin(self.nodes.len());
        let mut stack: Vec<u32> = Vec::new();
        for (i, &rc) in self.refs.iter().enumerate().skip(1) {
            if rc > 0 {
                stack.push(i as u32);
            }
        }
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !seen.mark(i as usize) {
                continue;
            }
            count += 1;
            let n = self.nodes[i as usize];
            if !n.low.node().is_terminal() {
                stack.push(n.low.node().0);
            }
            if !n.high.node().is_terminal() {
                stack.push(n.high.node().0);
            }
        }
        count
    }

    /// Exchanges level `level` with level `level + 1` *in place*.
    ///
    /// Only the nodes at the upper level whose children sit at the lower
    /// level are rewritten; their arena slots are patched (detached from
    /// the unique table, re-expressed over the swapped order, re-inserted),
    /// so every outstanding [`Ref`] keeps denoting the same Boolean
    /// function across the swap — nothing dangles, unprotected or not.
    /// Displaced lower-level nodes may become garbage for the next
    /// collection to reclaim. The computed cache is scrubbed conservatively
    /// (an O(1) generation bump) whenever any node is rewritten.
    ///
    /// Cost is proportional to the upper level's population (via the
    /// per-variable slot lists), not to the arena — sifting calls this in
    /// a tight loop.
    ///
    /// Returns the number of rewritten nodes.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= num_vars`.
    pub fn swap_levels(&mut self, level: u32) -> usize {
        self.swap_levels_inner(level, false).0
    }

    /// The swap primitive behind [`Manager::swap_levels`] and the sift
    /// walks. Returns `(rewritten nodes, exact signed live-size delta)`:
    /// the delta is nodes created minus nodes reclaimed, so a caller that
    /// entered with a garbage-free arena (sifting collects on entry) can
    /// track the rooted size across swaps in O(1) instead of re-walking
    /// the rooted set — the fix for the pass cost being
    /// O(live × swaps).
    ///
    /// With `reclaim`, displaced nodes whose last reference the rewrite
    /// removed are reclaimed *immediately* (cascading into their
    /// children), their slots feeding the very next `mk`: swap garbage
    /// never exists, so `live_nodes() - 1` *is* the rooted size for the
    /// whole pass. Eager reclamation invalidates `Ref`s nothing holds —
    /// the computed cache is cleared (it may name the recycled slots) and
    /// the `gc_epoch` advances so `Ref`-keyed side tables drop theirs.
    /// Without `reclaim` this is the historical contract: every `Ref`,
    /// protected or not, stays valid, and only the order-sensitive memo
    /// generation retires.
    pub(crate) fn swap_levels_inner(&mut self, level: u32, reclaim: bool) -> (usize, isize) {
        let l = level as usize;
        assert!(
            l + 1 < self.level2var.len(),
            "swap_levels: level {level} out of range ({} variables)",
            self.level2var.len()
        );
        // Swap accounting lives at the primitive, so sift walks, window
        // installs and direct callers are all counted (see `sift_swaps`).
        self.sift_swaps += 1;
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        // Only upper-level nodes referencing the lower level change shape;
        // everything else is order-independent under an adjacent swap.
        let list = std::mem::take(&mut self.var_nodes[x as usize]);
        let mut keep: Vec<u32> = Vec::with_capacity(list.len());
        let mut moved: Vec<(u32, Node)> = Vec::new();
        for &slot in &list {
            let n = self.nodes[slot as usize];
            debug_assert_eq!(n.var.0, x, "per-variable slot list out of sync");
            let low_y = self.nodes[n.low.node().index()].var.0 == y;
            let high_y = self.nodes[n.high.node().index()].var.0 == y;
            if low_y || high_y {
                moved.push((slot, n));
            } else {
                keep.push(slot);
            }
        }
        for (p, &slot) in keep.iter().enumerate() {
            self.var_pos[slot as usize] = p as u32;
        }
        self.var_nodes[x as usize] = keep;
        // The order maps swap unconditionally.
        self.level2var.swap(l, l + 1);
        self.var2level[x as usize] = (l + 1) as u32;
        self.var2level[y as usize] = l as u32;
        if moved.is_empty() {
            return (0, 0);
        }
        let live_before = self.live_nodes() as isize;
        let reclaimed_before = self.reclaimed_total;
        // Detach the rewritten slots from the unique table (backward-shift
        // deletion) and poison them so a mid-rewrite table growth cannot
        // re-insert a stale triple; refcounts and identities are kept.
        // Their old arena edges stay counted until each slot is patched,
        // so no still-needed child can be eagerly reclaimed out from
        // under a later rewrite.
        for &(i, n) in &moved {
            self.remove_slot(i, &n);
            self.nodes[i as usize].var = Var(FREE_VAR);
        }
        let (xv, yv) = (Var(x), Var(y));
        for &(i, n) in &moved {
            // f = x·f1 + x'·f0 = y·(x·f11 + x'·f01) + y'·(x·f10 + x'·f00).
            let (f00, f01) = self.shallow_cofactors(n.low, yv);
            let (f10, f11) = self.shallow_cofactors(n.high, yv);
            let new_low = self.mk(xv, f00, f10);
            let new_high = self.mk(xv, f01, f11);
            // `f11` is a cofactor of the regular `n.high`, hence regular,
            // so the patched 1-edge stays regular; and the children cannot
            // collapse (that would need `f0 == f1`).
            debug_assert!(
                !new_high.is_complemented(),
                "swap: 1-edge must stay regular"
            );
            debug_assert_ne!(new_low, new_high, "swap: a rewritten node cannot vanish");
            self.nodes[i as usize] = Node {
                var: yv,
                low: new_low,
                high: new_high,
            };
            // New edges first, then the old ones: a child shared between
            // the two sides must never transiently hit zero and be
            // reclaimed while still referenced.
            self.inc_child(new_low);
            self.inc_child(new_high);
            self.insert_slot(i);
            self.var_pos[i as usize] = self.var_nodes[y as usize].len() as u32;
            self.var_nodes[y as usize].push(i);
            self.dec_child(n.low, reclaim);
            self.dec_child(n.high, reclaim);
        }
        if self.reclaimed_total != reclaimed_before {
            // Eager reclamation recycled slots the memo (and Ref-keyed
            // side tables) may still name: retire the whole cache (O(1)
            // generation bump) and advance the reclamation epoch.
            self.cache.clear();
            self.gc_epoch += 1;
        } else {
            // Conservative cache scrub. Most memoized results survive a
            // swap unchanged: their keys and results are `Ref`s, the swap
            // preserves every Ref's function, and ITE/AND/XOR/COFACTOR/
            // SCOPED results are determined by operand functions alone.
            // The Coudert–Madre restrict/constrain results additionally
            // depend on the variable *order*, so exactly that class is
            // retired (O(1) generation bump) — the rest of the memo stays
            // warm across reordering.
            self.cache.clear_order_sensitive();
        }
        (moved.len(), self.live_nodes() as isize - live_before)
    }

    /// Removes one arena slot from the unique table by backward-shift
    /// deletion (no tombstones, so later probes stay one-load-per-step).
    /// `n` is the node content the slot is currently hashed under.
    fn remove_slot(&mut self, idx: u32, n: &Node) {
        let mask = self.bucket_mask;
        let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & mask;
        while self.buckets[i] != idx {
            debug_assert!(self.buckets[i] != 0, "remove_slot: slot not in the table");
            i = (i + 1) & mask;
        }
        // Shift the rest of the probe cluster back over the hole so no
        // entry becomes unreachable from its ideal bucket.
        let mut hole = i;
        let mut j = (hole + 1) & mask;
        loop {
            let b = self.buckets[j];
            if b == 0 {
                break;
            }
            let nb = self.nodes[b as usize];
            let ideal = (triple_hash(nb.var.0, nb.low.raw(), nb.high.raw()) as usize) & mask;
            // `b` may move into the hole iff its ideal bucket is not in
            // the (cyclic) open interval (hole, j].
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.buckets[hole] = b;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.buckets[hole] = 0;
        self.occupied -= 1;
    }

    /// Inserts an existing arena slot into the unique table (the slot's
    /// triple must not already be present — guaranteed by the level-swap
    /// rewrite, which never recreates an existing function's node).
    fn insert_slot(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & self.bucket_mask;
        loop {
            let b = self.buckets[i];
            if b == 0 {
                break;
            }
            debug_assert!(
                self.nodes[b as usize] != n,
                "insert_slot: duplicate triple would break canonicity"
            );
            i = (i + 1) & self.bucket_mask;
        }
        self.buckets[i] = idx;
        self.occupied += 1;
        if self.occupied * 4 >= self.buckets.len() * 3 {
            self.grow_to(self.buckets.len() * 2);
        }
    }

    /// Rudell sifting over the protected roots: each variable (live
    /// densest first, re-ranked before every walk) is moved through the
    /// whole order by adjacent swaps and parked at the position
    /// minimizing [`Manager::rooted_size`], with a growth abort bounded
    /// against the variable's own start size and a total swap budget
    /// (see [`SiftConfig`]).
    ///
    /// Sifting *collects* on entry, and its swaps eagerly reclaim every
    /// displaced node whose interior and external counts both reach
    /// zero, so swap garbage never exists during the pass and the rooted
    /// size is tracked in O(1) per swap from the swaps' exact deltas
    /// (a debug-mode full recount audits the bookkeeping). Call this
    /// only at quiescent points with every live function protected,
    /// exactly like [`Manager::collect`] — eager reclamation invalidates
    /// unprotected refs just like a collection does (and advances
    /// [`Manager::gc_epoch`]). With no protected roots the pass is a
    /// no-op. (The cheaper [`Manager::swap_levels`] primitive never
    /// reclaims and preserves even unprotected refs.)
    pub fn sift(&mut self, cfg: &SiftConfig) -> SiftReport {
        self.sift_filtered(cfg, None)
    }

    /// [`Manager::sift`] restricted to actively moving only `subset`
    /// variables (others shift as bystanders but are never walked
    /// themselves). This is how a per-cone sift avoids paying for the
    /// manager's full variable count: pass the cone's support.
    ///
    /// With [`SiftConfig::symmetric_groups`] on, a subset variable that
    /// is adjacent-symmetric with a *foreign* variable fuses with it and
    /// the whole block walks together — symmetry outranks the scoping
    /// (moving only half of a symmetric pair cannot improve the order).
    pub fn sift_vars(&mut self, cfg: &SiftConfig, subset: &[Var]) -> SiftReport {
        self.sift_filtered(cfg, Some(subset))
    }

    fn sift_filtered(&mut self, cfg: &SiftConfig, subset: Option<&[Var]>) -> SiftReport {
        let n = self.num_vars as usize;
        self.collect();
        let initial = self.rooted_size();
        let mut report = SiftReport {
            initial_size: initial,
            final_size: initial,
            passes: 1,
            ..SiftReport::default()
        };
        if n < 2 || initial == 0 {
            return report;
        }
        // The entry collect left the arena garbage-free, and every swap
        // below runs in eager-reclaim mode, so the live arena *is* the
        // rooted set for the whole pass: `size` is maintained in O(1)
        // from the swaps' exact deltas — the pass no longer re-walks the
        // rooted set after every swap (the old O(live × swaps) cost).
        debug_assert_eq!(
            initial,
            self.live_nodes() - 1,
            "entry collect must leave a garbage-free arena"
        );
        let mut size = initial;
        // Candidate set, re-ranked by *live* population before every walk:
        // earlier moves (and their reclamation) change the per-variable
        // populations, so a one-shot snapshot picks stale "densest"
        // variables.
        let mut remaining: Vec<u32> = match subset {
            Some(subset) => subset
                .iter()
                .map(|v| v.0)
                .filter(|&v| (v as usize) < n)
                .collect(),
            None => (0..n as u32).collect(),
        };
        // Variables already moved as part of a walked group.
        let mut walked = vec![false; n];
        while report.vars_sifted < cfg.max_vars && report.swaps < cfg.max_swaps {
            let mut best_i = usize::MAX;
            let mut best_pop = 0usize;
            for (i, &v) in remaining.iter().enumerate() {
                let pop = self.var_nodes[v as usize].len();
                if pop > best_pop && !walked[v as usize] {
                    best_pop = pop;
                    best_i = i;
                }
            }
            if best_pop == 0 {
                break;
            }
            let v = remaining.swap_remove(best_i);
            // The block of levels to walk: just `v`, extended over every
            // adjacent symmetric neighbour when group sifting is on. The
            // membership is frozen for the walk; symmetries that only
            // become adjacent mid-walk are picked up by the next pass
            // (sift_to_fixpoint repeats passes exactly for this).
            let mut top = self.var2level[v as usize] as usize;
            let mut glen = 1usize;
            let mut absorbed: Vec<u32> = Vec::new();
            if cfg.symmetric_groups {
                while top + glen < n && self.symmetric_levels((top + glen - 1) as u32) {
                    absorbed.push(self.level2var[top + glen]);
                    glen += 1;
                }
                while top > 0 && self.symmetric_levels((top - 1) as u32) {
                    top -= 1;
                    absorbed.push(self.level2var[top]);
                    glen += 1;
                }
            }
            walked[v as usize] = true;
            // A walk that cannot afford even one block step does no work:
            // skip it without counting it (or claiming its group members —
            // a smaller group or single variable later may still fit the
            // remaining budget).
            if report.swaps + glen > cfg.max_swaps {
                continue;
            }
            for &w in &absorbed {
                walked[w as usize] = true;
            }
            if glen > 1 {
                report.groups += 1;
            }
            report.vars_sifted += 1;
            // Growth aborts are bounded against this walk's *starting*
            // size: a big win by an earlier variable must not let this
            // one balloon the global size by max_growth× before aborting.
            let start_size = size;
            let mut best_size = size;
            let mut best_top = top;
            // Walk to the nearer edge first, then sweep to the other.
            let down_first = n - (top + glen) <= top;
            'walk: for phase in 0..2 {
                let downward = if phase == 0 { down_first } else { !down_first };
                loop {
                    // A block step costs `glen` swaps and must not start
                    // unless it fits the budget (a half-moved block would
                    // strand foreign variables inside the group).
                    if report.swaps + glen > cfg.max_swaps {
                        break 'walk;
                    }
                    if downward && top + glen >= n || !downward && top == 0 {
                        break;
                    }
                    size = self.block_step(top, glen, downward, size, &mut report.swaps);
                    top = if downward { top + 1 } else { top - 1 };
                    if size < best_size {
                        best_size = size;
                        best_top = top;
                    } else if (size as f64) > cfg.max_growth * start_size as f64 {
                        break;
                    }
                }
            }
            // Park the block at the best position seen. Restores are not
            // budget-gated (the block must not be stranded mid-order);
            // swaps past the budget surface as `restore_overage`.
            while top > best_top {
                size = self.block_step(top, glen, false, size, &mut report.swaps);
                top -= 1;
            }
            while top < best_top {
                size = self.block_step(top, glen, true, size, &mut report.swaps);
                top += 1;
            }
            debug_assert_eq!(size, best_size, "restore must reach the best size");
            size = best_size;
            #[cfg(debug_assertions)]
            {
                // The full-recount audit pinning the O(1) accounting: the
                // interior counts match the arena edges, and the tracked
                // size matches a from-scratch rooted traversal.
                self.verify_interior_refs();
                debug_assert_eq!(size, self.rooted_size(), "O(1) size tracking drifted");
            }
        }
        report.final_size = size;
        report.restore_overage = report.swaps.saturating_sub(cfg.max_swaps);
        self.sifts += 1;
        report
    }

    /// Moves the block of `glen` adjacent levels starting at `top` one
    /// position down (or up) by bubbling the neighbouring variable
    /// through it — `glen` eager-reclaim swaps. Returns the updated
    /// rooted size (`size` plus the swaps' exact deltas).
    fn block_step(
        &mut self,
        top: usize,
        glen: usize,
        downward: bool,
        size: usize,
        swaps: &mut usize,
    ) -> usize {
        let mut size = size as isize;
        if downward {
            // The variable below the block rises to `top`.
            for i in (top..top + glen).rev() {
                size += self.swap_levels_inner(i as u32, true).1;
                *swaps += 1;
            }
        } else {
            // The variable above the block sinks to the block's bottom.
            for i in top - 1..top + glen - 1 {
                size += self.swap_levels_inner(i as u32, true).1;
                *swaps += 1;
            }
        }
        debug_assert!(size >= 0, "rooted size underflow in block step");
        size as usize
    }

    /// Repeats budget-relaxed [`Manager::sift`] passes until one shrinks
    /// the rooted size by less than [`ConvergeConfig::min_gain`] (or
    /// [`ConvergeConfig::max_passes`] is reached) — sift to convergence.
    /// Monotone: each pass parks every walked variable at its best seen
    /// position (its start included), so the size never increases and the
    /// loop always terminates. Returns the accumulated report
    /// (`initial_size` from the first pass, `final_size` from the last).
    ///
    /// Like [`Manager::sift`], call this only at quiescent points with
    /// every live function protected.
    pub fn sift_to_fixpoint(&mut self, cfg: &ConvergeConfig) -> SiftReport {
        self.sift_to_fixpoint_filtered(cfg, None)
    }

    /// The one convergence driver behind [`Manager::sift_to_fixpoint`]
    /// and the per-cone [`crate::sift_converge_reorder`]: both share this
    /// loop so the termination rule cannot drift between them.
    pub(crate) fn sift_to_fixpoint_filtered(
        &mut self,
        cfg: &ConvergeConfig,
        subset: Option<&[Var]>,
    ) -> SiftReport {
        let mut total = SiftReport::default();
        for pass in 0..cfg.max_passes.max(1) {
            let r = self.sift_filtered(&cfg.pass, subset);
            if pass == 0 {
                total.initial_size = r.initial_size;
            }
            total.final_size = r.final_size;
            total.swaps += r.swaps;
            total.vars_sifted += r.vars_sifted;
            total.restore_overage += r.restore_overage;
            total.groups += r.groups;
            total.passes += 1;
            let gained = r.initial_size.saturating_sub(r.final_size);
            if (gained as f64) < cfg.min_gain * r.initial_size.max(1) as f64 {
                break;
            }
        }
        total
    }

    /// Whether the variables at `level` and `level + 1` are positively
    /// symmetric in every function of the shared DAG — the structural
    /// adjacent-level check of CUDD's symmetric sifting (Panda–Somenzi):
    ///
    /// * every node at the upper level must satisfy
    ///   `f(x=0, y=1) == f(x=1, y=0)` (checked on shallow cofactors;
    ///   canonicity turns the semantic condition into `Ref` equality), and
    /// * every node at the lower level must be referenced *only* by
    ///   upper-level nodes — an edge into `y` bypassing `x` (from a node
    ///   above `x`, or an external root) could distinguish the two
    ///   variables. The interior counts make this exact: the edges from
    ///   upper-level nodes must account for the lower node's whole
    ///   count, with no external claim.
    ///
    /// Returns `false` when either level is empty. Conservative in the
    /// presence of unswept garbage (dead parents keep counts up, which
    /// can only hide a symmetry, never invent one); sifting runs it on a
    /// collected arena where the answer is exact.
    pub fn symmetric_levels(&self, level: u32) -> bool {
        let l = level as usize;
        if l + 1 >= self.level2var.len() {
            return false;
        }
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        let xs = &self.var_nodes[x as usize];
        let ys = &self.var_nodes[y as usize];
        if xs.is_empty() || ys.is_empty() {
            return false;
        }
        let yv = Var(y);
        let mut from_x: std::collections::HashMap<u32, u32, crate::hasher::BuildFxHasher> =
            std::collections::HashMap::with_capacity_and_hasher(
                ys.len(),
                crate::hasher::BuildFxHasher::default(),
            );
        for &sx in xs {
            let node = self.nodes[sx as usize];
            let (_, f01) = self.shallow_cofactors(node.low, yv);
            let (f10, _) = self.shallow_cofactors(node.high, yv);
            if f01 != f10 {
                return false;
            }
            for c in [node.low, node.high] {
                let i = c.node().index();
                if i != 0 && self.nodes[i].var.0 == y {
                    *from_x.entry(i as u32).or_insert(0) += 1;
                }
            }
        }
        ys.iter().all(|&sy| {
            self.refs[sy as usize] == 0
                && self.int_refs[sy as usize] == from_x.get(&sy).copied().unwrap_or(0)
        })
    }

    /// Replaces the automatic-sifting configuration and re-arms the
    /// trigger threshold (see [`AutoSiftConfig`]).
    pub fn set_sift_config(&mut self, config: AutoSiftConfig) {
        self.auto_sift = config;
        self.next_sift = config.min_nodes;
    }

    /// The active automatic-sifting configuration.
    pub fn sift_config(&self) -> AutoSiftConfig {
        self.auto_sift
    }

    /// Sifts only when worthwhile: a no-op while automatic sifting is
    /// disabled or the live node count is below the re-armed threshold;
    /// otherwise collects (callers invoke this only at quiescent points,
    /// exactly like [`Manager::maybe_collect`], so every live function is
    /// protected), runs one [`Manager::sift`] pass — or a full
    /// [`Manager::sift_to_fixpoint`] when [`AutoSiftConfig::fixpoint`] is
    /// set — over the compacted arena, and re-arms the trigger at twice
    /// the post-sift live size. Returns the report when a pass ran.
    pub fn maybe_sift(&mut self) -> Option<SiftReport> {
        if !self.auto_sift.enabled || self.live_nodes() < self.next_sift {
            return None;
        }
        let report = match self.auto_sift.fixpoint {
            Some(converge) => self.sift_to_fixpoint(&converge),
            None => {
                let cfg = self.auto_sift.sift;
                self.sift(&cfg)
            }
        };
        self.next_sift = (self.live_nodes() * 2).max(self.auto_sift.min_nodes);
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_is_node_zero() {
        let m = Manager::new();
        assert_eq!(m.num_nodes(), 1);
        assert!(Ref::ONE.node().is_terminal());
        assert_eq!(m.top_var(Ref::ONE), None);
        assert_eq!(m.top_var(Ref::ZERO), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = Manager::new();
        let a1 = m.var(3);
        let a2 = m.var(3);
        assert_eq!(a1, a2);
        assert_eq!(m.num_vars(), 4);
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = Manager::new();
        let r = m.mk(Var(0), Ref::ONE, Ref::ONE);
        assert_eq!(r, Ref::ONE);
    }

    #[test]
    fn one_edges_are_regular() {
        let mut m = Manager::new();
        let a = m.var(0);
        let na = !a;
        // !a = mk(0, ONE, ZERO) must be stored with a regular 1-edge.
        assert!(na.is_complemented());
        let n = m.node(na.node());
        assert!(!n.high.is_complemented());
        assert_eq!(m.num_nodes(), 2, "a and !a share one node");
    }

    #[test]
    fn shallow_cofactors_respect_complement() {
        let mut m = Manager::new();
        let a = m.var(0);
        let (f0, f1) = m.shallow_cofactors(a, Var(0));
        assert_eq!((f0, f1), (Ref::ZERO, Ref::ONE));
        let (g0, g1) = m.shallow_cofactors(!a, Var(0));
        assert_eq!((g0, g1), (Ref::ONE, Ref::ZERO));
        // A variable below the asked level is untouched.
        let (h0, h1) = m.shallow_cofactors(a, Var(5));
        assert_eq!((h0, h1), (a, a));
    }

    #[test]
    fn var_names_default_and_custom() {
        let mut m = Manager::new();
        assert_eq!(m.var_name(2), "x2");
        m.set_var_name(2, "carry");
        assert_eq!(m.var_name(2), "carry");
    }

    #[test]
    fn unique_table_survives_growth() {
        // Force several doublings and re-check canonicity afterwards. The
        // chain is built deepest-variable-first so every `mk` respects the
        // ordering invariant (children strictly below the new node).
        let mut m = Manager::with_capacity(16, 8);
        let before = m.cache_stats().unique_buckets;
        let mut chain: Vec<(u32, Ref, Ref)> = Vec::new();
        let mut prev = Ref::ONE;
        for v in (0..300u32).rev() {
            let node = m.mk(Var(v), !prev, prev);
            chain.push((v, prev, node));
            prev = node;
        }
        assert!(
            m.cache_stats().unique_buckets > before,
            "300 nodes must outgrow the smallest table"
        );
        // Re-making the same triples must return the identical refs.
        for &(v, child, r) in &chain {
            assert_eq!(m.mk(Var(v), !child, child), r);
        }
        assert_eq!(m.num_nodes(), 301, "re-makes created nothing");
    }

    #[test]
    fn clear_caches_is_generation_bump() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let entries_before = m.cache_stats().cache_entries;
        m.clear_caches();
        assert_eq!(
            m.cache_stats().cache_entries,
            entries_before,
            "clear keeps capacity"
        );
        // Results stay canonical after the cache is dropped.
        assert_eq!(m.and(a, b), f1);
    }

    #[test]
    fn with_capacity_pre_sizes_tables() {
        let m = Manager::with_capacity(100_000, 18);
        let stats = m.cache_stats();
        assert!(stats.unique_buckets >= 100_000 * 4 / 3);
        // 18 cache bits → 2^16 three-way sets = 3·2^16 entries.
        assert_eq!(stats.cache_entries, 3 << 16);
    }

    #[test]
    fn reserve_nodes_grows_unique_table() {
        let mut m = Manager::new();
        let before = m.cache_stats().unique_buckets;
        m.reserve_nodes(1 << 16);
        assert!(m.cache_stats().unique_buckets > before);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.and(a, b), f);
    }

    #[test]
    fn stats_track_cache_traffic() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let r1 = m.ite(a, b, c);
        let before = m.cache_stats();
        let r2 = m.ite(a, b, c);
        let after = m.cache_stats();
        assert_eq!(r1, r2);
        assert!(after.lookups > before.lookups);
        assert!(after.hits > before.hits, "repeat ITE must hit the cache");
        assert_eq!(after.peak_nodes, m.num_nodes());
    }

    #[test]
    fn protect_release_roundtrip() {
        let mut m = Manager::new();
        let a = m.var(0);
        assert_eq!(m.protect_count(a), 0);
        m.protect(a);
        m.protect(a);
        assert_eq!(m.protect_count(a), 2);
        m.release(a);
        assert_eq!(m.protect_count(a), 1);
        m.release(a);
        assert_eq!(m.protect_count(a), 0);
        // Constants are always live; protect/release are no-ops.
        m.protect(Ref::ONE);
        m.release(Ref::ZERO);
        assert_eq!(m.protect_count(Ref::ONE), u32::MAX);
    }

    #[test]
    fn collect_reclaims_dead_nodes_and_reuses_slots() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let dead = m.ite(c, keep, b);
        let _more_dead = m.xor(dead, a);
        m.protect(keep);
        let before = m.num_nodes();
        let reclaimed = m.collect();
        assert!(reclaimed > 0, "the ite/xor chain is unreachable");
        assert_eq!(m.num_nodes(), before, "arena keeps its slots");
        assert_eq!(m.live_nodes(), before - reclaimed);
        let stats = m.cache_stats();
        assert_eq!(stats.free_nodes, reclaimed);
        assert_eq!(stats.garbage_estimate, reclaimed);
        assert_eq!(stats.reclaimed_total, reclaimed as u64);
        assert_eq!(stats.collections, 1);
        // The kept function still evaluates correctly...
        assert!(m.eval(keep, &[true, true, false]));
        assert!(!m.eval(keep, &[true, false, false]));
        // ...and new nodes reuse reclaimed slots before the arena grows.
        let a2 = m.var(0);
        let b2 = m.var(1);
        let rebuilt = m.and(a2, b2);
        assert_eq!(rebuilt, keep, "canonicity survives reclaim-and-reuse");
        let c2 = m.var(2);
        let _redo = m.ite(c2, keep, b2);
        assert_eq!(m.num_nodes(), before, "free slots absorbed the rebuild");
    }

    #[test]
    fn collect_with_no_garbage_reclaims_nothing() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.protect(f);
        m.protect(a); // the projection of var 0 is not part of f's DAG
        assert_eq!(m.collect(), 0);
        assert_eq!(
            m.cache_stats().collections,
            0,
            "empty sweeps are not counted"
        );
        assert_eq!(m.gc_epoch(), 0);
    }

    #[test]
    fn unique_table_shrinks_when_sparse_after_collect() {
        // Build a 5000-node chain, drop every root, collect: the survivors
        // (none) fit the floor-size table, so the bucket array shrinks.
        let mut m = Manager::with_capacity(16, 8);
        let mut prev = Ref::ONE;
        for v in (0..5000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        let grown = m.cache_stats().unique_buckets;
        assert!(grown >= 8192, "5000 nodes must outgrow the floor table");
        let reclaimed = m.collect();
        assert_eq!(reclaimed, 5000);
        assert_eq!(m.cache_stats().unique_buckets, MIN_BUCKETS);
        assert_eq!(m.live_nodes(), 1, "only the terminal survives");
        // Rebuilding the same chain reuses the freed slots: the arena must
        // not grow past its previous footprint.
        let before = m.num_nodes();
        let mut prev = Ref::ONE;
        for v in (0..5000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        assert_eq!(m.num_nodes(), before, "reclaim-before-grow");
        assert_eq!(m.size(prev), 5000);
    }

    #[test]
    fn maybe_collect_gates_on_config() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let _dead = m.and(a, b);
        // Below min_nodes: never collects, however much is dead.
        assert_eq!(m.maybe_collect(), 0);
        // With the floor removed and everything dead, it sweeps.
        m.set_gc_config(GcConfig {
            dead_fraction: 0.25,
            min_nodes: 0,
        });
        let reclaimed = m.maybe_collect();
        assert!(reclaimed > 0);
        // Immediately afterwards nothing has been allocated: cheap no-op.
        assert_eq!(m.maybe_collect(), 0);
        assert_eq!(m.gc_config().min_nodes, 0);
    }

    #[test]
    fn computed_cache_clear_survives_generation_wrap() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        // Force the generation to the wrap boundary with a live entry in
        // the table, then clear: the wrap branch must wipe the entries and
        // restart at generation 1 without resurrecting stale results.
        m.cache.generation = (u32::MAX >> GEN_SHIFT) - 1;
        m.cache.insert(op::AND, a.raw(), b.raw(), 0, Ref::ZERO);
        m.cache.clear();
        assert_eq!(m.cache.generation, 1, "wrap resets to generation 1");
        assert!(
            m.cache
                .sets
                .iter()
                .all(|s| s.ways.iter().all(|e| e.tag == 0)),
            "wrap must wipe every way of every set"
        );
        assert_eq!(
            m.cache.lookup(op::AND, a.raw(), b.raw(), 0),
            None,
            "the poisoned pre-wrap entry must not be observable"
        );
        assert_eq!(m.and(a, b), f, "results stay canonical after the wrap");
    }

    #[test]
    fn visit_scratch_survives_stamp_wrap() {
        let mut s = VisitScratch::default();
        s.begin(4);
        assert!(s.mark(2), "fresh scratch: first visit");
        // Force the wrap: the next begin() lands on generation 0, which
        // must wipe the stamps (any stale stamp would equal the new
        // generation and read as already-visited).
        s.gen = u32::MAX;
        s.stamp.fill(u32::MAX); // worst case: every stamp aliases pre-wrap gen
        s.begin(4);
        assert_eq!(s.gen, 1, "wrap resets to generation 1");
        for i in 0..4 {
            assert!(s.mark(i), "node {i} must read unvisited after the wrap");
            assert!(!s.mark(i), "second visit is still detected");
            assert!(s.is_marked(i));
        }
    }

    #[test]
    fn new_scope_epoch_wrap_flushes_cache() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.ite(a, b, Ref::ZERO);
        // Put the epoch at the wrap boundary and plant a poisoned SCOPED
        // entry under the epoch that will be handed out after the wrap
        // (epoch 1). If new_scope failed to flush, the next scoped rebuild
        // would observe it and return garbage.
        m.scope_epoch = u32::MAX;
        m.cache.insert(op::SCOPED, f.raw(), 1, 1, Ref::ZERO);
        let scope = m.new_scope();
        assert_eq!(scope, 1, "epoch wraps to 1");
        assert_eq!(
            m.cache.lookup(op::SCOPED, f.raw(), 1, 1),
            None,
            "the stale entry for the reused epoch must be unobservable"
        );
        // End-to-end: a permute (which consumes a fresh scope) right after
        // an epoch wrap still returns the correct function.
        m.scope_epoch = u32::MAX;
        let g = m.permute(f, &[0, 1]);
        assert_eq!(g, f, "identity permutation after epoch wrap");
    }

    #[test]
    fn level_maps_start_as_identity_and_constants_report_max() {
        let mut m = Manager::new();
        m.var(2);
        assert_eq!(m.var2level(), &[0, 1, 2]);
        assert_eq!(m.level2var(), &[0, 1, 2]);
        assert_eq!(m.level(Ref::ONE), u32::MAX);
        assert_eq!(m.level(Ref::ZERO), u32::MAX);
        assert_eq!(
            m.level_of_var(Var(99)),
            u32::MAX,
            "unknown vars sit below all"
        );
        let a = m.var(1);
        assert_eq!(m.level(a), 1);
        assert_eq!(m.var_at_level(1), Var(1));
    }

    #[test]
    fn swap_levels_preserves_refs_and_functions() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.ite(a, b, c);
        let g = m.and(a, c);
        let truth = |m: &Manager, f: Ref| -> u32 {
            let mut t = 0;
            for row in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| row >> i & 1 == 1).collect();
                if m.eval(f, &assignment) {
                    t |= 1 << row;
                }
            }
            t
        };
        let (tf, tg) = (truth(&m, f), truth(&m, g));
        let moved = m.swap_levels(0);
        assert!(moved > 0, "the root of f branches into level 1");
        assert_eq!(m.var2level(), &[1, 0, 2]);
        assert_eq!(m.level2var(), &[1, 0, 2]);
        // The same Refs still denote the same functions.
        assert_eq!(truth(&m, f), tf);
        assert_eq!(truth(&m, g), tg);
        // Canonicity holds under the new order: recomputing returns the
        // identical Refs.
        assert_eq!(m.ite(a, b, c), f);
        assert_eq!(m.and(a, c), g);
        // Swapping back restores the identity order and the functions.
        m.swap_levels(0);
        assert_eq!(m.var2level(), &[0, 1, 2]);
        assert_eq!(truth(&m, f), tf);
        assert_eq!(m.ite(a, b, c), f);
    }

    #[test]
    fn swap_levels_without_interaction_moves_no_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        m.var(1);
        let c = m.var(2);
        let f = m.and(a, c); // nothing at level 0 references level 1
        assert_eq!(m.swap_levels(0), 0);
        assert_eq!(m.var2level(), &[1, 0, 2]);
        assert_eq!(m.and(a, c), f, "untouched nodes stay canonical");
    }

    #[test]
    fn sift_shrinks_an_order_hostile_function() {
        // x0·x3 + x1·x4 + x2·x5: exponential under the interleaved
        // identity order, linear once the pairs are adjacent.
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        let before = m.size(f);
        let report = m.sift(&SiftConfig::default());
        let after = m.size(f);
        assert_eq!(report.initial_size, before);
        assert_eq!(report.final_size, after);
        assert!(report.swaps > 0);
        assert_eq!(
            after, 6,
            "sifting must find a pairing order ({before} -> {after})"
        );
        // The function itself is untouched.
        for row in 0..64u32 {
            let assignment: Vec<bool> = (0..6).map(|i| row >> i & 1 == 1).collect();
            let want = (assignment[0] && assignment[3])
                || (assignment[1] && assignment[4])
                || (assignment[2] && assignment[5]);
            assert_eq!(m.eval(f, &assignment), want, "row {row}");
        }
        assert_eq!(m.cache_stats().sifts, 1);
        assert!(m.cache_stats().sift_swaps >= report.swaps as u64);
    }

    #[test]
    fn sift_without_roots_is_a_noop() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(3);
        let _f = m.and(a, b); // never protected
        let report = m.sift(&SiftConfig::default());
        assert_eq!(report.swaps, 0);
        assert_eq!(report.initial_size, 0, "no roots, nothing to minimize");
    }

    #[test]
    fn maybe_sift_gates_on_config() {
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        // Disabled by default.
        assert!(m.maybe_sift().is_none());
        m.set_sift_config(AutoSiftConfig {
            enabled: true,
            min_nodes: 4,
            ..AutoSiftConfig::default()
        });
        let report = m.maybe_sift().expect("threshold cleared");
        assert!(report.final_size <= report.initial_size);
        // Re-armed: immediately afterwards the threshold gates again.
        assert!(m.maybe_sift().is_none());
        assert!(m.sift_config().enabled);
    }

    #[test]
    fn interior_refs_track_arena_edges_exactly() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.ite(c, ab, b);
        m.verify_interior_refs();
        // `b`'s projection node is the 1-child of `ab` (at least).
        assert!(m.interior_count(b) >= 1);
        assert_eq!(m.interior_count(Ref::ONE), u32::MAX);
        let _ = ab;
        // A swap rewrites edges; the audit must still pass and the counts
        // must follow the patched slots.
        m.protect(f);
        m.swap_levels(0);
        m.verify_interior_refs();
        m.swap_levels(1);
        m.verify_interior_refs();
        // Collection reclaims with cascading decrements; audit again.
        m.collect();
        m.verify_interior_refs();
        // Free-list reuse re-increments the new children.
        let d = m.var(3);
        let g = m.and(f, d);
        let _ = g;
        m.verify_interior_refs();
    }

    #[test]
    fn refcount_collect_reclaims_dead_chains_without_mark() {
        // A deep chain with no roots: the seed scan only sees the
        // parentless top, the cascade must reach the rest.
        let mut m = Manager::with_capacity(16, 8);
        let mut prev = Ref::ONE;
        for v in (0..2000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        assert_eq!(m.collect(), 2000);
        assert_eq!(m.live_nodes(), 1);
        m.verify_interior_refs();
    }

    #[test]
    fn symmetric_levels_detects_known_symmetries() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.protect(f);
        m.collect();
        // a·b is symmetric in (a, b) …
        assert!(m.symmetric_levels(0));
        let mut m2 = Manager::new();
        let a = m2.var(0);
        let b = m2.var(1);
        let nb = !b;
        let g = m2.and(a, nb);
        m2.protect(g);
        m2.collect();
        // … a·b̄ is not (positively): g(a=0,b=1) = 0 ≠ g(a=1,b=0) = 1.
        assert!(!m2.symmetric_levels(0));
        // An empty level pair is never symmetric.
        let mut m3 = Manager::new();
        m3.var(0);
        m3.var(1);
        assert!(!m3.symmetric_levels(0));
    }

    #[test]
    fn symmetric_levels_rejects_bypassing_references() {
        // f = maj(a, b, c) is symmetric in every pair, but keeping a bare
        // projection of b alive as a root adds an external reference to a
        // level-1 node that bypasses level 0 — the group check must
        // refuse to fuse (a, b) then.
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.maj(a, b, c);
        m.protect(f);
        m.collect();
        assert!(m.symmetric_levels(0));
        assert!(m.symmetric_levels(1));
        let b2 = m.var(1);
        m.protect(b2);
        assert!(
            !m.symmetric_levels(0),
            "external claim on b must block the group"
        );
        m.release(b2);
        assert!(m.symmetric_levels(0));
    }

    #[test]
    fn group_sifting_walks_symmetric_pairs_as_blocks() {
        // (x0 ∨ x1) pairs with (x4 ∧ x5) across a hostile interleaving;
        // x0/x1 and x4/x5 are symmetric pairs the walk should fuse.
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.or(a, b);
        let c = m.var(4);
        let d = m.var(5);
        let cd = m.and(c, d);
        let x2 = m.var(2);
        let x3 = m.var(3);
        let mid = m.and(x2, x3);
        let t = m.xor(ab, mid);
        let f = m.xor(t, cd);
        m.protect(f);
        let truth_before: Vec<bool> = (0..64u32)
            .map(|row| m.eval(f, &(0..6).map(|i| row >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        let cfg = SiftConfig {
            symmetric_groups: true,
            ..SiftConfig::default()
        };
        let report = m.sift(&cfg);
        assert!(
            report.groups >= 1,
            "symmetric pairs must be walked as blocks"
        );
        assert!(report.final_size <= report.initial_size);
        m.verify_interior_refs();
        let truth_after: Vec<bool> = (0..64u32)
            .map(|row| m.eval(f, &(0..6).map(|i| row >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        assert_eq!(
            truth_before, truth_after,
            "group sifting changed the function"
        );
    }

    #[test]
    fn sift_to_fixpoint_terminates_and_never_loses_to_single_pass() {
        let build = |m: &mut Manager| {
            let mut f = Ref::ZERO;
            for i in 0..4 {
                let a = m.var(i);
                let b = m.var(i + 4);
                let ab = m.and(a, b);
                f = m.or(f, ab);
            }
            m.protect(f)
        };
        let mut single = Manager::new();
        let fs = build(&mut single);
        let rs = single.sift(&SiftConfig::default());
        let mut conv = Manager::new();
        let fc = build(&mut conv);
        let cfg = ConvergeConfig::default();
        let rc = conv.sift_to_fixpoint(&cfg);
        assert!(
            rc.passes >= 1 && rc.passes <= cfg.max_passes,
            "fixpoint must terminate"
        );
        assert!(rc.final_size <= rc.initial_size);
        assert!(
            rc.final_size <= rs.final_size,
            "converged size {} must not lose to single pass {}",
            rc.final_size,
            rs.final_size
        );
        assert_eq!(
            conv.size(fc),
            single.size(fs),
            "both reach the linear pairing order"
        );
        // Once converged, another fixpoint run is a cheap no-op-ish pass.
        let again = conv.sift_to_fixpoint(&cfg);
        assert_eq!(again.final_size, rc.final_size);
        assert_eq!(again.passes, 1, "a converged order stops after one pass");
    }

    #[test]
    fn sift_budget_exhaustion_reports_restore_overage() {
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        let truth = |m: &Manager, f: Ref| -> u64 {
            (0..64u32).fold(0u64, |acc, row| {
                let assignment: Vec<bool> = (0..6).map(|i| row >> i & 1 == 1).collect();
                acc | ((m.eval(f, &assignment) as u64) << row)
            })
        };
        let before = truth(&m, f);
        // Zero budget: no swaps at all, valid permutation, function intact.
        let r0 = m.sift(&SiftConfig {
            max_swaps: 0,
            ..SiftConfig::default()
        });
        assert_eq!((r0.swaps, r0.restore_overage), (0, 0));
        // A tiny budget exhausts mid-walk; the restore completes anyway
        // and the overshoot is reported.
        let r3 = m.sift(&SiftConfig {
            max_swaps: 3,
            ..SiftConfig::default()
        });
        assert!(r3.swaps >= 3 || r3.restore_overage == 0);
        assert_eq!(r3.restore_overage, r3.swaps.saturating_sub(3));
        let v2l = m.var2level().to_vec();
        let mut seen = vec![false; v2l.len()];
        for &l in &v2l {
            assert!(
                !std::mem::replace(&mut seen[l as usize], true),
                "order must stay a permutation"
            );
        }
        assert_eq!(truth(&m, f), before, "budget exhaustion must not corrupt f");
        m.verify_interior_refs();
    }

    #[test]
    fn garbage_estimate_counts_unreachable_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let _dead = m.ite(c, keep, b);
        let stats = m.cache_stats_with_roots(&[keep]);
        assert!(stats.garbage_estimate > 0, "the ite chain is unreachable");
        // With every created function as a root, nothing is garbage.
        let all = m.cache_stats_with_roots(&[keep, _dead, a, b, c]);
        assert_eq!(all.garbage_estimate, 0);
    }
}
