//! The manager façade over the concurrent-kernel split: one shared
//! [`NodeStore`] plus one default [`Session`], presenting the classic
//! single-threaded BDD-manager API.
//!
//! The heavy lifting lives elsewhere since the store/session split:
//!
//! * [`crate::store`] owns the node arena, the open-addressed unique
//!   table and the interior reference counts — the `Sync` half that many
//!   threads may publish nodes into at once;
//! * [`crate::session`] owns the set-associative computed cache, the
//!   visit scratch, the resource budget and the tick state — the
//!   per-thread half (`!Sync` by construction);
//! * the recursive kernels in [`crate::ops`] and [`crate::cofactor`] are
//!   methods on `Session` taking `(&NodeStore, &mut Session)`;
//! * [`crate::parallel`] forks extra sessions against the shared store
//!   for the parallel apply.
//!
//! What remains here is the *quiescent-point* machinery — everything
//! that needs `&mut` exclusivity over the store: garbage collection
//! (refcount-driven and mark-and-sweep), dynamic reordering (adjacent
//! level swaps, Rudell sifting, symmetric groups), table and arena
//! growth, and the bookkeeping that folds kernel publication logs into
//! the per-variable slot lists. All of it asserts store quiescence (no
//! extra sessions outstanding) — GC, sifting and growth are
//! stop-the-world by contract (see the crate-level "Concurrency
//! contract").
//!
//! The façade also owns the grow-and-retry loop: a kernel that runs the
//! shared store out of headroom unwinds with
//! [`LimitKind::TableFull`], the façade grows the store at this (by
//! definition quiescent) point and re-runs the operation — the warm
//! computed cache makes the retry cheap, and the error never escapes a
//! `Manager` entry point.

use crate::reference::{NodeId, Ref, Var};
use crate::session::{LimitExceeded, LimitKind, ResourceLimits, Session, DEFAULT_CACHE_BITS};
use crate::store::{NodeStore, FREE_VAR, MIN_BUCKETS};

pub use crate::store::Node;

/// Running statistics of the kernel's memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Computed-cache probes.
    pub lookups: u64,
    /// Computed-cache probes that returned a memoized result.
    pub hits: u64,
    /// Computed-cache insertions (including overwrites of colliding slots).
    pub insertions: u64,
    /// Shared (L2) cache probes — made only on a private (L1) miss.
    pub shared_lookups: u64,
    /// Shared-cache probes that returned a result published by some
    /// session (possibly another thread's).
    pub shared_hits: u64,
    /// Results published to the shared cache (only recursions clearing
    /// the work threshold publish; see `bdd::session`'s publication
    /// policy).
    pub shared_insertions: u64,
    /// Tasks the work-stealing parallel apply executed from another
    /// worker's deque (0 without intra-cone parallelism).
    pub par_steals: u64,
    /// Largest node-arena size (slot count, including reclaimed slots)
    /// observed over the manager's lifetime.
    pub peak_nodes: usize,
    /// Computed-cache capacity in entries (fixed after construction).
    pub cache_entries: usize,
    /// Shared (L2) cache capacity in entries (fixed after construction).
    pub shared_cache_entries: usize,
    /// Unique-table bucket count (shrinks when a collection leaves the
    /// table sparse).
    pub unique_buckets: usize,
    /// Arena slots known to be reclaimable or already reclaimed: the
    /// current free list, plus — when computed via
    /// [`Manager::cache_stats_with_roots`] — the in-use nodes unreachable
    /// from the supplied roots (what the next sweep from those roots would
    /// add to the free list).
    pub garbage_estimate: usize,
    /// Arena slots currently holding a live (not reclaimed) node,
    /// including the terminal.
    pub live_nodes: usize,
    /// Reclaimed arena slots currently awaiting reuse on the free list.
    pub free_nodes: usize,
    /// Total nodes reclaimed by the collector over the manager's lifetime.
    pub reclaimed_total: u64,
    /// Number of collections that actually swept (mark passes that found
    /// nothing to reclaim are not counted).
    pub collections: u64,
    /// Adjacent-level swaps over the manager's lifetime, counted at the
    /// swap primitive itself — sift walks and restores, window-reorder
    /// installs, and direct [`Manager::swap_levels`] calls alike (the
    /// window install path used to bypass this counter and under-report
    /// reorder work).
    pub sift_swaps: u64,
    /// Number of [`Manager::sift`] passes run (including those triggered
    /// through [`Manager::maybe_sift`]).
    pub sifts: u64,
}

impl CacheStats {
    /// Fraction of computed-cache lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }

    /// Fraction of shared (L2) cache probes that hit, in `[0, 1]`.
    pub fn shared_hit_rate(&self) -> f64 {
        if self.shared_lookups == 0 {
            0.0
        } else {
            self.shared_hits as f64 / self.shared_lookups as f64
        }
    }
}

/// Tuning knobs of the dead-node collector (see [`Manager::maybe_collect`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcConfig {
    /// A [`Manager::maybe_collect`] call sweeps only when at least this
    /// fraction of the in-use nodes is dead (unreachable from any
    /// protected node). Also gates how much allocation must happen between
    /// collection attempts, so repeated `maybe_collect` calls on a quiet
    /// manager cost O(1).
    pub dead_fraction: f64,
    /// Collections are skipped entirely while fewer than this many nodes
    /// are in use — tiny managers are cheaper to let grow.
    pub min_nodes: usize,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            dead_fraction: 0.25,
            min_nodes: 4096,
        }
    }
}

/// Tuning knobs of one [`Manager::sift`] pass (Rudell's algorithm).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiftConfig {
    /// While moving one variable through the order, abort the current
    /// direction once the rooted size exceeds this factor of the size at
    /// the variable's *starting position* (CUDD's `maxGrowth`). Bounding
    /// against the start — not the best size seen this pass — keeps one
    /// variable's big win from licensing a later variable to balloon the
    /// global size.
    pub max_growth: f64,
    /// Total adjacent-swap budget of the pass. Once exhausted no further
    /// variable is sifted; the in-flight variable (or group) still
    /// returns to its best position — those restore swaps exceed the
    /// budget and are reported as [`SiftReport::restore_overage`].
    pub max_swaps: usize,
    /// Sift at most this many variables (each walked group counts once),
    /// densest level first.
    pub max_vars: usize,
    /// Detect adjacent symmetric variables at each walk's start
    /// ([`Manager::symmetric_levels`]) and move the whole group through
    /// the order as a block (Panda–Somenzi symmetric sifting). Off by
    /// default; [`ConvergeConfig`] turns it on.
    pub symmetric_groups: bool,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            max_swaps: 4096,
            max_vars: usize::MAX,
            symmetric_groups: false,
        }
    }
}

/// Tuning knobs of [`Manager::sift_to_fixpoint`]: budget-relaxed
/// [`Manager::sift`] passes repeated until one stops paying.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ConvergeConfig {
    /// Per-pass configuration. The default relaxes the swap budget far
    /// beyond [`SiftConfig::default`] (the O(1) swap deltas make long
    /// passes affordable) and enables symmetric-group sifting.
    pub pass: SiftConfig,
    /// Convergence threshold: stop once a pass shrinks the rooted size
    /// by less than this fraction of its starting size.
    pub min_gain: f64,
    /// Hard cap on the number of passes.
    pub max_passes: usize,
}

impl Default for ConvergeConfig {
    fn default() -> Self {
        ConvergeConfig {
            pass: SiftConfig {
                max_growth: 1.2,
                max_swaps: 1 << 20,
                max_vars: usize::MAX,
                symmetric_groups: true,
            },
            min_gain: 0.01,
            max_passes: 8,
        }
    }
}

/// Outcome of a [`Manager::sift`] pass (or an accumulated
/// [`Manager::sift_to_fixpoint`] run). Sizes are rooted sizes (nodes
/// reachable from the protected roots, see [`Manager::rooted_size`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiftReport {
    /// Rooted size before the pass.
    pub initial_size: usize,
    /// Rooted size after the pass (never larger than `initial_size`).
    pub final_size: usize,
    /// Adjacent-level swaps performed, restores included.
    pub swaps: usize,
    /// Variables actively walked through the order (a symmetric group
    /// walked as a block counts once).
    pub vars_sifted: usize,
    /// Swaps spent past [`SiftConfig::max_swaps`] returning the
    /// in-flight variable or group to its best position — restores are
    /// never budget-gated, so this is the budget overshoot.
    pub restore_overage: usize,
    /// Symmetric groups (two or more variables) moved as blocks.
    pub groups: usize,
    /// Sift passes accumulated into this report (1 from [`Manager::sift`],
    /// up to [`ConvergeConfig::max_passes`] from the fixpoint driver).
    pub passes: usize,
}

/// Gating of the automatic [`Manager::maybe_sift`] hook. Disabled by
/// default; flows that want dynamic reordering enable it and then offer
/// `maybe_sift` at the same quiescent points as `maybe_collect`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoSiftConfig {
    /// Master switch; when false, [`Manager::maybe_sift`] is a no-op.
    pub enabled: bool,
    /// The first sift triggers once this many nodes are live; after each
    /// sift the threshold is re-armed at twice the post-sift live size
    /// (never below this floor).
    pub min_nodes: usize,
    /// Per-pass budgets forwarded to [`Manager::sift`].
    pub sift: SiftConfig,
    /// When set, a triggered sift runs [`Manager::sift_to_fixpoint`]
    /// under this configuration instead of the single `sift` pass.
    pub fixpoint: Option<ConvergeConfig>,
}

impl Default for AutoSiftConfig {
    fn default() -> Self {
        AutoSiftConfig {
            enabled: false,
            min_nodes: 4096,
            sift: SiftConfig::default(),
            fixpoint: None,
        }
    }
}

/// Default unique-table bucket count (grows on demand).
const DEFAULT_BUCKETS: usize = 1 << 12;

/// A BDD manager: one shared [`NodeStore`] (arena, unique table,
/// interior refcounts) plus one default [`Session`] (computed cache,
/// visit scratch, resource budget), presenting the classic
/// single-threaded API.
///
/// All functions created by one manager live in the same shared DAG, so
/// equality of [`Ref`]s is equality of Boolean functions.
///
/// # Example
///
/// ```
/// use bdd::Manager;
///
/// let mut m = Manager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.xor(a, b);
/// assert_eq!(m.not(f), m.xnor(a, b));
/// ```
#[derive(Debug)]
pub struct Manager {
    /// The shared node-owning half (see [`crate::store`]).
    pub(crate) store: NodeStore,
    /// The manager's own per-thread half (see [`crate::session`]).
    pub(crate) session: Session,
    gc: GcConfig,
    auto_sift: AutoSiftConfig,
    /// Live-node threshold re-arming [`Manager::maybe_sift`].
    next_sift: usize,
    sift_swaps: u64,
    sifts: u64,
    /// Reclamation epoch: bumped whenever any slot is reclaimed — by a
    /// sweeping collection *or* by the eager reclamation inside sifting's
    /// level swaps. Holders of `Ref`-keyed side tables (e.g. the majority
    /// hook's memo) compare this against a saved value to know when their
    /// keys may dangle.
    gc_epoch: u64,
    /// Number of sweeping collections (mark/refcount sweeps that
    /// reclaimed at least one node); excludes per-swap eager reclamation.
    collections: u64,
    reclaimed_total: u64,
    /// The global worker-thread budget the parallel apply draws from
    /// (`None` = no intra-cone parallelism; see [`crate::parallel`]).
    pub(crate) job_budget: Option<crate::session::JobBudget>,
    /// Tasks the parallel apply's workers stole from each other over the
    /// manager's lifetime (folded in after each par call joins).
    pub(crate) par_steals: u64,
    /// Test-only fault injection: when set, every parallel-apply worker
    /// panics on its first task, exercising the unwind cleanup paths
    /// (permit drain-back, shared-region exit).
    #[cfg(test)]
    pub(crate) fault_panic_workers: bool,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager containing only the terminal node.
    pub fn new() -> Manager {
        Manager::with_capacity(DEFAULT_BUCKETS / 2, DEFAULT_CACHE_BITS)
    }

    /// Creates a manager pre-sized for `nodes` arena nodes and a computed
    /// cache budgeted at `cache_bits` (clamped to `[8, 28]`; the cache
    /// holds `3 << (cache_bits - 2)` entries in three-way line-sized sets).
    ///
    /// Sizing the tables up front avoids rehash churn while building large
    /// functions; the unique table still doubles on demand past `nodes`.
    pub fn with_capacity(nodes: usize, cache_bits: u32) -> Manager {
        Manager {
            store: NodeStore::with_capacity(nodes),
            session: Session::with_cache_bits(cache_bits),
            gc: GcConfig::default(),
            auto_sift: AutoSiftConfig::default(),
            next_sift: AutoSiftConfig::default().min_nodes,
            sift_swaps: 0,
            sifts: 0,
            gc_epoch: 0,
            collections: 0,
            reclaimed_total: 0,
            job_budget: None,
            par_steals: 0,
            #[cfg(test)]
            fault_panic_workers: false,
        }
    }

    /// Grows the unique table (and the arena) so at least `nodes` arena
    /// nodes fit without a rehash. No-op when already large enough.
    pub fn reserve_nodes(&mut self, nodes: usize) {
        let wanted = (nodes.max(8) * 4 / 3 + 1).next_power_of_two();
        if wanted > self.store.buckets_len() {
            self.store.ensure_arena_capacity(nodes);
            self.store.grow_buckets_to(wanted);
        }
    }

    /// Installs the global worker-thread budget the parallel apply draws
    /// from (see [`crate::session::JobBudget`]): suite-level and
    /// intra-cone parallelism share one pool of permits, so `--jobs`
    /// stays the single oversubscription knob. `None` (the default)
    /// disables intra-cone forking entirely.
    pub fn set_job_budget(&mut self, budget: Option<crate::session::JobBudget>) {
        self.job_budget = budget;
    }

    /// Installs a resource budget for the `try_*` kernels and resets the
    /// step counter. All-`None` limits (the default) disable governance.
    ///
    /// See [`ResourceLimits`] for what each bound means and
    /// [`LimitExceeded`] for the abort-recovery contract.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.session.set_limits(limits);
    }

    /// Removes any installed resource budget (and disarms fault
    /// injection); the `try_*` kernels become infallible in practice.
    pub fn clear_limits(&mut self) {
        self.session.clear_limits();
    }

    /// The currently installed resource budget.
    pub fn limits(&self) -> ResourceLimits {
        self.session.limits()
    }

    /// Kernel recursion steps taken since the limits were installed or
    /// last reset — a cheap progress/cost indicator.
    pub fn steps_used(&self) -> u64 {
        self.session.steps_used()
    }

    /// Resets the step counter without touching the installed bounds
    /// (e.g. to give each cone of a flow a fresh work budget).
    pub fn reset_steps(&mut self) {
        self.session.reset_steps();
    }

    /// Test-only fault injection: the next `try_*` kernel aborts with
    /// [`LimitKind::Injected`] once the step counter reaches `steps`
    /// (`None` disarms). Used by the abort-recovery property tests to
    /// stop recursions at arbitrary interior points.
    #[doc(hidden)]
    pub fn fault_inject_abort_after(&mut self, steps: Option<u64>) {
        self.session.fault_inject_abort_after(steps);
    }

    /// Runs a fallible kernel closure with governance suspended, turning
    /// it into the unlimited-budget infallible form. This is how every
    /// classic entry point (`ite`, `and`, `xor`, the cofactor family, ...)
    /// wraps its `try_*` twin: the budget and any armed fault injection
    /// are ignored for the duration, then restored. (Store exhaustion is
    /// not governance: the façade's grow-and-retry loop has already
    /// absorbed any [`LimitKind::TableFull`] before this returns.)
    pub fn ungoverned<T>(&mut self, f: impl FnOnce(&mut Manager) -> Result<T, LimitExceeded>) -> T {
        let saved = std::mem::replace(&mut self.session.governed, false);
        let r = f(self);
        self.session.governed = saved;
        match r {
            Ok(v) => v,
            Err(e) => unreachable!("ungoverned kernel reported {e}"),
        }
    }

    /// The façade's kernel driver: runs a recursive kernel against
    /// `(&store, &mut session)` (the split borrow that replaced the old
    /// `&mut Manager` threading), folds the session's publication log
    /// into the per-variable slot lists afterwards (success and abort
    /// alike — aborted recursions leave real arena nodes behind), and
    /// absorbs [`LimitKind::TableFull`] by growing the store at this
    /// quiescent point and re-running (the warm computed cache makes the
    /// retry cheap). Genuine governance aborts pass through.
    pub(crate) fn run_kernel(
        &mut self,
        kernel: impl Fn(&NodeStore, &mut Session) -> Result<Ref, LimitExceeded>,
    ) -> Result<Ref, LimitExceeded> {
        loop {
            let r = kernel(&self.store, &mut self.session);
            self.drain_created();
            match r {
                Err(e) if e.kind == LimitKind::TableFull => {
                    self.grow_for_retry();
                }
                r => {
                    // Grow-ahead at the operation boundary keeps the
                    // shared path's 7/8 emergency cap out of reach on
                    // the next call.
                    if self.store.occupied() * 4 >= self.store.buckets_len() * 3 {
                        self.store.grow_buckets_to(self.store.buckets_len() * 2);
                    }
                    return r;
                }
            }
        }
    }

    /// Folds the default session's publication log into the store's
    /// per-variable slot lists (kernels hold only `&NodeStore`, so they
    /// log what they create instead of maintaining the lists).
    pub(crate) fn drain_created(&mut self) {
        let created = std::mem::take(&mut self.session.created);
        self.fold_created(created);
    }

    /// List-drain core shared with the parallel apply (which folds the
    /// logs of every worker session after joining them).
    pub(crate) fn fold_created(&mut self, created: Vec<u32>) {
        self.store.sync_lengths();
        for idx in created {
            let v = self.store.var_of(idx as usize) as usize;
            self.store.var_pos[idx as usize] = self.store.var_nodes[v].len() as u32;
            self.store.var_nodes[v].push(idx);
        }
    }

    /// Grows whichever store resource ran out: the unique table past its
    /// shared-region load cap, the arena past its capacity, or both.
    /// Called at quiescent points only (growth asserts it).
    pub(crate) fn grow_for_retry(&mut self) {
        let mut grew = false;
        if (self.store.occupied() + 1) * 8 > self.store.buckets_len() * 7 {
            self.store.grow_buckets_to(self.store.buckets_len() * 2);
            grew = true;
        }
        if self.store.arena_full() {
            self.store.grow_arena();
            grew = true;
        }
        if !grew {
            // try_mk only fails on one of the two conditions; racing
            // counters can leave both checks momentarily happy, in which
            // case arena headroom is the safe default.
            self.store.grow_arena();
        }
    }

    /// The constant true function.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// The constant false function.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::ONE
        } else {
            Ref::ZERO
        }
    }

    /// Returns the projection function of variable `index`, growing the
    /// variable count if needed (new variables enter at the deepest
    /// levels, leaving the existing order untouched).
    pub fn var(&mut self, index: u32) -> Ref {
        self.store.ensure_var(index);
        self.mk(Var(index), Ref::ZERO, Ref::ONE)
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> u32 {
        self.store.num_vars()
    }

    /// Current arena size in slots, including the terminal and reclaimed
    /// slots awaiting reuse — the kernel's memory footprint. With periodic
    /// collection this stays within a constant factor of
    /// [`Manager::live_nodes`] instead of growing monotonically.
    pub fn num_nodes(&self) -> usize {
        self.store.num_nodes()
    }

    /// Number of live nodes (arena slots currently holding a node,
    /// including the terminal; excludes the free list).
    pub fn live_nodes(&self) -> usize {
        self.store.live_nodes()
    }

    /// Read access to a stored node (a by-value snapshot since the
    /// store/session split — nodes are three words).
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or out of bounds; in debug
    /// builds, also if `id` was reclaimed by a collection (a dangling
    /// reference the caller failed to protect).
    pub fn node(&self, id: NodeId) -> Node {
        assert!(!id.is_terminal(), "terminal node has no decision variable");
        let n = self.store.node(id.index());
        debug_assert!(
            n.var.0 != FREE_VAR,
            "dangling reference to reclaimed node {id:?}"
        );
        n
    }

    /// The decision variable of an edge's top node; `None` for constants.
    pub fn top_var(&self, f: Ref) -> Option<Var> {
        self.store.top_var(f)
    }

    /// Level of an edge's top node in the current variable order, the
    /// *one shared helper* every kernel branches on: constants (and the
    /// poisoned/unregistered sentinels) report `u32::MAX`, the pseudo-level
    /// below every real one. Smaller means closer to the root.
    #[inline(always)]
    pub fn level(&self, f: Ref) -> u32 {
        self.store.level(f)
    }

    /// Level of variable `v` in the current order (`u32::MAX` if `v` is
    /// unknown to the manager).
    pub fn level_of_var(&self, v: Var) -> u32 {
        self.store.var_level(v.0)
    }

    /// The variable currently sitting at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars`.
    #[inline(always)]
    pub fn var_at_level(&self, level: u32) -> Var {
        self.store.var_at_level(level)
    }

    /// The current order as `var2level[var] = level` (a permutation of
    /// `0..num_vars`).
    pub fn var2level(&self) -> &[u32] {
        &self.store.var2level
    }

    /// The current order as `level2var[level] = var` (the inverse of
    /// [`Manager::var2level`]).
    pub fn level2var(&self) -> &[u32] {
        &self.store.level2var
    }

    /// Associates a display name with a variable (used by the DOT export).
    pub fn set_var_name(&mut self, index: u32, name: impl Into<String>) {
        self.store.set_var_name(index, name.into());
    }

    /// Display name of a variable, defaulting to `x<i>`.
    pub fn var_name(&self, index: u32) -> String {
        self.store.var_name(index)
    }

    /// Finds or creates the node `(var, low, high)`, applying the reduction
    /// rules (equal children; complement pushed off the 1-edge). Unknown
    /// variables are registered at the deepest level first. This is the
    /// quiescent (`&mut`) construction path — kernels use the session-side
    /// `mk` against the shared store instead.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the children's levels are not strictly
    /// below `var`'s level (which would break canonicity).
    #[inline]
    pub fn mk(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        self.store.ensure_var(var.0);
        if low == high {
            return low;
        }
        debug_assert!(
            self.store.var_level(var.0) < self.store.level(low)
                && self.store.var_level(var.0) < self.store.level(high),
            "mk: ordering violated at {var:?}"
        );
        let complement = high.is_complemented();
        let (low, high) = if complement {
            (!low, !high)
        } else {
            (low, high)
        };
        loop {
            match self.store.try_mk(var, low, high) {
                Ok((r, created)) => {
                    if created {
                        self.fold_created(vec![r.node().0]);
                        // Exclusive-path growth at 3/4 load, ahead of the
                        // shared path's 7/8 emergency cap.
                        if self.store.occupied() * 4 >= self.store.buckets_len() * 3 {
                            self.store.grow_buckets_to(self.store.buckets_len() * 2);
                        }
                    }
                    return r.xor_complement(complement);
                }
                Err(_) => self.grow_for_retry(),
            }
        }
    }

    /// Full recount audit of the interior reference counts and the
    /// per-variable slot lists: recomputes every `int_refs` entry from the
    /// arena edges and every `var_pos` from the lists, and panics on the
    /// first disagreement. O(arena) — the debug-mode cross-check behind
    /// the O(1) swap deltas (called after every collection and after each
    /// variable's sift walk in debug builds; tests call it directly).
    pub fn verify_interior_refs(&self) {
        let n = self.store.num_nodes();
        let mut counts = vec![0u32; n];
        for i in 1..n {
            let node = self.store.node(i);
            if node.var.0 == FREE_VAR {
                continue;
            }
            for c in [node.low, node.high] {
                let ci = c.node().index();
                if ci != 0 {
                    counts[ci] += 1;
                }
            }
        }
        for (i, &count) in counts.iter().enumerate().skip(1) {
            if self.store.var_of(i) == FREE_VAR {
                assert_eq!(
                    self.store.int_ref(i),
                    0,
                    "reclaimed slot {i} carries interior references"
                );
            } else {
                assert_eq!(
                    self.store.int_ref(i),
                    count,
                    "interior refcount of slot {i} disagrees with a full recount"
                );
            }
        }
        for (v, list) in self.store.var_nodes.iter().enumerate() {
            for (p, &s) in list.iter().enumerate() {
                assert_eq!(
                    self.store.var_of(s as usize),
                    v as u32,
                    "var_nodes[{v}] lists slot {s} of another variable"
                );
                assert_eq!(
                    self.store.var_pos[s as usize] as usize, p,
                    "var_pos of slot {s} disagrees with its list position"
                );
            }
        }
    }

    /// Audits the complement-edge canonical form over the live arena: no
    /// stored node may carry a complemented 1-edge (`mk` pushes the
    /// complement onto the 0-edge and the incoming edge) and no stored
    /// node may have equal children (the reduction rule). Together with
    /// hash-consing this is exactly why a function and its negation can
    /// never occupy two nodes: the only stored form of `¬f` is `f`'s own
    /// node reached through a complemented edge. Panics on the first
    /// violation; O(arena), intended for tests and debug audits.
    pub fn verify_edge_canonical_form(&self) {
        for i in 1..self.store.num_nodes() {
            let n = self.store.node(i);
            if n.var.0 == FREE_VAR {
                continue;
            }
            assert!(
                !n.high.is_complemented(),
                "slot {i}: complemented 1-edge escaped mk's normalization"
            );
            assert_ne!(n.low, n.high, "slot {i}: redundant node escaped mk");
        }
    }

    /// Interior (arena-edge) reference count of `f`'s node — how many
    /// live nodes name it as a child (test/diagnostic hook; the terminal
    /// reports `u32::MAX` like [`Manager::protect_count`]).
    pub fn interior_count(&self, f: Ref) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.store.int_ref(f.node().index())
        }
    }

    /// Cofactors `f` with respect to variable `v` assumed to be at or above
    /// `f`'s top level: returns `(f|v=0, f|v=1)`.
    #[inline(always)]
    pub(crate) fn shallow_cofactors(&self, f: Ref, v: Var) -> (Ref, Ref) {
        self.store.shallow_cofactors(f, v)
    }

    /// Drops every memoized operation result in O(1) (generation bump).
    /// The table keeps its allocation, so long-running flows can clear
    /// between phases without paying a re-allocation or a re-grow.
    /// Correctness is unaffected.
    pub fn clear_caches(&mut self) {
        self.session.cache.clear();
        // The shared (L2) cache clears at the same quiescent points as
        // the private one: an O(1) epoch bump through `&mut`.
        self.store.assert_quiescent("shared-cache clear");
        self.store.shared_cache_mut().clear();
    }

    /// Opens a fresh scope for [`crate::session::op::SCOPED`] cache
    /// entries (per-call memoization of permute / node-replacement
    /// rebuilds).
    #[inline]
    pub(crate) fn new_scope(&mut self) -> u32 {
        self.session.scope_epoch = self.session.scope_epoch.wrapping_add(1);
        if self.session.scope_epoch == 0 {
            // An epoch reuse after wrap could alias old entries: flush.
            self.session.cache.clear();
            self.session.scope_epoch = 1;
        }
        self.session.scope_epoch
    }

    /// Snapshot of the kernel's memory-system counters. The
    /// `garbage_estimate` field reports the current free list (slots
    /// already reclaimed and awaiting reuse); use
    /// [`Manager::cache_stats_with_roots`] to also count not-yet-swept
    /// dead nodes.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.session.cache.lookups,
            hits: self.session.cache.hits,
            insertions: self.session.cache.insertions,
            shared_lookups: self.session.cache.shared_lookups,
            shared_hits: self.session.cache.shared_hits,
            shared_insertions: self.session.cache.shared_insertions,
            par_steals: self.par_steals,
            peak_nodes: self.store.num_nodes(),
            cache_entries: self.session.cache.entry_capacity(),
            shared_cache_entries: self.store.shared_cache().len(),
            unique_buckets: self.store.buckets_len(),
            garbage_estimate: self.store.free_nodes(),
            live_nodes: self.live_nodes(),
            free_nodes: self.store.free_nodes(),
            reclaimed_total: self.reclaimed_total,
            collections: self.collections,
            sift_swaps: self.sift_swaps,
            sifts: self.sifts,
        }
    }

    /// [`Manager::cache_stats`] with `garbage_estimate` extended by the
    /// in-use nodes unreachable from `roots` — what a sweep from exactly
    /// those roots would reclaim, on top of the existing free list.
    pub fn cache_stats_with_roots(&self, roots: &[Ref]) -> CacheStats {
        let mut stats = self.cache_stats();
        let live = self.shared_size(roots);
        let in_use = self.live_nodes() - 1; // internal nodes currently held
        stats.garbage_estimate = self.store.free_nodes() + in_use.saturating_sub(live);
        stats
    }

    // ------------------------------------------------------------------
    // Dead-node reclamation (external refcounts + mark-and-sweep).
    // ------------------------------------------------------------------

    /// Declares `f` a collection root: the node it references (and
    /// everything reachable from it) survives [`Manager::collect`] until a
    /// matching [`Manager::release`]. Calls nest — `protect` twice,
    /// `release` twice. Constants are always live; protecting them is a
    /// no-op. Returns `f` for call-site convenience.
    pub fn protect(&mut self, f: Ref) -> Ref {
        if !f.is_const() {
            let slot = f.node().index();
            debug_assert!(
                self.store.var_of(slot) != FREE_VAR,
                "protect of reclaimed node"
            );
            self.store.refs[slot] = self.store.refs[slot].saturating_add(1);
        }
        f
    }

    /// Drops one [`Manager::protect`] claim on `f`. The node becomes
    /// eligible for collection once its external count reaches zero and no
    /// other protected function reaches it.
    pub fn release(&mut self, f: Ref) {
        if !f.is_const() {
            let slot = f.node().index();
            debug_assert!(
                self.store.refs[slot] > 0,
                "release without matching protect"
            );
            self.store.refs[slot] = self.store.refs[slot].saturating_sub(1);
        }
    }

    /// External reference count of `f`'s node (test/diagnostic hook).
    pub fn protect_count(&self, f: Ref) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.store.refs[f.node().index()]
        }
    }

    /// Replaces the collector configuration (see [`GcConfig`]).
    pub fn set_gc_config(&mut self, config: GcConfig) {
        self.gc = config;
    }

    /// The active collector configuration.
    pub fn gc_config(&self) -> GcConfig {
        self.gc
    }

    /// Number of collections that reclaimed at least one node. Any
    /// `Ref`-keyed side table outside the manager is invalid once this
    /// changes: swept slots are reused, so a stale key may alias a
    /// *different* function.
    pub fn gc_epoch(&self) -> u64 {
        self.gc_epoch
    }

    /// Adds one interior reference to `c`'s node (edges to the terminal
    /// are not tracked — it is unconditionally live).
    #[inline(always)]
    fn inc_child(&mut self, c: Ref) {
        let i = c.node().index();
        if i != 0 {
            *self.store.int_ref_mut(i) += 1;
        }
    }

    /// Drops one interior reference to `c`'s node. With `reclaim`, a node
    /// whose last reference (interior *and* external) just vanished is
    /// reclaimed on the spot, cascading into its own children — the eager
    /// mode sifting uses so swap garbage never exists and the live arena
    /// size *is* the rooted size.
    #[inline]
    fn dec_child(&mut self, c: Ref, reclaim: bool) {
        let i = c.node().index();
        if i == 0 {
            return;
        }
        debug_assert!(
            self.store.int_ref(i) > 0,
            "interior refcount underflow at slot {i}"
        );
        *self.store.int_ref_mut(i) -= 1;
        if reclaim && self.store.int_ref(i) == 0 && self.store.refs[i] == 0 {
            self.reclaim_cascade(i as u32);
        }
    }

    /// Removes `slot` from its `var_nodes` list in O(1) via the stored
    /// position (swap-remove; the displaced tail entry's position is
    /// patched).
    fn remove_from_var_list(&mut self, slot: u32, var: u32) {
        let p = self.store.var_pos[slot as usize] as usize;
        let list = &mut self.store.var_nodes[var as usize];
        debug_assert_eq!(list[p], slot, "var_pos out of sync at slot {slot}");
        list.swap_remove(p);
        if p < list.len() {
            self.store.var_pos[list[p] as usize] = p as u32;
        }
    }

    /// Reclaims a dead slot (`refs == 0 && int_refs == 0`) immediately:
    /// detaches it from the unique table and its per-variable list,
    /// poisons it onto the free list, and cascades into any child whose
    /// last reference this was. Iterative (worklist) so a long dead chain
    /// cannot overflow the stack.
    fn reclaim_cascade(&mut self, start: u32) {
        let mut stack = vec![start];
        while let Some(s) = stack.pop() {
            let n = self.store.node(s as usize);
            debug_assert!(n.var.0 != FREE_VAR, "double reclaim of slot {s}");
            self.store.remove_slot(s, &n);
            self.remove_from_var_list(s, n.var.0);
            self.store.free_push(s);
            self.reclaimed_total += 1;
            for c in [n.low, n.high] {
                let i = c.node().index();
                if i == 0 {
                    continue;
                }
                debug_assert!(
                    self.store.int_ref(i) > 0,
                    "interior refcount underflow at slot {i}"
                );
                *self.store.int_ref_mut(i) -= 1;
                if self.store.int_ref(i) == 0 && self.store.refs[i] == 0 {
                    stack.push(i as u32);
                }
            }
        }
    }

    /// Collects dead nodes now, **without a mark phase**: because the
    /// interior reference counts are exact, a node with `refs == 0 &&
    /// int_refs == 0` is dead by definition, and reclaiming it cascades
    /// into any child whose last reference it held — in a DAG this
    /// reclaims exactly the set a mark-and-sweep from the protected roots
    /// would (debug builds assert the equivalence). The cost is one
    /// arena scan plus O(dead), never a traversal of the live nodes.
    /// Sweeping rebuilds the unique table without the dead entries
    /// (shrinking it when the survivors would fit a table a quarter of
    /// the current size) and scrubs the computed-cache entries that name
    /// a reclaimed slot. Returns the number of reclaimed nodes.
    ///
    /// Stop-the-world: asserts store quiescence (no parallel sessions
    /// outstanding). Every `Ref` the caller intends to keep using must be
    /// protected (or reachable from a protected one) — anything else
    /// dangles afterwards.
    pub fn collect(&mut self) -> usize {
        self.store.assert_quiescent("collect");
        self.store.sync_lengths();
        self.store.reset_allocs_since_gc();
        // Seed with every in-use node nothing references, then cascade:
        // each reclaimed node drops its children's counts, and a child
        // whose count reaches zero (with no external claim) joins the
        // dead set. Acyclicity guarantees this reaches everything a mark
        // pass would leave unmarked.
        let n = self.store.num_nodes();
        let mut stack: Vec<u32> = Vec::new();
        for i in 1..n {
            if self.store.var_of(i) != FREE_VAR
                && self.store.refs[i] == 0
                && self.store.int_ref(i) == 0
            {
                stack.push(i as u32);
            }
        }
        let mut dead: Vec<u32> = Vec::new();
        while let Some(s) = stack.pop() {
            dead.push(s);
            let node = self.store.node(s as usize);
            for c in [node.low, node.high] {
                let i = c.node().index();
                if i == 0 {
                    continue;
                }
                debug_assert!(
                    self.store.int_ref(i) > 0,
                    "interior refcount underflow at slot {i}"
                );
                *self.store.int_ref_mut(i) -= 1;
                if self.store.int_ref(i) == 0 && self.store.refs[i] == 0 {
                    stack.push(i as u32);
                }
            }
        }
        if dead.is_empty() {
            return 0;
        }
        // The cascade above already dropped the children's counts.
        let reclaimed = self.sweep_dead(dead, false);
        #[cfg(debug_assertions)]
        {
            self.verify_interior_refs();
            debug_assert_eq!(
                self.rooted_size(),
                self.live_nodes() - 1,
                "refcount collect and mark reachability disagree"
            );
        }
        reclaimed
    }

    /// Collects only when worthwhile: a no-op until the allocations since
    /// the last attempt reach [`GcConfig::dead_fraction`] of the in-use
    /// nodes (so calling this in a tight flow loop is cheap), then a mark
    /// pass measures the true dead fraction and sweeps only when it
    /// exceeds the threshold. Returns the number of reclaimed nodes.
    pub fn maybe_collect(&mut self) -> usize {
        let in_use = self.live_nodes() - 1;
        if in_use < self.gc.min_nodes {
            return 0;
        }
        // Gate on allocations relative to the arena *capacity*, not the
        // in-use count: a collection costs O(arena), so requiring a
        // proportional amount of fresh allocation first keeps the
        // amortized overhead per created node constant even under extreme
        // churn.
        if (self.store.allocs_since_gc() as f64)
            < self.gc.dead_fraction * self.store.num_nodes() as f64
        {
            return 0;
        }
        self.mark_and_sweep(false)
    }

    /// The collector core: mark from protected roots, then (when `force`
    /// or the dead fraction clears the threshold) sweep, rebuild the
    /// unique table and invalidate the computed cache.
    fn mark_and_sweep(&mut self, force: bool) -> usize {
        self.store.assert_quiescent("collect");
        self.store.sync_lengths();
        self.store.reset_allocs_since_gc();
        let n = self.store.num_nodes();
        let in_use = self.live_nodes() - 1;
        // Mark phase: flood from every externally referenced node. The
        // visited scratch doubles as the mark bitmap; nothing else may
        // traverse between mark and sweep.
        let mut live = 0usize;
        {
            let mut seen = self.session.visited.borrow_mut();
            seen.begin(n);
            let mut stack: Vec<u32> = Vec::new();
            for (i, &rc) in self.store.refs.iter().enumerate().skip(1) {
                if rc > 0 {
                    stack.push(i as u32);
                }
            }
            while let Some(i) = stack.pop() {
                if !seen.mark(i as usize) {
                    continue;
                }
                live += 1;
                let node = self.store.node(i as usize);
                debug_assert!(node.var.0 != FREE_VAR, "marked a reclaimed slot");
                if !node.low.node().is_terminal() {
                    stack.push(node.low.node().0);
                }
                if !node.high.node().is_terminal() {
                    stack.push(node.high.node().0);
                }
            }
        }
        let dead = in_use - live;
        if dead == 0 || (!force && (dead as f64) < self.gc.dead_fraction * in_use as f64) {
            return 0;
        }
        let dead_list: Vec<u32> = {
            let seen = self.session.visited.borrow();
            (1..n as u32)
                .filter(|&i| {
                    self.store.var_of(i as usize) != FREE_VAR && !seen.is_marked(i as usize)
                })
                .collect()
        };
        self.sweep_dead(dead_list, true)
    }

    /// The shared sweep finalization: poisons the `dead` slots onto the
    /// free list (also recovering any slots abandoned by lost publication
    /// races), rebuilds the per-variable slot lists and the unique table
    /// from the survivors (shrink-on-sparse), and scrubs the computed
    /// cache. With `dec_children`, the dead nodes' arena edges are first
    /// removed from the interior counts (the refcount-driven
    /// [`Manager::collect`] has already done so while cascading).
    fn sweep_dead(&mut self, dead: Vec<u32>, dec_children: bool) -> usize {
        let n = self.store.num_nodes();
        if dec_children {
            // Every dec below corresponds to a real arena edge from a dead
            // node, so no count underflows; dead slots' own counts are
            // zeroed when poisoned (order between the two loops is free).
            for &s in &dead {
                let node = self.store.node(s as usize);
                for c in [node.low, node.high] {
                    let i = c.node().index();
                    if i != 0 {
                        *self.store.int_ref_mut(i) -= 1;
                    }
                }
            }
        }
        for &s in &dead {
            self.store.free_push(s);
            self.store.refs[s as usize] = 0;
            *self.store.int_ref_mut(s as usize) = 0;
        }
        // Recover race-abandoned slots alongside the freshly poisoned
        // dead: one arena scan rebuilds the free stack exactly.
        self.store.rebuild_free();
        // The sweep may have poisoned slots listed anywhere: rebuild the
        // per-variable slot lists (and the slots' positions in them) from
        // the survivors — one O(arena) pass the sweep already paid.
        for list in &mut self.store.var_nodes {
            list.clear();
        }
        for i in 1..n {
            let v = self.store.var_of(i) as usize;
            if v < self.store.var_nodes.len() {
                self.store.var_pos[i] = self.store.var_nodes[v].len() as u32;
                self.store.var_nodes[v].push(i as u32);
            }
        }
        // The unique table still lists the dead nodes: rebuild it from the
        // survivors, shrinking when they'd fit a quarter-size table.
        let live = self.live_nodes() - 1;
        self.store.set_occupied(live);
        let wanted = (live.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let new_len = if wanted * 4 <= self.store.buckets_len() {
            wanted
        } else {
            self.store.buckets_len()
        };
        self.store.grow_buckets_to(new_len);
        // Cached results naming a dead node must not survive — but wiping
        // the whole cache (a generation bump) makes every collection cost
        // a full memo rebuild, which dominates high-churn flows. Instead,
        // scrub: drop exactly the entries with a reclaimed slot behind any
        // word. Key words that are not `Ref`s (cofactor variable codes,
        // scope epochs) are treated as if they were — a false hit there
        // only costs a spurious miss, while every word that *is* a `Ref`
        // gets checked, so no dangling reference survives in the cache.
        let store = &self.store;
        self.session.cache.scrub(|w| {
            let idx = (w >> 1) as usize;
            idx >= store.num_nodes() || store.var_of(idx) != FREE_VAR
        });
        // The shared (L2) cache gets the same treatment at the same
        // quiescent point: decode each entry's exact operands (the key
        // mix is invertible) and drop the ones naming a reclaimed slot,
        // keeping the cross-thread memo warm across the sweep. Unlike the
        // L1, every L2 key word *is* a raw `Ref`, so the check is exact.
        let num_nodes = self.store.num_nodes();
        let cells: Vec<bool> = (0..num_nodes)
            .map(|i| self.store.var_of(i) != FREE_VAR)
            .collect();
        self.store
            .shared_cache_mut()
            .scrub(|slot| (slot as usize) < num_nodes && cells[slot as usize]);
        self.gc_epoch += 1;
        self.collections += 1;
        self.reclaimed_total += dead.len() as u64;
        dead.len()
    }

    // ------------------------------------------------------------------
    // Dynamic variable ordering (in-place adjacent swap + Rudell sifting).
    // ------------------------------------------------------------------

    /// Number of internal nodes reachable from the externally protected
    /// roots — the size metric sifting minimizes. Unprotected garbage
    /// (dead intermediates awaiting collection) is excluded, so the
    /// metric is stable under churn.
    pub fn rooted_size(&self) -> usize {
        let mut seen = self.session.visited.borrow_mut();
        seen.begin(self.store.num_nodes());
        let mut stack: Vec<u32> = Vec::new();
        for (i, &rc) in self.store.refs.iter().enumerate().skip(1) {
            if rc > 0 {
                stack.push(i as u32);
            }
        }
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !seen.mark(i as usize) {
                continue;
            }
            count += 1;
            let n = self.store.node(i as usize);
            if !n.low.node().is_terminal() {
                stack.push(n.low.node().0);
            }
            if !n.high.node().is_terminal() {
                stack.push(n.high.node().0);
            }
        }
        count
    }

    /// Exchanges level `level` with level `level + 1` *in place*.
    ///
    /// Only the nodes at the upper level whose children sit at the lower
    /// level are rewritten; their arena slots are patched (detached from
    /// the unique table, re-expressed over the swapped order, re-inserted),
    /// so every outstanding [`Ref`] keeps denoting the same Boolean
    /// function across the swap — nothing dangles, unprotected or not.
    /// Displaced lower-level nodes may become garbage for the next
    /// collection to reclaim. The computed cache is scrubbed conservatively
    /// (an O(1) generation bump) whenever any node is rewritten.
    ///
    /// Cost is proportional to the upper level's population (via the
    /// per-variable slot lists), not to the arena — sifting calls this in
    /// a tight loop.
    ///
    /// Returns the number of rewritten nodes.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= num_vars`.
    pub fn swap_levels(&mut self, level: u32) -> usize {
        self.swap_levels_inner(level, false).0
    }

    /// The swap primitive behind [`Manager::swap_levels`] and the sift
    /// walks. Returns `(rewritten nodes, exact signed live-size delta)`:
    /// the delta is nodes created minus nodes reclaimed, so a caller that
    /// entered with a garbage-free arena (sifting collects on entry) can
    /// track the rooted size across swaps in O(1) instead of re-walking
    /// the rooted set — the fix for the pass cost being
    /// O(live × swaps).
    ///
    /// With `reclaim`, displaced nodes whose last reference the rewrite
    /// removed are reclaimed *immediately* (cascading into their
    /// children), their slots feeding the very next `mk`: swap garbage
    /// never exists, so `live_nodes() - 1` *is* the rooted size for the
    /// whole pass. Eager reclamation invalidates `Ref`s nothing holds —
    /// the computed cache is cleared (it may name the recycled slots) and
    /// the `gc_epoch` advances so `Ref`-keyed side tables drop theirs.
    /// Without `reclaim` this is the historical contract: every `Ref`,
    /// protected or not, stays valid, and only the order-sensitive memo
    /// generation retires.
    pub(crate) fn swap_levels_inner(&mut self, level: u32, reclaim: bool) -> (usize, isize) {
        self.store.assert_quiescent("level swap");
        self.store.sync_lengths();
        let l = level as usize;
        assert!(
            l + 1 < self.store.level2var.len(),
            "swap_levels: level {level} out of range ({} variables)",
            self.store.level2var.len()
        );
        // Swap accounting lives at the primitive, so sift walks, window
        // installs and direct callers are all counted (see `sift_swaps`).
        self.sift_swaps += 1;
        let x = self.store.level2var[l];
        let y = self.store.level2var[l + 1];
        // Only upper-level nodes referencing the lower level change shape;
        // everything else is order-independent under an adjacent swap.
        let list = std::mem::take(&mut self.store.var_nodes[x as usize]);
        let mut keep: Vec<u32> = Vec::with_capacity(list.len());
        let mut moved: Vec<(u32, Node)> = Vec::new();
        for &slot in &list {
            let n = self.store.node(slot as usize);
            debug_assert_eq!(n.var.0, x, "per-variable slot list out of sync");
            let low_y = self.store.var_of(n.low.node().index()) == y;
            let high_y = self.store.var_of(n.high.node().index()) == y;
            if low_y || high_y {
                moved.push((slot, n));
            } else {
                keep.push(slot);
            }
        }
        for (p, &slot) in keep.iter().enumerate() {
            self.store.var_pos[slot as usize] = p as u32;
        }
        self.store.var_nodes[x as usize] = keep;
        // The order maps swap unconditionally.
        self.store.level2var.swap(l, l + 1);
        self.store.var2level[x as usize] = (l + 1) as u32;
        self.store.var2level[y as usize] = l as u32;
        if moved.is_empty() {
            return (0, 0);
        }
        let live_before = self.live_nodes() as isize;
        let reclaimed_before = self.reclaimed_total;
        // Detach the rewritten slots from the unique table (backward-shift
        // deletion) and poison them so a mid-rewrite table growth cannot
        // re-insert a stale triple; refcounts and identities are kept.
        // Their old arena edges stay counted until each slot is patched,
        // so no still-needed child can be eagerly reclaimed out from
        // under a later rewrite.
        for &(i, ref n) in &moved {
            self.store.remove_slot(i, n);
            self.store.set_var_of(i as usize, FREE_VAR);
        }
        let (xv, yv) = (Var(x), Var(y));
        for &(i, n) in &moved {
            // f = x·f1 + x'·f0 = y·(x·f11 + x'·f01) + y'·(x·f10 + x'·f00).
            let (f00, f01) = self.store.shallow_cofactors(n.low, yv);
            let (f10, f11) = self.store.shallow_cofactors(n.high, yv);
            let new_low = self.mk(xv, f00, f10);
            let new_high = self.mk(xv, f01, f11);
            // `f11` is a cofactor of the regular `n.high`, hence regular,
            // so the patched 1-edge stays regular; and the children cannot
            // collapse (that would need `f0 == f1`).
            debug_assert!(
                !new_high.is_complemented(),
                "swap: 1-edge must stay regular"
            );
            debug_assert_ne!(new_low, new_high, "swap: a rewritten node cannot vanish");
            self.store.set_node(
                i as usize,
                Node {
                    var: yv,
                    low: new_low,
                    high: new_high,
                },
            );
            // New edges first, then the old ones: a child shared between
            // the two sides must never transiently hit zero and be
            // reclaimed while still referenced.
            self.inc_child(new_low);
            self.inc_child(new_high);
            self.store.insert_slot(i);
            self.store.var_pos[i as usize] = self.store.var_nodes[y as usize].len() as u32;
            self.store.var_nodes[y as usize].push(i);
            self.dec_child(n.low, reclaim);
            self.dec_child(n.high, reclaim);
        }
        if self.reclaimed_total != reclaimed_before {
            // Eager reclamation recycled slots the memo (and Ref-keyed
            // side tables) may still name: retire the whole cache (O(1)
            // generation bump) and advance the reclamation epoch. The
            // shared (L2) cache may name the recycled slots too — same
            // O(1) epoch treatment (swaps without reclamation need no L2
            // action at all: only function-valued AND/XOR/ITE results are
            // ever published, and swaps preserve every Ref's function).
            self.session.cache.clear();
            self.store.shared_cache_mut().clear();
            self.gc_epoch += 1;
        } else {
            // Conservative cache scrub. Most memoized results survive a
            // swap unchanged: their keys and results are `Ref`s, the swap
            // preserves every Ref's function, and ITE/AND/XOR/COFACTOR/
            // SCOPED results are determined by operand functions alone.
            // The Coudert–Madre restrict/constrain results additionally
            // depend on the variable *order*, so exactly that class is
            // retired (O(1) generation bump) — the rest of the memo stays
            // warm across reordering.
            self.session.cache.clear_order_sensitive();
        }
        (moved.len(), self.live_nodes() as isize - live_before)
    }

    /// Rudell sifting over the protected roots: each variable (live
    /// densest first, re-ranked before every walk) is moved through the
    /// whole order by adjacent swaps and parked at the position
    /// minimizing [`Manager::rooted_size`], with a growth abort bounded
    /// against the variable's own start size and a total swap budget
    /// (see [`SiftConfig`]).
    ///
    /// Sifting *collects* on entry, and its swaps eagerly reclaim every
    /// displaced node whose interior and external counts both reach
    /// zero, so swap garbage never exists during the pass and the rooted
    /// size is tracked in O(1) per swap from the swaps' exact deltas
    /// (a debug-mode full recount audits the bookkeeping). Call this
    /// only at quiescent points with every live function protected,
    /// exactly like [`Manager::collect`] — eager reclamation invalidates
    /// unprotected refs just like a collection does (and advances
    /// [`Manager::gc_epoch`]). With no protected roots the pass is a
    /// no-op. (The cheaper [`Manager::swap_levels`] primitive never
    /// reclaims and preserves even unprotected refs.)
    pub fn sift(&mut self, cfg: &SiftConfig) -> SiftReport {
        self.sift_filtered(cfg, None)
    }

    /// [`Manager::sift`] restricted to actively moving only `subset`
    /// variables (others shift as bystanders but are never walked
    /// themselves). This is how a per-cone sift avoids paying for the
    /// manager's full variable count: pass the cone's support.
    ///
    /// With [`SiftConfig::symmetric_groups`] on, a subset variable that
    /// is adjacent-symmetric with a *foreign* variable fuses with it and
    /// the whole block walks together — symmetry outranks the scoping
    /// (moving only half of a symmetric pair cannot improve the order).
    pub fn sift_vars(&mut self, cfg: &SiftConfig, subset: &[Var]) -> SiftReport {
        self.sift_filtered(cfg, Some(subset))
    }

    fn sift_filtered(&mut self, cfg: &SiftConfig, subset: Option<&[Var]>) -> SiftReport {
        self.store.assert_quiescent("sift");
        let n = self.num_vars() as usize;
        self.collect();
        let initial = self.rooted_size();
        let mut report = SiftReport {
            initial_size: initial,
            final_size: initial,
            passes: 1,
            ..SiftReport::default()
        };
        if n < 2 || initial == 0 {
            return report;
        }
        // The entry collect left the arena garbage-free, and every swap
        // below runs in eager-reclaim mode, so the live arena *is* the
        // rooted set for the whole pass: `size` is maintained in O(1)
        // from the swaps' exact deltas — the pass no longer re-walks the
        // rooted set after every swap (the old O(live × swaps) cost).
        debug_assert_eq!(
            initial,
            self.live_nodes() - 1,
            "entry collect must leave a garbage-free arena"
        );
        let mut size = initial;
        // Candidate set, re-ranked by *live* population before every walk:
        // earlier moves (and their reclamation) change the per-variable
        // populations, so a one-shot snapshot picks stale "densest"
        // variables.
        let mut remaining: Vec<u32> = match subset {
            Some(subset) => subset
                .iter()
                .map(|v| v.0)
                .filter(|&v| (v as usize) < n)
                .collect(),
            None => (0..n as u32).collect(),
        };
        // Variables already moved as part of a walked group.
        let mut walked = vec![false; n];
        while report.vars_sifted < cfg.max_vars && report.swaps < cfg.max_swaps {
            let mut best_i = usize::MAX;
            let mut best_pop = 0usize;
            for (i, &v) in remaining.iter().enumerate() {
                let pop = self.store.var_nodes[v as usize].len();
                if pop > best_pop && !walked[v as usize] {
                    best_pop = pop;
                    best_i = i;
                }
            }
            if best_pop == 0 {
                break;
            }
            let v = remaining.swap_remove(best_i);
            // The block of levels to walk: just `v`, extended over every
            // adjacent symmetric neighbour when group sifting is on. The
            // membership is frozen for the walk; symmetries that only
            // become adjacent mid-walk are picked up by the next pass
            // (sift_to_fixpoint repeats passes exactly for this).
            let mut top = self.store.var2level[v as usize] as usize;
            let mut glen = 1usize;
            let mut absorbed: Vec<u32> = Vec::new();
            if cfg.symmetric_groups {
                while top + glen < n && self.symmetric_levels((top + glen - 1) as u32) {
                    absorbed.push(self.store.level2var[top + glen]);
                    glen += 1;
                }
                while top > 0 && self.symmetric_levels((top - 1) as u32) {
                    top -= 1;
                    absorbed.push(self.store.level2var[top]);
                    glen += 1;
                }
            }
            walked[v as usize] = true;
            // A walk that cannot afford even one block step does no work:
            // skip it without counting it (or claiming its group members —
            // a smaller group or single variable later may still fit the
            // remaining budget).
            if report.swaps + glen > cfg.max_swaps {
                continue;
            }
            for &w in &absorbed {
                walked[w as usize] = true;
            }
            if glen > 1 {
                report.groups += 1;
            }
            report.vars_sifted += 1;
            // Growth aborts are bounded against this walk's *starting*
            // size: a big win by an earlier variable must not let this
            // one balloon the global size by max_growth× before aborting.
            let start_size = size;
            let mut best_size = size;
            let mut best_top = top;
            // Walk to the nearer edge first, then sweep to the other.
            let down_first = n - (top + glen) <= top;
            'walk: for phase in 0..2 {
                let downward = if phase == 0 { down_first } else { !down_first };
                loop {
                    // A block step costs `glen` swaps and must not start
                    // unless it fits the budget (a half-moved block would
                    // strand foreign variables inside the group).
                    if report.swaps + glen > cfg.max_swaps {
                        break 'walk;
                    }
                    if downward && top + glen >= n || !downward && top == 0 {
                        break;
                    }
                    size = self.block_step(top, glen, downward, size, &mut report.swaps);
                    top = if downward { top + 1 } else { top - 1 };
                    if size < best_size {
                        best_size = size;
                        best_top = top;
                    } else if (size as f64) > cfg.max_growth * start_size as f64 {
                        break;
                    }
                }
            }
            // Park the block at the best position seen. Restores are not
            // budget-gated (the block must not be stranded mid-order);
            // swaps past the budget surface as `restore_overage`.
            while top > best_top {
                size = self.block_step(top, glen, false, size, &mut report.swaps);
                top -= 1;
            }
            while top < best_top {
                size = self.block_step(top, glen, true, size, &mut report.swaps);
                top += 1;
            }
            debug_assert_eq!(size, best_size, "restore must reach the best size");
            size = best_size;
            #[cfg(debug_assertions)]
            {
                // The full-recount audit pinning the O(1) accounting: the
                // interior counts match the arena edges, and the tracked
                // size matches a from-scratch rooted traversal.
                self.verify_interior_refs();
                debug_assert_eq!(size, self.rooted_size(), "O(1) size tracking drifted");
            }
        }
        report.final_size = size;
        report.restore_overage = report.swaps.saturating_sub(cfg.max_swaps);
        self.sifts += 1;
        report
    }

    /// Moves the block of `glen` adjacent levels starting at `top` one
    /// position down (or up) by bubbling the neighbouring variable
    /// through it — `glen` eager-reclaim swaps. Returns the updated
    /// rooted size (`size` plus the swaps' exact deltas).
    fn block_step(
        &mut self,
        top: usize,
        glen: usize,
        downward: bool,
        size: usize,
        swaps: &mut usize,
    ) -> usize {
        let mut size = size as isize;
        if downward {
            // The variable below the block rises to `top`.
            for i in (top..top + glen).rev() {
                size += self.swap_levels_inner(i as u32, true).1;
                *swaps += 1;
            }
        } else {
            // The variable above the block sinks to the block's bottom.
            for i in top - 1..top + glen - 1 {
                size += self.swap_levels_inner(i as u32, true).1;
                *swaps += 1;
            }
        }
        debug_assert!(size >= 0, "rooted size underflow in block step");
        size as usize
    }

    /// Repeats budget-relaxed [`Manager::sift`] passes until one shrinks
    /// the rooted size by less than [`ConvergeConfig::min_gain`] (or
    /// [`ConvergeConfig::max_passes`] is reached) — sift to convergence.
    /// Monotone: each pass parks every walked variable at its best seen
    /// position (its start included), so the size never increases and the
    /// loop always terminates. Returns the accumulated report
    /// (`initial_size` from the first pass, `final_size` from the last).
    ///
    /// Like [`Manager::sift`], call this only at quiescent points with
    /// every live function protected.
    pub fn sift_to_fixpoint(&mut self, cfg: &ConvergeConfig) -> SiftReport {
        self.sift_to_fixpoint_filtered(cfg, None)
    }

    /// The one convergence driver behind [`Manager::sift_to_fixpoint`]
    /// and the per-cone [`crate::sift_converge_reorder`]: both share this
    /// loop so the termination rule cannot drift between them.
    pub(crate) fn sift_to_fixpoint_filtered(
        &mut self,
        cfg: &ConvergeConfig,
        subset: Option<&[Var]>,
    ) -> SiftReport {
        let mut total = SiftReport::default();
        for pass in 0..cfg.max_passes.max(1) {
            let r = self.sift_filtered(&cfg.pass, subset);
            if pass == 0 {
                total.initial_size = r.initial_size;
            }
            total.final_size = r.final_size;
            total.swaps += r.swaps;
            total.vars_sifted += r.vars_sifted;
            total.restore_overage += r.restore_overage;
            total.groups += r.groups;
            total.passes += 1;
            let gained = r.initial_size.saturating_sub(r.final_size);
            if (gained as f64) < cfg.min_gain * r.initial_size.max(1) as f64 {
                break;
            }
        }
        total
    }

    /// Whether the variables at `level` and `level + 1` are positively
    /// symmetric in every function of the shared DAG — the structural
    /// adjacent-level check of CUDD's symmetric sifting (Panda–Somenzi):
    ///
    /// * every node at the upper level must satisfy
    ///   `f(x=0, y=1) == f(x=1, y=0)` (checked on shallow cofactors;
    ///   canonicity turns the semantic condition into `Ref` equality), and
    /// * every node at the lower level must be referenced *only* by
    ///   upper-level nodes — an edge into `y` bypassing `x` (from a node
    ///   above `x`, or an external root) could distinguish the two
    ///   variables. The interior counts make this exact: the edges from
    ///   upper-level nodes must account for the lower node's whole
    ///   count, with no external claim.
    ///
    /// Returns `false` when either level is empty. Conservative in the
    /// presence of unswept garbage (dead parents keep counts up, which
    /// can only hide a symmetry, never invent one); sifting runs it on a
    /// collected arena where the answer is exact.
    pub fn symmetric_levels(&self, level: u32) -> bool {
        let l = level as usize;
        if l + 1 >= self.store.level2var.len() {
            return false;
        }
        let x = self.store.level2var[l];
        let y = self.store.level2var[l + 1];
        let xs = &self.store.var_nodes[x as usize];
        let ys = &self.store.var_nodes[y as usize];
        if xs.is_empty() || ys.is_empty() {
            return false;
        }
        let yv = Var(y);
        let mut from_x: std::collections::HashMap<u32, u32, crate::hasher::BuildFxHasher> =
            std::collections::HashMap::with_capacity_and_hasher(
                ys.len(),
                crate::hasher::BuildFxHasher::default(),
            );
        for &sx in xs {
            let node = self.store.node(sx as usize);
            let (_, f01) = self.store.shallow_cofactors(node.low, yv);
            let (f10, _) = self.store.shallow_cofactors(node.high, yv);
            if f01 != f10 {
                return false;
            }
            for c in [node.low, node.high] {
                let i = c.node().index();
                if i != 0 && self.store.var_of(i) == y {
                    *from_x.entry(i as u32).or_insert(0) += 1;
                }
            }
        }
        ys.iter().all(|&sy| {
            self.store.refs[sy as usize] == 0
                && self.store.int_ref(sy as usize) == from_x.get(&sy).copied().unwrap_or(0)
        })
    }

    /// Replaces the automatic-sifting configuration and re-arms the
    /// trigger threshold (see [`AutoSiftConfig`]).
    pub fn set_sift_config(&mut self, config: AutoSiftConfig) {
        self.auto_sift = config;
        self.next_sift = config.min_nodes;
    }

    /// The active automatic-sifting configuration.
    pub fn sift_config(&self) -> AutoSiftConfig {
        self.auto_sift
    }

    /// Sifts only when worthwhile: a no-op while automatic sifting is
    /// disabled or the live node count is below the re-armed threshold;
    /// otherwise collects (callers invoke this only at quiescent points,
    /// exactly like [`Manager::maybe_collect`], so every live function is
    /// protected), runs one [`Manager::sift`] pass — or a full
    /// [`Manager::sift_to_fixpoint`] when [`AutoSiftConfig::fixpoint`] is
    /// set — over the compacted arena, and re-arms the trigger at twice
    /// the post-sift live size. Returns the report when a pass ran.
    pub fn maybe_sift(&mut self) -> Option<SiftReport> {
        if !self.auto_sift.enabled || self.live_nodes() < self.next_sift {
            return None;
        }
        let report = match self.auto_sift.fixpoint {
            Some(converge) => self.sift_to_fixpoint(&converge),
            None => {
                let cfg = self.auto_sift.sift;
                self.sift(&cfg)
            }
        };
        self.next_sift = (self.live_nodes() * 2).max(self.auto_sift.min_nodes);
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::op;

    #[test]
    fn terminal_is_node_zero() {
        let m = Manager::new();
        assert_eq!(m.num_nodes(), 1);
        assert!(Ref::ONE.node().is_terminal());
        assert_eq!(m.top_var(Ref::ONE), None);
        assert_eq!(m.top_var(Ref::ZERO), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = Manager::new();
        let a1 = m.var(3);
        let a2 = m.var(3);
        assert_eq!(a1, a2);
        assert_eq!(m.num_vars(), 4);
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = Manager::new();
        let r = m.mk(Var(0), Ref::ONE, Ref::ONE);
        assert_eq!(r, Ref::ONE);
    }

    #[test]
    fn one_edges_are_regular() {
        let mut m = Manager::new();
        let a = m.var(0);
        let na = !a;
        // !a = mk(0, ONE, ZERO) must be stored with a regular 1-edge.
        assert!(na.is_complemented());
        let n = m.node(na.node());
        assert!(!n.high.is_complemented());
        assert_eq!(m.num_nodes(), 2, "a and !a share one node");
    }

    #[test]
    fn shallow_cofactors_respect_complement() {
        let mut m = Manager::new();
        let a = m.var(0);
        let (f0, f1) = m.shallow_cofactors(a, Var(0));
        assert_eq!((f0, f1), (Ref::ZERO, Ref::ONE));
        let (g0, g1) = m.shallow_cofactors(!a, Var(0));
        assert_eq!((g0, g1), (Ref::ONE, Ref::ZERO));
        // A variable below the asked level is untouched.
        let (h0, h1) = m.shallow_cofactors(a, Var(5));
        assert_eq!((h0, h1), (a, a));
    }

    #[test]
    fn var_names_default_and_custom() {
        let mut m = Manager::new();
        assert_eq!(m.var_name(2), "x2");
        m.set_var_name(2, "carry");
        assert_eq!(m.var_name(2), "carry");
    }

    #[test]
    fn unique_table_survives_growth() {
        // Force several doublings and re-check canonicity afterwards. The
        // chain is built deepest-variable-first so every `mk` respects the
        // ordering invariant (children strictly below the new node).
        let mut m = Manager::with_capacity(16, 8);
        let before = m.cache_stats().unique_buckets;
        let mut chain: Vec<(u32, Ref, Ref)> = Vec::new();
        let mut prev = Ref::ONE;
        for v in (0..300u32).rev() {
            let node = m.mk(Var(v), !prev, prev);
            chain.push((v, prev, node));
            prev = node;
        }
        assert!(
            m.cache_stats().unique_buckets > before,
            "300 nodes must outgrow the smallest table"
        );
        // Re-making the same triples must return the identical refs.
        for &(v, child, r) in &chain {
            assert_eq!(m.mk(Var(v), !child, child), r);
        }
        assert_eq!(m.num_nodes(), 301, "re-makes created nothing");
    }

    #[test]
    fn clear_caches_is_generation_bump() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let entries_before = m.cache_stats().cache_entries;
        m.clear_caches();
        assert_eq!(
            m.cache_stats().cache_entries,
            entries_before,
            "clear keeps capacity"
        );
        // Results stay canonical after the cache is dropped.
        assert_eq!(m.and(a, b), f1);
    }

    #[test]
    fn with_capacity_pre_sizes_tables() {
        let m = Manager::with_capacity(100_000, 18);
        let stats = m.cache_stats();
        assert!(stats.unique_buckets >= 100_000 * 4 / 3);
        // 18 cache bits → 2^16 three-way sets = 3·2^16 entries.
        assert_eq!(stats.cache_entries, 3 << 16);
    }

    #[test]
    fn reserve_nodes_grows_unique_table() {
        let mut m = Manager::new();
        let before = m.cache_stats().unique_buckets;
        m.reserve_nodes(1 << 16);
        assert!(m.cache_stats().unique_buckets > before);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.and(a, b), f);
    }

    #[test]
    fn stats_track_cache_traffic() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let r1 = m.ite(a, b, c);
        let before = m.cache_stats();
        let r2 = m.ite(a, b, c);
        let after = m.cache_stats();
        assert_eq!(r1, r2);
        assert!(after.lookups > before.lookups);
        assert!(after.hits > before.hits, "repeat ITE must hit the cache");
        assert_eq!(after.peak_nodes, m.num_nodes());
    }

    #[test]
    fn protect_release_roundtrip() {
        let mut m = Manager::new();
        let a = m.var(0);
        assert_eq!(m.protect_count(a), 0);
        m.protect(a);
        m.protect(a);
        assert_eq!(m.protect_count(a), 2);
        m.release(a);
        assert_eq!(m.protect_count(a), 1);
        m.release(a);
        assert_eq!(m.protect_count(a), 0);
        // Constants are always live; protect/release are no-ops.
        m.protect(Ref::ONE);
        m.release(Ref::ZERO);
        assert_eq!(m.protect_count(Ref::ONE), u32::MAX);
    }

    #[test]
    fn collect_reclaims_dead_nodes_and_reuses_slots() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let dead = m.ite(c, keep, b);
        let _more_dead = m.xor(dead, a);
        m.protect(keep);
        let before = m.num_nodes();
        let reclaimed = m.collect();
        assert!(reclaimed > 0, "the ite/xor chain is unreachable");
        assert_eq!(m.num_nodes(), before, "arena keeps its slots");
        assert_eq!(m.live_nodes(), before - reclaimed);
        let stats = m.cache_stats();
        assert_eq!(stats.free_nodes, reclaimed);
        assert_eq!(stats.garbage_estimate, reclaimed);
        assert_eq!(stats.reclaimed_total, reclaimed as u64);
        assert_eq!(stats.collections, 1);
        // The kept function still evaluates correctly...
        assert!(m.eval(keep, &[true, true, false]));
        assert!(!m.eval(keep, &[true, false, false]));
        // ...and new nodes reuse reclaimed slots before the arena grows.
        let a2 = m.var(0);
        let b2 = m.var(1);
        let rebuilt = m.and(a2, b2);
        assert_eq!(rebuilt, keep, "canonicity survives reclaim-and-reuse");
        let c2 = m.var(2);
        let _redo = m.ite(c2, keep, b2);
        assert_eq!(m.num_nodes(), before, "free slots absorbed the rebuild");
    }

    #[test]
    fn collect_with_no_garbage_reclaims_nothing() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.protect(f);
        m.protect(a); // the projection of var 0 is not part of f's DAG
        assert_eq!(m.collect(), 0);
        assert_eq!(
            m.cache_stats().collections,
            0,
            "empty sweeps are not counted"
        );
        assert_eq!(m.gc_epoch(), 0);
    }

    #[test]
    fn unique_table_shrinks_when_sparse_after_collect() {
        // Build a 5000-node chain, drop every root, collect: the survivors
        // (none) fit the floor-size table, so the bucket array shrinks.
        let mut m = Manager::with_capacity(16, 8);
        let mut prev = Ref::ONE;
        for v in (0..5000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        let grown = m.cache_stats().unique_buckets;
        assert!(grown >= 8192, "5000 nodes must outgrow the floor table");
        let reclaimed = m.collect();
        assert_eq!(reclaimed, 5000);
        assert_eq!(m.cache_stats().unique_buckets, MIN_BUCKETS);
        assert_eq!(m.live_nodes(), 1, "only the terminal survives");
        // Rebuilding the same chain reuses the freed slots: the arena must
        // not grow past its previous footprint.
        let before = m.num_nodes();
        let mut prev = Ref::ONE;
        for v in (0..5000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        assert_eq!(m.num_nodes(), before, "reclaim-before-grow");
        assert_eq!(m.size(prev), 5000);
    }

    #[test]
    fn maybe_collect_gates_on_config() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let _dead = m.and(a, b);
        // Below min_nodes: never collects, however much is dead.
        assert_eq!(m.maybe_collect(), 0);
        // With the floor removed and everything dead, it sweeps.
        m.set_gc_config(GcConfig {
            dead_fraction: 0.25,
            min_nodes: 0,
        });
        let reclaimed = m.maybe_collect();
        assert!(reclaimed > 0);
        // Immediately afterwards nothing has been allocated: cheap no-op.
        assert_eq!(m.maybe_collect(), 0);
        assert_eq!(m.gc_config().min_nodes, 0);
    }

    #[test]
    fn new_scope_epoch_wrap_flushes_cache() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.ite(a, b, Ref::ZERO);
        // Put the epoch at the wrap boundary and plant a poisoned SCOPED
        // entry under the epoch that will be handed out after the wrap
        // (epoch 1). If new_scope failed to flush, the next scoped rebuild
        // would observe it and return garbage.
        m.session.scope_epoch = u32::MAX;
        m.session.cache.insert(op::SCOPED, f.raw(), 1, 1, Ref::ZERO);
        let scope = m.new_scope();
        assert_eq!(scope, 1, "epoch wraps to 1");
        assert_eq!(
            m.session.cache.lookup(op::SCOPED, f.raw(), 1, 1),
            None,
            "the stale entry for the reused epoch must be unobservable"
        );
        // End-to-end: a permute (which consumes a fresh scope) right after
        // an epoch wrap still returns the correct function.
        m.session.scope_epoch = u32::MAX;
        let g = m.permute(f, &[0, 1]);
        assert_eq!(g, f, "identity permutation after epoch wrap");
    }

    #[test]
    fn level_maps_start_as_identity_and_constants_report_max() {
        let mut m = Manager::new();
        m.var(2);
        assert_eq!(m.var2level(), &[0, 1, 2]);
        assert_eq!(m.level2var(), &[0, 1, 2]);
        assert_eq!(m.level(Ref::ONE), u32::MAX);
        assert_eq!(m.level(Ref::ZERO), u32::MAX);
        assert_eq!(
            m.level_of_var(Var(99)),
            u32::MAX,
            "unknown vars sit below all"
        );
        let a = m.var(1);
        assert_eq!(m.level(a), 1);
        assert_eq!(m.var_at_level(1), Var(1));
    }

    #[test]
    fn swap_levels_preserves_refs_and_functions() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.ite(a, b, c);
        let g = m.and(a, c);
        let truth = |m: &Manager, f: Ref| -> u32 {
            let mut t = 0;
            for row in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| row >> i & 1 == 1).collect();
                if m.eval(f, &assignment) {
                    t |= 1 << row;
                }
            }
            t
        };
        let (tf, tg) = (truth(&m, f), truth(&m, g));
        let moved = m.swap_levels(0);
        assert!(moved > 0, "the root of f branches into level 1");
        assert_eq!(m.var2level(), &[1, 0, 2]);
        assert_eq!(m.level2var(), &[1, 0, 2]);
        // The same Refs still denote the same functions.
        assert_eq!(truth(&m, f), tf);
        assert_eq!(truth(&m, g), tg);
        // Canonicity holds under the new order: recomputing returns the
        // identical Refs.
        assert_eq!(m.ite(a, b, c), f);
        assert_eq!(m.and(a, c), g);
        // Swapping back restores the identity order and the functions.
        m.swap_levels(0);
        assert_eq!(m.var2level(), &[0, 1, 2]);
        assert_eq!(truth(&m, f), tf);
        assert_eq!(m.ite(a, b, c), f);
    }

    #[test]
    fn swap_levels_without_interaction_moves_no_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        m.var(1);
        let c = m.var(2);
        let f = m.and(a, c); // nothing at level 0 references level 1
        assert_eq!(m.swap_levels(0), 0);
        assert_eq!(m.var2level(), &[1, 0, 2]);
        assert_eq!(m.and(a, c), f, "untouched nodes stay canonical");
    }

    #[test]
    fn sift_shrinks_an_order_hostile_function() {
        // x0·x3 + x1·x4 + x2·x5: exponential under the interleaved
        // identity order, linear once the pairs are adjacent.
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        let before = m.size(f);
        let report = m.sift(&SiftConfig::default());
        let after = m.size(f);
        assert_eq!(report.initial_size, before);
        assert_eq!(report.final_size, after);
        assert!(report.swaps > 0);
        assert_eq!(
            after, 6,
            "sifting must find a pairing order ({before} -> {after})"
        );
        // The function itself is untouched.
        for row in 0..64u32 {
            let assignment: Vec<bool> = (0..6).map(|i| row >> i & 1 == 1).collect();
            let want = (assignment[0] && assignment[3])
                || (assignment[1] && assignment[4])
                || (assignment[2] && assignment[5]);
            assert_eq!(m.eval(f, &assignment), want, "row {row}");
        }
        assert_eq!(m.cache_stats().sifts, 1);
        assert!(m.cache_stats().sift_swaps >= report.swaps as u64);
    }

    #[test]
    fn sift_without_roots_is_a_noop() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(3);
        let _f = m.and(a, b); // never protected
        let report = m.sift(&SiftConfig::default());
        assert_eq!(report.swaps, 0);
        assert_eq!(report.initial_size, 0, "no roots, nothing to minimize");
    }

    #[test]
    fn maybe_sift_gates_on_config() {
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        // Disabled by default.
        assert!(m.maybe_sift().is_none());
        m.set_sift_config(AutoSiftConfig {
            enabled: true,
            min_nodes: 4,
            ..AutoSiftConfig::default()
        });
        let report = m.maybe_sift().expect("threshold cleared");
        assert!(report.final_size <= report.initial_size);
        // Re-armed: immediately afterwards the threshold gates again.
        assert!(m.maybe_sift().is_none());
        assert!(m.sift_config().enabled);
    }

    #[test]
    fn interior_refs_track_arena_edges_exactly() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.ite(c, ab, b);
        m.verify_interior_refs();
        // `b`'s projection node is the 1-child of `ab` (at least).
        assert!(m.interior_count(b) >= 1);
        assert_eq!(m.interior_count(Ref::ONE), u32::MAX);
        let _ = ab;
        // A swap rewrites edges; the audit must still pass and the counts
        // must follow the patched slots.
        m.protect(f);
        m.swap_levels(0);
        m.verify_interior_refs();
        m.swap_levels(1);
        m.verify_interior_refs();
        // Collection reclaims with cascading decrements; audit again.
        m.collect();
        m.verify_interior_refs();
        // Free-list reuse re-increments the new children.
        let d = m.var(3);
        let g = m.and(f, d);
        let _ = g;
        m.verify_interior_refs();
    }

    #[test]
    fn refcount_collect_reclaims_dead_chains_without_mark() {
        // A deep chain with no roots: the seed scan only sees the
        // parentless top, the cascade must reach the rest.
        let mut m = Manager::with_capacity(16, 8);
        let mut prev = Ref::ONE;
        for v in (0..2000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        assert_eq!(m.collect(), 2000);
        assert_eq!(m.live_nodes(), 1);
        m.verify_interior_refs();
    }

    #[test]
    fn symmetric_levels_detects_known_symmetries() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.protect(f);
        m.collect();
        // a·b is symmetric in (a, b) …
        assert!(m.symmetric_levels(0));
        let mut m2 = Manager::new();
        let a = m2.var(0);
        let b = m2.var(1);
        let nb = !b;
        let g = m2.and(a, nb);
        m2.protect(g);
        m2.collect();
        // … a·b̄ is not (positively): g(a=0,b=1) = 0 ≠ g(a=1,b=0) = 1.
        assert!(!m2.symmetric_levels(0));
        // An empty level pair is never symmetric.
        let mut m3 = Manager::new();
        m3.var(0);
        m3.var(1);
        assert!(!m3.symmetric_levels(0));
    }

    #[test]
    fn symmetric_levels_rejects_bypassing_references() {
        // f = maj(a, b, c) is symmetric in every pair, but keeping a bare
        // projection of b alive as a root adds an external reference to a
        // level-1 node that bypasses level 0 — the group check must
        // refuse to fuse (a, b) then.
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.maj(a, b, c);
        m.protect(f);
        m.collect();
        assert!(m.symmetric_levels(0));
        assert!(m.symmetric_levels(1));
        let b2 = m.var(1);
        m.protect(b2);
        assert!(
            !m.symmetric_levels(0),
            "external claim on b must block the group"
        );
        m.release(b2);
        assert!(m.symmetric_levels(0));
    }

    #[test]
    fn group_sifting_walks_symmetric_pairs_as_blocks() {
        // (x0 ∨ x1) pairs with (x4 ∧ x5) across a hostile interleaving;
        // x0/x1 and x4/x5 are symmetric pairs the walk should fuse.
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let ab = m.or(a, b);
        let c = m.var(4);
        let d = m.var(5);
        let cd = m.and(c, d);
        let x2 = m.var(2);
        let x3 = m.var(3);
        let mid = m.and(x2, x3);
        let t = m.xor(ab, mid);
        let f = m.xor(t, cd);
        m.protect(f);
        let truth_before: Vec<bool> = (0..64u32)
            .map(|row| m.eval(f, &(0..6).map(|i| row >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        let cfg = SiftConfig {
            symmetric_groups: true,
            ..SiftConfig::default()
        };
        let report = m.sift(&cfg);
        assert!(
            report.groups >= 1,
            "symmetric pairs must be walked as blocks"
        );
        assert!(report.final_size <= report.initial_size);
        m.verify_interior_refs();
        let truth_after: Vec<bool> = (0..64u32)
            .map(|row| m.eval(f, &(0..6).map(|i| row >> i & 1 == 1).collect::<Vec<_>>()))
            .collect();
        assert_eq!(
            truth_before, truth_after,
            "group sifting changed the function"
        );
    }

    #[test]
    fn sift_to_fixpoint_terminates_and_never_loses_to_single_pass() {
        let build = |m: &mut Manager| {
            let mut f = Ref::ZERO;
            for i in 0..4 {
                let a = m.var(i);
                let b = m.var(i + 4);
                let ab = m.and(a, b);
                f = m.or(f, ab);
            }
            m.protect(f)
        };
        let mut single = Manager::new();
        let fs = build(&mut single);
        let rs = single.sift(&SiftConfig::default());
        let mut conv = Manager::new();
        let fc = build(&mut conv);
        let cfg = ConvergeConfig::default();
        let rc = conv.sift_to_fixpoint(&cfg);
        assert!(
            rc.passes >= 1 && rc.passes <= cfg.max_passes,
            "fixpoint must terminate"
        );
        assert!(rc.final_size <= rc.initial_size);
        assert!(
            rc.final_size <= rs.final_size,
            "converged size {} must not lose to single pass {}",
            rc.final_size,
            rs.final_size
        );
        assert_eq!(
            conv.size(fc),
            single.size(fs),
            "both reach the linear pairing order"
        );
        // Once converged, another fixpoint run is a cheap no-op-ish pass.
        let again = conv.sift_to_fixpoint(&cfg);
        assert_eq!(again.final_size, rc.final_size);
        assert_eq!(again.passes, 1, "a converged order stops after one pass");
    }

    #[test]
    fn sift_budget_exhaustion_reports_restore_overage() {
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        let truth = |m: &Manager, f: Ref| -> u64 {
            (0..64u32).fold(0u64, |acc, row| {
                let assignment: Vec<bool> = (0..6).map(|i| row >> i & 1 == 1).collect();
                acc | ((m.eval(f, &assignment) as u64) << row)
            })
        };
        let before = truth(&m, f);
        // Zero budget: no swaps at all, valid permutation, function intact.
        let r0 = m.sift(&SiftConfig {
            max_swaps: 0,
            ..SiftConfig::default()
        });
        assert_eq!((r0.swaps, r0.restore_overage), (0, 0));
        // A tiny budget exhausts mid-walk; the restore completes anyway
        // and the overshoot is reported.
        let r3 = m.sift(&SiftConfig {
            max_swaps: 3,
            ..SiftConfig::default()
        });
        assert!(r3.swaps >= 3 || r3.restore_overage == 0);
        assert_eq!(r3.restore_overage, r3.swaps.saturating_sub(3));
        let v2l = m.var2level().to_vec();
        let mut seen = vec![false; v2l.len()];
        for &l in &v2l {
            assert!(
                !std::mem::replace(&mut seen[l as usize], true),
                "order must stay a permutation"
            );
        }
        assert_eq!(truth(&m, f), before, "budget exhaustion must not corrupt f");
        m.verify_interior_refs();
    }

    #[test]
    fn garbage_estimate_counts_unreachable_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let _dead = m.ite(c, keep, b);
        let stats = m.cache_stats_with_roots(&[keep]);
        assert!(stats.garbage_estimate > 0, "the ite chain is unreachable");
        // With every created function as a root, nothing is garbage.
        let all = m.cache_stats_with_roots(&[keep, _dead, a, b, c]);
        assert_eq!(all.garbage_estimate, 0);
    }
}
