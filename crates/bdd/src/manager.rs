//! The node arena and hash-consing core.

use crate::hasher::BuildFxHasher;
use crate::reference::{NodeId, Ref, Var};
use std::collections::HashMap;

/// A stored BDD node: the Shannon expansion of a function with respect to
/// its top variable.
///
/// Invariants maintained by the [`Manager`]:
/// * `high` (the 1-edge) is never complemented;
/// * `low != high`;
/// * the top variables of `low` and `high` are strictly below `var`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Node {
    /// Decision variable (also the level; variable 0 is the root level).
    pub var: Var,
    /// Negative (0-edge) cofactor; may be complemented.
    pub low: Ref,
    /// Positive (1-edge) cofactor; always regular.
    pub high: Ref,
}

/// Sentinel variable index used by the terminal node; compares below every
/// real variable when ordered by *level depth* (larger index = deeper).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// A BDD manager: owns the node arena, the unique table guaranteeing
/// canonicity, and the operation caches.
///
/// All functions created by one manager live in the same shared DAG, so
/// equality of [`Ref`]s is equality of Boolean functions.
///
/// # Example
///
/// ```
/// use bdd::Manager;
///
/// let mut m = Manager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.xor(a, b);
/// assert_eq!(m.not(f), m.xnor(a, b));
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    unique: HashMap<(u32, u32, u32), u32, BuildFxHasher>,
    pub(crate) ite_cache: HashMap<(u32, u32, u32), Ref, BuildFxHasher>,
    num_vars: u32,
    var_names: Vec<Option<String>>,
}

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager containing only the terminal node.
    pub fn new() -> Manager {
        Manager {
            nodes: vec![Node {
                var: Var(TERMINAL_VAR),
                low: Ref::ONE,
                high: Ref::ONE,
            }],
            unique: HashMap::default(),
            ite_cache: HashMap::default(),
            num_vars: 0,
            var_names: Vec::new(),
        }
    }

    /// The constant true function.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// The constant false function.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::ONE
        } else {
            Ref::ZERO
        }
    }

    /// Returns the projection function of variable `index`, growing the
    /// variable count if needed.
    pub fn var(&mut self, index: u32) -> Ref {
        if index >= self.num_vars {
            self.num_vars = index + 1;
        }
        self.mk(Var(index), Ref::ZERO, Ref::ONE)
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total number of nodes ever created (including the terminal).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a stored node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        assert!(!id.is_terminal(), "terminal node has no decision variable");
        &self.nodes[id.index()]
    }

    /// The decision variable level of an edge's node; `None` for constants.
    pub fn top_var(&self, f: Ref) -> Option<Var> {
        if f.is_const() {
            None
        } else {
            Some(self.nodes[f.node().index()].var)
        }
    }

    /// Level (variable index) of an edge, with constants at the deepest
    /// pseudo-level. Smaller means closer to the root.
    pub(crate) fn level(&self, f: Ref) -> u32 {
        self.nodes[f.node().index()].var.0
    }

    /// Associates a display name with a variable (used by the DOT export).
    pub fn set_var_name(&mut self, index: u32, name: impl Into<String>) {
        let idx = index as usize;
        if self.var_names.len() <= idx {
            self.var_names.resize(idx + 1, None);
        }
        self.var_names[idx] = Some(name.into());
    }

    /// Display name of a variable, defaulting to `x<i>`.
    pub fn var_name(&self, index: u32) -> String {
        self.var_names
            .get(index as usize)
            .and_then(|n| n.clone())
            .unwrap_or_else(|| format!("x{index}"))
    }

    /// Finds or creates the node `(var, low, high)`, applying the reduction
    /// rules (equal children; complement pushed off the 1-edge).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the children are not strictly below `var`
    /// in the order (which would break canonicity).
    pub fn mk(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        if low == high {
            return low;
        }
        debug_assert!(
            var.0 < self.level(low) && var.0 < self.level(high),
            "mk: ordering violated at {var:?}"
        );
        if high.is_complemented() {
            return !self.mk_regular(var, !low, !high);
        }
        self.mk_regular(var, low, high)
    }

    fn mk_regular(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        debug_assert!(!high.is_complemented());
        let key = (var.0, low.raw(), high.raw());
        if let Some(&idx) = self.unique.get(&key) {
            return Ref::new(NodeId(idx), false);
        }
        let idx = self.nodes.len() as u32;
        self.nodes.push(Node { var, low, high });
        self.unique.insert(key, idx);
        Ref::new(NodeId(idx), false)
    }

    /// Cofactors `f` with respect to variable `v` assumed to be at or above
    /// `f`'s top level: returns `(f|v=0, f|v=1)`.
    pub(crate) fn shallow_cofactors(&self, f: Ref, v: Var) -> (Ref, Ref) {
        if f.is_const() || self.level(f) != v.0 {
            (f, f)
        } else {
            let n = self.nodes[f.node().index()];
            let c = f.is_complemented();
            (n.low.xor_complement(c), n.high.xor_complement(c))
        }
    }

    /// Drops the memoized operation cache. Useful to bound memory on very
    /// long runs; correctness is unaffected.
    pub fn clear_caches(&mut self) {
        self.ite_cache.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_is_node_zero() {
        let m = Manager::new();
        assert_eq!(m.num_nodes(), 1);
        assert!(Ref::ONE.node().is_terminal());
        assert_eq!(m.top_var(Ref::ONE), None);
        assert_eq!(m.top_var(Ref::ZERO), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = Manager::new();
        let a1 = m.var(3);
        let a2 = m.var(3);
        assert_eq!(a1, a2);
        assert_eq!(m.num_vars(), 4);
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = Manager::new();
        let r = m.mk(Var(0), Ref::ONE, Ref::ONE);
        assert_eq!(r, Ref::ONE);
    }

    #[test]
    fn one_edges_are_regular() {
        let mut m = Manager::new();
        let a = m.var(0);
        let na = !a;
        // !a = mk(0, ONE, ZERO) must be stored with a regular 1-edge.
        assert!(na.is_complemented());
        let n = m.node(na.node());
        assert!(!n.high.is_complemented());
        assert_eq!(m.num_nodes(), 2, "a and !a share one node");
    }

    #[test]
    fn shallow_cofactors_respect_complement() {
        let mut m = Manager::new();
        let a = m.var(0);
        let (f0, f1) = m.shallow_cofactors(a, Var(0));
        assert_eq!((f0, f1), (Ref::ZERO, Ref::ONE));
        let (g0, g1) = m.shallow_cofactors(!a, Var(0));
        assert_eq!((g0, g1), (Ref::ONE, Ref::ZERO));
        // A variable below the asked level is untouched.
        let (h0, h1) = m.shallow_cofactors(a, Var(5));
        assert_eq!((h0, h1), (a, a));
    }

    #[test]
    fn var_names_default_and_custom() {
        let mut m = Manager::new();
        assert_eq!(m.var_name(2), "x2");
        m.set_var_name(2, "carry");
        assert_eq!(m.var_name(2), "carry");
    }
}
