//! The node arena, the open-addressed unique table and the direct-mapped
//! computed cache — the memory system of the BDD kernel.
//!
//! Layout (CUDD-style):
//!
//! * **Nodes** live in a flat arena (`Vec<Node>`); a node is identified by
//!   its index and never moves or dies (no GC yet — see ROADMAP).
//! * The **unique table** is a power-of-two `Vec<u32>` bucket array mapping
//!   a multiply-mixed hash of `(var, low, high)` to a node index by linear
//!   probing. Index `0` (the terminal, which is never hash-consed) doubles
//!   as the empty-bucket sentinel, so a probe touches exactly one `u32` per
//!   step. The table doubles when 3/4 full; since nodes are never deleted
//!   there are no tombstones and rehashing is a straight re-insert.
//! * The **computed cache** ([`ComputedCache`]) memoizes operation results
//!   in a fixed-size, direct-mapped, lossy table: a colliding insert simply
//!   overwrites. Entries are generation-tagged, so [`Manager::clear_caches`]
//!   is O(1) (it bumps the generation). Every recursive kernel (ITE, AND,
//!   XOR, cofactor, restrict, constrain, scoped rebuilds) shares this cache
//!   through per-operation tag codes.

use crate::reference::{NodeId, Ref, Var};
use std::cell::RefCell;

/// A stored BDD node: the Shannon expansion of a function with respect to
/// its top variable.
///
/// Invariants maintained by the [`Manager`]:
/// * `high` (the 1-edge) is never complemented;
/// * `low != high`;
/// * the top variables of `low` and `high` are strictly below `var`.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Node {
    /// Decision variable (also the level; variable 0 is the root level).
    pub var: Var,
    /// Negative (0-edge) cofactor; may be complemented.
    pub low: Ref,
    /// Positive (1-edge) cofactor; always regular.
    pub high: Ref,
}

/// Sentinel variable index used by the terminal node; compares below every
/// real variable when ordered by *level depth* (larger index = deeper).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Operation tags for the shared computed cache. Tag 0 is reserved so a
/// zero-initialized entry can never match a real key.
pub(crate) mod op {
    /// Three-operand if-then-else.
    pub const ITE: u32 = 1;
    /// Two-operand conjunction (specialized kernel).
    pub const AND: u32 = 2;
    /// Two-operand exclusive-or (specialized kernel).
    pub const XOR: u32 = 3;
    /// Single-variable cofactor `f|v=b`.
    pub const COFACTOR: u32 = 4;
    /// Coudert–Madre restrict.
    pub const RESTRICT: u32 = 5;
    /// Coudert–Madre constrain.
    pub const CONSTRAIN: u32 = 6;
    /// Call-scoped rebuilds (permute, node replacement): the second key
    /// word is a per-call epoch, so stale entries can never be observed.
    pub const SCOPED: u32 = 7;
}

/// Multiply-mix of a `(var, low, high)` triple — the unique-table hash.
#[inline(always)]
fn triple_hash(a: u32, b: u32, c: u32) -> u64 {
    let x = ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let y = (c as u64 ^ 0xD1B5_4A32_D192_ED03).wrapping_mul(0xA24B_AED4_963E_E407);
    let mut h = x ^ y;
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Running statistics of the kernel's memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Computed-cache probes.
    pub lookups: u64,
    /// Computed-cache probes that returned a memoized result.
    pub hits: u64,
    /// Computed-cache insertions (including overwrites of colliding slots).
    pub insertions: u64,
    /// Largest node-arena size observed (equals the current size until a
    /// garbage collector lands).
    pub peak_nodes: usize,
    /// Computed-cache capacity in entries (fixed after construction).
    pub cache_entries: usize,
    /// Unique-table bucket count.
    pub unique_buckets: usize,
    /// Estimated GC-able nodes (arena nodes unreachable from the roots the
    /// caller supplied; 0 unless computed via
    /// [`Manager::cache_stats_with_roots`]).
    pub garbage_estimate: usize,
}

impl CacheStats {
    /// Fraction of computed-cache lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// One direct-mapped computed-cache slot: the full operation key, the
/// result, and the generation that wrote it.
#[derive(Clone, Copy, Default)]
struct CacheEntry {
    a: u32,
    b: u32,
    c: u32,
    /// `generation << 3 | op` — op tags fit in 3 bits, and generation 0 is
    /// never current, so zero-initialized slots never match.
    tag: u32,
    result: u32,
}

/// The fixed-size, direct-mapped, lossy operation cache.
pub(crate) struct ComputedCache {
    entries: Vec<CacheEntry>,
    mask: usize,
    generation: u32,
    lookups: u64,
    hits: u64,
    insertions: u64,
}

/// Generations live in the upper bits of the entry tag; op tags occupy the
/// low `GEN_SHIFT` bits.
const GEN_SHIFT: u32 = 3;

impl ComputedCache {
    fn with_bits(bits: u32) -> ComputedCache {
        let n = 1usize << bits.clamp(8, 28);
        ComputedCache {
            entries: vec![CacheEntry::default(); n],
            mask: n - 1,
            generation: 1,
            lookups: 0,
            hits: 0,
            insertions: 0,
        }
    }

    #[inline(always)]
    fn slot(&self, op: u32, a: u32, b: u32, c: u32) -> usize {
        (triple_hash(a, b ^ op.rotate_left(27), c) as usize) & self.mask
    }

    #[inline(always)]
    pub(crate) fn lookup(&mut self, op: u32, a: u32, b: u32, c: u32) -> Option<Ref> {
        self.lookups += 1;
        let e = &self.entries[self.slot(op, a, b, c)];
        if e.tag == (self.generation << GEN_SHIFT | op) && e.a == a && e.b == b && e.c == c {
            self.hits += 1;
            Some(Ref::from_raw(e.result))
        } else {
            None
        }
    }

    #[inline(always)]
    pub(crate) fn insert(&mut self, op: u32, a: u32, b: u32, c: u32, result: Ref) {
        self.insertions += 1;
        let slot = self.slot(op, a, b, c);
        self.entries[slot] = CacheEntry {
            a,
            b,
            c,
            tag: self.generation << GEN_SHIFT | op,
            result: result.raw(),
        };
    }

    /// O(1) clear: bump the generation so every slot is stale. On the
    /// (practically unreachable) generation wrap, pay one real wipe.
    fn clear(&mut self) {
        self.generation += 1;
        if self.generation >= u32::MAX >> GEN_SHIFT {
            self.entries.fill(CacheEntry::default());
            self.generation = 1;
        }
    }
}

impl std::fmt::Debug for ComputedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputedCache")
            .field("entries", &self.entries.len())
            .field("generation", &self.generation)
            .field("lookups", &self.lookups)
            .field("hits", &self.hits)
            .finish()
    }
}

/// Reusable visited-stamp scratch for `&self` DAG traversals: `stamp[i] ==
/// gen` means node `i` was seen in the current traversal. Replaces a fresh
/// `HashSet` per call with two loads and a compare per visit.
#[derive(Debug, Default)]
pub(crate) struct VisitScratch {
    stamp: Vec<u32>,
    gen: u32,
}

impl VisitScratch {
    /// Starts a traversal over `n` nodes; returns the scratch ready to mark.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Marks a node; returns `true` the first time it is seen.
    #[inline(always)]
    pub(crate) fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }
}

/// A BDD manager: owns the node arena, the unique table guaranteeing
/// canonicity, and the shared computed cache.
///
/// All functions created by one manager live in the same shared DAG, so
/// equality of [`Ref`]s is equality of Boolean functions.
///
/// # Example
///
/// ```
/// use bdd::Manager;
///
/// let mut m = Manager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.xor(a, b);
/// assert_eq!(m.not(f), m.xnor(a, b));
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    /// Open-addressed unique table (bucket => node index, 0 = empty).
    buckets: Vec<u32>,
    bucket_mask: usize,
    occupied: usize,
    pub(crate) cache: ComputedCache,
    /// Per-call epoch for [`op::SCOPED`] cache entries.
    pub(crate) scope_epoch: u32,
    pub(crate) visited: RefCell<VisitScratch>,
    num_vars: u32,
    var_names: Vec<Option<String>>,
}

/// Default unique-table bucket count (grows on demand).
const DEFAULT_BUCKETS: usize = 1 << 12;
/// Smallest bucket array [`Manager::with_capacity`] will allocate.
const MIN_BUCKETS: usize = 1 << 8;
/// Default computed-cache size in bits (entries = `1 << bits`).
pub const DEFAULT_CACHE_BITS: u32 = 14;

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager containing only the terminal node.
    pub fn new() -> Manager {
        Manager::with_capacity(DEFAULT_BUCKETS / 2, DEFAULT_CACHE_BITS)
    }

    /// Creates a manager pre-sized for `nodes` arena nodes and a computed
    /// cache of `1 << cache_bits` entries (clamped to `[8, 28]` bits).
    ///
    /// Sizing the tables up front avoids rehash churn while building large
    /// functions; the unique table still doubles on demand past `nodes`.
    pub fn with_capacity(nodes: usize, cache_bits: u32) -> Manager {
        let buckets = (nodes.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let mut arena = Vec::with_capacity(nodes.max(16));
        arena.push(Node {
            var: Var(TERMINAL_VAR),
            low: Ref::ONE,
            high: Ref::ONE,
        });
        Manager {
            nodes: arena,
            buckets: vec![0u32; buckets],
            bucket_mask: buckets - 1,
            occupied: 0,
            cache: ComputedCache::with_bits(cache_bits),
            scope_epoch: 0,
            visited: RefCell::new(VisitScratch::default()),
            num_vars: 0,
            var_names: Vec::new(),
        }
    }

    /// Grows the unique table so at least `nodes` arena nodes fit without a
    /// rehash. No-op when already large enough.
    pub fn reserve_nodes(&mut self, nodes: usize) {
        let wanted = (nodes.max(8) * 4 / 3 + 1).next_power_of_two();
        if wanted > self.buckets.len() {
            self.nodes.reserve(nodes.saturating_sub(self.nodes.len()));
            self.grow_to(wanted);
        }
    }

    /// The constant true function.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// The constant false function.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::ONE
        } else {
            Ref::ZERO
        }
    }

    /// Returns the projection function of variable `index`, growing the
    /// variable count if needed.
    pub fn var(&mut self, index: u32) -> Ref {
        if index >= self.num_vars {
            self.num_vars = index + 1;
        }
        self.mk(Var(index), Ref::ZERO, Ref::ONE)
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Total number of nodes ever created (including the terminal).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to a stored node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or out of bounds.
    pub fn node(&self, id: NodeId) -> &Node {
        assert!(!id.is_terminal(), "terminal node has no decision variable");
        &self.nodes[id.index()]
    }

    /// The decision variable level of an edge's node; `None` for constants.
    pub fn top_var(&self, f: Ref) -> Option<Var> {
        if f.is_const() {
            None
        } else {
            Some(self.nodes[f.node().index()].var)
        }
    }

    /// Level (variable index) of an edge, with constants at the deepest
    /// pseudo-level. Smaller means closer to the root.
    #[inline(always)]
    pub(crate) fn level(&self, f: Ref) -> u32 {
        self.nodes[f.node().index()].var.0
    }

    /// Associates a display name with a variable (used by the DOT export).
    pub fn set_var_name(&mut self, index: u32, name: impl Into<String>) {
        let idx = index as usize;
        if self.var_names.len() <= idx {
            self.var_names.resize(idx + 1, None);
        }
        self.var_names[idx] = Some(name.into());
    }

    /// Display name of a variable, defaulting to `x<i>`.
    pub fn var_name(&self, index: u32) -> String {
        self.var_names
            .get(index as usize)
            .and_then(|n| n.clone())
            .unwrap_or_else(|| format!("x{index}"))
    }

    /// Finds or creates the node `(var, low, high)`, applying the reduction
    /// rules (equal children; complement pushed off the 1-edge).
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the children are not strictly below `var`
    /// in the order (which would break canonicity).
    #[inline]
    pub fn mk(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        if low == high {
            return low;
        }
        debug_assert!(
            var.0 < self.level(low) && var.0 < self.level(high),
            "mk: ordering violated at {var:?}"
        );
        if high.is_complemented() {
            return !self.mk_regular(var, !low, !high);
        }
        self.mk_regular(var, low, high)
    }

    /// The unique-table probe/insert: finds the canonical node for a
    /// regular-`high` triple or appends a fresh arena node.
    #[inline]
    fn mk_regular(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        debug_assert!(!high.is_complemented());
        let h = triple_hash(var.0, low.raw(), high.raw());
        let mut i = (h as usize) & self.bucket_mask;
        loop {
            let b = self.buckets[i];
            if b == 0 {
                break;
            }
            let n = &self.nodes[b as usize];
            if n.var == var && n.low == low && n.high == high {
                return Ref::new(NodeId(b), false);
            }
            i = (i + 1) & self.bucket_mask;
        }
        let idx = self.nodes.len() as u32;
        debug_assert!(idx < u32::MAX >> 1, "node arena exceeds Ref address space");
        self.nodes.push(Node { var, low, high });
        self.buckets[i] = idx;
        self.occupied += 1;
        if self.occupied * 4 >= self.buckets.len() * 3 {
            self.grow_to(self.buckets.len() * 2);
        }
        Ref::new(NodeId(idx), false)
    }

    /// Rebuilds the bucket array at `new_len` (a power of two). Nodes never
    /// die, so this is a straight re-insert of every arena node.
    fn grow_to(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        for (idx, n) in self.nodes.iter().enumerate().skip(1) {
            let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & mask;
            while buckets[i] != 0 {
                i = (i + 1) & mask;
            }
            buckets[i] = idx as u32;
        }
        self.buckets = buckets;
        self.bucket_mask = mask;
    }

    /// Cofactors `f` with respect to variable `v` assumed to be at or above
    /// `f`'s top level: returns `(f|v=0, f|v=1)`.
    #[inline(always)]
    pub(crate) fn shallow_cofactors(&self, f: Ref, v: Var) -> (Ref, Ref) {
        if f.is_const() || self.level(f) != v.0 {
            (f, f)
        } else {
            let n = self.nodes[f.node().index()];
            let c = f.is_complemented();
            (n.low.xor_complement(c), n.high.xor_complement(c))
        }
    }

    /// Drops every memoized operation result in O(1) (generation bump).
    /// The table keeps its allocation, so long-running flows can clear
    /// between phases without paying a re-allocation or a re-grow.
    /// Correctness is unaffected.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
    }

    /// Opens a fresh scope for [`op::SCOPED`] cache entries (per-call
    /// memoization of permute / node-replacement rebuilds).
    #[inline]
    pub(crate) fn new_scope(&mut self) -> u32 {
        self.scope_epoch = self.scope_epoch.wrapping_add(1);
        if self.scope_epoch == 0 {
            // An epoch reuse after wrap could alias old entries: flush.
            self.cache.clear();
            self.scope_epoch = 1;
        }
        self.scope_epoch
    }

    /// Snapshot of the kernel's memory-system counters.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.cache.lookups,
            hits: self.cache.hits,
            insertions: self.cache.insertions,
            peak_nodes: self.nodes.len(),
            cache_entries: self.cache.entries.len(),
            unique_buckets: self.buckets.len(),
            garbage_estimate: 0,
        }
    }

    /// [`Manager::cache_stats`] plus an estimate of GC-able garbage: arena
    /// nodes not reachable from `roots`. (There is no collector yet — the
    /// estimate sizes the win one would bring; see ROADMAP.)
    pub fn cache_stats_with_roots(&self, roots: &[Ref]) -> CacheStats {
        let mut stats = self.cache_stats();
        let live = self.shared_size(roots);
        stats.garbage_estimate = (self.nodes.len() - 1).saturating_sub(live);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_is_node_zero() {
        let m = Manager::new();
        assert_eq!(m.num_nodes(), 1);
        assert!(Ref::ONE.node().is_terminal());
        assert_eq!(m.top_var(Ref::ONE), None);
        assert_eq!(m.top_var(Ref::ZERO), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = Manager::new();
        let a1 = m.var(3);
        let a2 = m.var(3);
        assert_eq!(a1, a2);
        assert_eq!(m.num_vars(), 4);
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = Manager::new();
        let r = m.mk(Var(0), Ref::ONE, Ref::ONE);
        assert_eq!(r, Ref::ONE);
    }

    #[test]
    fn one_edges_are_regular() {
        let mut m = Manager::new();
        let a = m.var(0);
        let na = !a;
        // !a = mk(0, ONE, ZERO) must be stored with a regular 1-edge.
        assert!(na.is_complemented());
        let n = m.node(na.node());
        assert!(!n.high.is_complemented());
        assert_eq!(m.num_nodes(), 2, "a and !a share one node");
    }

    #[test]
    fn shallow_cofactors_respect_complement() {
        let mut m = Manager::new();
        let a = m.var(0);
        let (f0, f1) = m.shallow_cofactors(a, Var(0));
        assert_eq!((f0, f1), (Ref::ZERO, Ref::ONE));
        let (g0, g1) = m.shallow_cofactors(!a, Var(0));
        assert_eq!((g0, g1), (Ref::ONE, Ref::ZERO));
        // A variable below the asked level is untouched.
        let (h0, h1) = m.shallow_cofactors(a, Var(5));
        assert_eq!((h0, h1), (a, a));
    }

    #[test]
    fn var_names_default_and_custom() {
        let mut m = Manager::new();
        assert_eq!(m.var_name(2), "x2");
        m.set_var_name(2, "carry");
        assert_eq!(m.var_name(2), "carry");
    }

    #[test]
    fn unique_table_survives_growth() {
        // Force several doublings and re-check canonicity afterwards. The
        // chain is built deepest-variable-first so every `mk` respects the
        // ordering invariant (children strictly below the new node).
        let mut m = Manager::with_capacity(16, 8);
        let before = m.cache_stats().unique_buckets;
        let mut chain: Vec<(u32, Ref, Ref)> = Vec::new();
        let mut prev = Ref::ONE;
        for v in (0..300u32).rev() {
            let node = m.mk(Var(v), !prev, prev);
            chain.push((v, prev, node));
            prev = node;
        }
        assert!(
            m.cache_stats().unique_buckets > before,
            "300 nodes must outgrow the smallest table"
        );
        // Re-making the same triples must return the identical refs.
        for &(v, child, r) in &chain {
            assert_eq!(m.mk(Var(v), !child, child), r);
        }
        assert_eq!(m.num_nodes(), 301, "re-makes created nothing");
    }

    #[test]
    fn clear_caches_is_generation_bump() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let entries_before = m.cache_stats().cache_entries;
        m.clear_caches();
        assert_eq!(
            m.cache_stats().cache_entries,
            entries_before,
            "clear keeps capacity"
        );
        // Results stay canonical after the cache is dropped.
        assert_eq!(m.and(a, b), f1);
    }

    #[test]
    fn with_capacity_pre_sizes_tables() {
        let m = Manager::with_capacity(100_000, 18);
        let stats = m.cache_stats();
        assert!(stats.unique_buckets >= 100_000 * 4 / 3);
        assert_eq!(stats.cache_entries, 1 << 18);
    }

    #[test]
    fn reserve_nodes_grows_unique_table() {
        let mut m = Manager::new();
        let before = m.cache_stats().unique_buckets;
        m.reserve_nodes(1 << 16);
        assert!(m.cache_stats().unique_buckets > before);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.and(a, b), f);
    }

    #[test]
    fn stats_track_cache_traffic() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let r1 = m.ite(a, b, c);
        let before = m.cache_stats();
        let r2 = m.ite(a, b, c);
        let after = m.cache_stats();
        assert_eq!(r1, r2);
        assert!(after.lookups > before.lookups);
        assert!(after.hits > before.hits, "repeat ITE must hit the cache");
        assert_eq!(after.peak_nodes, m.num_nodes());
    }

    #[test]
    fn garbage_estimate_counts_unreachable_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let _dead = m.ite(c, keep, b);
        let stats = m.cache_stats_with_roots(&[keep]);
        assert!(stats.garbage_estimate > 0, "the ite chain is unreachable");
        // With every created function as a root, nothing is garbage.
        let all = m.cache_stats_with_roots(&[keep, _dead, a, b, c]);
        assert_eq!(all.garbage_estimate, 0);
    }
}
