//! The node arena, the open-addressed unique table, the direct-mapped
//! computed cache and the dead-node collector — the memory system of the
//! BDD kernel.
//!
//! Layout (CUDD-style):
//!
//! * **Nodes** live in a flat arena (`Vec<Node>`); a node is identified by
//!   its index and never moves. Reclaimed slots are poisoned, linked into a
//!   free list, and reused by [`Manager::mk`] before the arena grows.
//! * The **unique table** is a power-of-two `Vec<u32>` bucket array mapping
//!   a multiply-mixed hash of `(var, low, high)` to a node index by linear
//!   probing. Index `0` (the terminal, which is never hash-consed) doubles
//!   as the empty-bucket sentinel, so a probe touches exactly one `u32` per
//!   step. The table doubles when 3/4 full. There are no tombstones:
//!   deletions happen only in bulk during a collection, which rebuilds the
//!   bucket array from the surviving nodes (and shrinks it when they would
//!   fit a table a quarter of the size).
//! * The **computed cache** ([`ComputedCache`]) memoizes operation results
//!   in a fixed-size, direct-mapped, lossy table: a colliding insert simply
//!   overwrites. Entries are generation-tagged, so [`Manager::clear_caches`]
//!   is O(1) (it bumps the generation). Every recursive kernel (ITE, AND,
//!   XOR, cofactor, restrict, constrain, scoped rebuilds) shares this cache
//!   through per-operation tag codes.
//!
//! # Garbage collection
//!
//! Long decomposition flows create orders of magnitude more intermediate
//! functions than they keep. The collector is the classical external
//! reference-count + mark-and-sweep design:
//!
//! * Callers declare the functions they hold across collection points with
//!   [`Manager::protect`] and drop the claim with [`Manager::release`] —
//!   the explicit `ref`/`deref` pair of every production BDD package.
//! * [`Manager::collect`] marks everything reachable from a protected node
//!   and sweeps the rest: swept slots are poisoned and pushed on the free
//!   list, the unique table is rebuilt without them (shrinking when
//!   sparse), and the computed cache is *scrubbed* — exactly the entries
//!   naming a reclaimed slot are dropped — so no dangling [`Ref`] survives
//!   anywhere in the kernel while the memo stays warm across collections.
//! * [`Manager::maybe_collect`] is the cheap flow-level hook: it runs a
//!   collection only once enough allocation has happened since the last
//!   one *and* a mark pass confirms the dead fraction exceeds the
//!   configured threshold ([`GcConfig::dead_fraction`]).
//!
//! Collection never runs implicitly inside an operation: the recursive
//! kernels (`ite`, `and`, `xor`, the cofactor family, scoped rebuilds)
//! create unprotected intermediates freely, and callers invoke
//! `collect`/`maybe_collect` only at quiescent points where every live
//! function is protected. This keeps the hot `mk` path free of refcount
//! traffic while still bounding arena growth to a constant factor of the
//! live size.
//!
//! # Variable order
//!
//! A variable's *index* is its identity (what callers, assignments and
//! gate bindings name); its *level* is its current position in the
//! decision order, `0` being the root. The two are decoupled through the
//! [`Manager`]'s `var2level`/`level2var` permutation maps, and every
//! recursive kernel branches on levels, so the order can change without
//! rebuilding a single function:
//!
//! * [`Manager::swap_levels`] exchanges two *adjacent* levels in place:
//!   only the nodes at the upper level that reference the lower one are
//!   rewritten (their arena slots are patched through the unique table),
//!   so every outstanding [`Ref`] keeps denoting the same function.
//! * [`Manager::sift`] is Rudell's sifting on top of the swap: each
//!   variable (densest level first) is moved through the whole order and
//!   parked at the position minimizing the protected-root node count,
//!   with a growth-abort factor and a total swap budget ([`SiftConfig`]).
//! * [`Manager::maybe_sift`] is the flow-level hook, threshold-gated like
//!   [`Manager::maybe_collect`] ([`AutoSiftConfig`], disabled by
//!   default): flows offer it at the same quiescent points as collection.
//!
//! Swaps preserve the function behind every existing `Ref` (unlike
//! collection, which invalidates unprotected ones), but they do create
//! garbage — the displaced lower-level nodes — so flows pair
//! `maybe_sift` with a following `maybe_collect`.

use crate::reference::{NodeId, Ref, Var};
use std::cell::RefCell;

/// A stored BDD node: the Shannon expansion of a function with respect to
/// its top variable.
///
/// Invariants maintained by the [`Manager`]:
/// * `high` (the 1-edge) is never complemented;
/// * `low != high`;
/// * the top variables of `low` and `high` sit at strictly deeper
///   *levels* than `var` (in the current `var2level` order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Node {
    /// Decision variable *index* (its identity). The variable's current
    /// position in the order is `Manager::var2level`; the two coincide
    /// only until the first reordering.
    pub var: Var,
    /// Negative (0-edge) cofactor; may be complemented.
    pub low: Ref,
    /// Positive (1-edge) cofactor; always regular.
    pub high: Ref,
}

/// Sentinel variable index used by the terminal node; compares below every
/// real variable when ordered by *level depth* (larger index = deeper).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Sentinel variable index poisoning a reclaimed arena slot. A slot with
/// this variable is on the free list: it is never reachable from a live
/// [`Ref`], never listed in the unique table, and is overwritten on reuse.
pub(crate) const FREE_VAR: u32 = u32::MAX - 1;

/// Operation tags for the shared computed cache. Tag 0 is reserved so a
/// zero-initialized entry can never match a real key.
pub(crate) mod op {
    /// Three-operand if-then-else.
    pub const ITE: u32 = 1;
    /// Two-operand conjunction (specialized kernel).
    pub const AND: u32 = 2;
    /// Two-operand exclusive-or (specialized kernel).
    pub const XOR: u32 = 3;
    /// Single-variable cofactor `f|v=b`.
    pub const COFACTOR: u32 = 4;
    /// Coudert–Madre restrict.
    pub const RESTRICT: u32 = 5;
    /// Coudert–Madre constrain.
    pub const CONSTRAIN: u32 = 6;
    /// Call-scoped rebuilds (permute, node replacement): the second key
    /// word is a per-call epoch, so stale entries can never be observed.
    pub const SCOPED: u32 = 7;
}

/// Multiply-mix of a `(var, low, high)` triple — the unique-table hash.
#[inline(always)]
fn triple_hash(a: u32, b: u32, c: u32) -> u64 {
    let x = ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let y = (c as u64 ^ 0xD1B5_4A32_D192_ED03).wrapping_mul(0xA24B_AED4_963E_E407);
    let mut h = x ^ y;
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

/// Running statistics of the kernel's memory system.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CacheStats {
    /// Computed-cache probes.
    pub lookups: u64,
    /// Computed-cache probes that returned a memoized result.
    pub hits: u64,
    /// Computed-cache insertions (including overwrites of colliding slots).
    pub insertions: u64,
    /// Largest node-arena size (slot count, including reclaimed slots)
    /// observed over the manager's lifetime.
    pub peak_nodes: usize,
    /// Computed-cache capacity in entries (fixed after construction).
    pub cache_entries: usize,
    /// Unique-table bucket count (shrinks when a collection leaves the
    /// table sparse).
    pub unique_buckets: usize,
    /// Arena slots known to be reclaimable or already reclaimed: the
    /// current free list, plus — when computed via
    /// [`Manager::cache_stats_with_roots`] — the in-use nodes unreachable
    /// from the supplied roots (what the next sweep from those roots would
    /// add to the free list).
    pub garbage_estimate: usize,
    /// Arena slots currently holding a live (not reclaimed) node,
    /// including the terminal.
    pub live_nodes: usize,
    /// Reclaimed arena slots currently awaiting reuse on the free list.
    pub free_nodes: usize,
    /// Total nodes reclaimed by the collector over the manager's lifetime.
    pub reclaimed_total: u64,
    /// Number of collections that actually swept (mark passes that found
    /// nothing to reclaim are not counted).
    pub collections: u64,
    /// Adjacent-level swaps performed by sifting over the manager's
    /// lifetime (restore moves included).
    pub sift_swaps: u64,
    /// Number of [`Manager::sift`] passes run (including those triggered
    /// through [`Manager::maybe_sift`]).
    pub sifts: u64,
}

impl CacheStats {
    /// Fraction of computed-cache lookups that hit, in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Tuning knobs of the dead-node collector (see [`Manager::maybe_collect`]).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GcConfig {
    /// A [`Manager::maybe_collect`] call sweeps only when at least this
    /// fraction of the in-use nodes is dead (unreachable from any
    /// protected node). Also gates how much allocation must happen between
    /// collection attempts, so repeated `maybe_collect` calls on a quiet
    /// manager cost O(1).
    pub dead_fraction: f64,
    /// Collections are skipped entirely while fewer than this many nodes
    /// are in use — tiny managers are cheaper to let grow.
    pub min_nodes: usize,
}

impl Default for GcConfig {
    fn default() -> Self {
        GcConfig {
            dead_fraction: 0.25,
            min_nodes: 4096,
        }
    }
}

/// Tuning knobs of one [`Manager::sift`] pass (Rudell's algorithm).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SiftConfig {
    /// While moving one variable through the order, abort the current
    /// direction once the rooted size exceeds this factor of the best
    /// size seen for that variable (CUDD's `maxGrowth`).
    pub max_growth: f64,
    /// Total adjacent-swap budget of the pass. Once exhausted no further
    /// variable is sifted; the in-flight variable still returns to its
    /// best position (restore swaps may exceed the budget slightly).
    pub max_swaps: usize,
    /// Sift at most this many variables, densest level first.
    pub max_vars: usize,
}

impl Default for SiftConfig {
    fn default() -> Self {
        SiftConfig {
            max_growth: 1.2,
            max_swaps: 4096,
            max_vars: usize::MAX,
        }
    }
}

/// Outcome of a [`Manager::sift`] pass. Sizes are rooted sizes (nodes
/// reachable from the protected roots, see [`Manager::rooted_size`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SiftReport {
    /// Rooted size before the pass.
    pub initial_size: usize,
    /// Rooted size after the pass (never larger than `initial_size`).
    pub final_size: usize,
    /// Adjacent-level swaps performed, restores included.
    pub swaps: usize,
    /// Variables actually moved through the order.
    pub vars_sifted: usize,
}

/// Gating of the automatic [`Manager::maybe_sift`] hook. Disabled by
/// default; flows that want dynamic reordering enable it and then offer
/// `maybe_sift` at the same quiescent points as `maybe_collect`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AutoSiftConfig {
    /// Master switch; when false, [`Manager::maybe_sift`] is a no-op.
    pub enabled: bool,
    /// The first sift triggers once this many nodes are live; after each
    /// sift the threshold is re-armed at twice the post-sift live size
    /// (never below this floor).
    pub min_nodes: usize,
    /// Per-pass budgets forwarded to [`Manager::sift`].
    pub sift: SiftConfig,
}

impl Default for AutoSiftConfig {
    fn default() -> Self {
        AutoSiftConfig {
            enabled: false,
            min_nodes: 4096,
            sift: SiftConfig::default(),
        }
    }
}

/// One direct-mapped computed-cache slot: the full operation key, the
/// result, and the generation that wrote it.
#[derive(Clone, Copy, Default)]
struct CacheEntry {
    a: u32,
    b: u32,
    c: u32,
    /// `generation << 3 | op` — op tags fit in 3 bits, and generation 0 is
    /// never current, so zero-initialized slots never match.
    tag: u32,
    result: u32,
}

/// The fixed-size, direct-mapped, lossy operation cache.
///
/// Entries are tagged by one of *two* generations: most operations are
/// function-valued (their keys and results are `Ref`s whose functions the
/// in-place level swap preserves), but the Coudert–Madre generalized
/// cofactors pick their result *using the variable order*, so their memo
/// must not survive a reordering. [`ComputedCache::clear_order_sensitive`]
/// retires only the latter in O(1), keeping the ITE/AND/XOR/cofactor memo
/// warm across level swaps — the same warm-memo philosophy as the GC's
/// selective scrub.
pub(crate) struct ComputedCache {
    entries: Vec<CacheEntry>,
    mask: usize,
    generation: u32,
    /// Generation of the order-sensitive ops (`RESTRICT`, `CONSTRAIN`);
    /// bumped by every node-rewriting level swap.
    order_generation: u32,
    lookups: u64,
    hits: u64,
    insertions: u64,
}

/// Generations live in the upper bits of the entry tag; op tags occupy the
/// low `GEN_SHIFT` bits.
const GEN_SHIFT: u32 = 3;

/// Whether a memoized result of `op` depends on the current variable
/// order (rather than only on the operand functions).
#[inline(always)]
fn order_sensitive(op: u32) -> bool {
    op == op::RESTRICT || op == op::CONSTRAIN
}

impl ComputedCache {
    fn with_bits(bits: u32) -> ComputedCache {
        let n = 1usize << bits.clamp(8, 28);
        ComputedCache {
            entries: vec![CacheEntry::default(); n],
            mask: n - 1,
            generation: 1,
            order_generation: 1,
            lookups: 0,
            hits: 0,
            insertions: 0,
        }
    }

    #[inline(always)]
    fn slot(&self, op: u32, a: u32, b: u32, c: u32) -> usize {
        (triple_hash(a, b ^ op.rotate_left(27), c) as usize) & self.mask
    }

    #[inline(always)]
    fn tag_for(&self, op: u32) -> u32 {
        let gen = if order_sensitive(op) {
            self.order_generation
        } else {
            self.generation
        };
        gen << GEN_SHIFT | op
    }

    #[inline(always)]
    pub(crate) fn lookup(&mut self, op: u32, a: u32, b: u32, c: u32) -> Option<Ref> {
        self.lookups += 1;
        let e = &self.entries[self.slot(op, a, b, c)];
        if e.tag == self.tag_for(op) && e.a == a && e.b == b && e.c == c {
            self.hits += 1;
            Some(Ref::from_raw(e.result))
        } else {
            None
        }
    }

    #[inline(always)]
    pub(crate) fn insert(&mut self, op: u32, a: u32, b: u32, c: u32, result: Ref) {
        self.insertions += 1;
        let slot = self.slot(op, a, b, c);
        self.entries[slot] = CacheEntry {
            a,
            b,
            c,
            tag: self.tag_for(op),
            result: result.raw(),
        };
    }

    /// O(1) clear of everything: bump both generations so every slot is
    /// stale. On the (practically unreachable) generation wrap, pay one
    /// real wipe.
    fn clear(&mut self) {
        self.generation += 1;
        self.order_generation += 1;
        if self.generation >= u32::MAX >> GEN_SHIFT
            || self.order_generation >= u32::MAX >> GEN_SHIFT
        {
            self.entries.fill(CacheEntry::default());
            self.generation = 1;
            self.order_generation = 1;
        }
    }

    /// O(1) clear of only the order-sensitive results (the conservative
    /// post-swap scrub); function-valued memos stay warm.
    fn clear_order_sensitive(&mut self) {
        self.order_generation += 1;
        if self.order_generation >= u32::MAX >> GEN_SHIFT {
            self.entries.fill(CacheEntry::default());
            self.generation = 1;
            self.order_generation = 1;
        }
    }
}

impl std::fmt::Debug for ComputedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputedCache")
            .field("entries", &self.entries.len())
            .field("generation", &self.generation)
            .field("lookups", &self.lookups)
            .field("hits", &self.hits)
            .finish()
    }
}

/// Reusable visited-stamp scratch for `&self` DAG traversals: `stamp[i] ==
/// gen` means node `i` was seen in the current traversal. Replaces a fresh
/// `HashSet` per call with two loads and a compare per visit.
#[derive(Debug, Default)]
pub(crate) struct VisitScratch {
    stamp: Vec<u32>,
    gen: u32,
}

impl VisitScratch {
    /// Starts a traversal over `n` nodes; returns the scratch ready to mark.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Marks a node; returns `true` the first time it is seen.
    #[inline(always)]
    pub(crate) fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }

    /// Whether node `i` was marked in the traversal opened by the most
    /// recent [`VisitScratch::begin`] (used by the sweep phase to read the
    /// mark phase's result).
    #[inline(always)]
    pub(crate) fn is_marked(&self, i: usize) -> bool {
        self.stamp.get(i) == Some(&self.gen)
    }
}

/// A BDD manager: owns the node arena, the unique table guaranteeing
/// canonicity, and the shared computed cache.
///
/// All functions created by one manager live in the same shared DAG, so
/// equality of [`Ref`]s is equality of Boolean functions.
///
/// # Example
///
/// ```
/// use bdd::Manager;
///
/// let mut m = Manager::new();
/// let a = m.var(0);
/// let b = m.var(1);
/// let f = m.xor(a, b);
/// assert_eq!(m.not(f), m.xnor(a, b));
/// ```
#[derive(Debug)]
pub struct Manager {
    pub(crate) nodes: Vec<Node>,
    /// External reference count per arena slot (collection roots). Only
    /// [`Manager::protect`]/[`Manager::release`] touch these — internal
    /// edges are accounted by the mark phase, not by refcounts.
    refs: Vec<u32>,
    /// Reclaimed arena slots awaiting reuse (LIFO).
    free: Vec<u32>,
    /// Open-addressed unique table (bucket => node index, 0 = empty).
    buckets: Vec<u32>,
    bucket_mask: usize,
    occupied: usize,
    pub(crate) cache: ComputedCache,
    /// Per-call epoch for [`op::SCOPED`] cache entries.
    pub(crate) scope_epoch: u32,
    /// Visited-stamp scratch shared by the `&self` traversals. This
    /// `RefCell` is what makes `Manager: !Sync` (pinned by a
    /// `compile_fail` doctest in the crate docs): a manager must be owned
    /// by one thread at a time — parallel suite harnesses build one
    /// manager per worker and never share it.
    pub(crate) visited: RefCell<VisitScratch>,
    num_vars: u32,
    /// Position of each variable in the decision order
    /// (`var2level[var] = level`; always a permutation of `0..num_vars`).
    var2level: Vec<u32>,
    /// Inverse of `var2level` (`level2var[level] = var`).
    level2var: Vec<u32>,
    /// Exact per-variable slot lists (`var_nodes[var]` holds every arena
    /// slot currently storing a node of that variable, live or
    /// dead-but-unswept). Maintained by `mk` on creation, by the level
    /// swap when nodes change variable, and rebuilt by the sweep — this
    /// is what makes [`Manager::swap_levels`] O(level population) instead
    /// of O(arena).
    var_nodes: Vec<Vec<u32>>,
    var_names: Vec<Option<String>>,
    gc: GcConfig,
    auto_sift: AutoSiftConfig,
    /// Live-node threshold re-arming [`Manager::maybe_sift`].
    next_sift: usize,
    sift_swaps: u64,
    sifts: u64,
    /// Number of collections that reclaimed at least one node. Holders of
    /// `Ref`-keyed side tables (e.g. the majority hook's memo) compare
    /// this against a saved value to know when their keys may dangle.
    gc_epoch: u64,
    reclaimed_total: u64,
    /// Nodes created since the last collection attempt (gates
    /// [`Manager::maybe_collect`]).
    allocs_since_gc: usize,
    peak_nodes: usize,
}

/// Default unique-table bucket count (grows on demand).
const DEFAULT_BUCKETS: usize = 1 << 12;
/// Smallest bucket array [`Manager::with_capacity`] will allocate.
const MIN_BUCKETS: usize = 1 << 8;
/// Default computed-cache size in bits (entries = `1 << bits`).
pub const DEFAULT_CACHE_BITS: u32 = 14;

impl Default for Manager {
    fn default() -> Self {
        Self::new()
    }
}

impl Manager {
    /// Creates an empty manager containing only the terminal node.
    pub fn new() -> Manager {
        Manager::with_capacity(DEFAULT_BUCKETS / 2, DEFAULT_CACHE_BITS)
    }

    /// Creates a manager pre-sized for `nodes` arena nodes and a computed
    /// cache of `1 << cache_bits` entries (clamped to `[8, 28]` bits).
    ///
    /// Sizing the tables up front avoids rehash churn while building large
    /// functions; the unique table still doubles on demand past `nodes`.
    pub fn with_capacity(nodes: usize, cache_bits: u32) -> Manager {
        let buckets = (nodes.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let mut arena = Vec::with_capacity(nodes.max(16));
        arena.push(Node {
            var: Var(TERMINAL_VAR),
            low: Ref::ONE,
            high: Ref::ONE,
        });
        Manager {
            nodes: arena,
            refs: vec![0u32; 1],
            free: Vec::new(),
            buckets: vec![0u32; buckets],
            bucket_mask: buckets - 1,
            occupied: 0,
            cache: ComputedCache::with_bits(cache_bits),
            scope_epoch: 0,
            visited: RefCell::new(VisitScratch::default()),
            num_vars: 0,
            var2level: Vec::new(),
            level2var: Vec::new(),
            var_nodes: Vec::new(),
            var_names: Vec::new(),
            gc: GcConfig::default(),
            auto_sift: AutoSiftConfig::default(),
            next_sift: AutoSiftConfig::default().min_nodes,
            sift_swaps: 0,
            sifts: 0,
            gc_epoch: 0,
            reclaimed_total: 0,
            allocs_since_gc: 0,
            peak_nodes: 1,
        }
    }

    /// Grows the unique table so at least `nodes` arena nodes fit without a
    /// rehash. No-op when already large enough.
    pub fn reserve_nodes(&mut self, nodes: usize) {
        let wanted = (nodes.max(8) * 4 / 3 + 1).next_power_of_two();
        if wanted > self.buckets.len() {
            self.nodes.reserve(nodes.saturating_sub(self.nodes.len()));
            self.grow_to(wanted);
        }
    }

    /// The constant true function.
    pub fn one(&self) -> Ref {
        Ref::ONE
    }

    /// The constant false function.
    pub fn zero(&self) -> Ref {
        Ref::ZERO
    }

    /// Returns the constant function for `value`.
    pub fn constant(&self, value: bool) -> Ref {
        if value {
            Ref::ONE
        } else {
            Ref::ZERO
        }
    }

    /// Returns the projection function of variable `index`, growing the
    /// variable count if needed (new variables enter at the deepest
    /// levels, leaving the existing order untouched).
    pub fn var(&mut self, index: u32) -> Ref {
        self.ensure_var(index);
        self.mk(Var(index), Ref::ZERO, Ref::ONE)
    }

    /// Registers `index` (and any gap below it) in the order maps; new
    /// variables are appended at the deepest levels in index order.
    fn ensure_var(&mut self, index: u32) {
        if index < self.num_vars {
            return;
        }
        self.num_vars = index + 1;
        while (self.var2level.len() as u32) < self.num_vars {
            let next = self.var2level.len() as u32;
            self.var2level.push(next);
            self.level2var.push(next);
            self.var_nodes.push(Vec::new());
        }
    }

    /// Number of variables known to the manager.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Current arena size in slots, including the terminal and reclaimed
    /// slots awaiting reuse — the kernel's memory footprint. With periodic
    /// collection this stays within a constant factor of
    /// [`Manager::live_nodes`] instead of growing monotonically.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Number of live nodes (arena slots currently holding a node,
    /// including the terminal; excludes the free list).
    pub fn live_nodes(&self) -> usize {
        self.nodes.len() - self.free.len()
    }

    /// Read access to a stored node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is the terminal node or out of bounds; in debug
    /// builds, also if `id` was reclaimed by a collection (a dangling
    /// reference the caller failed to protect).
    pub fn node(&self, id: NodeId) -> &Node {
        assert!(!id.is_terminal(), "terminal node has no decision variable");
        let n = &self.nodes[id.index()];
        debug_assert!(n.var.0 != FREE_VAR, "dangling reference to reclaimed node {id:?}");
        n
    }

    /// The decision variable of an edge's top node; `None` for constants.
    pub fn top_var(&self, f: Ref) -> Option<Var> {
        if f.is_const() {
            None
        } else {
            Some(self.nodes[f.node().index()].var)
        }
    }

    /// Level of an edge's top node in the current variable order, the
    /// *one shared helper* every kernel branches on: constants (and the
    /// poisoned/unregistered sentinels) report `u32::MAX`, the pseudo-level
    /// below every real one. Smaller means closer to the root.
    #[inline(always)]
    pub fn level(&self, f: Ref) -> u32 {
        self.var_level(self.nodes[f.node().index()].var.0)
    }

    /// Level of a variable index; `u32::MAX` for the terminal/free
    /// sentinels and for variables the manager has never seen.
    #[inline(always)]
    pub(crate) fn var_level(&self, var: u32) -> u32 {
        match self.var2level.get(var as usize) {
            Some(&l) => l,
            None => u32::MAX,
        }
    }

    /// Level of variable `v` in the current order (`u32::MAX` if `v` is
    /// unknown to the manager).
    pub fn level_of_var(&self, v: Var) -> u32 {
        self.var_level(v.0)
    }

    /// The variable currently sitting at `level`.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars`.
    #[inline(always)]
    pub fn var_at_level(&self, level: u32) -> Var {
        Var(self.level2var[level as usize])
    }

    /// The current order as `var2level[var] = level` (a permutation of
    /// `0..num_vars`).
    pub fn var2level(&self) -> &[u32] {
        &self.var2level
    }

    /// The current order as `level2var[level] = var` (the inverse of
    /// [`Manager::var2level`]).
    pub fn level2var(&self) -> &[u32] {
        &self.level2var
    }

    /// Associates a display name with a variable (used by the DOT export).
    pub fn set_var_name(&mut self, index: u32, name: impl Into<String>) {
        let idx = index as usize;
        if self.var_names.len() <= idx {
            self.var_names.resize(idx + 1, None);
        }
        self.var_names[idx] = Some(name.into());
    }

    /// Display name of a variable, defaulting to `x<i>`.
    pub fn var_name(&self, index: u32) -> String {
        self.var_names
            .get(index as usize)
            .and_then(|n| n.clone())
            .unwrap_or_else(|| format!("x{index}"))
    }

    /// Finds or creates the node `(var, low, high)`, applying the reduction
    /// rules (equal children; complement pushed off the 1-edge). Unknown
    /// variables are registered at the deepest level first.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the children's levels are not strictly
    /// below `var`'s level (which would break canonicity).
    #[inline]
    pub fn mk(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        self.ensure_var(var.0);
        if low == high {
            return low;
        }
        debug_assert!(
            self.var_level(var.0) < self.level(low) && self.var_level(var.0) < self.level(high),
            "mk: ordering violated at {var:?}"
        );
        if high.is_complemented() {
            return !self.mk_regular(var, !low, !high);
        }
        self.mk_regular(var, low, high)
    }

    /// The unique-table probe/insert: finds the canonical node for a
    /// regular-`high` triple or appends a fresh arena node.
    #[inline]
    fn mk_regular(&mut self, var: Var, low: Ref, high: Ref) -> Ref {
        debug_assert!(!high.is_complemented());
        let h = triple_hash(var.0, low.raw(), high.raw());
        let mut i = (h as usize) & self.bucket_mask;
        loop {
            let b = self.buckets[i];
            if b == 0 {
                break;
            }
            let n = &self.nodes[b as usize];
            if n.var == var && n.low == low && n.high == high {
                return Ref::new(NodeId(b), false);
            }
            i = (i + 1) & self.bucket_mask;
        }
        // Reclaim-before-grow: reuse a swept slot when one is available,
        // so the arena only grows once the free list is exhausted.
        let idx = match self.free.pop() {
            Some(slot) => {
                debug_assert!(self.nodes[slot as usize].var.0 == FREE_VAR);
                debug_assert!(self.refs[slot as usize] == 0);
                self.nodes[slot as usize] = Node { var, low, high };
                slot
            }
            None => {
                let idx = self.nodes.len() as u32;
                debug_assert!(idx < u32::MAX >> 1, "node arena exceeds Ref address space");
                self.nodes.push(Node { var, low, high });
                self.refs.push(0);
                self.peak_nodes = self.peak_nodes.max(self.nodes.len());
                idx
            }
        };
        self.var_nodes[var.index()].push(idx);
        self.allocs_since_gc += 1;
        self.buckets[i] = idx;
        self.occupied += 1;
        if self.occupied * 4 >= self.buckets.len() * 3 {
            self.grow_to(self.buckets.len() * 2);
        }
        Ref::new(NodeId(idx), false)
    }

    /// Rebuilds the bucket array at `new_len` (a power of two) by
    /// re-inserting every live arena node; reclaimed slots are skipped.
    fn grow_to(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        for (idx, n) in self.nodes.iter().enumerate().skip(1) {
            if n.var.0 == FREE_VAR {
                continue;
            }
            let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & mask;
            while buckets[i] != 0 {
                i = (i + 1) & mask;
            }
            buckets[i] = idx as u32;
        }
        self.buckets = buckets;
        self.bucket_mask = mask;
    }

    /// Cofactors `f` with respect to variable `v` assumed to be at or above
    /// `f`'s top level: returns `(f|v=0, f|v=1)`. Comparing the stored top
    /// variable covers the constant case too (the terminal's sentinel never
    /// equals a real variable), so there is no separate terminal branch.
    #[inline(always)]
    pub(crate) fn shallow_cofactors(&self, f: Ref, v: Var) -> (Ref, Ref) {
        let n = self.nodes[f.node().index()];
        if n.var != v {
            (f, f)
        } else {
            let c = f.is_complemented();
            (n.low.xor_complement(c), n.high.xor_complement(c))
        }
    }

    /// Drops every memoized operation result in O(1) (generation bump).
    /// The table keeps its allocation, so long-running flows can clear
    /// between phases without paying a re-allocation or a re-grow.
    /// Correctness is unaffected.
    pub fn clear_caches(&mut self) {
        self.cache.clear();
    }

    /// Opens a fresh scope for [`op::SCOPED`] cache entries (per-call
    /// memoization of permute / node-replacement rebuilds).
    #[inline]
    pub(crate) fn new_scope(&mut self) -> u32 {
        self.scope_epoch = self.scope_epoch.wrapping_add(1);
        if self.scope_epoch == 0 {
            // An epoch reuse after wrap could alias old entries: flush.
            self.cache.clear();
            self.scope_epoch = 1;
        }
        self.scope_epoch
    }

    /// Snapshot of the kernel's memory-system counters. The
    /// `garbage_estimate` field reports the current free list (slots
    /// already reclaimed and awaiting reuse); use
    /// [`Manager::cache_stats_with_roots`] to also count not-yet-swept
    /// dead nodes.
    pub fn cache_stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.cache.lookups,
            hits: self.cache.hits,
            insertions: self.cache.insertions,
            peak_nodes: self.peak_nodes,
            cache_entries: self.cache.entries.len(),
            unique_buckets: self.buckets.len(),
            garbage_estimate: self.free.len(),
            live_nodes: self.live_nodes(),
            free_nodes: self.free.len(),
            reclaimed_total: self.reclaimed_total,
            collections: self.gc_epoch,
            sift_swaps: self.sift_swaps,
            sifts: self.sifts,
        }
    }

    /// [`Manager::cache_stats`] with `garbage_estimate` extended by the
    /// in-use nodes unreachable from `roots` — what a sweep from exactly
    /// those roots would reclaim, on top of the existing free list.
    pub fn cache_stats_with_roots(&self, roots: &[Ref]) -> CacheStats {
        let mut stats = self.cache_stats();
        let live = self.shared_size(roots);
        let in_use = self.live_nodes() - 1; // internal nodes currently held
        stats.garbage_estimate = self.free.len() + in_use.saturating_sub(live);
        stats
    }

    // ------------------------------------------------------------------
    // Dead-node reclamation (external refcounts + mark-and-sweep).
    // ------------------------------------------------------------------

    /// Declares `f` a collection root: the node it references (and
    /// everything reachable from it) survives [`Manager::collect`] until a
    /// matching [`Manager::release`]. Calls nest — `protect` twice,
    /// `release` twice. Constants are always live; protecting them is a
    /// no-op. Returns `f` for call-site convenience.
    pub fn protect(&mut self, f: Ref) -> Ref {
        if !f.is_const() {
            let slot = f.node().index();
            debug_assert!(self.nodes[slot].var.0 != FREE_VAR, "protect of reclaimed node");
            self.refs[slot] = self.refs[slot].saturating_add(1);
        }
        f
    }

    /// Drops one [`Manager::protect`] claim on `f`. The node becomes
    /// eligible for collection once its external count reaches zero and no
    /// other protected function reaches it.
    pub fn release(&mut self, f: Ref) {
        if !f.is_const() {
            let slot = f.node().index();
            debug_assert!(self.refs[slot] > 0, "release without matching protect");
            self.refs[slot] = self.refs[slot].saturating_sub(1);
        }
    }

    /// External reference count of `f`'s node (test/diagnostic hook).
    pub fn protect_count(&self, f: Ref) -> u32 {
        if f.is_const() {
            u32::MAX
        } else {
            self.refs[f.node().index()]
        }
    }

    /// Replaces the collector configuration (see [`GcConfig`]).
    pub fn set_gc_config(&mut self, config: GcConfig) {
        self.gc = config;
    }

    /// The active collector configuration.
    pub fn gc_config(&self) -> GcConfig {
        self.gc
    }

    /// Number of collections that reclaimed at least one node. Any
    /// `Ref`-keyed side table outside the manager is invalid once this
    /// changes: swept slots are reused, so a stale key may alias a
    /// *different* function.
    pub fn gc_epoch(&self) -> u64 {
        self.gc_epoch
    }

    /// Collects dead nodes now: marks everything reachable from the
    /// protected roots, sweeps the rest onto the free list, rebuilds the
    /// unique table without the dead entries (shrinking it when the
    /// survivors would fit a table a quarter of the current size), and
    /// scrubs the computed-cache entries that name a reclaimed slot.
    /// Returns the number of reclaimed nodes.
    ///
    /// Every `Ref` the caller intends to keep using must be protected (or
    /// reachable from a protected one) — anything else dangles afterwards.
    pub fn collect(&mut self) -> usize {
        self.mark_and_sweep(true)
    }

    /// Collects only when worthwhile: a no-op until the allocations since
    /// the last attempt reach [`GcConfig::dead_fraction`] of the in-use
    /// nodes (so calling this in a tight flow loop is cheap), then a mark
    /// pass measures the true dead fraction and sweeps only when it
    /// exceeds the threshold. Returns the number of reclaimed nodes.
    pub fn maybe_collect(&mut self) -> usize {
        let in_use = self.live_nodes() - 1;
        if in_use < self.gc.min_nodes {
            return 0;
        }
        // Gate on allocations relative to the arena *capacity*, not the
        // in-use count: a collection costs O(arena), so requiring a
        // proportional amount of fresh allocation first keeps the
        // amortized overhead per created node constant even under extreme
        // churn.
        if (self.allocs_since_gc as f64) < self.gc.dead_fraction * self.nodes.len() as f64 {
            return 0;
        }
        self.mark_and_sweep(false)
    }

    /// The collector core: mark from protected roots, then (when `force`
    /// or the dead fraction clears the threshold) sweep, rebuild the
    /// unique table and invalidate the computed cache.
    fn mark_and_sweep(&mut self, force: bool) -> usize {
        self.allocs_since_gc = 0;
        let n = self.nodes.len();
        let in_use = self.live_nodes() - 1;
        // Mark phase: flood from every externally referenced node. The
        // visited scratch doubles as the mark bitmap; nothing else may
        // traverse between mark and sweep.
        let mut live = 0usize;
        {
            let mut seen = self.visited.borrow_mut();
            seen.begin(n);
            let mut stack: Vec<u32> = Vec::new();
            for (i, &rc) in self.refs.iter().enumerate().skip(1) {
                if rc > 0 {
                    stack.push(i as u32);
                }
            }
            while let Some(i) = stack.pop() {
                if !seen.mark(i as usize) {
                    continue;
                }
                live += 1;
                let node = self.nodes[i as usize];
                debug_assert!(node.var.0 != FREE_VAR, "marked a reclaimed slot");
                if !node.low.node().is_terminal() {
                    stack.push(node.low.node().0);
                }
                if !node.high.node().is_terminal() {
                    stack.push(node.high.node().0);
                }
            }
        }
        let dead = in_use - live;
        if dead == 0 || (!force && (dead as f64) < self.gc.dead_fraction * in_use as f64) {
            return 0;
        }
        // Sweep phase: poison dead slots and push them on the free list.
        {
            let seen = self.visited.borrow();
            for i in 1..n {
                if self.nodes[i].var.0 == FREE_VAR || seen.is_marked(i) {
                    continue;
                }
                self.nodes[i] = Node {
                    var: Var(FREE_VAR),
                    low: Ref::ONE,
                    high: Ref::ONE,
                };
                self.refs[i] = 0;
                self.free.push(i as u32);
            }
        }
        // The sweep may have poisoned slots listed anywhere: rebuild the
        // per-variable slot lists from the survivors (one O(arena) pass,
        // which the sweep already paid), keeping them exact.
        for list in &mut self.var_nodes {
            list.clear();
        }
        for i in 1..n {
            let v = self.nodes[i].var.0 as usize;
            if let Some(list) = self.var_nodes.get_mut(v) {
                list.push(i as u32);
            }
        }
        // The unique table still lists the dead nodes: rebuild it from the
        // survivors, shrinking when they'd fit a quarter-size table.
        self.occupied = live;
        let wanted = (live.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let new_len = if wanted * 4 <= self.buckets.len() {
            wanted
        } else {
            self.buckets.len()
        };
        self.grow_to(new_len);
        // Cached results naming a dead node must not survive — but wiping
        // the whole cache (a generation bump) makes every collection cost
        // a full memo rebuild, which dominates high-churn flows. Instead,
        // scrub: drop exactly the entries with a reclaimed slot behind any
        // word. Key words that are not `Ref`s (cofactor variable codes,
        // scope epochs) are treated as if they were — a false hit there
        // only costs a spurious miss, while every word that *is* a `Ref`
        // gets checked, so no dangling reference survives in the cache.
        let nodes = &self.nodes;
        let live_word = |w: u32| {
            let idx = (w >> 1) as usize;
            idx >= nodes.len() || nodes[idx].var.0 != FREE_VAR
        };
        for e in self.cache.entries.iter_mut() {
            if e.tag != 0
                && !(live_word(e.a) && live_word(e.b) && live_word(e.c) && live_word(e.result))
            {
                *e = CacheEntry::default();
            }
        }
        self.gc_epoch += 1;
        self.reclaimed_total += dead as u64;
        dead
    }

    // ------------------------------------------------------------------
    // Dynamic variable ordering (in-place adjacent swap + Rudell sifting).
    // ------------------------------------------------------------------

    /// Number of internal nodes reachable from the externally protected
    /// roots — the size metric sifting minimizes. Unprotected garbage
    /// (dead intermediates awaiting collection) is excluded, so the
    /// metric is stable under churn.
    pub fn rooted_size(&self) -> usize {
        let mut seen = self.visited.borrow_mut();
        seen.begin(self.nodes.len());
        let mut stack: Vec<u32> = Vec::new();
        for (i, &rc) in self.refs.iter().enumerate().skip(1) {
            if rc > 0 {
                stack.push(i as u32);
            }
        }
        let mut count = 0usize;
        while let Some(i) = stack.pop() {
            if !seen.mark(i as usize) {
                continue;
            }
            count += 1;
            let n = self.nodes[i as usize];
            if !n.low.node().is_terminal() {
                stack.push(n.low.node().0);
            }
            if !n.high.node().is_terminal() {
                stack.push(n.high.node().0);
            }
        }
        count
    }

    /// Exchanges level `level` with level `level + 1` *in place*.
    ///
    /// Only the nodes at the upper level whose children sit at the lower
    /// level are rewritten; their arena slots are patched (detached from
    /// the unique table, re-expressed over the swapped order, re-inserted),
    /// so every outstanding [`Ref`] keeps denoting the same Boolean
    /// function across the swap — nothing dangles, unprotected or not.
    /// Displaced lower-level nodes may become garbage for the next
    /// collection to reclaim. The computed cache is scrubbed conservatively
    /// (an O(1) generation bump) whenever any node is rewritten.
    ///
    /// Cost is proportional to the upper level's population (via the
    /// per-variable slot lists), not to the arena — sifting calls this in
    /// a tight loop.
    ///
    /// Returns the number of rewritten nodes.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= num_vars`.
    pub fn swap_levels(&mut self, level: u32) -> usize {
        let l = level as usize;
        assert!(
            l + 1 < self.level2var.len(),
            "swap_levels: level {level} out of range ({} variables)",
            self.level2var.len()
        );
        let x = self.level2var[l];
        let y = self.level2var[l + 1];
        // Only upper-level nodes referencing the lower level change shape;
        // everything else is order-independent under an adjacent swap.
        let list = std::mem::take(&mut self.var_nodes[x as usize]);
        let mut keep: Vec<u32> = Vec::with_capacity(list.len());
        let mut moved: Vec<(u32, Node)> = Vec::new();
        for &slot in &list {
            let n = self.nodes[slot as usize];
            debug_assert_eq!(n.var.0, x, "per-variable slot list out of sync");
            let low_y = self.nodes[n.low.node().index()].var.0 == y;
            let high_y = self.nodes[n.high.node().index()].var.0 == y;
            if low_y || high_y {
                moved.push((slot, n));
            } else {
                keep.push(slot);
            }
        }
        self.var_nodes[x as usize] = keep;
        // The order maps swap unconditionally.
        self.level2var.swap(l, l + 1);
        self.var2level[x as usize] = (l + 1) as u32;
        self.var2level[y as usize] = l as u32;
        if moved.is_empty() {
            return 0;
        }
        // Detach the rewritten slots from the unique table (backward-shift
        // deletion) and poison them so a mid-rewrite table growth cannot
        // re-insert a stale triple; refcounts and identities are kept.
        for &(i, n) in &moved {
            self.remove_slot(i, &n);
            self.nodes[i as usize].var = Var(FREE_VAR);
        }
        let (xv, yv) = (Var(x), Var(y));
        for &(i, n) in &moved {
            // f = x·f1 + x'·f0 = y·(x·f11 + x'·f01) + y'·(x·f10 + x'·f00).
            let (f00, f01) = self.shallow_cofactors(n.low, yv);
            let (f10, f11) = self.shallow_cofactors(n.high, yv);
            let new_low = self.mk(xv, f00, f10);
            let new_high = self.mk(xv, f01, f11);
            // `f11` is a cofactor of the regular `n.high`, hence regular,
            // so the patched 1-edge stays regular; and the children cannot
            // collapse (that would need `f0 == f1`).
            debug_assert!(!new_high.is_complemented(), "swap: 1-edge must stay regular");
            debug_assert_ne!(new_low, new_high, "swap: a rewritten node cannot vanish");
            self.nodes[i as usize] = Node {
                var: yv,
                low: new_low,
                high: new_high,
            };
            self.insert_slot(i);
            self.var_nodes[y as usize].push(i);
        }
        // Conservative cache scrub. Most memoized results survive a swap
        // unchanged: their keys and results are `Ref`s, the swap preserves
        // every Ref's function, and ITE/AND/XOR/COFACTOR/SCOPED results
        // are determined by operand functions alone. The Coudert–Madre
        // restrict/constrain results additionally depend on the variable
        // *order*, so exactly that class is retired (O(1) generation
        // bump) — the rest of the memo stays warm across reordering.
        self.cache.clear_order_sensitive();
        moved.len()
    }

    /// Removes one arena slot from the unique table by backward-shift
    /// deletion (no tombstones, so later probes stay one-load-per-step).
    /// `n` is the node content the slot is currently hashed under.
    fn remove_slot(&mut self, idx: u32, n: &Node) {
        let mask = self.bucket_mask;
        let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & mask;
        while self.buckets[i] != idx {
            debug_assert!(self.buckets[i] != 0, "remove_slot: slot not in the table");
            i = (i + 1) & mask;
        }
        // Shift the rest of the probe cluster back over the hole so no
        // entry becomes unreachable from its ideal bucket.
        let mut hole = i;
        let mut j = (hole + 1) & mask;
        loop {
            let b = self.buckets[j];
            if b == 0 {
                break;
            }
            let nb = self.nodes[b as usize];
            let ideal = (triple_hash(nb.var.0, nb.low.raw(), nb.high.raw()) as usize) & mask;
            // `b` may move into the hole iff its ideal bucket is not in
            // the (cyclic) open interval (hole, j].
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                self.buckets[hole] = b;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        self.buckets[hole] = 0;
        self.occupied -= 1;
    }

    /// Inserts an existing arena slot into the unique table (the slot's
    /// triple must not already be present — guaranteed by the level-swap
    /// rewrite, which never recreates an existing function's node).
    fn insert_slot(&mut self, idx: u32) {
        let n = self.nodes[idx as usize];
        let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & self.bucket_mask;
        loop {
            let b = self.buckets[i];
            if b == 0 {
                break;
            }
            debug_assert!(
                self.nodes[b as usize] != n,
                "insert_slot: duplicate triple would break canonicity"
            );
            i = (i + 1) & self.bucket_mask;
        }
        self.buckets[i] = idx;
        self.occupied += 1;
        if self.occupied * 4 >= self.buckets.len() * 3 {
            self.grow_to(self.buckets.len() * 2);
        }
    }

    /// Rudell sifting over the protected roots: each variable (densest
    /// level first) is moved through the whole order by adjacent swaps and
    /// parked at the position minimizing [`Manager::rooted_size`], with a
    /// per-variable growth abort and a total swap budget (see
    /// [`SiftConfig`]).
    ///
    /// Sifting *collects*: dead nodes are reclaimed up front and whenever
    /// swap garbage piles up between variable moves — otherwise each move
    /// would drag the previous moves' corpses through the unique table
    /// and spawn more of them, a cascade that can dwarf the live size.
    /// Call this only at quiescent points with every live function
    /// protected, exactly like [`Manager::collect`]; with no protected
    /// roots the pass is a no-op. (The cheaper [`Manager::swap_levels`]
    /// primitive never collects and preserves even unprotected refs.)
    pub fn sift(&mut self, cfg: &SiftConfig) -> SiftReport {
        self.sift_filtered(cfg, None)
    }

    /// [`Manager::sift`] restricted to actively moving only `subset`
    /// variables (others shift as bystanders but are never walked
    /// themselves). This is how a per-cone sift avoids paying for the
    /// manager's full variable count: pass the cone's support.
    pub fn sift_vars(&mut self, cfg: &SiftConfig, subset: &[Var]) -> SiftReport {
        self.sift_filtered(cfg, Some(subset))
    }

    fn sift_filtered(&mut self, cfg: &SiftConfig, subset: Option<&[Var]>) -> SiftReport {
        let n = self.num_vars as usize;
        self.collect();
        let initial = self.rooted_size();
        let mut report = SiftReport {
            initial_size: initial,
            final_size: initial,
            swaps: 0,
            vars_sifted: 0,
        };
        if n < 2 || initial == 0 {
            return report;
        }
        // Rank variables by node population, densest first — they have
        // the most to gain (Rudell's original ordering).
        let population: Vec<usize> = self.var_nodes.iter().map(Vec::len).collect();
        let mut vars: Vec<u32> = match subset {
            Some(subset) => subset
                .iter()
                .map(|v| v.0)
                .filter(|&v| (v as usize) < n && population[v as usize] > 0)
                .collect(),
            None => (0..n as u32).filter(|&v| population[v as usize] > 0).collect(),
        };
        vars.sort_by_key(|&v| std::cmp::Reverse(population[v as usize]));
        vars.truncate(cfg.max_vars);
        let mut size = initial;
        for &v in &vars {
            if report.swaps >= cfg.max_swaps {
                break;
            }
            report.vars_sifted += 1;
            let mut pos = self.var2level[v as usize] as usize;
            let mut best_size = size;
            let mut best_pos = pos;
            // Walk to the nearer edge first, then sweep to the other.
            let down_first = n - 1 - pos <= pos;
            for phase in 0..2 {
                let downward = if phase == 0 { down_first } else { !down_first };
                loop {
                    if report.swaps >= cfg.max_swaps {
                        break;
                    }
                    if downward && pos + 1 >= n || !downward && pos == 0 {
                        break;
                    }
                    let at = if downward { pos } else { pos - 1 };
                    self.swap_levels(at as u32);
                    report.swaps += 1;
                    pos = if downward { pos + 1 } else { pos - 1 };
                    size = self.rooted_size();
                    if size < best_size {
                        best_size = size;
                        best_pos = pos;
                    } else if (size as f64) > cfg.max_growth * best_size as f64 {
                        break;
                    }
                }
            }
            // Park the variable at the best position seen. Restores are not
            // budget-gated: the variable must not be stranded mid-order.
            while pos > best_pos {
                self.swap_levels((pos - 1) as u32);
                pos -= 1;
                report.swaps += 1;
            }
            while pos < best_pos {
                self.swap_levels(pos as u32);
                pos += 1;
                report.swaps += 1;
            }
            size = best_size;
            debug_assert_eq!(size, self.rooted_size(), "restore must reach the best order");
            // One variable's walk creates only linear garbage (displaced
            // nodes are never re-dragged by the same variable), but the
            // *next* variable would re-process and amplify it: reclaim
            // once the dead fraction dominates the rooted size.
            if self.live_nodes() > 2 * (size + n + 1) {
                self.collect();
            }
        }
        report.final_size = size;
        self.sift_swaps += report.swaps as u64;
        self.sifts += 1;
        report
    }

    /// Replaces the automatic-sifting configuration and re-arms the
    /// trigger threshold (see [`AutoSiftConfig`]).
    pub fn set_sift_config(&mut self, config: AutoSiftConfig) {
        self.auto_sift = config;
        self.next_sift = config.min_nodes;
    }

    /// The active automatic-sifting configuration.
    pub fn sift_config(&self) -> AutoSiftConfig {
        self.auto_sift
    }

    /// Sifts only when worthwhile: a no-op while automatic sifting is
    /// disabled or the live node count is below the re-armed threshold;
    /// otherwise collects (callers invoke this only at quiescent points,
    /// exactly like [`Manager::maybe_collect`], so every live function is
    /// protected), runs one [`Manager::sift`] pass over the compacted
    /// arena, and re-arms the trigger at twice the post-sift live size.
    /// Returns the report when a pass ran.
    pub fn maybe_sift(&mut self) -> Option<SiftReport> {
        if !self.auto_sift.enabled || self.live_nodes() < self.next_sift {
            return None;
        }
        let cfg = self.auto_sift.sift;
        let report = self.sift(&cfg);
        self.next_sift = (self.live_nodes() * 2).max(self.auto_sift.min_nodes);
        Some(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn terminal_is_node_zero() {
        let m = Manager::new();
        assert_eq!(m.num_nodes(), 1);
        assert!(Ref::ONE.node().is_terminal());
        assert_eq!(m.top_var(Ref::ONE), None);
        assert_eq!(m.top_var(Ref::ZERO), None);
    }

    #[test]
    fn var_is_hash_consed() {
        let mut m = Manager::new();
        let a1 = m.var(3);
        let a2 = m.var(3);
        assert_eq!(a1, a2);
        assert_eq!(m.num_vars(), 4);
        assert_eq!(m.num_nodes(), 2);
    }

    #[test]
    fn mk_reduces_equal_children() {
        let mut m = Manager::new();
        let r = m.mk(Var(0), Ref::ONE, Ref::ONE);
        assert_eq!(r, Ref::ONE);
    }

    #[test]
    fn one_edges_are_regular() {
        let mut m = Manager::new();
        let a = m.var(0);
        let na = !a;
        // !a = mk(0, ONE, ZERO) must be stored with a regular 1-edge.
        assert!(na.is_complemented());
        let n = m.node(na.node());
        assert!(!n.high.is_complemented());
        assert_eq!(m.num_nodes(), 2, "a and !a share one node");
    }

    #[test]
    fn shallow_cofactors_respect_complement() {
        let mut m = Manager::new();
        let a = m.var(0);
        let (f0, f1) = m.shallow_cofactors(a, Var(0));
        assert_eq!((f0, f1), (Ref::ZERO, Ref::ONE));
        let (g0, g1) = m.shallow_cofactors(!a, Var(0));
        assert_eq!((g0, g1), (Ref::ONE, Ref::ZERO));
        // A variable below the asked level is untouched.
        let (h0, h1) = m.shallow_cofactors(a, Var(5));
        assert_eq!((h0, h1), (a, a));
    }

    #[test]
    fn var_names_default_and_custom() {
        let mut m = Manager::new();
        assert_eq!(m.var_name(2), "x2");
        m.set_var_name(2, "carry");
        assert_eq!(m.var_name(2), "carry");
    }

    #[test]
    fn unique_table_survives_growth() {
        // Force several doublings and re-check canonicity afterwards. The
        // chain is built deepest-variable-first so every `mk` respects the
        // ordering invariant (children strictly below the new node).
        let mut m = Manager::with_capacity(16, 8);
        let before = m.cache_stats().unique_buckets;
        let mut chain: Vec<(u32, Ref, Ref)> = Vec::new();
        let mut prev = Ref::ONE;
        for v in (0..300u32).rev() {
            let node = m.mk(Var(v), !prev, prev);
            chain.push((v, prev, node));
            prev = node;
        }
        assert!(
            m.cache_stats().unique_buckets > before,
            "300 nodes must outgrow the smallest table"
        );
        // Re-making the same triples must return the identical refs.
        for &(v, child, r) in &chain {
            assert_eq!(m.mk(Var(v), !child, child), r);
        }
        assert_eq!(m.num_nodes(), 301, "re-makes created nothing");
    }

    #[test]
    fn clear_caches_is_generation_bump() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f1 = m.and(a, b);
        let entries_before = m.cache_stats().cache_entries;
        m.clear_caches();
        assert_eq!(
            m.cache_stats().cache_entries,
            entries_before,
            "clear keeps capacity"
        );
        // Results stay canonical after the cache is dropped.
        assert_eq!(m.and(a, b), f1);
    }

    #[test]
    fn with_capacity_pre_sizes_tables() {
        let m = Manager::with_capacity(100_000, 18);
        let stats = m.cache_stats();
        assert!(stats.unique_buckets >= 100_000 * 4 / 3);
        assert_eq!(stats.cache_entries, 1 << 18);
    }

    #[test]
    fn reserve_nodes_grows_unique_table() {
        let mut m = Manager::new();
        let before = m.cache_stats().unique_buckets;
        m.reserve_nodes(1 << 16);
        assert!(m.cache_stats().unique_buckets > before);
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.and(a, b), f);
    }

    #[test]
    fn stats_track_cache_traffic() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let r1 = m.ite(a, b, c);
        let before = m.cache_stats();
        let r2 = m.ite(a, b, c);
        let after = m.cache_stats();
        assert_eq!(r1, r2);
        assert!(after.lookups > before.lookups);
        assert!(after.hits > before.hits, "repeat ITE must hit the cache");
        assert_eq!(after.peak_nodes, m.num_nodes());
    }

    #[test]
    fn protect_release_roundtrip() {
        let mut m = Manager::new();
        let a = m.var(0);
        assert_eq!(m.protect_count(a), 0);
        m.protect(a);
        m.protect(a);
        assert_eq!(m.protect_count(a), 2);
        m.release(a);
        assert_eq!(m.protect_count(a), 1);
        m.release(a);
        assert_eq!(m.protect_count(a), 0);
        // Constants are always live; protect/release are no-ops.
        m.protect(Ref::ONE);
        m.release(Ref::ZERO);
        assert_eq!(m.protect_count(Ref::ONE), u32::MAX);
    }

    #[test]
    fn collect_reclaims_dead_nodes_and_reuses_slots() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let dead = m.ite(c, keep, b);
        let _more_dead = m.xor(dead, a);
        m.protect(keep);
        let before = m.num_nodes();
        let reclaimed = m.collect();
        assert!(reclaimed > 0, "the ite/xor chain is unreachable");
        assert_eq!(m.num_nodes(), before, "arena keeps its slots");
        assert_eq!(m.live_nodes(), before - reclaimed);
        let stats = m.cache_stats();
        assert_eq!(stats.free_nodes, reclaimed);
        assert_eq!(stats.garbage_estimate, reclaimed);
        assert_eq!(stats.reclaimed_total, reclaimed as u64);
        assert_eq!(stats.collections, 1);
        // The kept function still evaluates correctly...
        assert!(m.eval(keep, &[true, true, false]));
        assert!(!m.eval(keep, &[true, false, false]));
        // ...and new nodes reuse reclaimed slots before the arena grows.
        let a2 = m.var(0);
        let b2 = m.var(1);
        let rebuilt = m.and(a2, b2);
        assert_eq!(rebuilt, keep, "canonicity survives reclaim-and-reuse");
        let c2 = m.var(2);
        let _redo = m.ite(c2, keep, b2);
        assert_eq!(m.num_nodes(), before, "free slots absorbed the rebuild");
    }

    #[test]
    fn collect_with_no_garbage_reclaims_nothing() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.protect(f);
        m.protect(a); // the projection of var 0 is not part of f's DAG
        assert_eq!(m.collect(), 0);
        assert_eq!(m.cache_stats().collections, 0, "empty sweeps are not counted");
        assert_eq!(m.gc_epoch(), 0);
    }

    #[test]
    fn unique_table_shrinks_when_sparse_after_collect() {
        // Build a 5000-node chain, drop every root, collect: the survivors
        // (none) fit the floor-size table, so the bucket array shrinks.
        let mut m = Manager::with_capacity(16, 8);
        let mut prev = Ref::ONE;
        for v in (0..5000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        let grown = m.cache_stats().unique_buckets;
        assert!(grown >= 8192, "5000 nodes must outgrow the floor table");
        let reclaimed = m.collect();
        assert_eq!(reclaimed, 5000);
        assert_eq!(m.cache_stats().unique_buckets, MIN_BUCKETS);
        assert_eq!(m.live_nodes(), 1, "only the terminal survives");
        // Rebuilding the same chain reuses the freed slots: the arena must
        // not grow past its previous footprint.
        let before = m.num_nodes();
        let mut prev = Ref::ONE;
        for v in (0..5000u32).rev() {
            prev = m.mk(Var(v), !prev, prev);
        }
        assert_eq!(m.num_nodes(), before, "reclaim-before-grow");
        assert_eq!(m.size(prev), 5000);
    }

    #[test]
    fn maybe_collect_gates_on_config() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let _dead = m.and(a, b);
        // Below min_nodes: never collects, however much is dead.
        assert_eq!(m.maybe_collect(), 0);
        // With the floor removed and everything dead, it sweeps.
        m.set_gc_config(GcConfig {
            dead_fraction: 0.25,
            min_nodes: 0,
        });
        let reclaimed = m.maybe_collect();
        assert!(reclaimed > 0);
        // Immediately afterwards nothing has been allocated: cheap no-op.
        assert_eq!(m.maybe_collect(), 0);
        assert_eq!(m.gc_config().min_nodes, 0);
    }

    #[test]
    fn computed_cache_clear_survives_generation_wrap() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        // Force the generation to the wrap boundary with a live entry in
        // the table, then clear: the wrap branch must wipe the entries and
        // restart at generation 1 without resurrecting stale results.
        m.cache.generation = (u32::MAX >> GEN_SHIFT) - 1;
        m.cache.insert(op::AND, a.raw(), b.raw(), 0, Ref::ZERO);
        m.cache.clear();
        assert_eq!(m.cache.generation, 1, "wrap resets to generation 1");
        assert!(
            m.cache.entries.iter().all(|e| e.tag == 0),
            "wrap must wipe every slot"
        );
        assert_eq!(
            m.cache.lookup(op::AND, a.raw(), b.raw(), 0),
            None,
            "the poisoned pre-wrap entry must not be observable"
        );
        assert_eq!(m.and(a, b), f, "results stay canonical after the wrap");
    }

    #[test]
    fn visit_scratch_survives_stamp_wrap() {
        let mut s = VisitScratch::default();
        s.begin(4);
        assert!(s.mark(2), "fresh scratch: first visit");
        // Force the wrap: the next begin() lands on generation 0, which
        // must wipe the stamps (any stale stamp would equal the new
        // generation and read as already-visited).
        s.gen = u32::MAX;
        s.stamp.fill(u32::MAX); // worst case: every stamp aliases pre-wrap gen
        s.begin(4);
        assert_eq!(s.gen, 1, "wrap resets to generation 1");
        for i in 0..4 {
            assert!(s.mark(i), "node {i} must read unvisited after the wrap");
            assert!(!s.mark(i), "second visit is still detected");
            assert!(s.is_marked(i));
        }
    }

    #[test]
    fn new_scope_epoch_wrap_flushes_cache() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.ite(a, b, Ref::ZERO);
        // Put the epoch at the wrap boundary and plant a poisoned SCOPED
        // entry under the epoch that will be handed out after the wrap
        // (epoch 1). If new_scope failed to flush, the next scoped rebuild
        // would observe it and return garbage.
        m.scope_epoch = u32::MAX;
        m.cache.insert(op::SCOPED, f.raw(), 1, 1, Ref::ZERO);
        let scope = m.new_scope();
        assert_eq!(scope, 1, "epoch wraps to 1");
        assert_eq!(
            m.cache.lookup(op::SCOPED, f.raw(), 1, 1),
            None,
            "the stale entry for the reused epoch must be unobservable"
        );
        // End-to-end: a permute (which consumes a fresh scope) right after
        // an epoch wrap still returns the correct function.
        m.scope_epoch = u32::MAX;
        let g = m.permute(f, &[0, 1]);
        assert_eq!(g, f, "identity permutation after epoch wrap");
    }

    #[test]
    fn level_maps_start_as_identity_and_constants_report_max() {
        let mut m = Manager::new();
        m.var(2);
        assert_eq!(m.var2level(), &[0, 1, 2]);
        assert_eq!(m.level2var(), &[0, 1, 2]);
        assert_eq!(m.level(Ref::ONE), u32::MAX);
        assert_eq!(m.level(Ref::ZERO), u32::MAX);
        assert_eq!(m.level_of_var(Var(99)), u32::MAX, "unknown vars sit below all");
        let a = m.var(1);
        assert_eq!(m.level(a), 1);
        assert_eq!(m.var_at_level(1), Var(1));
    }

    #[test]
    fn swap_levels_preserves_refs_and_functions() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.ite(a, b, c);
        let g = m.and(a, c);
        let truth = |m: &Manager, f: Ref| -> u32 {
            let mut t = 0;
            for row in 0..8u32 {
                let assignment: Vec<bool> = (0..3).map(|i| row >> i & 1 == 1).collect();
                if m.eval(f, &assignment) {
                    t |= 1 << row;
                }
            }
            t
        };
        let (tf, tg) = (truth(&m, f), truth(&m, g));
        let moved = m.swap_levels(0);
        assert!(moved > 0, "the root of f branches into level 1");
        assert_eq!(m.var2level(), &[1, 0, 2]);
        assert_eq!(m.level2var(), &[1, 0, 2]);
        // The same Refs still denote the same functions.
        assert_eq!(truth(&m, f), tf);
        assert_eq!(truth(&m, g), tg);
        // Canonicity holds under the new order: recomputing returns the
        // identical Refs.
        assert_eq!(m.ite(a, b, c), f);
        assert_eq!(m.and(a, c), g);
        // Swapping back restores the identity order and the functions.
        m.swap_levels(0);
        assert_eq!(m.var2level(), &[0, 1, 2]);
        assert_eq!(truth(&m, f), tf);
        assert_eq!(m.ite(a, b, c), f);
    }

    #[test]
    fn swap_levels_without_interaction_moves_no_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        m.var(1);
        let c = m.var(2);
        let f = m.and(a, c); // nothing at level 0 references level 1
        assert_eq!(m.swap_levels(0), 0);
        assert_eq!(m.var2level(), &[1, 0, 2]);
        assert_eq!(m.and(a, c), f, "untouched nodes stay canonical");
    }

    #[test]
    fn sift_shrinks_an_order_hostile_function() {
        // x0·x3 + x1·x4 + x2·x5: exponential under the interleaved
        // identity order, linear once the pairs are adjacent.
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        let before = m.size(f);
        let report = m.sift(&SiftConfig::default());
        let after = m.size(f);
        assert_eq!(report.initial_size, before);
        assert_eq!(report.final_size, after);
        assert!(report.swaps > 0);
        assert_eq!(after, 6, "sifting must find a pairing order ({before} -> {after})");
        // The function itself is untouched.
        for row in 0..64u32 {
            let assignment: Vec<bool> = (0..6).map(|i| row >> i & 1 == 1).collect();
            let want = (assignment[0] && assignment[3])
                || (assignment[1] && assignment[4])
                || (assignment[2] && assignment[5]);
            assert_eq!(m.eval(f, &assignment), want, "row {row}");
        }
        assert_eq!(m.cache_stats().sifts, 1);
        assert!(m.cache_stats().sift_swaps >= report.swaps as u64);
    }

    #[test]
    fn sift_without_roots_is_a_noop() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(3);
        let _f = m.and(a, b); // never protected
        let report = m.sift(&SiftConfig::default());
        assert_eq!(report.swaps, 0);
        assert_eq!(report.initial_size, 0, "no roots, nothing to minimize");
    }

    #[test]
    fn maybe_sift_gates_on_config() {
        let mut m = Manager::new();
        let mut f = Ref::ZERO;
        for i in 0..3 {
            let a = m.var(i);
            let b = m.var(i + 3);
            let ab = m.and(a, b);
            f = m.or(f, ab);
        }
        m.protect(f);
        // Disabled by default.
        assert!(m.maybe_sift().is_none());
        m.set_sift_config(AutoSiftConfig {
            enabled: true,
            min_nodes: 4,
            sift: SiftConfig::default(),
        });
        let report = m.maybe_sift().expect("threshold cleared");
        assert!(report.final_size <= report.initial_size);
        // Re-armed: immediately afterwards the threshold gates again.
        assert!(m.maybe_sift().is_none());
        assert!(m.sift_config().enabled);
    }

    #[test]
    fn garbage_estimate_counts_unreachable_nodes() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let keep = m.and(a, b);
        let _dead = m.ite(c, keep, b);
        let stats = m.cache_stats_with_roots(&[keep]);
        assert!(stats.garbage_estimate > 0, "the ite chain is unreachable");
        // With every created function as a root, nothing is garbage.
        let all = m.cache_stats_with_roots(&[keep, _dead, a, b, c]);
        assert_eq!(all.garbage_estimate, 0);
    }
}
