//! A reduced, ordered binary decision diagram (ROBDD) package with
//! complemented edges.
//!
//! This crate is the BDD substrate of the BDS-MAJ reproduction. It follows
//! the classical Brace–Rudell–Bryant design:
//!
//! * hash-consed nodes in an arena ([`Manager`]), guaranteeing canonicity:
//!   two [`Ref`]s are functionally equal if and only if they are bit-equal;
//! * complemented edges restricted to 0-edges (the 1-edge of every stored
//!   node is regular), so negation is free;
//! * a memoized if-then-else operator ([`Manager::ite`]) from which all
//!   two-operand Boolean connectives derive;
//! * the Coudert–Madre generalized cofactors [`Manager::restrict`] and
//!   [`Manager::constrain`] used by the majority decomposition of BDS-MAJ;
//! * structural analysis needed by dominator-driven decomposition:
//!   node iteration, in-degree statistics and node-to-constant substitution.
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut m = Manager::new();
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! // majority of three variables: ab + bc + ac
//! let f = m.maj(a, b, c);
//! let g = {
//!     let ab = m.and(a, b);
//!     let bc = m.and(b, c);
//!     let ac = m.and(a, c);
//!     let t = m.or(ab, bc);
//!     m.or(t, ac)
//! };
//! assert_eq!(f, g); // canonicity: equal functions are equal references
//! ```

mod analysis;
mod cofactor;
mod dot;
mod hasher;
mod manager;
mod ops;
mod reference;
mod reorder;
mod sat;

pub use analysis::{InDegree, NodeStats};
pub use manager::{Manager, Node};
pub use reference::{NodeId, Ref, Var};
pub use reorder::{window_reorder, Reordered};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_holds() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let ab = m.and(a, b);
        let bc = m.and(b, c);
        let ac = m.and(a, c);
        let t = m.or(ab, bc);
        let g = m.or(t, ac);
        assert_eq!(f, g);
    }
}
