//! A reduced, ordered binary decision diagram (ROBDD) package with
//! complemented edges.
//!
//! This crate is the BDD substrate of the BDS-MAJ reproduction. It follows
//! the classical Brace–Rudell–Bryant design, with a CUDD-style purpose-built
//! memory system:
//!
//! * hash-consed nodes in an arena ([`Manager`]), guaranteeing canonicity:
//!   two [`Ref`]s are functionally equal if and only if they are bit-equal;
//! * complemented edges restricted to 0-edges (the 1-edge of every stored
//!   node is regular), so negation is free;
//! * a memoized if-then-else operator ([`Manager::ite`]) plus specialized
//!   AND/XOR kernels for the two dominant connectives;
//! * the Coudert–Madre generalized cofactors [`Manager::restrict`] and
//!   [`Manager::constrain`] used by the majority decomposition of BDS-MAJ;
//! * structural analysis needed by dominator-driven decomposition:
//!   node iteration, in-degree statistics and node-to-constant substitution.
//!
//! # Storage architecture
//!
//! The kernel's hot state is three flat arrays — no per-operation
//! allocation, no std `HashMap` on any hot path:
//!
//! * **Node arena** — `Vec<Node>`; a node is its index, index 0 is the
//!   terminal. Nodes are immortal (no GC yet; see ROADMAP "Open items").
//! * **Unique table** — an open-addressed, power-of-two `Vec<u32>` bucket
//!   array over the arena, probed linearly from an inlined multiply-mix
//!   hash of `(var, low, high)`. Bucket value 0 doubles as the
//!   empty-slot sentinel (the terminal is never consed), so a probe reads
//!   one `u32` per step. The table doubles at 75% load; deletions don't
//!   exist, so rehashing is a straight re-insert of the arena.
//! * **Computed cache** — a fixed-size, direct-mapped, *lossy* table
//!   ([`Manager::with_capacity`] sets its size; default
//!   `2^DEFAULT_CACHE_BITS` = `2^14` entries).
//!   Each slot stores the full operation key `(op, a, b, c)`, the result,
//!   and a generation tag; colliding inserts overwrite. All recursive
//!   kernels share this one cache via op tag codes: `ITE`, `AND`, `XOR`,
//!   `COFACTOR`, `RESTRICT`, `CONSTRAIN`, and `SCOPED` (per-call epochs
//!   used by `permute` / `replace_node_with_const` rebuilds).
//!   [`Manager::clear_caches`] bumps the generation: O(1), capacity kept.
//!
//! Because the cache is bounded, memory no longer grows with *operation*
//! count — only with distinct *nodes*. [`Manager::cache_stats`] exposes
//! lookup/hit/insert counters, table sizes and peak node counts
//! ([`CacheStats`]), which the bench binaries report.
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut m = Manager::new();
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! // majority of three variables: ab + bc + ac
//! let f = m.maj(a, b, c);
//! let g = {
//!     let ab = m.and(a, b);
//!     let bc = m.and(b, c);
//!     let ac = m.and(a, c);
//!     let t = m.or(ab, bc);
//!     m.or(t, ac)
//! };
//! assert_eq!(f, g); // canonicity: equal functions are equal references
//! ```

mod analysis;
mod cofactor;
mod dot;
mod hasher;
mod manager;
mod ops;
mod reference;
mod reorder;
mod sat;

pub use analysis::{InDegree, NodeStats};
pub use hasher::{BuildFxHasher, FxHasher};
pub use manager::{CacheStats, Manager, Node, DEFAULT_CACHE_BITS};
pub use reference::{NodeId, Ref, Var};
pub use reorder::{window_reorder, Reordered};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_holds() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let ab = m.and(a, b);
        let bc = m.and(b, c);
        let ac = m.and(a, c);
        let t = m.or(ab, bc);
        let g = m.or(t, ac);
        assert_eq!(f, g);
    }
}
