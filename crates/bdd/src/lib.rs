//! A reduced, ordered binary decision diagram (ROBDD) package with
//! complemented edges.
//!
//! This crate is the BDD substrate of the BDS-MAJ reproduction. It follows
//! the classical Brace–Rudell–Bryant design, with a CUDD-style purpose-built
//! memory system:
//!
//! * hash-consed nodes in an arena ([`Manager`]), guaranteeing canonicity:
//!   two [`Ref`]s are functionally equal if and only if they are bit-equal;
//! * complemented edges restricted to 0-edges (the 1-edge of every stored
//!   node is regular), so negation is free;
//! * a memoized if-then-else operator ([`Manager::ite`]) plus specialized
//!   AND/XOR kernels for the two dominant connectives;
//! * the Coudert–Madre generalized cofactors [`Manager::restrict`] and
//!   [`Manager::constrain`] used by the majority decomposition of BDS-MAJ;
//! * structural analysis needed by dominator-driven decomposition:
//!   node iteration, in-degree statistics and node-to-constant substitution.
//!
//! # Edge encoding
//!
//! A [`Ref`] is a single `u32`: the node index shifted left by one, with
//! the *complement bit* in bit 0. An edge with the bit set denotes the
//! negation of the function rooted at its node, so `!f` is one XOR on
//! the sign bit — no traversal, no allocation, O(1)
//! ([`Ref::is_complemented`], [`Ref::regular`]).
//!
//! Sharing a node between `f` and `¬f` requires one canonical
//! representative per complement pair, and this package picks the
//! classical Brace–Rudell–Bryant rule: **the 1-edge (`high`) of a stored
//! node is never complemented**. `mk` enforces it by construction —
//! asked for a node with a complemented 1-edge, it builds the
//! complemented-inputs twin and returns the complement of *that*
//! (`mk(v, l, h)` with `h` complemented ⇒ `¬mk(v, ¬l, ¬h)`), so the
//! bit only ever surfaces on 0-edges and on the refs handed to callers.
//! [`Manager::verify_edge_canonical_form`] audits the invariant over the
//! live arena, and the workspace linter (`bdslint`'s
//! `complement-canonical` rule) bans raw sign-bit construction outside
//! the registered constructors.
//!
//! One consequence: there is only one terminal, `⊤` (node 0) — `ZERO`
//! *is* `¬ONE`, the same node with the sign bit set. A 0/1 terminal pair
//! would be two names for one complement pair and break canonicity
//! (every function would gain a second, complemented spelling).
//!
//! # Storage architecture
//!
//! The kernel's hot state is three flat arrays — no per-operation
//! allocation, no std `HashMap` on any hot path. Since PR 9 they are
//! split across two types: the node-owning arena and unique table live
//! in the shared [`NodeStore`], the computed cache and traversal
//! scratch in the per-thread [`Session`] (see the concurrency contract
//! below); a [`Manager`] bundles one store with one default session and
//! keeps the classic single-threaded API.
//!
//! * **Node arena** — a flat cell vector in [`NodeStore`]; a node is its
//!   index, index 0 is the terminal. The `(var, low, high)` words are
//!   atomics so concurrent sessions can publish nodes race-free, but on
//!   the sequential path they cost nothing (Relaxed loads compile to
//!   plain loads). Dead nodes are reclaimed by the collector (below);
//!   their slots are poisoned, linked into a free list, and reused by
//!   `mk` before the arena grows (reclaim-before-grow).
//! * **Unique table** — an open-addressed, power-of-two `Vec<u32>` bucket
//!   array over the arena, probed linearly from an inlined multiply-mix
//!   hash of `(var, low, high)`. Bucket value 0 doubles as the
//!   empty-slot sentinel (the terminal is never consed), so a probe reads
//!   one `u32` per step. The table doubles at 75% load. There are no
//!   tombstones: deletions happen only in bulk during a collection, which
//!   rebuilds the buckets from the survivors and shrinks the array when
//!   they would fit a quarter of it.
//! * **Computed cache** — a fixed-size, set-associative, *lossy* table
//!   ([`Manager::with_capacity`] sets its size; default
//!   `3 · 2^(DEFAULT_CACHE_BITS − 2)` = 3 · 2^12 entries). Entries are
//!   grouped into 64-byte, cache-line-aligned *sets* of three ways plus
//!   a round-robin victim cursor, so one probe touches one line and a
//!   hot key survives two colliding neighbours instead of being evicted
//!   by the first (a full 20-byte entry — operation key `(op, a, b, c)`,
//!   result, generation tag — rules out a 4-way/64-byte split without
//!   truncating keys, and a truncated key can alias two different
//!   operations). Inserts refresh a matching key in place, then prefer
//!   a stale way (generation retired), then rotate the victim cursor.
//!   All recursive kernels share this one cache via op tag codes: `ITE`,
//!   `AND`, `XOR`, `COFACTOR`, `RESTRICT`, `CONSTRAIN`, and `SCOPED`
//!   (per-call epochs used by `permute` / `replace_node_with_const`
//!   rebuilds). [`Manager::clear_caches`] bumps the generation: O(1),
//!   capacity kept.
//!
//! # Garbage collection
//!
//! The collector pairs external refcounts with exact *interior* (arena
//! edge) refcounts — CUDD's `Cudd_Ref`/`Cudd_RecursiveDeref` discipline,
//! with the node-to-node half maintained by the kernel itself:
//!
//! * Callers declare long-lived functions with [`Manager::protect`] and
//!   drop the claim with [`Manager::release`]. Interior counts are kept
//!   exact by `mk`, the level swap's slot patching, and the sweep, so a
//!   node with both counts at zero is dead by definition
//!   ([`Manager::verify_interior_refs`] audits this in debug builds).
//! * [`Manager::collect`] (unconditional) reclaims *without a mark
//!   phase*: zero-count nodes seed a cascade through their children.
//!   [`Manager::maybe_collect`] (threshold-gated, see [`GcConfig`])
//!   measures the dead fraction with a mark pass first. Either way, dead
//!   slots go to the free list, the unique table is rebuilt
//!   (shrink-on-sparse), and the computed cache is scrubbed of exactly
//!   the entries naming a reclaimed slot — the memo stays warm across
//!   collections.
//! * Collection never runs implicitly inside an operation, so recursion
//!   intermediates need no protection; flows call `maybe_collect` at
//!   quiescent points (between supernodes, between reorder trials).
//!
//! Because the cache is bounded and dead nodes are recycled, memory
//! tracks the *live working set* — not operation count, not total nodes
//! ever created. [`Manager::cache_stats`] exposes lookup/hit/insert
//! counters, table sizes, and the reclaim counters
//! (`reclaimed_total`/`collections`/`free_nodes`/`live_nodes` in
//! [`CacheStats`]), which the bench binaries report.
//!
//! # Variables vs. levels, and dynamic reordering
//!
//! A variable's *index* is its identity — what assignments, gate bindings
//! and callers name — while its *level* is its current position in the
//! decision order (0 = root). The manager decouples the two through a
//! `var2level`/`level2var` permutation pair, and every recursive kernel
//! branches on levels (via [`Manager::level`], where constants report the
//! `u32::MAX` pseudo-level), so the order can change *without rebuilding
//! any function*:
//!
//! * [`Manager::swap_levels`] exchanges two adjacent levels in place,
//!   rewriting only the upper-level nodes that reference the lower level
//!   and patching their arena slots through the unique table — every
//!   outstanding [`Ref`] keeps denoting the same function.
//! * [`Manager::sift`] is Rudell's sifting on top of the swap primitive
//!   (growth abort against each variable's start size + swap budget,
//!   [`SiftConfig`]); it minimizes the node count of the protected roots,
//!   tracking that size in O(1) per swap from the swaps' exact deltas
//!   (sift swaps eagerly reclaim displaced nodes the interior counts
//!   prove dead, so the pass never re-walks the rooted set).
//!   [`Manager::sift_to_fixpoint`] repeats budget-relaxed passes to
//!   convergence ([`ConvergeConfig`]), fusing adjacent symmetric
//!   variables into group blocks ([`Manager::symmetric_levels`]).
//!   [`window_reorder`] drives the same swaps through a sliding
//!   window-permutation search, and [`sift_reorder`] /
//!   [`sift_converge_reorder`] scope a sift to one function.
//! * Sifting runs only at explicit quiescent points, never inside a
//!   kernel: flows either call the search functions directly (the BDS
//!   engine reorders each supernode cone before decomposition) or enable
//!   the threshold-gated [`Manager::maybe_sift`] hook
//!   ([`AutoSiftConfig`], off by default; its `fixpoint` option converges
//!   instead of single-passing), which the partition and decomposition
//!   layers offer at the same points as `maybe_collect`. Direct
//!   [`Manager::swap_levels`] calls preserve every `Ref` but displace
//!   nodes into garbage, so a `maybe_collect` should follow them.
//!
//! # Resource governance and the fallible-kernel contract
//!
//! Every recursive kernel exists in two forms: the classic infallible
//! entry (`ite`, `and`, `xor`, `cofactor`, ...) and a budget-governed
//! `try_*` twin returning `Result<Ref, LimitExceeded>`. Install a budget
//! with [`Manager::set_limits`] ([`ResourceLimits`]: a live-node ceiling,
//! a recursion-step ceiling, a wall-clock deadline — any subset); the
//! `try_*` kernels then poll it on a cheap counter inside the recursion
//! and abort cooperatively with [`LimitExceeded`] when it is crossed.
//! The infallible entries run the *same* recursions with the budget
//! suspended ([`Manager::ungoverned`]), so pre-existing code keeps its
//! can't-fail signatures and pays one branch per recursion step.
//!
//! **What survives an abort:** everything. All invariant maintenance
//! (unique-table insertion, interior refcounts, per-variable node lists,
//! free-list reuse) happens atomically inside `Manager::mk`, so an early
//! return between `mk` calls cannot tear any structure. After a
//! `LimitExceeded` the manager is fully consistent and immediately
//! usable: the unique table and computed cache are intact (including
//! partial results the aborted operation memoized — they are correct,
//! just incomplete), `verify_interior_refs` passes, and the nodes the
//! aborted operation built are ordinary unreferenced garbage that the
//! next [`Manager::collect`] reclaims. The recommended recovery is:
//! protect what you still need, `collect()`, then either retry with a
//! larger budget (possibly after a sift) or fall back. Nothing needs to
//! be rebuilt; no poisoned state exists.
//!
//! Limits are polled, not preemptive: the step counter advances once per
//! cache-missing recursion step, the node ceiling is compared on the
//! same poll, and the deadline clock is sampled every 256 steps — an
//! abort lands within microseconds of the crossing, never mid-`mk`.
//!
//! # Concurrency contract
//!
//! The kernel state is split along the thread boundary (PR 9 split the
//! store from the session; PR 11 added the shared cache tier and the
//! work-stealing forked apply):
//!
//! * **Shared: [`NodeStore`]** — the node arena, the unique table, the
//!   interior refcounts, and the lossy shared computed cache (the L2
//!   tier). It is `Sync`: any number of sessions may hash-cons into it
//!   concurrently through `try_mk`, which claims a slot (free-list pop
//!   or arena high-water CAS), writes the node's words, and *publishes*
//!   the slot index into its bucket with a single compare-exchange.
//!   Losing a publication race abandons the claimed slot (recovered at
//!   the next sweep) and adopts the winner.
//! * **Per-thread: [`Session`]** — the set-associative private computed
//!   cache (the L1 tier), the `RefCell` visited-stamp scratch (which is
//!   what makes it deliberately **not `Sync`**), the [`ResourceLimits`]
//!   budget, and the created-node log. Every recursive kernel runs
//!   against `(&NodeStore, &mut Session)`.
//! * **[`Manager`]** bundles one store with one default session, so the
//!   classic API is unchanged: it stays `Send` and `!Sync`, one manager
//!   per worker thread.
//!
//! **Memory ordering.** Publication is the ordering-critical edge:
//! `try_mk` releases the node's field writes with a `Release` CAS on
//! the bucket, and every probe reads buckets with `Acquire`, so
//! observing an index implies observing the node it names. The shared
//! cache follows the same shape with a two-word entry: claim via CAS to
//! a busy sentinel, `Release`-store the payload, `Release`-store the
//! tag *last*, so a reader that sees a matching tag sees the payload
//! that belongs to it. Slot claiming and the statistics counters are
//! `Relaxed` — they only arbitrate indices or feed heuristics
//! reconciled at quiescent points. The workspace linter (`bdslint`'s
//! `cas-publication` rule) confines atomic table and cache-entry writes
//! to the publication functions and requires each to justify its
//! ordering.
//!
//! **Two-tier memoization.** Kernel lookups probe the private L1 first
//! and the shared L2 on a miss; an L2 hit warms the L1 in place.
//! Publication into the L2 is work-gated: only results whose recursion
//! consumed enough descendant probes are shared, so the L2 holds the
//! expensive subproblems instead of leaf churn. The L2 is *lossy by
//! contract* — entries are overwritten on index collision and the whole
//! tier is epoch-cleared at quiescent points (O(1)) — so a miss is
//! always correct, merely slower. A hit is exact: the 96-bit key mix is
//! invertible and split across the two words, a torn read from a
//! concurrent single publication is detected by re-reading the tag, and
//! the remainder checks make *cross-key* poisoning impossible. The
//! residual two-writer ABA window (two publications of the *same* slot
//! interleaving between a reader's tag reads) can only pair words from
//! different *keys'* publications if the remainders also collide —
//! which the split remainder rules out — and same-key republication is
//! benign because a kernel result is a deterministic function of its
//! key. This is the honest guarantee: wrong answers never, lost entries
//! whenever.
//!
//! **Quiescence.** Everything that is *not* publication is
//! stop-the-world: GC, sifting, and table/arena growth require `&mut`
//! access with exactly one session live. The store counts sessions
//! outstanding during parallel regions and the quiescent entry points
//! assert that count is zero. When the shared table fills mid-region,
//! workers abort their cones through the [`LimitExceeded`] path; the
//! manager then grows at the now-quiescent point and retries — loudly,
//! never by silently degrading.
//!
//! **Parallel apply.** `Manager::par_and` / `par_xor` / `par_ite` run
//! one large cone as a fork-join recursion: each recursion step may
//! push its `else`-subproblem onto the calling worker's deque and
//! recurse into the `then`-subproblem; idle workers *steal* pushed
//! subproblems from the back of other deques, solve them with their own
//! session against the shared store, and the owner joins the halves
//! bottom-up with `mk`. The shared L2 cache is what keeps the workers'
//! duplicated subproblems cheap — a subproblem solved on one thread is
//! a single shared probe on every other. Canonicity makes the result
//! the identical [`Ref`] at any width, and the storm tests pin exactly
//! that. The fork width comes from the installed [`JobBudget`] — a
//! machine-wide permit pool shared with the `bench` suite pool and the
//! `bdsmaj` CLI, so nested parallelism never oversubscribes — and a
//! zero-width fork (no budget, no spare permits, or a cone below the
//! granularity cutoff) *is* the sequential kernel, node counts and all.
//! The flow reaches this through `try_par_*`: governed kernels (with
//! resource limits or an abort installed) stay on the exact sequential
//! budget semantics; ungoverned cone builds route to the forked path.
//!
//! The compile-time assertions below pin the contract:
//!
//! ```
//! fn sendable<T: Send>() {}
//! sendable::<bdd::Manager>(); // a worker may own a Manager
//!
//! fn sharable<T: Sync>() {}
//! sharable::<bdd::NodeStore>(); // the store is shared across sessions
//! ```
//!
//! ```compile_fail
//! // Does not compile: a Manager must never be shared across threads
//! // (RefCell session scratch). One Manager per worker.
//! fn sharable<T: Sync>() {}
//! sharable::<bdd::Manager>();
//! ```
//!
//! ```compile_fail
//! // Does not compile: a Session is pinned to its thread — its RefCell
//! // scratch and computed cache are deliberately unsynchronized.
//! fn sharable<T: Sync>() {}
//! sharable::<bdd::Session>();
//! ```
//!
//! # Example
//!
//! ```
//! use bdd::Manager;
//!
//! let mut m = Manager::new();
//! let (a, b, c) = (m.var(0), m.var(1), m.var(2));
//! // majority of three variables: ab + bc + ac
//! let f = m.maj(a, b, c);
//! let g = {
//!     let ab = m.and(a, b);
//!     let bc = m.and(b, c);
//!     let ac = m.and(a, c);
//!     let t = m.or(ab, bc);
//!     m.or(t, ac)
//! };
//! assert_eq!(f, g); // canonicity: equal functions are equal references
//! ```

mod analysis;
mod cofactor;
mod dot;
mod hasher;
mod manager;
mod ops;
mod parallel;
mod reference;
mod reorder;
mod sat;
mod session;
pub mod steal;
mod store;

pub use analysis::{InDegree, NodeStats};
pub use hasher::{BuildFxHasher, FxHasher};
pub use manager::{
    AutoSiftConfig, CacheStats, ConvergeConfig, GcConfig, Manager, Node, SiftConfig, SiftReport,
};
pub use reference::{NodeId, Ref, Var};
pub use reorder::{invert, sift_converge_reorder, sift_reorder, window_reorder, Reordered};
pub use session::{
    JobBudget, LimitExceeded, LimitKind, ResourceLimits, Session, DEFAULT_CACHE_BITS,
};
pub use store::NodeStore;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crate_level_doc_example_holds() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let ab = m.and(a, b);
        let bc = m.and(b, c);
        let ac = m.and(a, c);
        let t = m.or(ab, bc);
        let g = m.or(t, ac);
        assert_eq!(f, g);
    }
}
