//! The shared node store: arena, open-addressed unique table and
//! interior reference counts — the node-owning half of the concurrent
//! kernel split (the per-thread half is [`crate::session::Session`]).
//!
//! `NodeStore` is `Sync`. Many sessions may run recursive kernels against
//! one store at once; the only mutation a shared (`&self`) region ever
//! performs is *node publication* through [`NodeStore::try_mk`], which is
//! lock-free:
//!
//! * a probe walks the bucket array with `Acquire` loads;
//! * a miss claims an arena slot (free-list first, then the arena
//!   high-water mark, both by CAS), writes the node fields, and publishes
//!   the slot into the empty bucket with a `Release`
//!   `compare_exchange` — the release/acquire pair is what makes the
//!   relaxed field writes visible to every later prober;
//! * losing the publication race re-checks the winner (same triple:
//!   abandon our slot and adopt the winner's — hash-consing holds under
//!   contention) or keeps probing with the claimed slot in hand.
//!
//! Everything else — growth, reclamation, level swaps, the per-variable
//! slot lists, external refcounts — runs through `&mut self` at
//! *quiescent points* (exactly one session live, asserted via the
//! sessions-outstanding count), where plain access is safe and the
//! atomics are read and written through `get_mut`. A shared region that
//! runs out of arena or table headroom gets [`StoreFull`] back and the
//! manager façade grows the store at the next quiescent point and
//! retries; the store never grows under a shared region's feet.
//!
//! The free list is a *frozen* stack during shared regions: `&mut` code
//! pushes reclaimed slots and keeps `free.len() == free_top`; shared
//! claims only CAS-decrement the atomic `free_top` over the frozen
//! contents, and the manager re-syncs the vector length afterwards.
//! Slots abandoned after a lost publication race are poisoned and
//! counted in `abandoned` until the next sweep's arena scan recovers
//! them onto the free list.

use crate::reference::{NodeId, Ref, Var};
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

/// Sentinel variable index used by the terminal node; compares below every
/// real variable when ordered by *level depth* (larger index = deeper).
pub(crate) const TERMINAL_VAR: u32 = u32::MAX;

/// Sentinel variable index poisoning a reclaimed arena slot. A slot with
/// this variable is on the free list (or awaiting recovery after a lost
/// publication race): it is never reachable from a live [`Ref`], never
/// listed in the unique table, and is overwritten on reuse.
pub(crate) const FREE_VAR: u32 = u32::MAX - 1;

/// Smallest bucket array [`NodeStore::with_capacity`] will allocate.
pub(crate) const MIN_BUCKETS: usize = 1 << 8;

/// Best-effort prefetch of the cache line holding `*p` (x86_64 only; a
/// no-op elsewhere). Unique-table probes use it to overlap the *next*
/// probe slot's node fetch with the current slot's key comparison — on a
/// collision chain the bucket words share a line but the arena nodes they
/// name do not.
#[inline(always)]
pub(crate) fn prefetch<T>(p: *const T) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: prefetch is a pure performance hint with no memory effects;
    // the CPU ignores addresses it cannot fetch.
    unsafe {
        core::arch::x86_64::_mm_prefetch(p as *const i8, core::arch::x86_64::_MM_HINT_T0);
    }
    #[cfg(not(target_arch = "x86_64"))]
    let _ = p;
}

/// Multiply-mix of a `(var, low, high)` triple — the unique-table hash.
#[inline(always)]
pub(crate) fn triple_hash(a: u32, b: u32, c: u32) -> u64 {
    let x = ((a as u64) << 32 | b as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let y = (c as u64 ^ 0xD1B5_4A32_D192_ED03).wrapping_mul(0xA24B_AED4_963E_E407);
    let mut h = x ^ y;
    h ^= h >> 29;
    h = h.wrapping_mul(0xBF58_476D_1CE4_E5B9);
    h ^ (h >> 32)
}

// ------------------------------------------------------- shared (L2) cache

/// Index bits of the shared computed cache: `2^15` entries × 16 bytes =
/// 512 KiB per store. Fixed-size and lossy by design — a collision simply
/// overwrites, and a miss costs one sequential recursion step.
const SHARED_CACHE_BITS: u32 = 15;

/// Bits of the 96-bit key-mix *remainder* kept in the tag word; the rest
/// (`96 - SHARED_CACHE_BITS - 53` bits) live in the payload word. Between
/// the entry's position (the index bits) and the two stored fragments,
/// every one of the 96 key bits is represented, so a full tag + remainder
/// match is a proof of key equality, not a probabilistic guess.
const SHARED_REM_LO_BITS: u32 = 53;
const SHARED_REM_LO_MASK: u64 = (1 << SHARED_REM_LO_BITS) - 1;
/// Tag-word layout: `[epoch:8][op:3][rem_lo:53]`. Published tags always
/// carry a nonzero 3-bit op code, so the all-zero word doubles as the
/// empty sentinel and op-field-zero values are free for the claim state.
const SHARED_OP_SHIFT: u32 = 53;
const SHARED_EPOCH_SHIFT: u32 = 56;
/// Claim sentinel: op field zero, distinct from the empty word. A writer
/// parks the tag here between its two payload/tag publication stores so
/// no reader can match the entry mid-update.
const SHARED_BUSY: u64 = 1;

/// 96-bit modulus mask for the shared-cache key mix.
const MIX_MASK: u128 = (1u128 << 96) - 1;
/// Odd multipliers of the invertible key mix, plus an op salt. Oddness
/// makes the multiplications bijective modulo 2^96, and `z ^= z >> 48`
/// is an involution on 96-bit words, so the whole mix is a permutation
/// of the key space: equal mixes imply equal `(op, a, b, c)` keys.
const MIX_C1: u128 = 0xD2B7_4407_B1CE_6E93_9E37_79B9_7F4A_7C15 & MIX_MASK;
const MIX_C2: u128 = 0xCA5A_8263_93B8_5156_58C9_16DE_5A8D_F8E7 & MIX_MASK;
const MIX_OP_SALT: u128 = 0xA24B_AED4_963E_E407_D1B5_4A32_D192_ED03 & MIX_MASK;
const MIX_C1_INV: u128 = mul_inverse_pow96(MIX_C1);
const MIX_C2_INV: u128 = mul_inverse_pow96(MIX_C2);

/// Multiplicative inverse of an odd constant modulo 2^96 (Newton
/// iteration; each round doubles the number of correct low bits, and an
/// odd `c` is its own inverse modulo 8).
const fn mul_inverse_pow96(c: u128) -> u128 {
    let mut x = c;
    let mut i = 0;
    while i < 6 {
        x = x.wrapping_mul(2u128.wrapping_sub(c.wrapping_mul(x))) & MIX_MASK;
        i += 1;
    }
    x
}

/// The invertible 96-bit mix of a shared-cache key. Invertibility is the
/// point: the cache stores only mixed bits, and [`shared_unmix`] recovers
/// the exact operands for the quiescent GC scrub.
#[inline(always)]
fn shared_mix(op: u64, a: u32, b: u32, c: u32) -> u128 {
    let mut z = (a as u128) | ((b as u128) << 32) | ((c as u128) << 64);
    z ^= (op as u128).wrapping_mul(MIX_OP_SALT) & MIX_MASK;
    z = z.wrapping_mul(MIX_C1) & MIX_MASK;
    z ^= z >> 48;
    z = z.wrapping_mul(MIX_C2) & MIX_MASK;
    z ^= z >> 48;
    z
}

/// Exact inverse of [`shared_mix`] for a known op code.
fn shared_unmix(op: u64, z: u128) -> (u32, u32, u32) {
    let mut z = z ^ (z >> 48);
    z = z.wrapping_mul(MIX_C2_INV) & MIX_MASK;
    z ^= z >> 48;
    z = z.wrapping_mul(MIX_C1_INV) & MIX_MASK;
    z ^= (op as u128).wrapping_mul(MIX_OP_SALT) & MIX_MASK;
    (z as u32, (z >> 32) as u32, (z >> 64) as u32)
}

/// One shared-cache entry: a packed `2 × AtomicU64` pair.
///
/// * `tag_word` — `[epoch:8][op:3][rem_lo:53]`; all-zero = empty,
///   op-field-zero nonzero values = claimed (mid-publication).
/// * `payload_word` — `[rem_hi:32][result:32]` (the raw result `Ref`).
#[derive(Debug)]
struct SharedEntry {
    tag_word: AtomicU64,
    payload_word: AtomicU64,
}

/// The shared, lossy, fixed-size operation cache (the concurrent L2
/// behind every session's private L1).
///
/// Readers are wait-free and writers lock-free: publication claims the
/// tag word with a CAS to the [`SHARED_BUSY`] sentinel, `Release`-stores
/// the payload, then `Release`-stores the final tag; lookups
/// `Acquire`-load tag and payload and re-read the tag, so a read torn by
/// a concurrent publication is a detected miss, never a wrong function
/// (the full argument lives on [`SharedCache::lookup`]).
///
/// Clearing is O(1): bump the 8-bit epoch stamped into every tag (stale
/// epochs simply stop matching), with a full wipe every 256 bumps when
/// the stamp would alias. Both the clear and the GC scrub mutate through
/// `&mut`/`get_mut` at the same stop-the-world quiescent points as
/// collection and sifting.
#[derive(Debug)]
pub struct SharedCache {
    slots: Box<[SharedEntry]>,
    mask: u64,
    bits: u32,
    /// Monotone clear counter; only the low 8 bits are stamped into tags.
    epoch: AtomicU64,
}

impl SharedCache {
    fn with_bits(bits: u32) -> SharedCache {
        // The tag + payload store 53 + 32 = 85 remainder bits, so the
        // index must consume at least 96 - 85 = 11 — below that, two
        // distinct keys could alias one entry and a hit could name the
        // wrong function.
        assert!((11..=28).contains(&bits), "shared cache bits out of range");
        let n = 1usize << bits;
        let mut slots = Vec::with_capacity(n);
        slots.resize_with(n, || SharedEntry {
            tag_word: AtomicU64::new(0),
            payload_word: AtomicU64::new(0),
        });
        SharedCache {
            slots: slots.into_boxed_slice(),
            mask: (n - 1) as u64,
            bits,
            epoch: AtomicU64::new(0),
        }
    }

    /// Entry count (telemetry).
    pub(crate) fn len(&self) -> usize {
        self.slots.len()
    }

    /// Index, tag word and payload remainder for a key under the current
    /// epoch.
    #[inline(always)]
    fn locate(&self, op: u64, a: u32, b: u32, c: u32) -> (usize, u64, u32) {
        debug_assert!(
            op != 0 && op < 8,
            "shared-cache op codes are 3 nonzero bits"
        );
        let z = shared_mix(op, a, b, c);
        let idx = (z as u64 & self.mask) as usize;
        let rem = z >> self.bits;
        // ordering: (load) Relaxed — the epoch only changes at quiescent
        // points, where `&mut` access orders it before any shared region.
        let epoch = self.epoch.load(Ordering::Relaxed) & 0xFF;
        let tag = (epoch << SHARED_EPOCH_SHIFT)
            | (op << SHARED_OP_SHIFT)
            | (rem as u64 & SHARED_REM_LO_MASK);
        (idx, tag, (rem >> SHARED_REM_LO_BITS) as u32)
    }

    /// Wait-free lookup. A hit proves the entry was published for exactly
    /// this `(op, a, b, c)` key in the current epoch:
    ///
    /// * the tag is `Acquire`-loaded and compared whole (epoch, op and 53
    ///   remainder bits), the payload is `Acquire`-loaded, and its high
    ///   32 remainder bits are compared too — together with the index
    ///   that covers all 96 bits of the invertible key mix, so there is
    ///   no aliasing between distinct keys;
    /// * the tag re-read detects torn interleavings: a concurrent
    ///   publication parks the tag on [`SHARED_BUSY`] *before* its
    ///   `Release` payload store, and our `Acquire` payload load
    ///   synchronizes with that store, so if the payload we read belongs
    ///   to a different publication than the tag, the re-read observes
    ///   the claim (or the later tag) instead of our tag and the lookup
    ///   misses. A stale-payload tear is impossible the other way around
    ///   because the tag is published last.
    pub(crate) fn lookup(&self, op: u64, a: u32, b: u32, c: u32) -> Option<Ref> {
        let (idx, tag, rem_hi) = self.locate(op, a, b, c);
        let e = &self.slots[idx];
        // ordering: (load) Acquire — pairs with the Release tag store in
        // `publish`, making the payload store before it visible.
        let t = e.tag_word.load(Ordering::Acquire);
        if t != tag {
            return None;
        }
        // ordering: (load) Acquire — pairs with the Release payload store
        // in `publish`; if this payload is newer than the tag above, the
        // publisher's earlier claim CAS is now visible to the re-read.
        let p = e.payload_word.load(Ordering::Acquire);
        // ordering: (load) Relaxed — pure tear detector: coherence alone
        // guarantees this read sees the claim sentinel (or a later tag)
        // if the payload came from a newer publication.
        if e.tag_word.load(Ordering::Relaxed) != t {
            return None;
        }
        if (p >> 32) as u32 != rem_hi {
            return None;
        }
        Some(Ref::from_raw(p as u32))
    }

    /// Lock-free, lossy publication. Losing the claim race (or finding
    /// the entry mid-publication) just drops the insert — the result is
    /// recomputable, and a bounded cache sheds load under contention
    /// instead of serializing on it.
    pub(crate) fn publish(&self, op: u64, a: u32, b: u32, c: u32, result: Ref) {
        let (idx, tag, rem_hi) = self.locate(op, a, b, c);
        let e = &self.slots[idx];
        let payload = ((rem_hi as u64) << 32) | result.raw() as u64;
        // ordering: (load) Relaxed — advisory peek; a racing writer makes
        // the CAS below fail anyway.
        let cur = e.tag_word.load(Ordering::Relaxed);
        if cur == SHARED_BUSY {
            return;
        }
        // ordering: Relaxed — the claim CAS on tag_word only arbitrates
        // which writer owns the entry; it publishes nothing (readers can
        // never match the BUSY sentinel), and the payload/tag stores
        // below carry their own Release edges.
        if e.tag_word
            .compare_exchange(cur, SHARED_BUSY, Ordering::Relaxed, Ordering::Relaxed)
            .is_err()
        {
            return;
        }
        // ordering: Release on payload_word — readers Acquire-load the
        // payload, which (a) orders this write with the final tag store
        // for ordinary hits and (b) makes the claim CAS above visible to
        // a reader holding a stale tag, so its tag re-read detects the
        // tear instead of pairing our payload with the old tag.
        e.payload_word.store(payload, Ordering::Release);
        // ordering: Release on tag_word — publishes the payload store:
        // any reader that Acquire-loads this tag observes the payload it
        // belongs to. Tag-last is what makes a matching tag mean "fully
        // published".
        e.tag_word.store(tag, Ordering::Release);
    }

    /// O(1) epoch clear (quiescent-only): stale epochs stop matching
    /// instantly; the table is physically wiped only when the 8-bit
    /// stamp would wrap onto a value still present in old tags.
    pub(crate) fn clear(&mut self) {
        let epoch = self.epoch.get_mut();
        *epoch = epoch.wrapping_add(1);
        if *epoch & 0xFF == 0 {
            for e in self.slots.iter_mut() {
                *e.tag_word.get_mut() = 0;
                *e.payload_word.get_mut() = 0;
            }
        }
    }

    /// Quiescent GC scrub: decode every current-epoch entry back to its
    /// exact operands (the mix is invertible) and drop the ones naming a
    /// reclaimed slot; stale-epoch and claim-parked leftovers are dropped
    /// too. The surviving memo stays warm across collections, exactly
    /// like the per-session L1 scrub.
    pub(crate) fn scrub<F: Fn(u32) -> bool>(&mut self, live: F) {
        let epoch = *self.epoch.get_mut() & 0xFF;
        for i in 0..self.slots.len() {
            let t = *self.slots[i].tag_word.get_mut();
            if t == 0 {
                continue;
            }
            let p = *self.slots[i].payload_word.get_mut();
            let op = (t >> SHARED_OP_SHIFT) & 0x7;
            let keep = op != 0 && (t >> SHARED_EPOCH_SHIFT) == epoch && {
                let rem = ((t & SHARED_REM_LO_MASK) as u128)
                    | (((p >> 32) as u128) << SHARED_REM_LO_BITS);
                let z = (i as u128) | (rem << self.bits);
                let (a, b, c) = shared_unmix(op, z);
                // A raw edge's slot index is its raw word sans sign bit;
                // slot 0 (the terminal) is always live.
                let ok = |raw: u32| {
                    let slot = raw >> 1;
                    slot == 0 || live(slot)
                };
                ok(a) && ok(b) && ok(c) && ok(p as u32)
            };
            if !keep {
                *self.slots[i].tag_word.get_mut() = 0;
                *self.slots[i].payload_word.get_mut() = 0;
            }
        }
    }
}

/// A stored BDD node: the Shannon expansion of a function with respect to
/// its top variable.
///
/// Invariants maintained by the kernel:
/// * `high` (the 1-edge) is never complemented;
/// * `low != high`;
/// * the top variables of `low` and `high` sit at strictly deeper
///   *levels* than `var` (in the current `var2level` order).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Node {
    /// Decision variable *index* (its identity). The variable's current
    /// position in the order is `var2level`; the two coincide only until
    /// the first reordering.
    pub var: Var,
    /// Negative (0-edge) cofactor; may be complemented.
    pub low: Ref,
    /// Positive (1-edge) cofactor; always regular.
    pub high: Ref,
}

/// One arena slot: the three node words as atomics so a shared region
/// can write a claimed slot's fields before publishing it. Outside
/// publication the fields are plain data — `&mut` code reads and writes
/// them through `get_mut`, and shared readers only ever see slots whose
/// publication they observed through an `Acquire` bucket load.
#[derive(Debug)]
struct NodeCell {
    var: AtomicU32,
    low: AtomicU32,
    high: AtomicU32,
}

impl NodeCell {
    fn empty() -> NodeCell {
        NodeCell {
            var: AtomicU32::new(FREE_VAR),
            low: AtomicU32::new(Ref::ONE.raw()),
            high: AtomicU32::new(Ref::ONE.raw()),
        }
    }
}

/// A shared kernel region ran out of arena slots or unique-table
/// headroom. Growth needs `&mut NodeStore`, so the region unwinds (the
/// manager façade maps this to `LimitKind::TableFull`, grows at the next
/// quiescent point and retries).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct StoreFull;

/// The shared, `Sync` node store: arena, unique table, interior
/// refcounts, variable order and per-variable slot lists.
///
/// See the module docs for the shared-vs-quiescent access contract and
/// the crate-level "Concurrency contract" for how sessions cooperate.
#[derive(Debug)]
pub struct NodeStore {
    /// The node arena. Fixed capacity between `&mut` growths; the
    /// initialized prefix is `next`.
    cells: Box<[NodeCell]>,
    /// Arena length (high-water mark of claimed slots).
    next: AtomicU32,
    /// Interior reference count per arena slot: the number of *arena
    /// edges* into the slot. Incremented atomically by publication,
    /// maintained plainly by the quiescent rewrite/reclaim paths, and
    /// audited against a full recount in debug builds.
    int_refs: Box<[AtomicU32]>,
    /// External reference count per arena slot (collection roots).
    /// Quiescent-only.
    pub(crate) refs: Vec<u32>,
    /// Position of each slot inside its `var_nodes[var]` list.
    /// Quiescent-only.
    pub(crate) var_pos: Vec<u32>,
    /// Reclaimed arena slots awaiting reuse (LIFO). Contents are frozen
    /// during shared regions; the live length is `free_top`.
    pub(crate) free: Vec<u32>,
    /// Atomic stack pointer into `free` (shared claims CAS-decrement it).
    free_top: AtomicU32,
    /// Slots poisoned after losing a publication race, not yet recovered
    /// onto the free list by a sweep.
    abandoned: AtomicU32,
    /// Open-addressed unique table (bucket => node index, 0 = empty).
    buckets: Box<[AtomicU32]>,
    bucket_mask: usize,
    occupied: AtomicUsize,
    /// Nodes created since the last collection attempt (gates
    /// `maybe_collect`).
    allocs_since_gc: AtomicUsize,
    /// Extra sessions currently running shared kernel regions against
    /// this store (the manager's own session is not counted). Growth,
    /// GC and sifting assert this is zero — they are stop-the-world.
    sessions_out: AtomicUsize,
    /// The shared lossy computed cache (L2) probed by every session on a
    /// private-cache miss. Shared regions use its wait-free/lock-free
    /// entry points; clears and scrubs are quiescent-only.
    shared: SharedCache,
    num_vars: u32,
    /// Position of each variable in the decision order
    /// (`var2level[var] = level`; always a permutation of `0..num_vars`).
    pub(crate) var2level: Vec<u32>,
    /// Inverse of `var2level` (`level2var[level] = var`).
    pub(crate) level2var: Vec<u32>,
    /// Exact per-variable slot lists. Quiescent-only: kernels log their
    /// publications per session and the manager folds the logs in.
    pub(crate) var_nodes: Vec<Vec<u32>>,
    var_names: Vec<Option<String>>,
}

impl NodeStore {
    /// A store pre-sized for `nodes` arena slots, containing only the
    /// terminal node.
    pub(crate) fn with_capacity(nodes: usize) -> NodeStore {
        let cap = nodes.max(16);
        let buckets = (nodes.max(8) * 4 / 3 + 1)
            .next_power_of_two()
            .max(MIN_BUCKETS);
        let mut cells = Vec::with_capacity(cap);
        cells.resize_with(cap, NodeCell::empty);
        *cells[0].var.get_mut() = TERMINAL_VAR;
        let mut int_refs = Vec::with_capacity(cap);
        int_refs.resize_with(cap, || AtomicU32::new(0));
        let mut bucket_vec = Vec::with_capacity(buckets);
        bucket_vec.resize_with(buckets, || AtomicU32::new(0));
        NodeStore {
            cells: cells.into_boxed_slice(),
            next: AtomicU32::new(1),
            int_refs: int_refs.into_boxed_slice(),
            refs: vec![0u32; 1],
            var_pos: vec![0u32; 1],
            free: Vec::new(),
            free_top: AtomicU32::new(0),
            abandoned: AtomicU32::new(0),
            buckets: bucket_vec.into_boxed_slice(),
            bucket_mask: buckets - 1,
            occupied: AtomicUsize::new(0),
            allocs_since_gc: AtomicUsize::new(0),
            sessions_out: AtomicUsize::new(0),
            shared: SharedCache::with_bits(SHARED_CACHE_BITS),
            num_vars: 0,
            var2level: Vec::new(),
            level2var: Vec::new(),
            var_nodes: Vec::new(),
            var_names: Vec::new(),
        }
    }

    // ------------------------------------------------------------- sizes

    /// Current arena size in slots, including the terminal and reclaimed
    /// slots awaiting reuse.
    #[inline(always)]
    pub fn num_nodes(&self) -> usize {
        // ordering: Relaxed — a monotone counter; exact at quiescent
        // points, momentarily approximate (only ever low) mid-region.
        self.next.load(Ordering::Relaxed) as usize
    }

    /// Number of live nodes (arena slots currently holding a node,
    /// including the terminal; excludes free and abandoned slots).
    #[inline(always)]
    pub fn live_nodes(&self) -> usize {
        // ordering: Relaxed — the three counters race individually, so
        // mid-region this is an estimate (used only by governance ticks);
        // at quiescent points every term is exact.
        let next = self.next.load(Ordering::Relaxed) as usize;
        let free = self.free_top.load(Ordering::Relaxed) as usize;
        let abandoned = self.abandoned.load(Ordering::Relaxed) as usize;
        next.saturating_sub(free + abandoned)
    }

    /// Arena slots known reclaimed: the free stack plus race-abandoned
    /// slots awaiting recovery by the next sweep.
    pub(crate) fn free_nodes(&self) -> usize {
        // ordering: Relaxed — quiescent-point reporting.
        self.free_top.load(Ordering::Relaxed) as usize
            + self.abandoned.load(Ordering::Relaxed) as usize
    }

    /// Unique-table bucket count.
    pub(crate) fn buckets_len(&self) -> usize {
        self.buckets.len()
    }

    /// Unique-table entries (live arena nodes listed in a bucket).
    pub(crate) fn occupied(&self) -> usize {
        // ordering: Relaxed — exact at quiescent points.
        self.occupied.load(Ordering::Relaxed)
    }

    /// Nodes created since the last collection attempt.
    pub(crate) fn allocs_since_gc(&self) -> usize {
        // ordering: Relaxed — GC gating heuristic only.
        self.allocs_since_gc.load(Ordering::Relaxed)
    }

    pub(crate) fn reset_allocs_since_gc(&mut self) {
        *self.allocs_since_gc.get_mut() = 0;
    }

    // --------------------------------------------------- sessions / stop

    /// Registers `extra` additional sessions about to run shared kernel
    /// regions (the parallel apply's workers).
    pub(crate) fn begin_shared(&self, extra: usize) {
        // ordering: Relaxed — the count only gates quiescent-point
        // assertions; worker data handoff synchronizes via spawn/join.
        self.sessions_out.fetch_add(extra, Ordering::Relaxed);
    }

    /// Deregisters `extra` sessions after their threads joined.
    pub(crate) fn end_shared(&self, extra: usize) {
        // ordering: Relaxed — see begin_shared.
        self.sessions_out.fetch_sub(extra, Ordering::Relaxed);
    }

    /// Extra sessions currently outstanding (0 at every quiescent point).
    pub fn sessions_outstanding(&self) -> usize {
        // ordering: Relaxed — diagnostic / assertion read.
        self.sessions_out.load(Ordering::Relaxed)
    }

    /// Asserts the store is quiescent (no extra sessions outstanding) —
    /// the precondition of growth, collection and sifting, which mutate
    /// state shared regions read without synchronization.
    #[inline]
    pub(crate) fn assert_quiescent(&self, what: &str) {
        assert_eq!(
            self.sessions_outstanding(),
            0,
            "{what} requires a quiescent store (stop-the-world): \
             parallel sessions are still outstanding"
        );
    }

    // ------------------------------------------------------- shared cache

    /// The shared (L2) computed cache. Safe under shared regions: every
    /// `&self` entry point is wait-free or lock-free.
    #[inline(always)]
    pub(crate) fn shared_cache(&self) -> &SharedCache {
        &self.shared
    }

    /// Mutable access to the shared cache for quiescent clears/scrubs.
    pub(crate) fn shared_cache_mut(&mut self) -> &mut SharedCache {
        &mut self.shared
    }

    // ------------------------------------------------------ order / vars

    /// Registers `index` (and any gap below it) in the order maps; new
    /// variables are appended at the deepest levels in index order.
    /// Quiescent-only (kernels never introduce variables).
    pub(crate) fn ensure_var(&mut self, index: u32) {
        if index < self.num_vars {
            return;
        }
        self.num_vars = index + 1;
        while (self.var2level.len() as u32) < self.num_vars {
            let next = self.var2level.len() as u32;
            self.var2level.push(next);
            self.level2var.push(next);
            self.var_nodes.push(Vec::new());
        }
    }

    /// Number of variables known to the store.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Level of a variable index; `u32::MAX` for the terminal/free
    /// sentinels and for variables the store has never seen.
    #[inline(always)]
    pub(crate) fn var_level(&self, var: u32) -> u32 {
        match self.var2level.get(var as usize) {
            Some(&l) => l,
            None => u32::MAX,
        }
    }

    /// The variable currently sitting at `level`.
    #[inline(always)]
    pub(crate) fn var_at_level(&self, level: u32) -> Var {
        Var(self.level2var[level as usize])
    }

    pub(crate) fn set_var_name(&mut self, index: u32, name: String) {
        let idx = index as usize;
        if self.var_names.len() <= idx {
            self.var_names.resize(idx + 1, None);
        }
        self.var_names[idx] = Some(name);
    }

    pub(crate) fn var_name(&self, index: u32) -> String {
        self.var_names
            .get(index as usize)
            .and_then(|n| n.clone())
            .unwrap_or_else(|| format!("x{index}"))
    }

    // ------------------------------------------------------ node reading

    /// Raw variable word of an arena slot (sentinels included).
    #[inline(always)]
    pub(crate) fn var_of(&self, i: usize) -> u32 {
        // ordering: Relaxed — the slot's publication was observed through
        // an Acquire bucket load (shared readers) or program order
        // (quiescent readers), either of which orders these field writes.
        self.cells[i].var.load(Ordering::Relaxed)
    }

    /// Snapshot of a stored node by arena slot. The caller must hold a
    /// slot index it observed through publication (a `Ref`, a bucket
    /// probe, or quiescent iteration) — never a guess.
    #[inline(always)]
    pub(crate) fn node(&self, i: usize) -> Node {
        let c = &self.cells[i];
        // ordering: Relaxed — see var_of: visibility of the three field
        // writes is ordered by the Release publication CAS the reader's
        // Acquire (or quiescence) observed.
        Node {
            var: Var(c.var.load(Ordering::Relaxed)),
            low: Ref::from_raw(c.low.load(Ordering::Relaxed)),
            high: Ref::from_raw(c.high.load(Ordering::Relaxed)),
        }
    }

    /// Level of an edge's top node in the current variable order:
    /// constants (and the poisoned/unregistered sentinels) report
    /// `u32::MAX`, the pseudo-level below every real one.
    #[inline(always)]
    pub(crate) fn level(&self, f: Ref) -> u32 {
        self.var_level(self.var_of(f.node().index()))
    }

    /// The decision variable of an edge's top node; `None` for constants.
    pub(crate) fn top_var(&self, f: Ref) -> Option<Var> {
        if f.is_const() {
            None
        } else {
            Some(Var(self.var_of(f.node().index())))
        }
    }

    /// Cofactors `f` with respect to variable `v` assumed to be at or
    /// above `f`'s top level: returns `(f|v=0, f|v=1)`. Comparing the
    /// stored top variable covers the constant case too (the terminal's
    /// sentinel never equals a real variable), so there is no separate
    /// terminal branch.
    #[inline(always)]
    pub(crate) fn shallow_cofactors(&self, f: Ref, v: Var) -> (Ref, Ref) {
        let n = self.node(f.node().index());
        if n.var != v {
            (f, f)
        } else {
            let c = f.is_complemented();
            (n.low.xor_complement(c), n.high.xor_complement(c))
        }
    }

    /// Interior reference count of a slot.
    #[inline(always)]
    pub(crate) fn int_ref(&self, i: usize) -> u32 {
        // ordering: Relaxed — exact at quiescent points; shared regions
        // only ever increment.
        self.int_refs[i].load(Ordering::Relaxed)
    }

    /// Quiescent-point mutable access to a slot's interior count.
    #[inline(always)]
    pub(crate) fn int_ref_mut(&mut self, i: usize) -> &mut u32 {
        self.int_refs[i].get_mut()
    }

    // -------------------------------------------------- node publication

    /// Claims an unclaimed arena slot: the frozen free stack first
    /// (CAS-decrement of the atomic stack pointer), then the arena
    /// high-water mark (CAS increment). Errs when the arena is out of
    /// capacity — growth needs a quiescent `&mut`.
    fn claim_slot(&self) -> Result<u32, StoreFull> {
        // ordering: Relaxed on both CAS loops — they only arbitrate
        // *which* thread takes which index; the free stack's contents and
        // the arena capacity were frozen before the shared region began,
        // so the happens-before edge is the thread spawn, not the CAS.
        let mut top = self.free_top.load(Ordering::Relaxed);
        while top > 0 {
            match self.free_top.compare_exchange_weak(
                top,
                top - 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => {
                    let slot = self.free[(top - 1) as usize];
                    debug_assert_eq!(self.var_of(slot as usize), FREE_VAR);
                    return Ok(slot);
                }
                Err(now) => top = now,
            }
        }
        let mut next = self.next.load(Ordering::Relaxed);
        loop {
            if next as usize >= self.cells.len() {
                return Err(StoreFull);
            }
            debug_assert!(next < u32::MAX >> 1, "node arena exceeds Ref address space");
            match self.next.compare_exchange_weak(
                next,
                next + 1,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return Ok(next),
                Err(now) => next = now,
            }
        }
    }

    /// Poisons a claimed-but-unpublished slot after a lost publication
    /// race. The slot index is private to this thread (nothing else can
    /// reference it), so the store is unordered; the next sweep's arena
    /// scan recovers the slot onto the free list.
    fn abandon_slot(&self, idx: u32) {
        // ordering: Relaxed — the slot was never published; no other
        // thread holds its index until a quiescent sweep recovers it.
        self.cells[idx as usize]
            .var
            .store(FREE_VAR, Ordering::Relaxed);
        self.cells[idx as usize]
            .low
            .store(Ref::ONE.raw(), Ordering::Relaxed);
        self.cells[idx as usize]
            .high
            .store(Ref::ONE.raw(), Ordering::Relaxed);
        // ordering: Relaxed — a statistics counter reconciled at the next
        // quiescent sweep.
        self.abandoned.fetch_add(1, Ordering::Relaxed);
    }

    /// The concurrent insert-or-get: finds the canonical node for a
    /// regular-`high` triple or publishes a fresh one, lock-free.
    /// Returns the node's `Ref` and whether this call created it (the
    /// caller logs created slots for the quiescent list drain).
    ///
    /// Errs with [`StoreFull`] when the arena is out of capacity or the
    /// unique table is past its shared-region load cap (7/8 — the `&mut`
    /// paths regrow at 3/4, so this is the emergency brake, not the
    /// steady state).
    pub(crate) fn try_mk(&self, var: Var, low: Ref, high: Ref) -> Result<(Ref, bool), StoreFull> {
        debug_assert!(!high.is_complemented());
        debug_assert!(low != high, "reduction rule is the caller's job");
        // Load cap: past 7/8 the probe chains degrade and a concurrent
        // region has no way to grow the table — unwind and let the
        // manager grow at the next quiescent point. The check is racy
        // (Relaxed read) but conservative: a handful of in-flight inserts
        // past the cap still leaves empty buckets, so probes terminate.
        if (self.occupied() + 1) * 8 > self.buckets.len() * 7 {
            return Err(StoreFull);
        }
        let h = triple_hash(var.0, low.raw(), high.raw());
        let mask = self.bucket_mask;
        let mut i = (h as usize) & mask;
        let mut claimed: Option<u32> = None;
        loop {
            // ordering: Acquire — pairs with the Release publication CAS
            // below, so a nonzero index read here implies the slot's
            // field writes are visible.
            let b = self.buckets[i].load(Ordering::Acquire);
            if b == 0 {
                let idx = match claimed {
                    Some(s) => s,
                    None => {
                        let s = self.claim_slot()?;
                        // Write the node fields before publication.
                        // ordering: Relaxed — the publication CAS below
                        // releases these writes; until it succeeds the
                        // slot index is private to this thread.
                        self.cells[s as usize].var.store(var.0, Ordering::Relaxed);
                        self.cells[s as usize]
                            .low
                            .store(low.raw(), Ordering::Relaxed);
                        self.cells[s as usize]
                            .high
                            .store(high.raw(), Ordering::Relaxed);
                        claimed = Some(s);
                        s
                    }
                };
                // ordering: Release on success publishes the slot's field
                // writes to every prober that Acquire-loads this bucket;
                // Acquire on failure so the winner's fields are readable
                // for the re-check below.
                match self.buckets[i].compare_exchange(0, idx, Ordering::Release, Ordering::Acquire)
                {
                    Ok(_) => {
                        // Won the race: the node is live. Its edges are
                        // arena edges — count them now (after publication
                        // is fine: reconciliation only happens at
                        // quiescent points, and concurrent readers never
                        // consult interior counts).
                        for c in [low, high] {
                            let ci = c.node().index();
                            if ci != 0 {
                                // ordering: Relaxed — atomicity is all
                                // that is needed; counts are read only at
                                // quiescent points.
                                self.int_refs[ci].fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        // ordering: Relaxed — heuristic counters (load
                        // factor, GC gating), reconciled at quiescence.
                        self.occupied.fetch_add(1, Ordering::Relaxed);
                        self.allocs_since_gc.fetch_add(1, Ordering::Relaxed);
                        return Ok((Ref::new(NodeId(idx), false), true));
                    }
                    Err(winner) => {
                        // Lost: someone published into this bucket first.
                        // If they published *our* triple, adopt theirs.
                        let n = self.node(winner as usize);
                        if n.var == var && n.low == low && n.high == high {
                            self.abandon_slot(idx);
                            return Ok((Ref::new(NodeId(winner), false), false));
                        }
                        // Different triple: keep our claimed slot and
                        // continue probing past the now-occupied bucket.
                        i = (i + 1) & mask;
                        continue;
                    }
                }
            }
            // Overlap the next probe's node fetch with this comparison:
            // the next bucket word is (almost always) in the line already
            // loaded, but the arena node it names is not.
            // ordering: Relaxed — purely a prefetch hint; the index is
            // re-read with Acquire if the probe actually advances.
            let next = self.buckets[(i + 1) & mask].load(Ordering::Relaxed);
            if next != 0 {
                prefetch(&self.cells[next as usize]);
            }
            let n = self.node(b as usize);
            if n.var == var && n.low == low && n.high == high {
                if let Some(s) = claimed {
                    self.abandon_slot(s);
                }
                return Ok((Ref::new(NodeId(b), false), false));
            }
            i = (i + 1) & mask;
        }
    }

    // ------------------------------------------------ quiescent mutation

    /// Arena headroom check for the `&mut` grow-ahead paths.
    pub(crate) fn arena_full(&self) -> bool {
        self.num_nodes() + 1 >= self.cells.len() && self.free_top.load(Ordering::Relaxed) == 0
    }

    /// Doubles the arena capacity (slots beyond the high-water mark stay
    /// unclaimed). Quiescent-only.
    pub(crate) fn grow_arena(&mut self) {
        self.assert_quiescent("arena growth");
        let new_cap = (self.cells.len() * 2).max(16);
        let mut cells = Vec::with_capacity(new_cap);
        for c in self.cells.iter_mut() {
            let (v, l, h) = (*c.var.get_mut(), *c.low.get_mut(), *c.high.get_mut());
            cells.push(NodeCell {
                var: AtomicU32::new(v),
                low: AtomicU32::new(l),
                high: AtomicU32::new(h),
            });
        }
        cells.resize_with(new_cap, NodeCell::empty);
        self.cells = cells.into_boxed_slice();
        let mut int_refs = Vec::with_capacity(new_cap);
        for r in self.int_refs.iter_mut() {
            int_refs.push(AtomicU32::new(*r.get_mut()));
        }
        int_refs.resize_with(new_cap, || AtomicU32::new(0));
        self.int_refs = int_refs.into_boxed_slice();
    }

    /// Grows the arena until it holds at least `nodes` slots.
    /// Quiescent-only (via [`NodeStore::grow_arena`]).
    pub(crate) fn ensure_arena_capacity(&mut self, nodes: usize) {
        while self.cells.len() < nodes {
            self.grow_arena();
        }
    }

    /// Rebuilds the bucket array at `new_len` (a power of two) by
    /// re-inserting every live arena node; reclaimed slots are skipped.
    /// Quiescent-only.
    pub(crate) fn grow_buckets_to(&mut self, new_len: usize) {
        debug_assert!(new_len.is_power_of_two());
        self.assert_quiescent("unique-table growth");
        let mask = new_len - 1;
        let mut buckets = vec![0u32; new_len];
        let n = self.num_nodes();
        for idx in 1..n {
            let node = self.node(idx);
            if node.var.0 == FREE_VAR {
                continue;
            }
            let mut i = (triple_hash(node.var.0, node.low.raw(), node.high.raw()) as usize) & mask;
            while buckets[i] != 0 {
                i = (i + 1) & mask;
            }
            buckets[i] = idx as u32;
        }
        self.buckets = buckets
            .into_iter()
            .map(AtomicU32::new)
            .collect::<Vec<_>>()
            .into_boxed_slice();
        self.bucket_mask = mask;
    }

    /// Re-syncs the plain-side bookkeeping after shared kernel regions:
    /// truncates the free stack to its atomic pointer and extends the
    /// external-count and list-position arrays over newly claimed slots.
    /// Every quiescent point passes through here before touching lists.
    pub(crate) fn sync_lengths(&mut self) {
        let top = *self.free_top.get_mut() as usize;
        self.free.truncate(top);
        let n = *self.next.get_mut() as usize;
        if self.refs.len() < n {
            self.refs.resize(n, 0);
        }
        if self.var_pos.len() < n {
            self.var_pos.resize(n, 0);
        }
    }

    /// Overwrites a slot's node words. Quiescent-only (level swaps).
    pub(crate) fn set_node(&mut self, i: usize, n: Node) {
        *self.cells[i].var.get_mut() = n.var.0;
        *self.cells[i].low.get_mut() = n.low.raw();
        *self.cells[i].high.get_mut() = n.high.raw();
    }

    /// Overwrites just a slot's variable word (the swap rewrite parks
    /// slots on `FREE_VAR` mid-flight). Quiescent-only.
    pub(crate) fn set_var_of(&mut self, i: usize, var: u32) {
        *self.cells[i].var.get_mut() = var;
    }

    /// Poisons a reclaimed slot and pushes it onto the free stack
    /// (keeping the stack pointer in step). Quiescent-only; the caller
    /// has already detached the slot from the table and lists.
    pub(crate) fn free_push(&mut self, slot: u32) {
        self.set_node(
            slot as usize,
            Node {
                var: Var(FREE_VAR),
                low: Ref::ONE,
                high: Ref::ONE,
            },
        );
        debug_assert_eq!(self.free.len(), *self.free_top.get_mut() as usize);
        self.free.push(slot);
        *self.free_top.get_mut() += 1;
    }

    /// Rebuilds the free stack from a full arena scan (recovering slots
    /// abandoned by lost publication races) and zeroes the abandoned
    /// count. Quiescent-only; sweeps call this after poisoning.
    pub(crate) fn rebuild_free(&mut self) {
        self.free.clear();
        let n = *self.next.get_mut() as usize;
        for i in 1..n {
            if *self.cells[i].var.get_mut() == FREE_VAR {
                self.free.push(i as u32);
            }
        }
        *self.free_top.get_mut() = self.free.len() as u32;
        *self.abandoned.get_mut() = 0;
    }

    /// Removes one arena slot from the unique table by backward-shift
    /// deletion (no tombstones, so later probes stay one-load-per-step).
    /// `n` is the node content the slot is currently hashed under.
    /// Quiescent-only.
    pub(crate) fn remove_slot(&mut self, idx: u32, n: &Node) {
        let mask = self.bucket_mask;
        let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & mask;
        while *self.buckets[i].get_mut() != idx {
            debug_assert!(
                *self.buckets[i].get_mut() != 0,
                "remove_slot: slot not in the table"
            );
            i = (i + 1) & mask;
        }
        // Shift the rest of the probe cluster back over the hole so no
        // entry becomes unreachable from its ideal bucket.
        let mut hole = i;
        let mut j = (hole + 1) & mask;
        loop {
            let b = *self.buckets[j].get_mut();
            if b == 0 {
                break;
            }
            let nb = self.node(b as usize);
            let ideal = (triple_hash(nb.var.0, nb.low.raw(), nb.high.raw()) as usize) & mask;
            // `b` may move into the hole iff its ideal bucket is not in
            // the (cyclic) open interval (hole, j].
            if (j.wrapping_sub(ideal) & mask) >= (j.wrapping_sub(hole) & mask) {
                *self.buckets[hole].get_mut() = b;
                hole = j;
            }
            j = (j + 1) & mask;
        }
        *self.buckets[hole].get_mut() = 0;
        *self.occupied.get_mut() -= 1;
    }

    /// Inserts an existing arena slot into the unique table (the slot's
    /// triple must not already be present — guaranteed by the level-swap
    /// rewrite, which never recreates an existing function's node).
    /// Quiescent-only.
    pub(crate) fn insert_slot(&mut self, idx: u32) {
        let n = self.node(idx as usize);
        let mut i = (triple_hash(n.var.0, n.low.raw(), n.high.raw()) as usize) & self.bucket_mask;
        loop {
            let b = *self.buckets[i].get_mut();
            if b == 0 {
                break;
            }
            debug_assert!(
                self.node(b as usize) != n,
                "insert_slot: duplicate triple would break canonicity"
            );
            i = (i + 1) & self.bucket_mask;
        }
        *self.buckets[i].get_mut() = idx;
        *self.occupied.get_mut() += 1;
        if *self.occupied.get_mut() * 4 >= self.buckets.len() * 3 {
            self.grow_buckets_to(self.buckets.len() * 2);
        }
    }

    /// Resets the occupancy count after a sweep rebuild (the survivors
    /// were counted by the rebuild itself).
    pub(crate) fn set_occupied(&mut self, n: usize) {
        *self.occupied.get_mut() = n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn try_mk_hash_conses_and_logs_creation() {
        let mut store = NodeStore::with_capacity(16);
        store.ensure_var(0);
        let (a, created) = store.try_mk(Var(0), Ref::ZERO, Ref::ONE).unwrap();
        assert!(created);
        let (b, again) = store.try_mk(Var(0), Ref::ZERO, Ref::ONE).unwrap();
        assert!(!again, "second insert of the same triple is a get");
        assert_eq!(a, b);
        assert_eq!(store.num_nodes(), 2);
        assert_eq!(store.live_nodes(), 2);
    }

    #[test]
    fn try_mk_reports_exhaustion_instead_of_growing() {
        let mut store = NodeStore::with_capacity(4);
        // Capacity floors at 16 slots; fill the arena with distinct
        // single-variable nodes until the claim fails.
        let cap = 16;
        for v in 0..cap as u32 {
            store.ensure_var(v);
        }
        let mut made = 0;
        let mut last = Ref::ONE;
        for v in 0..cap as u32 {
            match store.try_mk(Var(v), Ref::ZERO, Ref::ONE) {
                Ok((r, _)) => {
                    made += 1;
                    last = r;
                }
                Err(StoreFull) => break,
            }
        }
        assert!(made >= cap - 1, "arena admits its capacity minus terminal");
        // A fresh canonical triple over an existing node: refused, not grown.
        assert_eq!(
            store.try_mk(Var(0), Ref::ONE, last).ok().map(|_| ()),
            None,
            "a full arena must refuse, not grow"
        );
        store.grow_arena();
        assert!(
            store.try_mk(Var(0), Ref::ONE, last).is_ok(),
            "quiescent growth restores headroom"
        );
    }

    #[test]
    fn concurrent_publication_stays_canonical() {
        // Hammer one store from several threads creating an overlapping
        // family of triples; every thread must observe identical Refs for
        // identical triples (hash-consing under contention).
        let mut store = NodeStore::with_capacity(4096);
        for v in 0..64u32 {
            store.ensure_var(v);
        }
        let store = &store;
        let results: Vec<Vec<Ref>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    s.spawn(move || {
                        (0..64u32)
                            .map(|v| store.try_mk(Var(v), Ref::ZERO, Ref::ONE).unwrap().0)
                            .collect()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for w in &results[1..] {
            assert_eq!(&results[0], w, "all threads agree on canonical refs");
        }
        // Exactly 64 distinct nodes exist (plus the terminal); racers'
        // abandoned slots are not live.
        assert_eq!(store.live_nodes(), 65);
    }

    #[test]
    fn shared_cache_poisoning_storm_every_hit_is_exact() {
        // Several threads publish and look up an adversarial key family
        // in a deliberately tiny cache, so distinct keys collide on the
        // same slots constantly and claim races / torn interleavings are
        // the common case, not the exception. The invariant under attack:
        // a *hit* must return exactly the value published for that key
        // in the current epoch — a tear, key aliasing, or a stale-epoch
        // survivor would surface some other publication's result (a
        // poisoned L2, which the kernel would memoize as a wrong
        // subresult). Misses are always legal: the cache is lossy.
        // 11 bits is the smallest aliasing-free table (the constructor
        // asserts it): 2048 slots under an 8192-key family keeps every
        // slot multi-tenant.
        let mut cache = SharedCache::with_bits(11);
        assert_eq!(cache.len(), 2048, "smallest aliasing-free table");

        // The result is a pure function of (round, key), so every thread
        // can verify any hit locally without coordination, and a hit
        // carrying an earlier round's value is caught by the same check.
        fn expected(round: u32, op: u64, a: u32, b: u32, c: u32) -> Ref {
            let mix = (op as u32)
                .wrapping_mul(0x9E37_79B9)
                .wrapping_add(a.rotate_left(7))
                .wrapping_add(b.rotate_left(13))
                .wrapping_add(c.rotate_left(19))
                .wrapping_add(round.wrapping_mul(0x85EB_CA6B));
            Ref::from_raw(mix)
        }

        const KEYS: u32 = 8192;
        const PROBES: u32 = 16;
        const THREADS: u32 = 4;
        for round in 0..3u32 {
            let cache_ref = &cache;
            std::thread::scope(|s| {
                for t in 0..THREADS {
                    s.spawn(move || {
                        // Each thread walks the key family from its own
                        // offset, alternating publish and lookup so every
                        // slot sees concurrent writers and readers.
                        for i in 0..KEYS {
                            let k = (i + t * (KEYS / THREADS)) % KEYS;
                            let op = 1 + (k % 7) as u64;
                            let (a, b, c) = (k, k.wrapping_mul(31), k.wrapping_mul(131));
                            cache_ref.publish(op, a, b, c, expected(round, op, a, b, c));
                            for probe in 0..PROBES {
                                let p = (k + probe * 7) % KEYS;
                                let pop = 1 + (p % 7) as u64;
                                let (pa, pb, pc) = (p, p.wrapping_mul(31), p.wrapping_mul(131));
                                if let Some(hit) = cache_ref.lookup(pop, pa, pb, pc) {
                                    assert_eq!(
                                        hit,
                                        expected(round, pop, pa, pb, pc),
                                        "round {round}: poisoned hit for key {p}"
                                    );
                                }
                            }
                        }
                    });
                }
            });
            // Quiescent epoch clear between rounds: everything published
            // above must stop matching, so the next round's hits can only
            // carry next-round values (asserted by `expected(round + 1)`).
            cache.clear();
            for k in 0..KEYS {
                let op = 1 + (k % 7) as u64;
                assert_eq!(
                    cache.lookup(op, k, k.wrapping_mul(31), k.wrapping_mul(131)),
                    None,
                    "stale-epoch entry survived the clear for key {k}"
                );
            }
        }
    }
}
