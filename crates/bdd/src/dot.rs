//! Graphviz DOT export, used to reproduce Fig. 1 of the paper.

use crate::manager::Manager;
use crate::reference::{NodeId, Ref};
use std::collections::HashSet;
use std::fmt::Write as _;

impl Manager {
    /// Renders the DAG rooted at `f` as a Graphviz `digraph`.
    ///
    /// Solid arrows are 1-edges, dashed arrows are 0-edges, and dotted
    /// arrows are complemented 0-edges — matching the legend of Fig. 1 in
    /// the BDS-MAJ paper. Complemented arcs additionally carry a `¬`
    /// label, so the sign of an edge survives renderers that flatten
    /// line styles. Nodes listed in `highlight` are drawn in red
    /// (the paper highlights the non-trivial m-dominator this way).
    pub fn to_dot(&self, f: Ref, highlight: &[NodeId]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let _ = writeln!(out, "  t1 [label=\"1\", shape=box];");
        let root_attrs = if f.is_complemented() {
            "style=dotted, label=\"¬\""
        } else {
            "style=dashed"
        };
        let _ = writeln!(out, "  root [shape=none, label=\"F\"];");
        if f.is_const() {
            let _ = writeln!(out, "  root -> t1 [{root_attrs}];");
            out.push_str("}\n");
            return out;
        }
        let _ = writeln!(out, "  root -> n{} [{root_attrs}];", f.node().0);
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![f.node()];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            let color = if highlight.contains(&id) {
                ", color=red, fontcolor=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"{}];",
                id.0,
                self.var_name(n.var.0),
                color
            );
            let low_attrs = if n.low.is_complemented() {
                "style=dotted, label=\"¬\""
            } else {
                "style=dashed"
            };
            let low_target = if n.low.node().is_terminal() {
                "t1".to_string()
            } else {
                format!("n{}", n.low.node().0)
            };
            let _ = writeln!(out, "  n{} -> {low_target} [{low_attrs}];", id.0);
            let high_target = if n.high.node().is_terminal() {
                "t1".to_string()
            } else {
                format!("n{}", n.high.node().0)
            };
            let _ = writeln!(out, "  n{} -> {high_target} [style=solid];", id.0);
            stack.push(n.low.node());
            stack.push(n.high.node());
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_constant() {
        let m = Manager::new();
        let dot = m.to_dot(Ref::ONE, &[]);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("t1"));
    }

    #[test]
    fn dot_of_majority_mentions_all_variables() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        m.set_var_name(0, "A");
        m.set_var_name(1, "B");
        m.set_var_name(2, "C");
        let f = m.maj(a, b, c);
        let dot = m.to_dot(f, &[c.node()]);
        for name in ["A", "B", "C"] {
            assert!(dot.contains(name), "missing {name} in DOT output");
        }
        assert!(dot.contains("color=red"), "highlighting missing");
        assert!(dot.contains("style=dashed") && dot.contains("style=solid"));
    }

    /// Snapshot of `¬x0`: both the complemented root arc and the
    /// complemented 0-edge to the terminal must render dotted with a `¬`
    /// label, while the 1-edge stays a plain solid arrow.
    #[test]
    fn dot_snapshot_labels_complement_arcs() {
        let mut m = Manager::new();
        let f = !m.var(0);
        let id = f.node().0;
        let expected = format!(
            "digraph bdd {{\n\
             \x20 rankdir=TB;\n\
             \x20 t1 [label=\"1\", shape=box];\n\
             \x20 root [shape=none, label=\"F\"];\n\
             \x20 root -> n{id} [style=dotted, label=\"¬\"];\n\
             \x20 n{id} [label=\"x0\"];\n\
             \x20 n{id} -> t1 [style=dotted, label=\"¬\"];\n\
             \x20 n{id} -> t1 [style=solid];\n\
             }}\n"
        );
        assert_eq!(m.to_dot(f, &[]), expected);
    }

    #[test]
    fn regular_arcs_carry_no_complement_label() {
        let mut m = Manager::new();
        let (a, b) = (m.var(0), m.var(1));
        let f = m.and(a, b);
        let dot = m.to_dot(f, &[]);
        // AND of positive literals: the root arc is regular, so the only
        // complemented arcs are 0-edges into the terminal.
        assert!(!dot.contains("root -> n1 [style=dotted"));
        for line in dot.lines() {
            assert_eq!(
                line.contains("label=\"¬\""),
                line.contains("style=dotted"),
                "¬ label must appear exactly on dotted (complemented) arcs: {line}"
            );
        }
    }
}
