//! Graphviz DOT export, used to reproduce Fig. 1 of the paper.

use crate::manager::Manager;
use crate::reference::{NodeId, Ref};
use std::collections::HashSet;
use std::fmt::Write as _;

impl Manager {
    /// Renders the DAG rooted at `f` as a Graphviz `digraph`.
    ///
    /// Solid arrows are 1-edges, dashed arrows are 0-edges, and dotted
    /// arrows are complemented 0-edges — matching the legend of Fig. 1 in
    /// the BDS-MAJ paper. Nodes listed in `highlight` are drawn in red
    /// (the paper highlights the non-trivial m-dominator this way).
    pub fn to_dot(&self, f: Ref, highlight: &[NodeId]) -> String {
        let mut out = String::from("digraph bdd {\n  rankdir=TB;\n");
        let _ = writeln!(out, "  t1 [label=\"1\", shape=box];");
        let root_style = if f.is_complemented() {
            "dotted"
        } else {
            "dashed"
        };
        let _ = writeln!(out, "  root [shape=none, label=\"F\"];");
        if f.is_const() {
            let _ = writeln!(out, "  root -> t1 [style={root_style}];");
            out.push_str("}\n");
            return out;
        }
        let _ = writeln!(out, "  root -> n{} [style={root_style}];", f.node().0);
        let mut seen: HashSet<NodeId> = HashSet::new();
        let mut stack = vec![f.node()];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.insert(id) {
                continue;
            }
            let n = self.node(id);
            let color = if highlight.contains(&id) {
                ", color=red, fontcolor=red"
            } else {
                ""
            };
            let _ = writeln!(
                out,
                "  n{} [label=\"{}\"{}];",
                id.0,
                self.var_name(n.var.0),
                color
            );
            let low_style = if n.low.is_complemented() {
                "dotted"
            } else {
                "dashed"
            };
            let low_target = if n.low.node().is_terminal() {
                "t1".to_string()
            } else {
                format!("n{}", n.low.node().0)
            };
            let _ = writeln!(out, "  n{} -> {low_target} [style={low_style}];", id.0);
            let high_target = if n.high.node().is_terminal() {
                "t1".to_string()
            } else {
                format!("n{}", n.high.node().0)
            };
            let _ = writeln!(out, "  n{} -> {high_target} [style=solid];", id.0);
            stack.push(n.low.node());
            stack.push(n.high.node());
        }
        out.push_str("}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_of_constant() {
        let m = Manager::new();
        let dot = m.to_dot(Ref::ONE, &[]);
        assert!(dot.contains("digraph"));
        assert!(dot.contains("t1"));
    }

    #[test]
    fn dot_of_majority_mentions_all_variables() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        m.set_var_name(0, "A");
        m.set_var_name(1, "B");
        m.set_var_name(2, "C");
        let f = m.maj(a, b, c);
        let dot = m.to_dot(f, &[c.node()]);
        for name in ["A", "B", "C"] {
            assert!(dot.contains(name), "missing {name} in DOT output");
        }
        assert!(dot.contains("color=red"), "highlighting missing");
        assert!(dot.contains("style=dashed") && dot.contains("style=solid"));
    }
}
