//! Structural and semantic analysis: evaluation, size, support,
//! satisfying-set counting, and the per-node connectivity statistics used by
//! dominator-driven decomposition.
//!
//! All traversals here start from caller-supplied roots and never touch
//! reclaimed arena slots; a [`NodeStats`] snapshot, like any other
//! `Ref`/`NodeId` collection, is invalidated by a garbage collection
//! (compare [`Manager::gc_epoch`] when holding one across collection
//! points). Everything is order-agnostic: evaluation and support index by
//! variable *identity*, not by level, so results are unchanged by
//! reordering (level swaps and sifting preserve each `Ref`'s function,
//! though `size` may of course change — that is the point of sifting).

use crate::hasher::BuildFxHasher;
use crate::manager::Manager;
use crate::reference::{NodeId, Ref, Var};
use std::collections::{HashMap, HashSet};

/// Incoming-edge statistics of one node inside the DAG of a function, as
/// needed by the m-dominator search of BDS-MAJ (§III-B condition (ii)).
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct InDegree {
    /// Incoming 0-edges without the complement attribute.
    pub zero_regular: usize,
    /// Incoming 0-edges carrying the complement attribute.
    pub zero_complemented: usize,
    /// Incoming 1-edges (always regular in this package).
    pub one: usize,
}

impl InDegree {
    /// Total number of incoming edges.
    pub fn total(&self) -> usize {
        self.zero_regular + self.zero_complemented + self.one
    }
}

/// Connectivity statistics for every internal node reachable from a root.
#[derive(Clone, Debug, Default)]
pub struct NodeStats {
    degrees: HashMap<NodeId, InDegree, BuildFxHasher>,
    order: Vec<NodeId>,
}

impl NodeStats {
    /// In-degree record of `id` (zeroed if the node is unknown).
    pub fn in_degree(&self, id: NodeId) -> InDegree {
        self.degrees.get(&id).copied().unwrap_or_default()
    }

    /// The internal nodes reachable from the root, in DFS discovery order
    /// (root first).
    pub fn nodes(&self) -> &[NodeId] {
        &self.order
    }

    /// Number of internal nodes.
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Whether the function had no internal nodes (i.e., was constant).
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }
}

impl Manager {
    /// Evaluates `f` under a total assignment (`assignment[i]` is the value
    /// of variable `i`).
    ///
    /// # Panics
    ///
    /// Panics if the assignment is shorter than a variable index reached
    /// during the walk.
    pub fn eval(&self, f: Ref, assignment: &[bool]) -> bool {
        let mut cur = f;
        loop {
            if cur.is_const() {
                return cur.is_one();
            }
            let n = self.store.node(cur.node().index());
            let c = cur.is_complemented();
            let branch = if assignment[n.var.index()] {
                n.high
            } else {
                n.low
            };
            cur = branch.xor_complement(c);
        }
    }

    /// Number of distinct internal nodes in the DAG rooted at `f`
    /// (the `|F|` size metric used throughout the BDS-MAJ paper;
    /// constants have size 0, a single variable has size 1).
    ///
    /// Uses the manager's visited-stamp scratch instead of a per-call hash
    /// set: reordering calls this in a tight loop.
    pub fn size(&self, f: Ref) -> usize {
        self.shared_size(std::slice::from_ref(&f))
    }

    /// Combined size of several functions counting shared nodes once.
    pub fn shared_size(&self, fs: &[Ref]) -> usize {
        let mut seen = self.session.visited.borrow_mut();
        seen.begin(self.store.num_nodes());
        let mut count = 0usize;
        let mut stack: Vec<NodeId> = fs.iter().map(|f| f.node()).collect();
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.mark(id.index()) {
                continue;
            }
            count += 1;
            let n = self.store.node(id.index());
            stack.push(n.low.node());
            stack.push(n.high.node());
        }
        count
    }

    /// The set of variables `f` structurally depends on, in increasing
    /// *index* order (independent of where they currently sit in the
    /// level order).
    pub fn support(&self, f: Ref) -> Vec<Var> {
        let mut vars: HashSet<u32, BuildFxHasher> = HashSet::default();
        let mut seen = self.session.visited.borrow_mut();
        seen.begin(self.store.num_nodes());
        let mut stack = vec![f.node()];
        while let Some(id) = stack.pop() {
            if id.is_terminal() || !seen.mark(id.index()) {
                continue;
            }
            let n = self.store.node(id.index());
            vars.insert(n.var.0);
            stack.push(n.low.node());
            stack.push(n.high.node());
        }
        let mut out: Vec<Var> = vars.into_iter().map(Var).collect();
        out.sort();
        out
    }

    /// Fraction of the `2^num_vars` input assignments satisfying `f`,
    /// computed exactly by one DAG traversal.
    pub fn density(&self, f: Ref) -> f64 {
        fn prob(m: &Manager, r: Ref, memo: &mut HashMap<NodeId, f64, BuildFxHasher>) -> f64 {
            let p = if r.regular().is_one() {
                1.0
            } else if let Some(&p) = memo.get(&r.node()) {
                p
            } else {
                let n = m.store.node(r.node().index());
                let p = 0.5 * prob(m, n.low, memo) + 0.5 * prob(m, n.high, memo);
                memo.insert(r.node(), p);
                p
            };
            if r.is_complemented() {
                1.0 - p
            } else {
                p
            }
        }
        let mut memo = HashMap::default();
        prob(self, f, &mut memo)
    }

    /// Number of satisfying assignments over `num_vars` variables
    /// (as `f64`, exact while below 2^53).
    pub fn sat_count(&self, f: Ref, num_vars: u32) -> f64 {
        self.density(f) * (num_vars as f64).exp2()
    }

    /// Collects the internal nodes of the DAG rooted at `f`, together with
    /// incoming-edge statistics for each. The root reference itself is
    /// counted as one incoming edge (a 0-edge, complemented if the root
    /// reference is).
    pub fn node_stats(&self, f: Ref) -> NodeStats {
        let mut stats = NodeStats::default();
        if f.is_const() {
            return stats;
        }
        let mut seen = self.session.visited.borrow_mut();
        seen.begin(self.store.num_nodes());
        let mut stack = vec![f.node()];
        stats.record_zero(f.node(), f.is_complemented());
        while let Some(id) = stack.pop() {
            if !seen.mark(id.index()) {
                continue;
            }
            stats.order.push(id);
            let n = self.store.node(id.index());
            if !n.low.node().is_terminal() {
                stats.record_zero(n.low.node(), n.low.is_complemented());
                stack.push(n.low.node());
            }
            if !n.high.node().is_terminal() {
                stats.record_one(n.high.node());
                stack.push(n.high.node());
            }
        }
        stats
    }

    /// The function rooted at internal node `id`, as a regular reference.
    pub fn function_of(&self, id: NodeId) -> Ref {
        Ref::new(id, false)
    }
}

impl NodeStats {
    fn record_zero(&mut self, id: NodeId, complemented: bool) {
        let e = self.degrees.entry(id).or_default();
        if complemented {
            e.zero_complemented += 1;
        } else {
            e.zero_regular += 1;
        }
    }

    fn record_one(&mut self, id: NodeId) {
        self.degrees.entry(id).or_default().one += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_on_simple_functions() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, !b);
        assert!(m.eval(f, &[true, false]));
        assert!(!m.eval(f, &[true, true]));
        assert!(!m.eval(f, &[false, false]));
        assert!(m.eval(Ref::ONE, &[]));
        assert!(!m.eval(Ref::ZERO, &[]));
    }

    #[test]
    fn size_of_constants_and_vars() {
        let mut m = Manager::new();
        assert_eq!(m.size(Ref::ONE), 0);
        assert_eq!(m.size(Ref::ZERO), 0);
        let a = m.var(0);
        assert_eq!(m.size(a), 1);
        assert_eq!(m.size(!a), 1);
    }

    #[test]
    fn shared_size_counts_shared_nodes_once() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let g = m.or(a, b);
        let both = m.shared_size(&[f, g]);
        assert!(both <= m.size(f) + m.size(g));
        assert_eq!(m.shared_size(&[f, f]), m.size(f));
    }

    #[test]
    fn support_is_structural_dependence() {
        let mut m = Manager::new();
        let a = m.var(0);
        let c = m.var(2);
        let f = m.xor(a, c);
        assert_eq!(m.support(f), vec![Var(0), Var(2)]);
        assert_eq!(m.support(Ref::ONE), vec![]);
    }

    #[test]
    fn density_and_sat_count() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert!((m.density(f) - 0.25).abs() < 1e-12);
        assert!((m.sat_count(f, 2) - 1.0).abs() < 1e-9);
        let g = m.xor(a, b);
        assert!((m.sat_count(g, 2) - 2.0).abs() < 1e-9);
        assert!((m.density(Ref::ONE) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn node_stats_on_majority() {
        // Maj(a,b,c) with order a<b<c has the classic 4-node diamond; the
        // "b or c"/"b and c" pair both feed the shared c node.
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let stats = m.node_stats(f);
        assert_eq!(stats.len(), 4);
        assert_eq!(m.size(f), 4);
        // The node for variable c is reached from both b-nodes.
        let c_node = stats
            .nodes()
            .iter()
            .copied()
            .find(|&id| m.node(id).var == Var(2))
            .expect("c node present");
        assert!(stats.in_degree(c_node).total() >= 2);
    }

    #[test]
    fn node_stats_of_constant_is_empty() {
        let m = Manager::new();
        let stats = m.node_stats(Ref::ONE);
        assert!(stats.is_empty());
        assert_eq!(stats.len(), 0);
    }
}
