//! A small, fast, non-cryptographic hasher for the unique and computed
//! tables.
//!
//! BDD packages are dominated by hash-table lookups with tiny integer keys;
//! the default SipHash is measurably slower here. This is the classic
//! Fx/FNV-style multiply-xor mix, self-contained so the crate stays
//! dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` build-hasher alias used throughout the crate.
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// Multiply-xor hasher specialized for small integer keys.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        // Mix whole 64-bit words, not bytes: composite keys (tuples,
        // arrays, strings) hash in len/8 multiplies instead of len.
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            // Fold the length in so "ab" and "ab\0" differ.
            let len_mix = (rem.len() as u64).wrapping_mul(0xFF51_AFD7_ED55_8CCD);
            self.mix(u64::from_le_bytes(word) ^ len_mix);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u16(&mut self, n: u16) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_hash_distinctly_often() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // A decent mixer should give no collisions on 10k sequential keys.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn usable_as_hashmap_hasher() {
        let mut map: HashMap<(u32, u32), u32, BuildFxHasher> = HashMap::default();
        map.insert((1, 2), 3);
        assert_eq!(map.get(&(1, 2)), Some(&3));
    }

    #[test]
    fn byte_slices_hash_by_word_without_prefix_collisions() {
        let hash_of = |bytes: &[u8]| {
            let mut h = FxHasher::default();
            h.write(bytes);
            h.finish()
        };
        // Word-aligned and ragged lengths all produce distinct states.
        let mut seen = std::collections::HashSet::new();
        for len in 0..=24usize {
            let data: Vec<u8> = (0..len as u8).collect();
            seen.insert(hash_of(&data));
        }
        assert_eq!(seen.len(), 25, "length must perturb the hash");
        assert_ne!(hash_of(b"ab"), hash_of(b"ab\0"));
    }

    #[test]
    fn array_keys_hash_usably() {
        let mut map: HashMap<(u8, [u32; 3]), u32, BuildFxHasher> = HashMap::default();
        map.insert((2, [1, 2, u32::MAX]), 9);
        assert_eq!(map.get(&(2, [1, 2, u32::MAX])), Some(&9));
        assert_eq!(map.get(&(2, [2, 1, u32::MAX])), None);
    }
}
