//! A small, fast, non-cryptographic hasher for the unique and computed
//! tables.
//!
//! BDD packages are dominated by hash-table lookups with tiny integer keys;
//! the default SipHash is measurably slower here. This is the classic
//! Fx/FNV-style multiply-xor mix, self-contained so the crate stays
//! dependency-free.

use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` build-hasher alias used throughout the crate.
pub type BuildFxHasher = BuildHasherDefault<FxHasher>;

/// Multiply-xor hasher specialized for small integer keys.
#[derive(Default)]
pub struct FxHasher {
    state: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.mix(b as u64);
        }
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    #[test]
    fn distinct_keys_hash_distinctly_often() {
        let mut seen = std::collections::HashSet::new();
        for i in 0u64..10_000 {
            let mut h = FxHasher::default();
            h.write_u64(i);
            seen.insert(h.finish());
        }
        // A decent mixer should give no collisions on 10k sequential keys.
        assert_eq!(seen.len(), 10_000);
    }

    #[test]
    fn usable_as_hashmap_hasher() {
        let mut map: HashMap<(u32, u32), u32, BuildFxHasher> = HashMap::default();
        map.insert((1, 2), 3);
        assert_eq!(map.get(&(1, 2)), Some(&3));
    }
}
