//! Parallel apply: fork-join recursion over one large cone, with the
//! subproblems load-balanced across worker threads by work stealing,
//! each worker running its own [`Session`] against the shared
//! [`NodeStore`].
//!
//! This is stage 3 of the concurrent-kernel plan (see the crate-level
//! "Concurrency contract"): the store's CAS publication protocol makes
//! hash-consing safe under concurrent `mk`, and the store-level shared
//! computed cache lets workers reuse each other's subresults, so a
//! top-level `and`/`xor`/`ite` on a large cone can Shannon-split
//! *adaptively* — each worker keeps splitting the subproblem in hand on
//! its top decision level, pushes one cofactor half onto its own deque,
//! and descends into the other. Idle workers steal the oldest (biggest)
//! queued half from a victim's deque ([`StealDeques`]), so a skewed
//! cone keeps every thread busy without anyone pre-guessing where the
//! work is — the fixed pre-split of stage 2 could not.
//!
//! Each fork records a *join*: a two-slot rendezvous holding the split
//! variable. Whichever worker delivers the second cofactor result
//! combines the pair with `mk` and cascades upward, so the recombination
//! spine is itself parallel and the root result appears on whichever
//! thread happens to finish last. Canonicity makes the merge exact:
//! every worker publishes into the same unique table, so the final
//! [`Ref`] is bit-identical to the sequential kernel's — the
//! oracle-equality contract the parallel storm tests pin at every width.
//!
//! # Work budget, not thread count
//!
//! The fork width is drawn from the manager's [`JobBudget`] (installed
//! with [`Manager::set_job_budget`]). The budget counts *additional*
//! threads machine-wide: the bench pool's suite-level workers and this
//! intra-cone fork share one pool of permits, so nesting a parallel
//! apply inside a pool worker can never oversubscribe the machine —
//! `--jobs` stays the single knob. Claimed permits are held by an RAII
//! guard whose `Drop` returns them, so every exit — the normal join, the
//! table-full retry, and a panic unwinding out of a worker — drains the
//! permits back. No budget (or an empty one) means the exact sequential
//! path: `threads = 1` is byte-for-byte the classic kernel, with
//! identical node counts.
//!
//! # Failure and growth
//!
//! Workers run ungoverned but the shared table can still fill. Growth is
//! stop-the-world and quiescent-only, so a worker that loses the
//! headroom race aborts its task with the [`LimitExceeded`] /
//! `TableFull` path and raises the shared abort flag; its peers drain,
//! the manager folds every worker's created-node log, grows the table at
//! the now-quiescent point, and re-runs the cone sequentially — degraded
//! loudly through the retry path, never silently. (The workers'
//! published subresults stay memoized in the unique table and the shared
//! cache, so the retry mostly re-links existing nodes.)

use crate::manager::Manager;
use crate::reference::{Ref, Var};
use crate::session::{JobBudget, LimitExceeded, Session, WORKER_CACHE_BITS};
use crate::steal::StealDeques;
use crate::store::NodeStore;
use std::sync::atomic::{AtomicBool, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Cones smaller than this many shared nodes are not worth forking: the
/// fork/join overhead exceeds the kernel time.
const PAR_CUTOFF: usize = 256;

/// Upper bound on extra workers one cone will request from the budget.
const MAX_EXTRA_WORKERS: usize = 15;

/// Hard cap on fork depth: a task this deep is solved sequentially even
/// if the fork budget has room (each level of forking halves the
/// subproblem; past this depth the pieces are join-bound).
const MAX_FORK_DEPTH: usize = 20;

/// Fork budget per worker: once this many tasks per worker have been
/// forked over the cone's lifetime, the remaining subproblems are solved
/// in place. Scales task count with width so small forks stay cheap and
/// wide forks still out-split a skewed cone.
const FORK_TASKS_PER_WORKER: usize = 64;

/// One subproblem: the operation with all operands already cofactored
/// down the fork path.
#[derive(Clone, Copy)]
enum ParOp {
    And(Ref, Ref),
    Xor(Ref, Ref),
    Ite(Ref, Ref, Ref),
}

impl ParOp {
    fn operands(&self) -> [Ref; 3] {
        match *self {
            ParOp::And(f, g) => [f, g, Ref::ONE],
            ParOp::Xor(f, g) => [f, g, Ref::ONE],
            ParOp::Ite(f, g, h) => [f, g, h],
        }
    }

    /// Both shallow cofactors of every operand on `v` (operands rooted
    /// below `v` are untouched — `shallow_cofactors` returns them as-is).
    fn cofactor(&self, store: &NodeStore, v: Var) -> (ParOp, ParOp) {
        match *self {
            ParOp::And(f, g) => {
                let (f0, f1) = store.shallow_cofactors(f, v);
                let (g0, g1) = store.shallow_cofactors(g, v);
                (ParOp::And(f0, g0), ParOp::And(f1, g1))
            }
            ParOp::Xor(f, g) => {
                let (f0, f1) = store.shallow_cofactors(f, v);
                let (g0, g1) = store.shallow_cofactors(g, v);
                (ParOp::Xor(f0, g0), ParOp::Xor(f1, g1))
            }
            ParOp::Ite(f, g, h) => {
                let (f0, f1) = store.shallow_cofactors(f, v);
                let (g0, g1) = store.shallow_cofactors(g, v);
                let (h0, h1) = store.shallow_cofactors(h, v);
                (ParOp::Ite(f0, g0, h0), ParOp::Ite(f1, g1, h1))
            }
        }
    }

    /// Runs the matching sequential kernel on `session`.
    fn solve(&self, store: &NodeStore, session: &mut Session) -> Result<Ref, LimitExceeded> {
        match *self {
            ParOp::And(f, g) => session.and_rec(store, f, g),
            ParOp::Xor(f, g) => session.xor_ap(store, f, g),
            ParOp::Ite(f, g, h) => session.ite_ap(store, f, g, h),
        }
    }
}

/// The rendezvous of one fork: two result slots and a count of children
/// still running. The worker whose delivery drops `pending` to zero
/// combines the pair and carries the result up `up`.
struct ParJoin {
    pending: AtomicU8,
    kids: Mutex<[Option<Ref>; 2]>,
    /// Where the combined result goes next (`None` = this is the root).
    up: Option<ParLink>,
}

/// An edge from a task up to its parent join: which slot this child
/// fills, and the variable the parent combines on (`mk(var, lo, hi)`).
#[derive(Clone)]
struct ParLink {
    join: Arc<ParJoin>,
    which: usize,
    var: Var,
}

/// One queued unit of work: a subproblem, its fork depth, and its place
/// in the join tree.
struct ParTask {
    op: ParOp,
    depth: usize,
    up: Option<ParLink>,
}

/// State shared by the workers of one parallel apply.
struct ParShared<'a> {
    store: &'a NodeStore,
    deques: StealDeques<ParTask>,
    /// Lifetime fork count — the granularity gate (see `fork_cap`).
    forked: AtomicUsize,
    fork_cap: usize,
    /// Raised by the root delivery: workers drain and exit.
    done: AtomicBool,
    /// Raised by a `TableFull` abort or a panicking worker: peers
    /// abandon the cone for the sequential retry path.
    failed: AtomicBool,
    root: Mutex<Option<Ref>>,
}

/// RAII claim on [`JobBudget`] permits: `Drop` returns them, so every
/// exit path — including a panic unwinding out of the worker join —
/// drains the permits back to the pool.
struct PermitGuard<'a> {
    budget: &'a JobBudget,
    extra: usize,
}

impl<'a> PermitGuard<'a> {
    fn acquire(budget: &'a JobBudget, max: usize) -> PermitGuard<'a> {
        let extra = budget.try_acquire(max);
        PermitGuard { budget, extra }
    }

    fn extra(&self) -> usize {
        self.extra
    }
}

impl Drop for PermitGuard<'_> {
    // bdslint: allow(protect-release) -- the `release` here returns
    // JobBudget thread permits, not a node root; the matching acquire is
    // in PermitGuard::acquire.
    fn drop(&mut self) {
        self.budget.release(self.extra);
    }
}

/// RAII shared-region marker: `Drop` calls `end_shared`, so a panic
/// unwinding out of the worker join still restores the store's
/// outstanding-session count (and with it the quiescence asserts).
struct SharedRegion<'a> {
    store: &'a NodeStore,
    width: usize,
}

impl<'a> SharedRegion<'a> {
    fn begin(store: &'a NodeStore, width: usize) -> SharedRegion<'a> {
        store.begin_shared(width);
        SharedRegion { store, width }
    }
}

impl Drop for SharedRegion<'_> {
    fn drop(&mut self) {
        self.store.end_shared(self.width);
    }
}

/// Dropped on a worker's way out; if that exit is a panic unwind, raises
/// the abort flag so the surviving workers stop waiting for the dead
/// worker's subtree and the scope join can complete.
struct PanicSignal<'a> {
    failed: &'a AtomicBool,
}

impl Drop for PanicSignal<'_> {
    fn drop(&mut self) {
        if std::thread::panicking() {
            // ordering: Relaxed — an advisory abort flag; peers poll it
            // and the fallback path redoes the whole cone anyway.
            self.failed.store(true, Ordering::Relaxed);
        }
    }
}

/// One worker's scheduling loop: pop own work front-first, steal oldest
/// from a victim otherwise, spin-yield when everything is in flight.
/// Returns the worker's session (created-node log and cache counters,
/// folded by the manager after the join) and its steal count.
fn par_worker(sh: &ParShared<'_>, me: usize, inject_panic: bool) -> (Session, u64) {
    let _signal = PanicSignal { failed: &sh.failed };
    #[cfg(not(test))]
    let _ = inject_panic;
    let mut session = Session::with_cache_bits(WORKER_CACHE_BITS);
    let mut steals = 0u64;
    loop {
        // ordering: Acquire pairs with the Release store in `propagate`'s
        // root delivery; `failed` is advisory (Relaxed) — abandoning
        // early is always safe, the fallback redoes the cone.
        if sh.done.load(Ordering::Acquire) || sh.failed.load(Ordering::Relaxed) {
            break;
        }
        let Some((task, stolen)) = sh.deques.next(me) else {
            // Empty deques but the cone is unfinished: peers still hold
            // tasks in flight that may fork more. Yield, then re-poll.
            std::thread::yield_now();
            continue;
        };
        steals += stolen as u64;
        #[cfg(test)]
        if inject_panic {
            panic!("injected parallel-apply worker panic");
        }
        if run_task(sh, me, &mut session, task).is_err() {
            // ordering: Relaxed — advisory abort flag (see above).
            sh.failed.store(true, Ordering::Relaxed);
            break;
        }
    }
    (session, steals)
}

/// Runs one task to a result: while the subproblem is still worth
/// splitting (depth and fork budget permit, operands non-constant),
/// forks the high cofactor onto the own deque and descends into the low
/// half; the final leaf runs the sequential kernel. The result then
/// cascades up the join spine via [`propagate`].
fn run_task(
    sh: &ParShared<'_>,
    me: usize,
    session: &mut Session,
    mut task: ParTask,
) -> Result<(), LimitExceeded> {
    loop {
        if task.depth >= MAX_FORK_DEPTH {
            break;
        }
        // ordering: Relaxed — the fork budget is a granularity
        // heuristic; racing past it by a few tasks is harmless.
        if sh.forked.load(Ordering::Relaxed) >= sh.fork_cap {
            break;
        }
        let mut min_level = u32::MAX;
        for r in task.op.operands() {
            min_level = min_level.min(sh.store.level(r));
        }
        if min_level == u32::MAX {
            break; // every operand is constant: nothing to split on
        }
        // ordering: Relaxed — see the load above.
        sh.forked.fetch_add(1, Ordering::Relaxed);
        let v = sh.store.var_at_level(min_level);
        let (lo, hi) = task.op.cofactor(sh.store, v);
        let join = Arc::new(ParJoin {
            pending: AtomicU8::new(2),
            kids: Mutex::new([None, None]),
            up: task.up.take(),
        });
        sh.deques.push(
            me,
            ParTask {
                op: hi,
                depth: task.depth + 1,
                up: Some(ParLink {
                    join: join.clone(),
                    which: 1,
                    var: v,
                }),
            },
        );
        task = ParTask {
            op: lo,
            depth: task.depth + 1,
            up: Some(ParLink {
                join,
                which: 0,
                var: v,
            }),
        };
    }
    let r = task.op.solve(sh.store, session)?;
    propagate(sh, session, task.up, r)
}

/// Delivers a completed subresult to its parent join. The delivery that
/// completes a pair elects this worker the combiner: it rebuilds the
/// split node with `mk` and carries the combination further up, until a
/// sibling is still pending (its worker will finish the join) or the
/// root slot is filled.
fn propagate(
    sh: &ParShared<'_>,
    session: &mut Session,
    mut up: Option<ParLink>,
    mut r: Ref,
) -> Result<(), LimitExceeded> {
    loop {
        let Some(link) = up else {
            *sh.root.lock().unwrap() = Some(r);
            // ordering: Release pairs with the workers' Acquire exit
            // check — observing `done` implies the root slot is written
            // (the mutex alone orders the slot; the flag is the wakeup).
            sh.done.store(true, Ordering::Release);
            return Ok(());
        };
        link.join.kids.lock().unwrap()[link.which] = Some(r);
        // ordering: AcqRel — the decrement that reaches zero must
        // observe the sibling's slot write (its Release half) before
        // combining (our Acquire half); the kids mutex would also order
        // the slots, but the counter is what elects exactly one combiner.
        if link.join.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
            let (lo, hi) = {
                let kids = link.join.kids.lock().unwrap();
                (
                    kids[0].expect("low child delivered before the join combined"),
                    kids[1].expect("high child delivered before the join combined"),
                )
            };
            // Split variables strictly deepen along the fork path, so
            // each rebuild respects the ordering invariant; canonicity
            // makes the cascade converge on the sequential kernel's Ref.
            r = session.mk(sh.store, link.var, lo, hi)?;
            up = link.join.up.clone();
        } else {
            return Ok(());
        }
    }
}

impl Manager {
    /// Parallel conjunction: [`Manager::and`] forked across the
    /// [`JobBudget`] installed with [`Manager::set_job_budget`].
    ///
    /// Canonicity guarantees the result is the identical [`Ref`] the
    /// sequential kernel returns, at any width; with no budget (or none
    /// to spare, or a cone under the granularity cutoff) this *is* the
    /// sequential kernel.
    pub fn par_and(&mut self, f: Ref, g: Ref) -> Ref {
        self.par_apply(ParOp::And(f, g))
    }

    /// Parallel exclusive-or; see [`Manager::par_and`].
    pub fn par_xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.par_apply(ParOp::Xor(f, g))
    }

    /// Parallel if-then-else; see [`Manager::par_and`].
    pub fn par_ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.par_apply(ParOp::Ite(f, g, h))
    }

    /// Parallelism-aware [`Manager::try_and`] — the routing point the
    /// flow's gate collapser calls. A *governed* kernel (resource limits
    /// or an abort step installed) stays on the sequential `try_*` path,
    /// so budget accounting and abort points are exactly the sequential
    /// ones; an ungoverned kernel goes through [`Manager::par_and`],
    /// which itself falls back to the sequential kernel without a
    /// [`JobBudget`], without spare permits, or below the granularity
    /// cutoff. Either way the returned [`Ref`] is the one the sequential
    /// kernel produces (canonicity).
    pub fn try_par_and(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        if self.session.governed {
            self.try_and(f, g)
        } else {
            Ok(self.par_and(f, g))
        }
    }

    /// Parallelism-aware [`Manager::try_or`]; see
    /// [`Manager::try_par_and`]. The parallel path runs De Morgan over
    /// the complement edges (`f + g = !(!f · !g)`), which is free.
    pub fn try_par_or(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        if self.session.governed {
            self.try_or(f, g)
        } else {
            Ok(!self.par_and(!f, !g))
        }
    }

    /// Parallelism-aware [`Manager::try_xor`]; see
    /// [`Manager::try_par_and`].
    pub fn try_par_xor(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        if self.session.governed {
            self.try_xor(f, g)
        } else {
            Ok(self.par_xor(f, g))
        }
    }

    /// Parallelism-aware [`Manager::try_ite`]; see
    /// [`Manager::try_par_and`].
    pub fn try_par_ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, LimitExceeded> {
        if self.session.governed {
            self.try_ite(f, g, h)
        } else {
            Ok(self.par_ite(f, g, h))
        }
    }

    /// Parallelism-aware [`Manager::try_and_all`]; each fold step routes
    /// through [`Manager::try_par_and`].
    pub fn try_par_and_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
    ) -> Result<Ref, LimitExceeded> {
        let mut acc = Ref::ONE;
        for f in fs {
            acc = self.try_par_and(acc, f)?;
        }
        Ok(acc)
    }

    /// Parallelism-aware [`Manager::try_or_all`]; each fold step routes
    /// through [`Manager::try_par_or`].
    pub fn try_par_or_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
    ) -> Result<Ref, LimitExceeded> {
        let mut acc = Ref::ZERO;
        for f in fs {
            acc = self.try_par_or(acc, f)?;
        }
        Ok(acc)
    }

    /// Parallelism-aware [`Manager::try_xor_all`]; each fold step routes
    /// through [`Manager::try_par_xor`].
    pub fn try_par_xor_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
    ) -> Result<Ref, LimitExceeded> {
        let mut acc = Ref::ZERO;
        for f in fs {
            acc = self.try_par_xor(acc, f)?;
        }
        Ok(acc)
    }

    /// The exact sequential path (also the `threads = 1` contract).
    fn seq_apply(&mut self, op: ParOp) -> Ref {
        match op {
            ParOp::And(f, g) => self.and(f, g),
            ParOp::Xor(f, g) => self.xor(f, g),
            ParOp::Ite(f, g, h) => self.ite(f, g, h),
        }
    }

    fn par_apply(&mut self, root: ParOp) -> Ref {
        let Some(budget) = self.job_budget.clone() else {
            return self.seq_apply(root);
        };
        // Granularity gate before touching the budget: small cones never
        // contend for permits.
        let operands = root.operands();
        if self.shared_size(&operands) < PAR_CUTOFF {
            return self.seq_apply(root);
        }
        let permits = PermitGuard::acquire(&budget, MAX_EXTRA_WORKERS);
        if permits.extra() == 0 {
            return self.seq_apply(root);
        }
        let width = permits.extra() + 1;

        #[cfg(test)]
        let inject_panic = self.fault_panic_workers;
        #[cfg(not(test))]
        let inject_panic = false;

        // SOLVE: `width` workers fork-join over the cone, stealing each
        // other's queued halves; whoever delivers last combines the root.
        let (worker_out, result, failed) = {
            let sh = ParShared {
                store: &self.store,
                deques: StealDeques::new(width),
                forked: AtomicUsize::new(0),
                fork_cap: FORK_TASKS_PER_WORKER * width,
                done: AtomicBool::new(false),
                failed: AtomicBool::new(false),
                root: Mutex::new(None),
            };
            sh.deques.push(
                0,
                ParTask {
                    op: root,
                    depth: 0,
                    up: None,
                },
            );
            let region = SharedRegion::begin(&self.store, width);
            let worker_out: Vec<(Session, u64)> = std::thread::scope(|scope| {
                let sh = &sh;
                let handles: Vec<_> = (0..width)
                    .map(|me| scope.spawn(move || par_worker(sh, me, inject_panic)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel-apply worker panicked"))
                    .collect()
            });
            drop(region);
            // ordering: Relaxed — the scope join synchronized everything.
            let failed = sh.failed.load(Ordering::Relaxed);
            let result = sh.root.lock().unwrap().take();
            (worker_out, result, failed)
        };
        // Workers have joined: the permits gate threads, so give them
        // back before any (sequential) retry work.
        drop(permits);

        // Fold every worker's created-node log into the manager's
        // per-variable lists (now quiescent), and absorb its cache and
        // steal telemetry.
        let mut steals = 0u64;
        for (mut session, worker_steals) in worker_out {
            let created = std::mem::take(&mut session.created);
            self.fold_created(created);
            self.session.cache.absorb_counters(&session.cache);
            self.session.steps += session.steps;
            steals += worker_steals;
        }
        self.par_steals += steals;

        match result {
            Some(r) if !failed => r,
            _ => {
                // A worker lost the shared-table headroom race (or the
                // join tree was abandoned). The region is quiescent
                // again: grow stop-the-world and redo sequentially — the
                // workers' published subresults stay memoized, so the
                // retry mostly re-links existing nodes.
                self.grow_for_retry();
                self.seq_apply(root)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::JobBudget;

    /// Builds a deliberately wide cone pair: XOR/MAJ ladders over
    /// cross-products of distant variables, which under the natural
    /// order are hundreds of shared nodes — past `PAR_CUTOFF`.
    fn big_cone(m: &mut Manager, n: u32) -> (Ref, Ref) {
        let vars: Vec<Ref> = (0..n).map(|i| m.var(i)).collect();
        let half = (n / 2) as usize;
        let mut f = Ref::ZERO;
        let mut g = Ref::ONE;
        for i in 0..half {
            let p = m.and(vars[i], vars[i + half]);
            f = m.xor(f, p);
            let q = m.or(vars[i], vars[(i + half + 1) % n as usize]);
            g = m.maj(g, q, p);
        }
        (f, g)
    }

    #[test]
    fn no_budget_is_the_sequential_path() {
        let mut seq = Manager::new();
        let (fs, gs) = big_cone(&mut seq, 16);
        let want = seq.and(fs, gs);
        let mut par = Manager::new();
        let (fp, gp) = big_cone(&mut par, 16);
        let got = par.par_and(fp, gp);
        assert_eq!(got, want, "refs must be bit-equal");
        assert_eq!(seq.num_nodes(), par.num_nodes(), "identical node counts");
    }

    #[test]
    fn zero_permit_budget_is_the_sequential_path() {
        let mut seq = Manager::new();
        let (fs, gs) = big_cone(&mut seq, 16);
        let want = seq.xor(fs, gs);
        let mut par = Manager::new();
        par.set_job_budget(Some(JobBudget::new(0)));
        let (fp, gp) = big_cone(&mut par, 16);
        let got = par.par_xor(fp, gp);
        assert_eq!(got, want);
        assert_eq!(seq.num_nodes(), par.num_nodes(), "identical node counts");
    }

    #[test]
    fn forked_apply_matches_sequential_refs() {
        let mut seq = Manager::new();
        let (fs, gs) = big_cone(&mut seq, 18);
        let want_and = seq.and(fs, gs);
        let want_xor = seq.xor(fs, gs);

        let mut par = Manager::new();
        par.set_job_budget(Some(JobBudget::new(3)));
        let (fp, gp) = big_cone(&mut par, 18);
        assert!(
            par.shared_size(&[fp, gp]) >= PAR_CUTOFF,
            "test cone shrank below the fork cutoff — the fork path is \
             no longer exercised"
        );
        let got_and = par.par_and(fp, gp);
        let got_xor = par.par_xor(fp, gp);
        // Same build order ⇒ the operand refs are bit-identical across
        // managers, so the results must be too (canonicity).
        assert_eq!(got_and, want_and);
        assert_eq!(got_xor, want_xor);
        par.verify_interior_refs();
        par.verify_edge_canonical_form();
        let budget = par.job_budget.as_ref().expect("budget installed");
        assert_eq!(budget.available(), 3, "all permits returned");
    }

    #[test]
    fn worker_panic_drains_the_budget_permits() {
        let mut par = Manager::new();
        let (f, g) = big_cone(&mut par, 18);
        let budget = JobBudget::new(3);
        par.set_job_budget(Some(budget.clone()));
        par.fault_panic_workers = true;
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| par.par_and(f, g)));
        assert!(result.is_err(), "the injected worker panic must propagate");
        assert_eq!(
            budget.available(),
            3,
            "the RAII permit guard must return every permit on the \
             unwind path"
        );
    }
}
