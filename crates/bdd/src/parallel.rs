//! Parallel apply: forking the cofactor subproblems of one large cone
//! onto worker threads, each running its own [`Session`] against the
//! shared [`NodeStore`].
//!
//! This is stage 2 of the concurrent-kernel plan (see the crate-level
//! "Concurrency contract"): the store's CAS publication protocol makes
//! hash-consing safe under concurrent `mk`, so a top-level `and`/`xor`/
//! `ite` on a large cone can Shannon-expand the operands over the first
//! few decision levels and solve the resulting leaf subproblems on a
//! small worker pool. Canonicity makes the merge trivial *and* exact:
//! every worker publishes into the same unique table, so the bottom-up
//! recombination (`mk` over the split variables) returns bit-identical
//! [`Ref`]s to the sequential kernel — the oracle-equality contract the
//! parallel storm tests pin.
//!
//! # Work budget, not thread count
//!
//! The fork width is drawn from the manager's [`JobBudget`] (installed
//! with [`Manager::set_job_budget`]). The budget counts *additional*
//! threads machine-wide: the bench pool's suite-level workers and this
//! intra-cone fork share one pool of permits, so nesting a parallel
//! apply inside a pool worker can never oversubscribe the machine —
//! `--jobs` stays the single knob. No budget (or an empty one) means the
//! exact sequential path: `threads = 1` is byte-for-byte the classic
//! kernel, with identical node counts.
//!
//! # Failure and growth
//!
//! Workers run ungoverned but the shared table can still fill. Growth is
//! stop-the-world and quiescent-only, so a worker that loses the
//! headroom race aborts its leaf with the [`LimitExceeded`] /
//! `TableFull` path; after the join the manager folds every worker's
//! created-node log, grows the table at the now-quiescent point, and
//! re-runs the cone sequentially — degraded loudly through the retry
//! path, never silently.

use crate::manager::Manager;
use crate::reference::{Ref, Var};
use crate::session::{LimitExceeded, Session, WORKER_CACHE_BITS};
use crate::store::NodeStore;
use std::sync::atomic::{AtomicUsize, Ordering};

/// One worker's take-home: its private session (created-slot log plus
/// cache counters, folded into the manager after the join) and the leaf
/// results it solved, tagged with their leaf index.
type WorkerOut = (Session, Vec<(usize, Result<Ref, LimitExceeded>)>);

/// Cones smaller than this many shared nodes are not worth forking: the
/// split/join overhead exceeds the kernel time.
const PAR_CUTOFF: usize = 256;

/// Upper bound on extra workers one cone will request from the budget.
const MAX_EXTRA_WORKERS: usize = 15;

/// Stop splitting past this depth (2^depth leaves).
const MAX_SPLIT_DEPTH: usize = 8;

/// One leaf subproblem: the operation with all operands already
/// cofactored down the split path.
#[derive(Clone, Copy)]
enum ParOp {
    And(Ref, Ref),
    Xor(Ref, Ref),
    Ite(Ref, Ref, Ref),
}

impl ParOp {
    fn operands(&self) -> [Ref; 3] {
        match *self {
            ParOp::And(f, g) => [f, g, Ref::ONE],
            ParOp::Xor(f, g) => [f, g, Ref::ONE],
            ParOp::Ite(f, g, h) => [f, g, h],
        }
    }

    /// Both shallow cofactors of every operand on `v` (operands rooted
    /// below `v` are untouched — `shallow_cofactors` returns them as-is).
    fn cofactor(&self, store: &NodeStore, v: Var) -> (ParOp, ParOp) {
        match *self {
            ParOp::And(f, g) => {
                let (f0, f1) = store.shallow_cofactors(f, v);
                let (g0, g1) = store.shallow_cofactors(g, v);
                (ParOp::And(f0, g0), ParOp::And(f1, g1))
            }
            ParOp::Xor(f, g) => {
                let (f0, f1) = store.shallow_cofactors(f, v);
                let (g0, g1) = store.shallow_cofactors(g, v);
                (ParOp::Xor(f0, g0), ParOp::Xor(f1, g1))
            }
            ParOp::Ite(f, g, h) => {
                let (f0, f1) = store.shallow_cofactors(f, v);
                let (g0, g1) = store.shallow_cofactors(g, v);
                let (h0, h1) = store.shallow_cofactors(h, v);
                (ParOp::Ite(f0, g0, h0), ParOp::Ite(f1, g1, h1))
            }
        }
    }

    /// Runs the matching sequential kernel on `session`.
    fn solve(&self, store: &NodeStore, session: &mut Session) -> Result<Ref, LimitExceeded> {
        match *self {
            ParOp::And(f, g) => session.and_rec(store, f, g),
            ParOp::Xor(f, g) => session.xor_ap(store, f, g),
            ParOp::Ite(f, g, h) => session.ite_ap(store, f, g, h),
        }
    }
}

/// Shannon-expands `root` over the topmost decision levels until at
/// least `want` leaves exist (or the operands bottom out). Pure store
/// reads — no session, no publication — so it runs before the fork.
/// Returns the split variables root-first and the leaves in index order
/// (leaf `i` is the cofactor path given by the bits of `i`, split var 0
/// as the most significant bit).
fn split(store: &NodeStore, root: ParOp, want: usize) -> (Vec<Var>, Vec<ParOp>) {
    let mut vars = Vec::new();
    let mut leaves = vec![root];
    while leaves.len() < want && vars.len() < MAX_SPLIT_DEPTH {
        let mut min_level = u32::MAX;
        for leaf in &leaves {
            for r in leaf.operands() {
                min_level = min_level.min(store.level(r));
            }
        }
        if min_level == u32::MAX {
            break; // every operand is constant
        }
        let v = store.var_at_level(min_level);
        let mut next = Vec::with_capacity(leaves.len() * 2);
        for leaf in &leaves {
            let (lo, hi) = leaf.cofactor(store, v);
            next.push(lo);
            next.push(hi);
        }
        vars.push(v);
        leaves = next;
    }
    (vars, leaves)
}

impl Manager {
    /// Parallel conjunction: [`Manager::and`] forked across the
    /// [`JobBudget`] installed with [`Manager::set_job_budget`].
    ///
    /// Canonicity guarantees the result is the identical [`Ref`] the
    /// sequential kernel returns, at any width; with no budget (or none
    /// to spare, or a cone under the granularity cutoff) this *is* the
    /// sequential kernel.
    pub fn par_and(&mut self, f: Ref, g: Ref) -> Ref {
        self.par_apply(ParOp::And(f, g))
    }

    /// Parallel exclusive-or; see [`Manager::par_and`].
    pub fn par_xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.par_apply(ParOp::Xor(f, g))
    }

    /// Parallel if-then-else; see [`Manager::par_and`].
    pub fn par_ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.par_apply(ParOp::Ite(f, g, h))
    }

    /// The exact sequential path (also the `threads = 1` contract).
    fn seq_apply(&mut self, op: ParOp) -> Ref {
        match op {
            ParOp::And(f, g) => self.and(f, g),
            ParOp::Xor(f, g) => self.xor(f, g),
            ParOp::Ite(f, g, h) => self.ite(f, g, h),
        }
    }

    // bdslint: allow(protect-release) -- the `release` calls here return
    // JobBudget thread permits, not node roots; there is no protect pair.
    fn par_apply(&mut self, root: ParOp) -> Ref {
        let Some(budget) = self.job_budget.clone() else {
            return self.seq_apply(root);
        };
        // Granularity gate before touching the budget: small cones never
        // contend for permits.
        let operands = root.operands();
        if self.shared_size(&operands) < PAR_CUTOFF {
            return self.seq_apply(root);
        }
        let extra = budget.try_acquire(MAX_EXTRA_WORKERS);
        if extra == 0 {
            return self.seq_apply(root);
        }
        let width = extra + 1;
        let (vars, leaves) = split(&self.store, root, 4 * width);
        if vars.is_empty() {
            budget.release(extra);
            return self.seq_apply(root);
        }

        // SOLVE: `width` workers, each with a private session, pull
        // leaves from a shared cursor and publish into the shared store.
        let mut failed = false;
        let mut slots: Vec<Option<Ref>> = vec![None; leaves.len()];
        {
            let store = &self.store;
            store.begin_shared(width);
            let cursor = AtomicUsize::new(0);
            let worker_out: Vec<WorkerOut> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..width)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut session = Session::with_cache_bits(WORKER_CACHE_BITS);
                            let mut out = Vec::new();
                            loop {
                                // ordering: Relaxed — the cursor only
                                // partitions indices; leaf data is
                                // immutable and store publication has
                                // its own Release/Acquire protocol.
                                let i = cursor.fetch_add(1, Ordering::Relaxed);
                                let Some(&leaf) = leaves.get(i) else {
                                    break;
                                };
                                let r = leaf.solve(store, &mut session);
                                let stop = r.is_err();
                                out.push((i, r));
                                if stop {
                                    break; // table full: drain and regrow
                                }
                            }
                            (session, out)
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel-apply worker panicked"))
                    .collect()
            });
            store.end_shared(width);

            // COMBINE bookkeeping: fold every worker's created-node log
            // into the manager's per-variable lists (now quiescent), and
            // absorb its cache telemetry.
            for (mut session, out) in worker_out {
                let created = std::mem::take(&mut session.created);
                self.fold_created(created);
                self.session.cache.absorb_counters(&session.cache);
                self.session.steps += session.steps;
                for (i, r) in out {
                    match r {
                        Ok(v) => slots[i] = Some(v),
                        Err(_) => failed = true,
                    }
                }
            }
        }

        if failed || slots.iter().any(Option::is_none) {
            // A worker lost the shared-table headroom race. The region is
            // quiescent again: grow stop-the-world and redo sequentially —
            // the workers' published subresults stay memoized in the
            // unique table, so the retry mostly re-links existing nodes.
            budget.release(extra);
            self.grow_for_retry();
            return self.seq_apply(root);
        }

        // COMBINE: rebuild the split spine bottom-up. Each `mk` respects
        // the ordering invariant (split variables strictly deepen), and
        // canonicity makes the final Ref identical to the sequential one.
        let mut level: Vec<Ref> = slots.into_iter().flatten().collect();
        for &v in vars.iter().rev() {
            level = level
                .chunks_exact(2)
                .map(|pair| self.mk(v, pair[0], pair[1]))
                .collect();
        }
        budget.release(extra);
        debug_assert_eq!(level.len(), 1);
        level[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::JobBudget;

    /// Builds a deliberately wide cone pair: XOR/MAJ ladders over
    /// cross-products of distant variables, which under the natural
    /// order are hundreds of shared nodes — past `PAR_CUTOFF`.
    fn big_cone(m: &mut Manager, n: u32) -> (Ref, Ref) {
        let vars: Vec<Ref> = (0..n).map(|i| m.var(i)).collect();
        let half = (n / 2) as usize;
        let mut f = Ref::ZERO;
        let mut g = Ref::ONE;
        for i in 0..half {
            let p = m.and(vars[i], vars[i + half]);
            f = m.xor(f, p);
            let q = m.or(vars[i], vars[(i + half + 1) % n as usize]);
            g = m.maj(g, q, p);
        }
        (f, g)
    }

    #[test]
    fn no_budget_is_the_sequential_path() {
        let mut seq = Manager::new();
        let (fs, gs) = big_cone(&mut seq, 16);
        let want = seq.and(fs, gs);
        let mut par = Manager::new();
        let (fp, gp) = big_cone(&mut par, 16);
        let got = par.par_and(fp, gp);
        assert_eq!(got, want, "refs must be bit-equal");
        assert_eq!(seq.num_nodes(), par.num_nodes(), "identical node counts");
    }

    #[test]
    fn zero_permit_budget_is_the_sequential_path() {
        let mut seq = Manager::new();
        let (fs, gs) = big_cone(&mut seq, 16);
        let want = seq.xor(fs, gs);
        let mut par = Manager::new();
        par.set_job_budget(Some(JobBudget::new(0)));
        let (fp, gp) = big_cone(&mut par, 16);
        let got = par.par_xor(fp, gp);
        assert_eq!(got, want);
        assert_eq!(seq.num_nodes(), par.num_nodes(), "identical node counts");
    }

    #[test]
    fn forked_apply_matches_sequential_refs() {
        let mut seq = Manager::new();
        let (fs, gs) = big_cone(&mut seq, 18);
        let want_and = seq.and(fs, gs);
        let want_xor = seq.xor(fs, gs);

        let mut par = Manager::new();
        par.set_job_budget(Some(JobBudget::new(3)));
        let (fp, gp) = big_cone(&mut par, 18);
        assert!(
            par.shared_size(&[fp, gp]) >= PAR_CUTOFF,
            "test cone shrank below the fork cutoff — the fork path is \
             no longer exercised"
        );
        let got_and = par.par_and(fp, gp);
        let got_xor = par.par_xor(fp, gp);
        // Same build order ⇒ the operand refs are bit-identical across
        // managers, so the results must be too (canonicity).
        assert_eq!(got_and, want_and);
        assert_eq!(got_xor, want_xor);
        par.verify_interior_refs();
        par.verify_edge_canonical_form();
        let budget = par.job_budget.as_ref().expect("budget installed");
        assert_eq!(budget.available(), 3, "all permits returned");
    }

    #[test]
    fn split_produces_cofactor_leaves() {
        let mut m = Manager::new();
        let (f, g) = big_cone(&mut m, 12);
        let (vars, leaves) = split(&m.store, ParOp::And(f, g), 8);
        assert!(!vars.is_empty());
        assert_eq!(leaves.len(), 1 << vars.len());
        // Leaf 0 is the all-zero cofactor path.
        let mut f0 = f;
        let mut g0 = g;
        for &v in &vars {
            f0 = m.store.shallow_cofactors(f0, v).0;
            g0 = m.store.shallow_cofactors(g0, v).0;
        }
        let [lf, lg, _] = leaves[0].operands();
        assert_eq!((lf, lg), (f0, g0));
    }
}
