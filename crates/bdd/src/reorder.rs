//! Variable reordering: the in-place searches driving the manager's
//! adjacent-level swap primitive, plus the permutation-rebuild fallback.
//!
//! The BDS decomposition engine reorders each local BDD before searching
//! for dominators (§IV-B of the BDS-MAJ paper: "As a first step, it
//! performs variable reordering to compact the size of the input BDD").
//! Since variables are decoupled from levels, reordering no longer copies
//! the function: [`window_reorder`] and [`sift_reorder`] drive
//! [`Manager::swap_levels`], which patches the affected nodes in place —
//! every outstanding [`Ref`] (the function under search included) keeps
//! denoting the same Boolean function, only its node count changes.
//! Rejected trial orders cost only the displaced nodes, which the manager
//! recycles at the next collection point.
//!
//! [`Manager::permute`] remains as the *renaming* primitive: it builds a
//! genuinely different function (the composition with a variable
//! substitution), which is occasionally what a caller wants — but it is no
//! longer how reordering is implemented.

use crate::manager::{ConvergeConfig, Manager, SiftConfig};
use crate::reference::Ref;
use crate::session::op;

impl Manager {
    /// Rebuilds `f` with every variable `v` replaced by `perm[v]` — a
    /// variable *renaming*, producing a (generally) different function.
    ///
    /// `perm` maps **variable index → variable index** (`perm[old] = new`)
    /// and must be a permutation of `0..perm.len()` covering the support
    /// of `f`.
    ///
    /// The per-call memo lives in the shared computed cache under a fresh
    /// `op::SCOPED` epoch, so no allocation happens per call.
    ///
    /// # Panics
    ///
    /// Panics if a support variable of `f` is outside `perm`; in debug
    /// builds, also if `perm` is not a permutation.
    pub fn permute(&mut self, f: Ref, perm: &[u32]) -> Ref {
        debug_assert!(
            is_permutation(perm),
            "permute: perm must be a permutation of 0..{}",
            perm.len()
        );
        let scope = self.new_scope();
        self.permute_rec(f, perm, scope)
    }

    fn permute_rec(&mut self, f: Ref, perm: &[u32], scope: u32) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(r) = self.session.cache.lookup(op::SCOPED, f.raw(), scope, 1) {
            return r;
        }
        let v = self.top_var(f).expect("non-constant");
        let new_var = perm[v.index()];
        let (f0, f1) = self.shallow_cofactors(f, v);
        let lo = self.permute_rec(f0, perm, scope);
        let hi = self.permute_rec(f1, perm, scope);
        // The renamed variable may land *below* the children's new
        // positions, so rebuild with ITE (handles arbitrary targets).
        let vref = self.var(new_var);
        let r = self.ite(vref, hi, lo);
        self.session.cache.insert(op::SCOPED, f.raw(), scope, 1, r);
        r
    }

    /// Size of `f` if its variables were renamed by `perm` (the permuted
    /// BDD is built and measured; nodes stay in the manager).
    pub fn size_under(&mut self, f: Ref, perm: &[u32]) -> usize {
        let g = self.permute(f, perm);
        self.size(g)
    }
}

/// Result of an in-place reordering search.
#[derive(Clone, Debug)]
pub struct Reordered {
    /// The order the search left installed in the manager, as a
    /// **variable → level** map: `perm[var] = level` (the position of
    /// `var` in the decision order, 0 = root). This is a snapshot of
    /// [`Manager::var2level`]; use [`invert`]'s convention to read it the
    /// other way around. Always a permutation of `0..perm.len()`.
    pub perm: Vec<u32>,
    /// The searched function — the *same* `Ref` that was passed in:
    /// in-place reordering never rebuilds or renames it.
    pub function: Ref,
    /// Size of `function` under the installed order.
    pub size: usize,
}

/// Whether `perm` is a permutation of `0..perm.len()`.
fn is_permutation(perm: &[u32]) -> bool {
    let mut seen = vec![false; perm.len()];
    perm.iter()
        .all(|&p| (p as usize) < seen.len() && !std::mem::replace(&mut seen[p as usize], true))
}

/// Window-permutation minimization over the manager's live order: for each
/// sliding window of `window` adjacent *levels* (window-3 is the classic
/// CUDD `WINDOW3` heuristic), all `window!` orderings are evaluated and
/// the one minimizing `size(f)` is installed in place through
/// [`Manager::swap_levels`], until a full sweep yields no improvement or
/// `max_sweeps` is reached.
///
/// Candidates are *probed* with cheap [`Manager::size_under`] renamings —
/// O(|f|) each, touching nobody else's nodes — and only a winning
/// arrangement pays the swap primitive, whose cost scales with the whole
/// manager's population at the affected levels. On the converged orders
/// typical of flows decomposing many same-shaped cones, almost every
/// window is already optimal, so the global cost is paid exactly where
/// the order actually changes.
///
/// The search runs in place: `f` is returned unchanged (same `Ref`, same
/// function) with the minimizing order left installed in the manager —
/// which also re-shapes every other function sharing these variables, as
/// dynamic reordering always does. Rejected probes are garbage; the
/// search protects `f` and offers the manager a
/// [`Manager::maybe_collect`] after each window position, so long passes
/// recycle their trials instead of growing the arena. Functions the
/// *caller* holds across this call must be protected by the caller.
pub fn window_reorder(m: &mut Manager, f: Ref, window: usize, max_sweeps: usize) -> Reordered {
    let n = m.num_vars() as usize;
    let mut best_size = m.size(f);
    if n >= 2 && window >= 2 {
        m.protect(f);
        let window = window.min(n);
        // size(f) depends only on the *relative* order of f's support
        // variables, so a window holding fewer than two of them cannot
        // change it — skip those positions instead of probing shuffles of
        // foreign levels. (Support is a set of variable identities,
        // stable across every swap.)
        let mut in_support = vec![false; n];
        for v in m.support(f) {
            if v.index() < n {
                in_support[v.index()] = true;
            }
        }
        for _ in 0..max_sweeps {
            let mut improved = false;
            for start in 0..=(n - window) {
                let slice: Vec<u32> = m.level2var()[start..start + window].to_vec();
                let support_vars = slice.iter().filter(|&&v| in_support[v as usize]).count();
                if support_vars < 2 {
                    continue;
                }
                // Probe every other arrangement of the window's variables:
                // renaming cand[i] to behave as slice[i] measures f's size
                // under the order that seats cand[i] at level start + i.
                let mut best_slice = slice.clone();
                for cand in permutations(&slice) {
                    if cand == slice {
                        continue;
                    }
                    let mut perm: Vec<u32> = (0..n as u32).collect();
                    for (i, &v) in cand.iter().enumerate() {
                        perm[v as usize] = slice[i];
                    }
                    let s = m.size_under(f, &perm);
                    if s < best_size {
                        best_size = s;
                        best_slice = cand;
                        improved = true;
                    }
                }
                if best_slice != slice {
                    // Install the winner for real, by adjacent swaps. The
                    // probe promised this size; the in-place machinery must
                    // deliver exactly it (canonicity makes them equal).
                    restore_window(m, start, &best_slice);
                    debug_assert_eq!(m.size(f), best_size, "probe and swap must agree");
                }
                // Rejected probes are dead; let the manager recycle them.
                m.maybe_collect();
            }
            if !improved {
                break;
            }
        }
        m.release(f);
    }
    let perm = m.var2level().to_vec();
    debug_assert!(is_permutation(&perm));
    Reordered {
        perm,
        function: f,
        size: m.size(f),
    }
}

/// Rudell sifting scoped to a caller's function: protects `f`, runs one
/// sift pass actively moving only `f`'s support variables (the metric is
/// still the whole protected-root size, so other protected functions are
/// never sacrificed), and reports the order it installed. Like
/// [`window_reorder`] this is in place: the returned `function` is the
/// `f` that was passed in. The pass collects (see [`Manager::sift`]), so
/// call it only at quiescent points.
pub fn sift_reorder(m: &mut Manager, f: Ref, cfg: &SiftConfig) -> Reordered {
    m.protect(f);
    let support = m.support(f);
    m.sift_vars(cfg, &support);
    m.release(f);
    let perm = m.var2level().to_vec();
    debug_assert!(is_permutation(&perm));
    Reordered {
        perm,
        function: f,
        size: m.size(f),
    }
}

/// [`sift_reorder`] to convergence: protects `f` and repeats
/// budget-relaxed sift passes over its support
/// ([`Manager::sift_to_fixpoint`]'s contract, scoped like
/// [`Manager::sift_vars`]) until a pass improves the rooted size by less
/// than [`ConvergeConfig::min_gain`]. The converged size is never worse
/// than a single pass's — each pass parks every variable at its best
/// seen position, its start included. In place, and collecting, like
/// [`sift_reorder`].
pub fn sift_converge_reorder(m: &mut Manager, f: Ref, cfg: &ConvergeConfig) -> Reordered {
    m.protect(f);
    let support = m.support(f);
    m.sift_to_fixpoint_filtered(cfg, Some(&support));
    m.release(f);
    let perm = m.var2level().to_vec();
    debug_assert!(is_permutation(&perm));
    Reordered {
        perm,
        function: f,
        size: m.size(f),
    }
}

/// Bubbles the levels `[start, start + target.len())` into the variable
/// order given by `target` using adjacent swaps.
fn restore_window(m: &mut Manager, start: usize, target: &[u32]) {
    for (i, &want) in target.iter().enumerate() {
        let mut pos = (start + i..start + target.len())
            .find(|&p| m.level2var()[p] == want)
            .expect("window restore target must be a reordering of the window");
        while pos > start + i {
            m.swap_levels((pos - 1) as u32);
            pos -= 1;
        }
    }
}

/// All permutations of a small slice (window ≤ 4 in practice).
fn permutations(items: &[u32]) -> Vec<Vec<u32>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Inverts a **position → value** list into a **value → position** list
/// (and vice versa — inversion is an involution): given
/// `map[pos] = val`, returns `inv` with `inv[val] = pos`. Used to flip a
/// `level2var` view into a `var2level` view of the same order.
///
/// # Panics
///
/// In debug builds, panics if `map` is not a permutation.
pub fn invert(map: &[u32]) -> Vec<u32> {
    debug_assert!(is_permutation(map), "invert: input must be a permutation");
    let mut inv = vec![0u32; map.len()];
    for (pos, &val) in map.iter().enumerate() {
        inv[val as usize] = pos as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic order-sensitive function: x0·x1 + x2·x3 + x4·x5 is
    /// linear in the good order and exponential in the interleaved order.
    fn chain_and_or(m: &mut Manager, pairs: &[(u32, u32)]) -> Ref {
        let mut f = m.zero();
        for &(a, b) in pairs {
            let va = m.var(a);
            let vb = m.var(b);
            let ab = m.and(va, vb);
            f = m.or(f, ab);
        }
        f
    }

    #[test]
    fn permute_is_function_renaming() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        m.var(2);
        let f = m.ite(a, b, c);
        // Swap variables 1 and 2: ite(a, c, b).
        let g = m.permute(f, &[0, 2, 1]);
        let expect = m.ite(a, c, b);
        assert_eq!(g, expect);
    }

    #[test]
    fn permute_identity_is_noop() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..5).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        assert_eq!(m.permute(f, &[0, 1, 2, 3, 4]), f);
    }

    #[test]
    fn bad_order_is_exponentially_larger() {
        let mut m = Manager::new();
        for i in 0..6 {
            m.var(i);
        }
        let good = chain_and_or(&mut m, &[(0, 1), (2, 3), (4, 5)]);
        let bad = chain_and_or(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        assert!(m.size(bad) > m.size(good), "interleaving must cost nodes");
        assert_eq!(m.size(good), 6);
    }

    #[test]
    fn window_reorder_recovers_good_order_in_place() {
        let mut m = Manager::new();
        for i in 0..6 {
            m.var(i);
        }
        // Interleaved pairing: worst case for the identity order.
        let bad = chain_and_or(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        m.protect(bad);
        let before = m.size(bad);
        let result = window_reorder(&mut m, bad, 3, 8);
        assert!(
            result.size < before,
            "window reordering must shrink {before} nodes (got {})",
            result.size
        );
        assert_eq!(result.size, 6, "optimal pairing order reachable");
        // In-place: the same Ref, same function, new order installed.
        assert_eq!(result.function, bad);
        assert_eq!(m.size(bad), result.size);
        assert_eq!(result.perm, m.var2level().to_vec());
        for row in 0..64u32 {
            let assignment: Vec<bool> = (0..6).map(|i| row >> i & 1 == 1).collect();
            let want = (assignment[0] && assignment[3])
                || (assignment[1] && assignment[4])
                || (assignment[2] && assignment[5]);
            assert_eq!(m.eval(bad, &assignment), want, "row {row}");
        }
        m.release(bad);
    }

    #[test]
    fn window_reorder_on_symmetric_function_is_stable() {
        // Parity is order-independent: reordering must change nothing.
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        let before = m.size(f);
        let result = window_reorder(&mut m, f, 3, 4);
        assert_eq!(result.size, before);
        assert_eq!(result.function, f);
    }

    #[test]
    fn sift_reorder_matches_window_quality_on_pairing() {
        let mut m = Manager::new();
        for i in 0..6 {
            m.var(i);
        }
        let bad = chain_and_or(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        let before = m.size(bad);
        let result = sift_reorder(&mut m, bad, &SiftConfig::default());
        assert_eq!(result.function, bad, "sift is in place");
        assert!(result.size < before, "{before} -> {}", result.size);
        assert_eq!(result.size, 6);
        assert_eq!(result.perm, m.var2level().to_vec());
    }

    #[test]
    fn permutations_enumerates_factorial() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[1]).len(), 1);
        let perms = permutations(&[1, 2, 3, 4]);
        assert_eq!(perms.len(), 24);
        let unique: std::collections::HashSet<_> = perms.into_iter().collect();
        assert_eq!(unique.len(), 24, "no duplicates");
    }

    #[test]
    fn invert_roundtrips_and_flips_direction() {
        let level2var = vec![2u32, 0, 3, 1]; // level -> var
        let var2level = invert(&level2var); // var -> level
        assert_eq!(var2level, vec![1, 3, 0, 2]);
        assert_eq!(invert(&var2level), level2var, "inversion is an involution");
    }
}
