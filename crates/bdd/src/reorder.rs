//! Variable reordering: permutation rebuilding and a window-permutation
//! minimization pass.
//!
//! The BDS decomposition engine reorders each local BDD before searching
//! for dominators (§IV-B of the BDS-MAJ paper: "As a first step, it
//! performs variable reordering to compact the size of the input BDD").
//! This package keeps variable indices equal to levels, so reordering is
//! expressed as *rebuilding a function under a permutation of its
//! variables* rather than mutating the manager in place — simpler,
//! allocation-friendly, and exactly as effective for the supernode-sized
//! BDDs the engine works on.

use crate::manager::{op, Manager};
use crate::reference::Ref;

impl Manager {
    /// Rebuilds `f` with every variable `v` replaced by `perm[v]`.
    ///
    /// `perm` must be a permutation of `0..perm.len()` covering the
    /// support of `f`. The result is the same function *up to variable
    /// renaming*; its size may differ, which is the point of reordering.
    ///
    /// The per-call memo lives in the shared computed cache under a fresh
    /// `op::SCOPED` epoch, so no allocation happens per call.
    ///
    /// # Panics
    ///
    /// Panics if a support variable of `f` is outside `perm`.
    pub fn permute(&mut self, f: Ref, perm: &[u32]) -> Ref {
        let scope = self.new_scope();
        self.permute_rec(f, perm, scope)
    }

    fn permute_rec(&mut self, f: Ref, perm: &[u32], scope: u32) -> Ref {
        if f.is_const() {
            return f;
        }
        if let Some(r) = self.cache.lookup(op::SCOPED, f.raw(), scope, 1) {
            return r;
        }
        let v = self.top_var(f).expect("non-constant");
        let new_var = perm[v.index()];
        let (f0, f1) = self.shallow_cofactors(f, v);
        let lo = self.permute_rec(f0, perm, scope);
        let hi = self.permute_rec(f1, perm, scope);
        // The permuted variable may land *below* the children's new
        // positions, so rebuild with ITE (handles arbitrary targets).
        let vref = self.var(new_var);
        let r = self.ite(vref, hi, lo);
        self.cache.insert(op::SCOPED, f.raw(), scope, 1, r);
        r
    }

    /// Size of `f` if its variables were reordered by `perm` (the
    /// permuted BDD is built and measured; nodes stay in the manager).
    pub fn size_under(&mut self, f: Ref, perm: &[u32]) -> usize {
        let g = self.permute(f, perm);
        self.size(g)
    }
}

/// Result of a reordering search: the minimizing permutation, the
/// reordered function, and its size.
#[derive(Clone, Debug)]
pub struct Reordered {
    /// `perm[old_var] = new_var` mapping found by the search.
    pub perm: Vec<u32>,
    /// The function rebuilt under [`Self::perm`].
    pub function: Ref,
    /// Size of the reordered function.
    pub size: usize,
}

/// Sifting-style local search: repeatedly improves the order by trying all
/// permutations of a sliding window of `window` adjacent variables
/// (window-3 is the classic CUDD `WINDOW3` heuristic), until a full sweep
/// yields no improvement or `max_sweeps` is reached.
///
/// Returns the best permutation found. The input function is not modified
/// (BDDs are immutable); callers use [`Reordered::function`].
///
/// Every rejected trial permutation is garbage the moment it is measured,
/// which makes this the most allocation-heavy loop in the engine: the
/// search protects `f` and the incumbent best rebuild as collection roots
/// and offers the manager a [`Manager::maybe_collect`] after each window
/// position, so long reordering passes recycle their trials instead of
/// growing the arena. Functions the *caller* holds across this call must
/// be protected by the caller; the returned function is handed back
/// unprotected (protect it before the next collection point).
pub fn window_reorder(
    m: &mut Manager,
    f: Ref,
    num_vars: u32,
    window: usize,
    max_sweeps: usize,
) -> Reordered {
    let n = num_vars as usize;
    let mut best_perm: Vec<u32> = (0..num_vars).collect();
    let mut best_f = f;
    let mut best_size = m.size(f);
    if n < 2 || window < 2 {
        return Reordered {
            perm: best_perm,
            function: best_f,
            size: best_size,
        };
    }
    m.protect(f);
    m.protect(best_f);
    let window = window.min(n);
    for _ in 0..max_sweeps {
        let mut improved = false;
        for start in 0..=(n - window) {
            // Try every permutation of the window slice.
            let slice: Vec<u32> = best_perm[start..start + window].to_vec();
            let mut candidates = permutations(&slice);
            candidates.retain(|c| *c != slice);
            for cand in candidates {
                let mut trial = best_perm.clone();
                trial[start..start + window].copy_from_slice(&cand);
                // `trial` maps position->var; we need var->position.
                let var_to_pos = invert(&trial);
                let g = m.permute(f, &var_to_pos);
                let gs = m.size(g);
                if gs < best_size {
                    best_size = gs;
                    best_perm = trial;
                    m.release(best_f);
                    best_f = m.protect(g);
                    improved = true;
                }
            }
            // Rejected trials are dead; let the manager recycle them.
            m.maybe_collect();
        }
        if !improved {
            break;
        }
    }
    m.release(f);
    m.release(best_f);
    Reordered {
        perm: invert(&best_perm),
        function: best_f,
        size: best_size,
    }
}

/// All permutations of a small slice (window ≤ 4 in practice).
fn permutations(items: &[u32]) -> Vec<Vec<u32>> {
    if items.len() <= 1 {
        return vec![items.to_vec()];
    }
    let mut out = Vec::new();
    for (i, &head) in items.iter().enumerate() {
        let mut rest = items.to_vec();
        rest.remove(i);
        for mut tail in permutations(&rest) {
            tail.insert(0, head);
            out.push(tail);
        }
    }
    out
}

/// Inverts a position→var list into a var→position list.
fn invert(pos_to_var: &[u32]) -> Vec<u32> {
    let mut inv = vec![0u32; pos_to_var.len()];
    for (pos, &var) in pos_to_var.iter().enumerate() {
        inv[var as usize] = pos as u32;
    }
    inv
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The classic order-sensitive function: x0·x1 + x2·x3 + x4·x5 is
    /// linear in the good order and exponential in the interleaved order.
    fn chain_and_or(m: &mut Manager, pairs: &[(u32, u32)]) -> Ref {
        let mut f = m.zero();
        for &(a, b) in pairs {
            let va = m.var(a);
            let vb = m.var(b);
            let ab = m.and(va, vb);
            f = m.or(f, ab);
        }
        f
    }

    #[test]
    fn permute_is_function_renaming() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        m.var(2);
        let f = m.ite(a, b, c);
        // Swap variables 1 and 2: ite(a, c, b).
        let g = m.permute(f, &[0, 2, 1]);
        let expect = m.ite(a, c, b);
        assert_eq!(g, expect);
    }

    #[test]
    fn permute_identity_is_noop() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..5).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        assert_eq!(m.permute(f, &[0, 1, 2, 3, 4]), f);
    }

    #[test]
    fn bad_order_is_exponentially_larger() {
        let mut m = Manager::new();
        for i in 0..6 {
            m.var(i);
        }
        let good = chain_and_or(&mut m, &[(0, 1), (2, 3), (4, 5)]);
        let bad = chain_and_or(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        assert!(m.size(bad) > m.size(good), "interleaving must cost nodes");
        assert_eq!(m.size(good), 6);
    }

    #[test]
    fn window_reorder_recovers_good_order() {
        let mut m = Manager::new();
        for i in 0..6 {
            m.var(i);
        }
        // Interleaved pairing: worst case for the identity order.
        let bad = chain_and_or(&mut m, &[(0, 3), (1, 4), (2, 5)]);
        let before = m.size(bad);
        let result = window_reorder(&mut m, bad, 6, 3, 8);
        assert!(
            result.size < before,
            "window reordering must shrink {before} nodes (got {})",
            result.size
        );
        assert_eq!(result.size, 6, "optimal pairing order reachable");
        // The permutation actually produces the claimed function.
        let rebuilt = m.permute(bad, &result.perm);
        assert_eq!(rebuilt, result.function);
    }

    #[test]
    fn window_reorder_on_symmetric_function_is_stable() {
        // Parity is order-independent: reordering must change nothing.
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        let before = m.size(f);
        let result = window_reorder(&mut m, f, 8, 3, 4);
        assert_eq!(result.size, before);
    }

    #[test]
    fn permutations_enumerates_factorial() {
        assert_eq!(permutations(&[1, 2, 3]).len(), 6);
        assert_eq!(permutations(&[1]).len(), 1);
        let perms = permutations(&[1, 2, 3, 4]);
        assert_eq!(perms.len(), 24);
        let unique: std::collections::HashSet<_> = perms.into_iter().collect();
        assert_eq!(unique.len(), 24, "no duplicates");
    }

    #[test]
    fn invert_roundtrips() {
        let p = vec![2u32, 0, 3, 1];
        let inv = invert(&p);
        assert_eq!(invert(&inv), p);
    }
}
