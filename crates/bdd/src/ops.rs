//! The if-then-else operator and the Boolean connectives derived from it.

use crate::manager::Manager;
use crate::reference::{Ref, Var};

impl Manager {
    /// If-then-else: `ite(f, g, h) = f·g + f'·h`.
    ///
    /// This is the single recursive kernel of the package; every two-operand
    /// connective is a special case. Results are memoized in the computed
    /// table, and the standard-triple normalizations keep the cache hit rate
    /// high (Brace, Rudell, Bryant, DAC'90).
    ///
    /// # Example
    ///
    /// ```
    /// use bdd::Manager;
    /// let mut m = Manager::new();
    /// let (s, a, b) = (m.var(0), m.var(1), m.var(2));
    /// let mux = m.ite(s, a, b);
    /// assert!(m.eval(mux, &[true, true, false]));
    /// assert!(!m.eval(mux, &[false, true, false]));
    /// ```
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        // Terminal and absorption cases.
        if f.is_one() {
            return g;
        }
        if f.is_zero() {
            return h;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if g.is_zero() && h.is_one() {
            return !f;
        }
        let (mut f, mut g, mut h) = (f, g, h);
        // ite(f, f, h) = ite(f, 1, h); ite(f, !f, h) = ite(f, 0, h);
        // ite(f, g, f) = ite(f, g, 0); ite(f, g, !f) = ite(f, g, 1).
        if g == f {
            g = Ref::ONE;
        } else if g == !f {
            g = Ref::ZERO;
        }
        if h == f {
            h = Ref::ZERO;
        } else if h == !f {
            h = Ref::ONE;
        }
        if g == h {
            return g;
        }
        if g.is_one() && h.is_zero() {
            return f;
        }
        if g.is_zero() && h.is_one() {
            return !f;
        }
        // Commutative normalizations to improve cache sharing:
        // and/or/xor-like triples can order their operands canonically.
        if g.is_one() && self.level(h) < self.level(f) {
            std::mem::swap(&mut f, &mut h); // or(f, h) = or(h, f)
        } else if h.is_zero() && self.level(g) < self.level(f) {
            std::mem::swap(&mut f, &mut g); // and(f, g) = and(g, f)
        } else if g == !h && self.level(g) < self.level(f) {
            // xnor(f, g) is symmetric: ite(f, g, !g) = ite(g, f, !f).
            let old_f = f;
            f = g;
            g = old_f;
            h = !old_f;
        }
        // Keep the predicate regular: ite(!f, g, h) = ite(f, h, g).
        if f.is_complemented() {
            f = !f;
            std::mem::swap(&mut g, &mut h);
        }
        // Keep the then-branch regular so cached entries are canonical:
        // ite(f, g, h) = !ite(f, !g, !h).
        let complement_result = g.is_complemented();
        if complement_result {
            g = !g;
            h = !h;
        }

        let key = (f.raw(), g.raw(), h.raw());
        if let Some(&r) = self.ite_cache.get(&key) {
            return r.xor_complement(complement_result);
        }

        let v = Var(self.level(f).min(self.level(g)).min(self.level(h)));
        let (f0, f1) = self.shallow_cofactors(f, v);
        let (g0, g1) = self.shallow_cofactors(g, v);
        let (h0, h1) = self.shallow_cofactors(h, v);
        let t = self.ite(f1, g1, h1);
        let e = self.ite(f0, g0, h0);
        let r = self.mk(v, e, t);
        self.ite_cache.insert(key, r);
        r.xor_complement(complement_result)
    }

    /// Logical negation (free on complemented-edge BDDs).
    pub fn not(&self, f: Ref) -> Ref {
        !f
    }

    /// Conjunction `f · g`.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::ZERO)
    }

    /// Disjunction `f + g`.
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, Ref::ONE, g)
    }

    /// Negated conjunction.
    pub fn nand(&mut self, f: Ref, g: Ref) -> Ref {
        !self.and(f, g)
    }

    /// Negated disjunction.
    pub fn nor(&mut self, f: Ref, g: Ref) -> Ref {
        !self.or(f, g)
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, !g, g)
    }

    /// Exclusive nor (equivalence) `f ⊙ g`.
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, !g)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        self.ite(f, g, Ref::ONE)
    }

    /// Three-input majority `Maj(a, b, c) = ab + bc + ac`, the radix-3
    /// primitive at the heart of BDS-MAJ.
    pub fn maj(&mut self, a: Ref, b: Ref, c: Ref) -> Ref {
        let bc_or = self.or(b, c);
        let bc_and = self.and(b, c);
        self.ite(a, bc_or, bc_and)
    }

    /// n-ary conjunction over an iterator of functions.
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter()
            .fold(Ref::ONE, |acc, f| self.and(acc, f))
    }

    /// n-ary disjunction over an iterator of functions.
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter()
            .fold(Ref::ZERO, |acc, f| self.or(acc, f))
    }

    /// n-ary exclusive or over an iterator of functions.
    pub fn xor_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        fs.into_iter()
            .fold(Ref::ZERO, |acc, f| self.xor(acc, f))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Manager;

    /// Exhaustively compares a BDD against a reference closure on all
    /// assignments of `n` variables.
    fn assert_equiv(m: &Manager, f: Ref, n: u32, reference: impl Fn(&[bool]) -> bool) {
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                m.eval(f, &assignment),
                reference(&assignment),
                "mismatch at {assignment:?}"
            );
        }
    }

    #[test]
    fn two_operand_connectives_match_truth_tables() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let cases: Vec<(Ref, fn(bool, bool) -> bool)> = vec![
            (m.and(a, b), |x, y| x && y),
            (m.or(a, b), |x, y| x || y),
            (m.nand(a, b), |x, y| !(x && y)),
            (m.nor(a, b), |x, y| !(x || y)),
            (m.xor(a, b), |x, y| x ^ y),
            (m.xnor(a, b), |x, y| !(x ^ y)),
            (m.implies(a, b), |x, y| !x || y),
        ];
        for (f, reference) in cases {
            assert_equiv(&m, f, 2, |v| reference(v[0], v[1]));
        }
    }

    #[test]
    fn ite_is_shannon_expansion() {
        let mut m = Manager::new();
        let (f, g, h) = (m.var(0), m.var(1), m.var(2));
        let r = m.ite(f, g, h);
        assert_equiv(&m, r, 3, |v| if v[0] { v[1] } else { v[2] });
    }

    #[test]
    fn maj_matches_definition() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        assert_equiv(&m, f, 3, |v| {
            (v[0] as u8 + v[1] as u8 + v[2] as u8) >= 2
        });
    }

    #[test]
    fn demorgan_holds_structurally() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let lhs = m.nand(a, b);
        let rhs = m.or(!a, !b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_chain_is_parity() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        assert_equiv(&m, f, 8, |v| v.iter().filter(|&&b| b).count() % 2 == 1);
    }

    #[test]
    fn and_or_all_handle_empty_and_units() {
        let mut m = Manager::new();
        assert_eq!(m.and_all([]), Ref::ONE);
        assert_eq!(m.or_all([]), Ref::ZERO);
        let a = m.var(0);
        assert_eq!(m.and_all([a]), a);
        assert_eq!(m.or_all([a]), a);
    }

    #[test]
    fn parity_bdd_is_linear_in_variables() {
        // The classic ROBDD result: parity has a linear-size BDD.
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..16).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        assert_eq!(m.size(f), 16);
    }

    #[test]
    fn ite_caching_returns_identical_refs() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let r1 = m.ite(a, b, c);
        let r2 = m.ite(a, b, c);
        assert_eq!(r1, r2);
        let r3 = m.ite(!a, c, b); // normalized form of the same function
        assert_eq!(r1, r3);
    }
}
