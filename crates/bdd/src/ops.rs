//! The if-then-else operator, the specialized AND/XOR kernels, and the
//! Boolean connectives derived from them.
//!
//! The classical package funnels every connective through a single
//! memoized ITE (Brace, Rudell, Bryant, DAC'90). Here the two dominant
//! connectives get their own recursive kernels — [`Manager::and`] and
//! [`Manager::xor`] — which skip the full standard-triple normalization,
//! carry tighter terminal tests, and share the set-associative computed
//! cache with ITE through per-operation tag codes (`op::AND`, `op::XOR`,
//! `op::ITE`). ITE itself detects the two-operand shapes up front and
//! forwards to the specialized kernels, so the cache is never split
//! between equivalent formulations of one operation.
//!
//! Since the concurrent-kernel split (see the crate-level "Concurrency
//! contract"), every recursion here is a method on [`Session`] taking
//! `(&NodeStore, ...)`: node publication goes through the store's CAS
//! protocol while memoization and governance ticks stay per-session.
//! The [`Manager`] entry points below run the same kernels against the
//! façade's store and default session via `run_kernel`, which also
//! drains the session's created-node log and turns shared-table
//! exhaustion into a stop-the-world grow-and-retry.
//!
//! All recursions branch on *levels* (positions in the current variable
//! order, via `NodeStore::level`), not raw variable indices, so they stay
//! correct under any order the sifting machinery installs; constants
//! report the `u32::MAX` pseudo-level and need no separate terminal
//! branch when picking the top level.
//!
//! # Fallible entry points
//!
//! Every kernel exists in two forms: the classic infallible one (`ite`,
//! `and`, ...) and a budget-governed `try_*` twin returning
//! `Result<Ref, LimitExceeded>`. The recursions are written once, in the
//! fallible form; each infallible entry is a thin wrapper running the
//! same recursion with the manager's resource budget suspended
//! ([`Manager::ungoverned`]), so it can never abort. A `try_*` abort is
//! clean by construction: all invariant maintenance (unique table,
//! interior refcounts, per-variable lists) happens atomically inside
//! the store's publication protocol, so unwinding between `mk` calls
//! leaves the store fully consistent and the partially built nodes as
//! unreferenced garbage for the next collection (see
//! [`crate::LimitExceeded`]).
//!
//! None of the kernels here triggers garbage collection: recursive
//! intermediates need no protection, and results only need
//! [`Manager::protect`] when the caller holds them across an explicit
//! `collect`/`maybe_collect` point. Every node these kernels produce is
//! funnelled through `Session::mk`, which also maintains the interior
//! (arena-edge) reference counts — the kernels themselves never touch
//! refcounts, so the accounting behind the refcount-driven collector and
//! sifting's O(1) size deltas cannot drift here.

use crate::manager::Manager;
use crate::reference::Ref;
use crate::session::{op, LimitExceeded, Session};
use crate::store::NodeStore;

impl Session {
    /// ITE entry: terminal/absorption filtering and two-operand routing,
    /// then the memoized three-operand recursion.
    pub(crate) fn ite_ap(
        &mut self,
        store: &NodeStore,
        f: Ref,
        g: Ref,
        h: Ref,
    ) -> Result<Ref, LimitExceeded> {
        // Terminal and absorption cases.
        if f.is_one() {
            return Ok(g);
        }
        if f.is_zero() {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        let (mut g, mut h) = (g, h);
        // ite(f, f, h) = ite(f, 1, h); ite(f, !f, h) = ite(f, 0, h);
        // ite(f, g, f) = ite(f, g, 0); ite(f, g, !f) = ite(f, g, 1).
        if g == f {
            g = Ref::ONE;
        } else if g == !f {
            g = Ref::ZERO;
        }
        if h == f {
            h = Ref::ZERO;
        } else if h == !f {
            h = Ref::ONE;
        }
        // Two-operand shapes route to the specialized kernels (which own
        // their terminal cases and cache tags).
        if g.is_one() {
            if h.is_zero() {
                return Ok(f);
            }
            return self.or_ap(store, f, h); // ite(f, 1, h) = f + h
        }
        if g.is_zero() {
            if h.is_one() {
                return Ok(!f);
            }
            let nf = !f;
            return self.and_rec(store, nf, h); // ite(f, 0, h) = f'·h
        }
        if h.is_zero() {
            return self.and_rec(store, f, g); // ite(f, g, 0) = f·g
        }
        if h.is_one() {
            let ng = !g;
            return Ok(!self.and_rec(store, f, ng)?); // ite(f, g, 1) = f' + g
        }
        if g == !h {
            return Ok(!self.xor_ap(store, f, g)?); // ite(f, g, g') = f ⊙ g
        }
        self.ite_rec(store, f, g, h)
    }

    /// The memoized three-operand ITE recursion (all two-operand shapes
    /// already filtered out by [`Session::ite_ap`]).
    fn ite_rec(&mut self, store: &NodeStore, f: Ref, g: Ref, h: Ref) -> Result<Ref, LimitExceeded> {
        self.tick(store)?;
        let (mut f, mut g, mut h) = (f, g, h);
        // Keep the predicate regular: ite(!f, g, h) = ite(f, h, g).
        if f.is_complemented() {
            f = !f;
            std::mem::swap(&mut g, &mut h);
        }
        // Keep the then-branch regular so cached entries are canonical:
        // ite(f, g, h) = !ite(f, !g, !h).
        let complement_result = g.is_complemented();
        if complement_result {
            g = !g;
            h = !h;
        }

        if let Some(r) = self.lookup2(store, op::ITE, f.raw(), g.raw(), h.raw()) {
            return Ok(r.xor_complement(complement_result));
        }
        let work0 = self.cache.lookups;

        let v = store.var_at_level(store.level(f).min(store.level(g)).min(store.level(h)));
        let (f0, f1) = store.shallow_cofactors(f, v);
        let (g0, g1) = store.shallow_cofactors(g, v);
        let (h0, h1) = store.shallow_cofactors(h, v);
        let t = self.ite_ap(store, f1, g1, h1)?;
        let e = self.ite_ap(store, f0, g0, h0)?;
        let r = self.mk(store, v, e, t)?;
        self.publish2(store, op::ITE, f.raw(), g.raw(), h.raw(), work0, r);
        Ok(r.xor_complement(complement_result))
    }

    /// The specialized AND kernel: terminal tests, operand ordering, the
    /// memoized recursion.
    pub(crate) fn and_rec(
        &mut self,
        store: &NodeStore,
        f: Ref,
        g: Ref,
    ) -> Result<Ref, LimitExceeded> {
        // Terminal cases.
        if f == g {
            return Ok(f);
        }
        if f == !g || f.is_zero() || g.is_zero() {
            return Ok(Ref::ZERO);
        }
        if f.is_one() {
            return Ok(g);
        }
        if g.is_one() {
            return Ok(f);
        }
        self.tick(store)?;
        // Commutative: order operands so (f, g) and (g, f) share a slot.
        let (f, g) = if f.raw() <= g.raw() { (f, g) } else { (g, f) };
        if let Some(r) = self.lookup2(store, op::AND, f.raw(), g.raw(), 0) {
            return Ok(r);
        }
        let work0 = self.cache.lookups;
        let v = store.var_at_level(store.level(f).min(store.level(g)));
        let (f0, f1) = store.shallow_cofactors(f, v);
        let (g0, g1) = store.shallow_cofactors(g, v);
        let t = self.and_rec(store, f1, g1)?;
        let e = self.and_rec(store, f0, g0)?;
        let r = self.mk(store, v, e, t)?;
        self.publish2(store, op::AND, f.raw(), g.raw(), 0, work0, r);
        Ok(r)
    }

    /// Disjunction by De Morgan over the AND kernel (negation is free,
    /// so this shares the `op::AND` cache).
    pub(crate) fn or_ap(
        &mut self,
        store: &NodeStore,
        f: Ref,
        g: Ref,
    ) -> Result<Ref, LimitExceeded> {
        let (nf, ng) = (!f, !g);
        Ok(!self.and_rec(store, nf, ng)?)
    }

    /// XOR entry: complements factor out of XOR entirely
    /// (`!f ⊕ g = !(f ⊕ g)`), so the recursion runs on regular,
    /// operand-ordered references and one cache entry covers all four
    /// polarity combinations.
    pub(crate) fn xor_ap(
        &mut self,
        store: &NodeStore,
        f: Ref,
        g: Ref,
    ) -> Result<Ref, LimitExceeded> {
        if f == g {
            return Ok(Ref::ZERO);
        }
        if f == !g {
            return Ok(Ref::ONE);
        }
        // Factor the complements out and order the operands. (Equal
        // regular parts are impossible here: that is exactly the f == g /
        // f == !g pair already handled above.)
        let complement_result = f.is_complemented() ^ g.is_complemented();
        let (mut f, mut g) = (f.regular(), g.regular());
        debug_assert_ne!(f, g);
        if f.raw() > g.raw() {
            std::mem::swap(&mut f, &mut g);
        }
        // After ordering, a constant operand can only be f (= ONE regular).
        if f.is_one() {
            return Ok((!g).xor_complement(complement_result));
        }
        let r = self.xor_rec(store, f, g)?;
        Ok(r.xor_complement(complement_result))
    }

    /// XOR recursion on regular, ordered, non-constant operands.
    fn xor_rec(&mut self, store: &NodeStore, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        debug_assert!(!f.is_complemented() && !g.is_complemented());
        debug_assert!(f.raw() < g.raw() && !f.is_const());
        self.tick(store)?;
        if let Some(r) = self.lookup2(store, op::XOR, f.raw(), g.raw(), 0) {
            return Ok(r);
        }
        let work0 = self.cache.lookups;
        let v = store.var_at_level(store.level(f).min(store.level(g)));
        let (f0, f1) = store.shallow_cofactors(f, v);
        let (g0, g1) = store.shallow_cofactors(g, v);
        let t = self.xor_ap(store, f1, g1)?;
        let e = self.xor_ap(store, f0, g0)?;
        let r = self.mk(store, v, e, t)?;
        self.publish2(store, op::XOR, f.raw(), g.raw(), 0, work0, r);
        Ok(r)
    }
}

impl Manager {
    /// If-then-else: `ite(f, g, h) = f·g + f'·h`.
    ///
    /// Two-operand shapes (`and`/`or`/`xor`/... patterns) are forwarded to
    /// the specialized kernels; the remaining true three-operand triples
    /// are normalized (regular, canonical predicate) and memoized under
    /// the `op::ITE` tag.
    ///
    /// # Example
    ///
    /// ```
    /// use bdd::Manager;
    /// let mut m = Manager::new();
    /// let (s, a, b) = (m.var(0), m.var(1), m.var(2));
    /// let mux = m.ite(s, a, b);
    /// assert!(m.eval(mux, &[true, true, false]));
    /// assert!(!m.eval(mux, &[false, true, false]));
    /// ```
    pub fn ite(&mut self, f: Ref, g: Ref, h: Ref) -> Ref {
        self.ungoverned(|m| m.try_ite(f, g, h))
    }

    /// Budget-governed [`Manager::ite`]: aborts cleanly with
    /// [`LimitExceeded`] when the installed [`crate::ResourceLimits`] are
    /// crossed.
    pub fn try_ite(&mut self, f: Ref, g: Ref, h: Ref) -> Result<Ref, LimitExceeded> {
        self.run_kernel(|st, s| s.ite_ap(st, f, g, h))
    }

    /// Logical negation (free on complemented-edge BDDs).
    pub fn not(&self, f: Ref) -> Ref {
        !f
    }

    /// Conjunction `f · g` — the specialized AND kernel.
    pub fn and(&mut self, f: Ref, g: Ref) -> Ref {
        self.ungoverned(|m| m.try_and(f, g))
    }

    /// Budget-governed [`Manager::and`].
    pub fn try_and(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        self.run_kernel(|st, s| s.and_rec(st, f, g))
    }

    /// Disjunction `f + g` (De Morgan over the AND kernel; negation is
    /// free, so this shares the `op::AND` cache).
    pub fn or(&mut self, f: Ref, g: Ref) -> Ref {
        self.ungoverned(|m| m.try_or(f, g))
    }

    /// Budget-governed [`Manager::or`].
    pub fn try_or(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        self.run_kernel(|st, s| s.or_ap(st, f, g))
    }

    /// Negated conjunction.
    pub fn nand(&mut self, f: Ref, g: Ref) -> Ref {
        !self.and(f, g)
    }

    /// Negated disjunction.
    pub fn nor(&mut self, f: Ref, g: Ref) -> Ref {
        !self.or(f, g)
    }

    /// Exclusive or `f ⊕ g` — the specialized XOR kernel.
    ///
    /// Complements factor out of XOR entirely (`!f ⊕ g = !(f ⊕ g)`), so the
    /// recursion runs on regular, operand-ordered references and one cache
    /// entry covers all four polarity combinations.
    pub fn xor(&mut self, f: Ref, g: Ref) -> Ref {
        self.ungoverned(|m| m.try_xor(f, g))
    }

    /// Budget-governed [`Manager::xor`].
    pub fn try_xor(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        self.run_kernel(|st, s| s.xor_ap(st, f, g))
    }

    /// Exclusive nor (equivalence) `f ⊙ g`.
    pub fn xnor(&mut self, f: Ref, g: Ref) -> Ref {
        !self.xor(f, g)
    }

    /// Budget-governed [`Manager::xnor`].
    pub fn try_xnor(&mut self, f: Ref, g: Ref) -> Result<Ref, LimitExceeded> {
        Ok(!self.try_xor(f, g)?)
    }

    /// Implication `f → g`.
    pub fn implies(&mut self, f: Ref, g: Ref) -> Ref {
        let ng = !g;
        !self.and(f, ng)
    }

    /// Three-input majority `Maj(a, b, c) = ab + bc + ac`, the radix-3
    /// primitive at the heart of BDS-MAJ.
    pub fn maj(&mut self, a: Ref, b: Ref, c: Ref) -> Ref {
        self.ungoverned(|m| m.try_maj(a, b, c))
    }

    /// Budget-governed [`Manager::maj`].
    pub fn try_maj(&mut self, a: Ref, b: Ref, c: Ref) -> Result<Ref, LimitExceeded> {
        let bc_or = self.try_or(b, c)?;
        let bc_and = self.try_and(b, c)?;
        self.try_ite(a, bc_or, bc_and)
    }

    /// n-ary conjunction over an iterator of functions.
    pub fn and_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        self.ungoverned(|m| m.try_and_all(fs))
    }

    /// Budget-governed [`Manager::and_all`].
    pub fn try_and_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
    ) -> Result<Ref, LimitExceeded> {
        let mut acc = Ref::ONE;
        for f in fs {
            acc = self.try_and(acc, f)?;
        }
        Ok(acc)
    }

    /// n-ary disjunction over an iterator of functions.
    pub fn or_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        self.ungoverned(|m| m.try_or_all(fs))
    }

    /// Budget-governed [`Manager::or_all`].
    pub fn try_or_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Result<Ref, LimitExceeded> {
        let mut acc = Ref::ZERO;
        for f in fs {
            acc = self.try_or(acc, f)?;
        }
        Ok(acc)
    }

    /// n-ary exclusive or over an iterator of functions.
    pub fn xor_all<I: IntoIterator<Item = Ref>>(&mut self, fs: I) -> Ref {
        self.ungoverned(|m| m.try_xor_all(fs))
    }

    /// Budget-governed [`Manager::xor_all`].
    pub fn try_xor_all<I: IntoIterator<Item = Ref>>(
        &mut self,
        fs: I,
    ) -> Result<Ref, LimitExceeded> {
        let mut acc = Ref::ZERO;
        for f in fs {
            acc = self.try_xor(acc, f)?;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::session::{LimitKind, ResourceLimits};
    use crate::Manager;

    /// Exhaustively compares a BDD against a reference closure on all
    /// assignments of `n` variables.
    fn assert_equiv(m: &Manager, f: Ref, n: u32, reference: impl Fn(&[bool]) -> bool) {
        for bits in 0u32..(1 << n) {
            let assignment: Vec<bool> = (0..n).map(|i| bits >> i & 1 == 1).collect();
            assert_eq!(
                m.eval(f, &assignment),
                reference(&assignment),
                "mismatch at {assignment:?}"
            );
        }
    }

    #[test]
    fn two_operand_connectives_match_truth_tables() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        type BoolOp = fn(bool, bool) -> bool;
        let cases: Vec<(Ref, BoolOp)> = vec![
            (m.and(a, b), |x, y| x && y),
            (m.or(a, b), |x, y| x || y),
            (m.nand(a, b), |x, y| !(x && y)),
            (m.nor(a, b), |x, y| !(x || y)),
            (m.xor(a, b), |x, y| x ^ y),
            (m.xnor(a, b), |x, y| !(x ^ y)),
            (m.implies(a, b), |x, y| !x || y),
        ];
        for (f, reference) in cases {
            assert_equiv(&m, f, 2, |v| reference(v[0], v[1]));
        }
    }

    #[test]
    fn ite_is_shannon_expansion() {
        let mut m = Manager::new();
        let (f, g, h) = (m.var(0), m.var(1), m.var(2));
        let r = m.ite(f, g, h);
        assert_equiv(&m, r, 3, |v| if v[0] { v[1] } else { v[2] });
    }

    #[test]
    fn maj_matches_definition() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        assert_equiv(&m, f, 3, |v| (v[0] as u8 + v[1] as u8 + v[2] as u8) >= 2);
    }

    #[test]
    fn demorgan_holds_structurally() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let lhs = m.nand(a, b);
        let rhs = m.or(!a, !b);
        assert_eq!(lhs, rhs);
    }

    #[test]
    fn xor_chain_is_parity() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        assert_equiv(&m, f, 8, |v| v.iter().filter(|&&b| b).count() % 2 == 1);
    }

    #[test]
    fn and_or_all_handle_empty_and_units() {
        let mut m = Manager::new();
        assert_eq!(m.and_all([]), Ref::ONE);
        assert_eq!(m.or_all([]), Ref::ZERO);
        let a = m.var(0);
        assert_eq!(m.and_all([a]), a);
        assert_eq!(m.or_all([a]), a);
    }

    #[test]
    fn parity_bdd_is_linear_in_variables() {
        // The classic ROBDD result: parity has a linear-size BDD.
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..16).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        assert_eq!(m.size(f), 16);
    }

    #[test]
    fn ite_caching_returns_identical_refs() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let r1 = m.ite(a, b, c);
        let r2 = m.ite(a, b, c);
        assert_eq!(r1, r2);
        let r3 = m.ite(!a, c, b); // normalized form of the same function
        assert_eq!(r1, r3);
    }

    #[test]
    fn specialized_kernels_agree_with_raw_ite_recursion() {
        // Every two-operand shape of ITE must give the same Ref as the
        // specialized kernel (canonicity makes this a pointer compare).
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..6).map(|i| m.var(i)).collect();
        let mut funcs = vars.clone();
        for w in vars.windows(2) {
            funcs.push(m.and(w[0], w[1]));
            funcs.push(m.xor(w[0], w[1]));
        }
        let snapshot = funcs.clone();
        for &f in &snapshot {
            for &g in &snapshot {
                let and1 = m.and(f, g);
                let and2 = m.ite(f, g, Ref::ZERO);
                assert_eq!(and1, and2, "and vs ite(f,g,0)");
                let or1 = m.or(f, g);
                let or2 = m.ite(f, Ref::ONE, g);
                assert_eq!(or1, or2, "or vs ite(f,1,g)");
                let xor1 = m.xor(f, g);
                let xor2 = m.ite(f, !g, g);
                assert_eq!(xor1, xor2, "xor vs ite(f,!g,g)");
            }
        }
    }

    #[test]
    fn xor_polarity_combinations_share_results() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let f = m.and(a, b);
        let g = m.or(b, c);
        let base = m.xor(f, g);
        let nn = m.xor(!f, !g);
        assert_eq!(base, nn, "double complement cancels");
        let fg = m.xor(!f, g);
        let gf = m.xor(f, !g);
        assert_eq!(fg, !base);
        assert_eq!(gf, !base);
        assert_eq!(m.xor(g, f), base, "commutativity");
    }

    #[test]
    fn try_kernels_match_infallible_without_limits() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..6).map(|i| m.var(i)).collect();
        let x01 = m.xor(vars[0], vars[1]);
        let a23 = m.and(vars[2], vars[3]);
        for (f, g) in [(x01, a23), (vars[4], x01), (a23, vars[5])] {
            let and = m.and(f, g);
            assert_eq!(m.try_and(f, g), Ok(and));
            let xor = m.xor(f, g);
            assert_eq!(m.try_xor(f, g), Ok(xor));
            let ite = m.ite(f, g, vars[5]);
            assert_eq!(m.try_ite(f, g, vars[5]), Ok(ite));
        }
    }

    #[test]
    fn step_limit_aborts_a_large_conjunction() {
        let mut m = Manager::new();
        // A function pair with a non-trivial AND recursion.
        let xs: Vec<Ref> = (0..14).map(|i| m.var(i)).collect();
        let f = m.xor_all(xs.iter().copied().step_by(2));
        let g = m.xor_all(xs.iter().copied().skip(1).step_by(2));
        m.set_limits(ResourceLimits {
            max_steps: Some(3),
            ..Default::default()
        });
        let e = m.try_and(f, g).expect_err("3 steps cannot finish");
        assert_eq!(e.kind, LimitKind::Steps);
        // The infallible wrapper ignores the installed budget entirely.
        let full = m.and(f, g);
        m.clear_limits();
        assert_eq!(m.try_and(f, g), Ok(full));
        if cfg!(debug_assertions) {
            m.verify_interior_refs();
        }
    }

    #[test]
    fn node_limit_aborts_and_manager_recovers() {
        let mut m = Manager::new();
        let xs: Vec<Ref> = (0..12).map(|i| m.var(i)).collect();
        let f = m.xor_all(xs.iter().copied().step_by(2));
        let g = m.xor_all(xs.iter().copied().skip(1).step_by(2));
        let live = m.live_nodes();
        m.set_limits(ResourceLimits {
            max_live_nodes: Some(live + 2),
            ..Default::default()
        });
        let e = m.try_xor(f, g).expect_err("2 extra nodes cannot suffice");
        assert_eq!(e.kind, LimitKind::Nodes);
        m.clear_limits();
        // Protect the operands, collect the aborted garbage, and re-run:
        // the result must be canonical and correct. (The standalone
        // variable projections in `xs` are unprotected garbage here, so
        // they must be re-consed after the collect.)
        m.protect(f);
        m.protect(g);
        m.collect();
        if cfg!(debug_assertions) {
            m.verify_interior_refs();
        }
        let r = m.xor(f, g);
        let vars_again: Vec<Ref> = (0..12).map(|i| m.var(i)).collect();
        let all = m.xor_all(vars_again);
        assert_eq!(r, all, "xor of the two halves is the full parity");
    }

    #[test]
    fn deadline_in_the_past_aborts() {
        let mut m = Manager::new();
        let xs: Vec<Ref> = (0..18).map(|i| m.var(i)).collect();
        let f = m.xor_all(xs.iter().copied().step_by(2));
        let g = m.xor_all(xs.iter().copied().skip(1).step_by(2));
        m.set_limits(ResourceLimits {
            deadline: Some(std::time::Instant::now() - std::time::Duration::from_millis(1)),
            ..Default::default()
        });
        // The clock is sampled every 256 steps, so the op needs enough
        // work to reach a sample point; parity AND recursions do.
        let r = m.try_and(f, g);
        if let Err(e) = r {
            assert_eq!(e.kind, LimitKind::Deadline);
        }
        m.clear_limits();
    }
}
