//! Cofactoring, quantification, composition, the Coudert–Madre generalized
//! cofactors, and node-to-constant substitution.
//!
//! `restrict` and `constrain` are the two generalized-cofactor operators the
//! BDS-MAJ paper cites ([17], [18]) for seeding the majority decomposition:
//! both return a function that agrees with `f` wherever the care set `c`
//! holds, while being (heuristically) smaller outside it.
//!
//! Like the connective kernels in [`crate::ops`], every recursion here is
//! a [`Session`] method taking `(&NodeStore, ...)` — per-session
//! memoization and governance against the shared, `Sync` node store —
//! with thin [`Manager`] entry points running them through `run_kernel`.
//!
//! All recursions branch on *levels* (current order positions, via
//! `NodeStore::level`), never on raw variable indices, so they are
//! correct under any order installed by the reordering machinery;
//! constants report the `u32::MAX` pseudo-level, which subsumes the old
//! per-kernel terminal special cases.
//!
//! All recursions here memoize through the session's computed cache
//! (tags `op::COFACTOR`, `op::RESTRICT`, `op::CONSTRAIN`, `op::SCOPED`)
//! instead of allocating a fresh `HashMap` per call: results persist across
//! calls, repeated cofactors of the same function hit immediately, and a
//! lossy collision merely costs a re-computation. Garbage collection never
//! runs inside these recursions (it would sweep the unprotected
//! intermediates); when the manager does collect, it scrubs every cache
//! entry naming a reclaimed slot, so no entry here can outlive the nodes
//! it names. Like every kernel, these recursions create nodes only
//! through `Session::mk`, which keeps the interior reference counts
//! exact as a side effect — no cofactor path does its own refcounting.

use crate::manager::Manager;
use crate::reference::{NodeId, Ref, Var};
use crate::session::{op, LimitExceeded, Session};
use crate::store::NodeStore;

impl Session {
    /// The cofactor recursion `f|v=value`.
    pub(crate) fn cofactor_rec(
        &mut self,
        store: &NodeStore,
        f: Ref,
        v: Var,
        value: bool,
    ) -> Result<Ref, LimitExceeded> {
        // One level comparison covers every identity case: constants (the
        // u32::MAX pseudo-level), functions entirely below `v` in the
        // order, and variables the manager has never seen.
        let vl = store.var_level(v.0);
        if vl == u32::MAX || store.level(f) > vl {
            return Ok(f);
        }
        self.tick(store)?;
        // Complements commute with cofactoring; recurse on the regular
        // reference so both polarities share one cache entry.
        if f.is_complemented() {
            return Ok(!self.cofactor_rec(store, !f, v, value)?);
        }
        let key_b = v.0 << 1 | value as u32;
        if let Some(r) = self.cache.lookup(op::COFACTOR, f.raw(), key_b, 0) {
            return Ok(r);
        }
        // bdslint: allow(panic-surface) -- constants returned at the level
        // guard above (their pseudo-level u32::MAX exceeds any real vl)
        let top = store.top_var(f).expect("non-constant here");
        let (f0, f1) = store.shallow_cofactors(f, top);
        let r = if top == v {
            if value {
                f1
            } else {
                f0
            }
        } else {
            let r0 = self.cofactor_rec(store, f0, v, value)?;
            let r1 = self.cofactor_rec(store, f1, v, value)?;
            self.mk(store, top, r0, r1)?
        };
        self.cache.insert(op::COFACTOR, f.raw(), key_b, 0, r);
        Ok(r)
    }

    /// The Coudert–Madre *restrict* recursion (care set non-zero,
    /// enforced by the entry point).
    pub(crate) fn restrict_rec(
        &mut self,
        store: &NodeStore,
        f: Ref,
        c: Ref,
    ) -> Result<Ref, LimitExceeded> {
        if c.is_one() || f.is_const() {
            return Ok(f);
        }
        self.tick(store)?;
        if let Some(r) = self.cache.lookup(op::RESTRICT, f.raw(), c.raw(), 0) {
            return Ok(r);
        }
        let fv = store.level(f);
        let cv = store.level(c);
        let r = if cv < fv {
            // The care-set top variable does not influence f here: remove it.
            let c_drop = {
                let cvar = store.var_at_level(cv);
                let (c0, c1) = store.shallow_cofactors(c, cvar);
                self.or_ap(store, c0, c1)?
            };
            self.restrict_rec(store, f, c_drop)?
        } else {
            let v = store.var_at_level(fv);
            let (f0, f1) = store.shallow_cofactors(f, v);
            let (c0, c1) = store.shallow_cofactors(c, v);
            if c0.is_zero() {
                self.restrict_rec(store, f1, c1)?
            } else if c1.is_zero() {
                self.restrict_rec(store, f0, c0)?
            } else {
                let r0 = self.restrict_rec(store, f0, c0)?;
                let r1 = self.restrict_rec(store, f1, c1)?;
                self.mk(store, v, r0, r1)?
            }
        };
        self.cache.insert(op::RESTRICT, f.raw(), c.raw(), 0, r);
        Ok(r)
    }

    /// The Coudert–Madre *constrain* recursion (care set non-zero,
    /// enforced by the entry point).
    pub(crate) fn constrain_rec(
        &mut self,
        store: &NodeStore,
        f: Ref,
        c: Ref,
    ) -> Result<Ref, LimitExceeded> {
        if c.is_one() || f.is_const() {
            return Ok(f);
        }
        if f == c {
            return Ok(Ref::ONE);
        }
        if f == !c {
            return Ok(Ref::ZERO);
        }
        self.tick(store)?;
        if let Some(r) = self.cache.lookup(op::CONSTRAIN, f.raw(), c.raw(), 0) {
            return Ok(r);
        }
        let v = store.var_at_level(store.level(f).min(store.level(c)));
        let (f0, f1) = store.shallow_cofactors(f, v);
        let (c0, c1) = store.shallow_cofactors(c, v);
        let r = if c0.is_zero() {
            self.constrain_rec(store, f1, c1)?
        } else if c1.is_zero() {
            self.constrain_rec(store, f0, c0)?
        } else {
            let r0 = self.constrain_rec(store, f0, c0)?;
            let r1 = self.constrain_rec(store, f1, c1)?;
            self.mk(store, v, r0, r1)?
        };
        self.cache.insert(op::CONSTRAIN, f.raw(), c.raw(), 0, r);
        Ok(r)
    }

    /// The scoped rebuild behind node-to-constant substitution: rebuilds
    /// the DAG of `f` with `target` replaced by `rep`, memoized under the
    /// per-call `scope` epoch.
    pub(crate) fn replace_rec(
        &mut self,
        store: &NodeStore,
        f: Ref,
        target: NodeId,
        rep: Ref,
        scope: u32,
    ) -> Result<Ref, LimitExceeded> {
        let c = f.is_complemented();
        let id = f.node();
        if id == target {
            return Ok(rep.xor_complement(c));
        }
        if id.is_terminal() {
            return Ok(f);
        }
        self.tick(store)?;
        if let Some(r) = self.cache.lookup(op::SCOPED, f.regular().raw(), scope, 0) {
            return Ok(r.xor_complement(c));
        }
        let n = store.node(id.index());
        let low = self.replace_rec(store, n.low, target, rep, scope)?;
        let high = self.replace_rec(store, n.high, target, rep, scope)?;
        let r = self.mk(store, n.var, low, high)?;
        self.cache
            .insert(op::SCOPED, f.regular().raw(), scope, 0, r);
        Ok(r.xor_complement(c))
    }
}

impl Manager {
    /// The cofactor `f|v=value`, for a variable anywhere in the order.
    pub fn cofactor(&mut self, f: Ref, v: Var, value: bool) -> Ref {
        self.ungoverned(|m| m.try_cofactor(f, v, value))
    }

    /// Budget-governed [`Manager::cofactor`].
    pub fn try_cofactor(&mut self, f: Ref, v: Var, value: bool) -> Result<Ref, LimitExceeded> {
        self.run_kernel(|st, s| s.cofactor_rec(st, f, v, value))
    }

    /// Existential quantification `∃v. f = f|v=0 + f|v=1`.
    pub fn exists(&mut self, f: Ref, v: Var) -> Ref {
        self.ungoverned(|m| m.try_exists(f, v))
    }

    /// Budget-governed [`Manager::exists`].
    pub fn try_exists(&mut self, f: Ref, v: Var) -> Result<Ref, LimitExceeded> {
        let f0 = self.try_cofactor(f, v, false)?;
        let f1 = self.try_cofactor(f, v, true)?;
        self.try_or(f0, f1)
    }

    /// Universal quantification `∀v. f = f|v=0 · f|v=1`.
    pub fn forall(&mut self, f: Ref, v: Var) -> Ref {
        self.ungoverned(|m| m.try_forall(f, v))
    }

    /// Budget-governed [`Manager::forall`].
    pub fn try_forall(&mut self, f: Ref, v: Var) -> Result<Ref, LimitExceeded> {
        let f0 = self.try_cofactor(f, v, false)?;
        let f1 = self.try_cofactor(f, v, true)?;
        self.try_and(f0, f1)
    }

    /// Functional composition `f[v := g]`.
    pub fn compose(&mut self, f: Ref, v: Var, g: Ref) -> Ref {
        self.ungoverned(|m| m.try_compose(f, v, g))
    }

    /// Budget-governed [`Manager::compose`].
    pub fn try_compose(&mut self, f: Ref, v: Var, g: Ref) -> Result<Ref, LimitExceeded> {
        let f0 = self.try_cofactor(f, v, false)?;
        let f1 = self.try_cofactor(f, v, true)?;
        self.try_ite(g, f1, f0)
    }

    /// The Coudert–Madre *restrict* generalized cofactor `f ⇓ c`.
    ///
    /// Guarantees `(f ⇓ c) · c = f · c`; outside the care set `c` the result
    /// is chosen to shrink the BDD (variables foreign to `f` are quantified
    /// out of `c` on the way down, which is what distinguishes `restrict`
    /// from [`Manager::constrain`]).
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant zero (the care set must be satisfiable).
    pub fn restrict(&mut self, f: Ref, c: Ref) -> Ref {
        self.ungoverned(|m| m.try_restrict(f, c))
    }

    /// Budget-governed [`Manager::restrict`].
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant zero, like the infallible form.
    pub fn try_restrict(&mut self, f: Ref, c: Ref) -> Result<Ref, LimitExceeded> {
        assert!(!c.is_zero(), "restrict: empty care set");
        self.run_kernel(|st, s| s.restrict_rec(st, f, c))
    }

    /// The Coudert–Madre *constrain* (a.k.a. image-restricting) generalized
    /// cofactor `f ↓ c`.
    ///
    /// Guarantees `(f ↓ c) · c = f · c`, and additionally the strong
    /// property `f ↓ c = f(π_c(x))` for the canonical projection `π_c`.
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant zero.
    pub fn constrain(&mut self, f: Ref, c: Ref) -> Ref {
        self.ungoverned(|m| m.try_constrain(f, c))
    }

    /// Budget-governed [`Manager::constrain`].
    ///
    /// # Panics
    ///
    /// Panics if `c` is the constant zero, like the infallible form.
    pub fn try_constrain(&mut self, f: Ref, c: Ref) -> Result<Ref, LimitExceeded> {
        assert!(!c.is_zero(), "constrain: empty care set");
        self.run_kernel(|st, s| s.constrain_rec(st, f, c))
    }

    /// Rebuilds the DAG of `f` with the internal node `target` replaced by
    /// the constant `value`.
    ///
    /// Writing `f = F(z)` for the function above `target` (with `z` standing
    /// for the node's output), this returns `F(value)` — the key primitive
    /// behind functional dominator checks: a node `d` is, e.g., a
    /// generalized 1-dominator iff `F(0) = 0`, so that `f = F(1) · f_d`.
    pub fn replace_node_with_const(&mut self, f: Ref, target: NodeId, value: bool) -> Ref {
        self.ungoverned(|m| m.try_replace_node_with_const(f, target, value))
    }

    /// Budget-governed [`Manager::replace_node_with_const`].
    pub fn try_replace_node_with_const(
        &mut self,
        f: Ref,
        target: NodeId,
        value: bool,
    ) -> Result<Ref, LimitExceeded> {
        let rep = self.constant(value);
        let scope = self.new_scope();
        self.run_kernel(|st, s| s.replace_rec(st, f, target, rep, scope))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cofactor_matches_semantics() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let f_b1 = m.cofactor(f, Var(1), true);
        let expect = m.or(a, c);
        assert_eq!(f_b1, expect);
        let f_b0 = m.cofactor(f, Var(1), false);
        let expect0 = m.and(a, c);
        assert_eq!(f_b0, expect0);
    }

    #[test]
    fn cofactor_of_foreign_variable_is_identity() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        m.var(5);
        assert_eq!(m.cofactor(f, Var(5), true), f);
    }

    #[test]
    fn cofactor_of_complemented_edge_shares_cache() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let pos = m.cofactor(f, Var(1), true);
        let neg = m.cofactor(!f, Var(1), true);
        assert_eq!(neg, !pos);
    }

    #[test]
    fn quantifiers() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.exists(f, Var(0)), b);
        assert_eq!(m.forall(f, Var(0)), Ref::ZERO);
        let g = m.or(a, b);
        assert_eq!(m.forall(g, Var(0)), b);
        assert_eq!(m.exists(g, Var(0)), Ref::ONE);
    }

    #[test]
    fn compose_substitutes_a_function() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.xor(a, b);
        let g = m.and(b, c);
        let h = m.compose(f, Var(0), g);
        let expect = m.xor(g, b);
        assert_eq!(h, expect);
    }

    #[test]
    fn restrict_and_constrain_agree_on_care_set() {
        let mut m = Manager::new();
        let (a, b, c, d) = (m.var(0), m.var(1), m.var(2), m.var(3));
        let ab = m.and(a, b);
        let cd = m.xor(c, d);
        let f = m.or(ab, cd);
        let care = m.or(a, c);
        for gc in [m.restrict(f, care), m.constrain(f, care)] {
            let lhs = m.and(gc, care);
            let rhs = m.and(f, care);
            assert_eq!(lhs, rhs, "generalized cofactor must agree on care set");
        }
    }

    #[test]
    fn restrict_with_full_care_set_is_identity() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.xor(a, b);
        assert_eq!(m.restrict(f, Ref::ONE), f);
        assert_eq!(m.constrain(f, Ref::ONE), f);
    }

    #[test]
    fn constrain_detects_equal_and_opposite() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        assert_eq!(m.constrain(f, f), Ref::ONE);
        let nf = !f;
        assert_eq!(m.constrain(nf, f), Ref::ZERO);
    }

    #[test]
    #[should_panic(expected = "empty care set")]
    fn restrict_rejects_empty_care_set() {
        let mut m = Manager::new();
        let a = m.var(0);
        m.restrict(a, Ref::ZERO);
    }

    #[test]
    fn replace_node_with_const_evaluates_above_function() {
        // f = Maj(a, b, c); replace the node computing "b or c" by constants.
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        // The root node branches on a; its high child is or(b, c).
        let or_bc = m.or(b, c);
        let f1 = m.replace_node_with_const(f, or_bc.node(), true);
        let f0 = m.replace_node_with_const(f, or_bc.node(), false);
        // F(1) = a + bc, F(0) = a'·bc ... check semantically:
        // f = F(or(b,c)) must hold: f == ite(or_bc, f1, f0).
        let recomposed = m.ite(or_bc, f1, f0);
        assert_eq!(recomposed, f);
        assert_ne!(f1, f0);
    }

    #[test]
    fn replace_root_node_gives_constant() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let r = m.replace_node_with_const(f, f.node(), true);
        assert_eq!(r, Ref::ONE.xor_complement(f.is_complemented()));
    }

    #[test]
    fn repeated_replacements_stay_canonical_across_scopes() {
        // Each replace call opens a fresh scope; results must not leak
        // between different targets or values.
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        let or_bc = m.or(b, c);
        let and_bc = m.and(b, c);
        let r1 = m.replace_node_with_const(f, or_bc.node(), true);
        let r2 = m.replace_node_with_const(f, and_bc.node(), true);
        let r1_again = m.replace_node_with_const(f, or_bc.node(), true);
        assert_eq!(r1, r1_again);
        assert_ne!(r1, r2, "different targets give different functions");
    }
}
