//! Edge and node identifier types.

use std::fmt;

/// A BDD variable, identified by its *index* — a stable identity that
/// names the same input regardless of where the variable currently sits
/// in the decision order.
///
/// The variable's position (its *level*) is a separate notion kept in the
/// manager's `var2level` map: indices and levels coincide only until the
/// first reordering (`Manager::swap_levels` / `Manager::sift`). Callers
/// always bind semantics (assignments, signal maps) to indices; levels
/// are an internal matter of the order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct Var(pub u32);

impl Var {
    /// Index of this variable as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Index of a stored node inside a [`crate::Manager`] arena.
///
/// `NodeId(0)` is always the constant-one terminal.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The terminal node (constant one, up to edge complementation).
    pub const TERMINAL: NodeId = NodeId(0);

    /// Index of this node as a `usize`, for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Whether this is the terminal node.
    pub fn is_terminal(self) -> bool {
        self == Self::TERMINAL
    }
}

/// A (possibly complemented) edge to a BDD node: the packed pair of a
/// [`NodeId`] and a complement attribute.
///
/// Because the manager hash-conses nodes and keeps 1-edges regular, a `Ref`
/// canonically identifies a Boolean function: two functions are equal if and
/// only if their `Ref`s are equal. Negation ([`std::ops::Not`]) is free.
///
/// # Validity under garbage collection
///
/// A `Ref` is plain data, not an owning handle. It stays valid across
/// `Manager::collect` only while its node is reachable from a root the
/// caller declared with `Manager::protect`; otherwise the slot may be
/// reclaimed and later reused for a *different* function, silently aliasing
/// the stale `Ref`. Collection never happens implicitly inside manager
/// operations, so intermediates within one call chain are always safe —
/// protection is only needed for `Ref`s held across explicit
/// `collect`/`maybe_collect` points.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ref(u32);

impl Ref {
    /// The constant true function.
    pub const ONE: Ref = Ref(0);
    /// The constant false function.
    pub const ZERO: Ref = Ref(1);

    /// Builds a reference from a node id and a complement flag.
    pub fn new(node: NodeId, complemented: bool) -> Ref {
        Ref(node.0 << 1 | complemented as u32)
    }

    /// The node this edge points to.
    pub fn node(self) -> NodeId {
        NodeId(self.0 >> 1)
    }

    /// Whether the edge carries the complement attribute.
    pub fn is_complemented(self) -> bool {
        self.0 & 1 == 1
    }

    /// The same edge with the complement attribute cleared.
    pub fn regular(self) -> Ref {
        Ref(self.0 & !1)
    }

    /// Whether this reference denotes a constant function.
    pub fn is_const(self) -> bool {
        self.node().is_terminal()
    }

    /// Whether this reference is the constant true function.
    pub fn is_one(self) -> bool {
        self == Self::ONE
    }

    /// Whether this reference is the constant false function.
    pub fn is_zero(self) -> bool {
        self == Self::ZERO
    }

    /// Applies a complement flag: returns `!self` when `c` is true.
    pub fn xor_complement(self, c: bool) -> Ref {
        Ref(self.0 ^ c as u32)
    }

    /// Raw packed value, useful as a compact hash key.
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Rebuilds a reference from [`Ref::raw`] (computed-cache decoding).
    pub(crate) fn from_raw(raw: u32) -> Ref {
        Ref(raw)
    }
}

impl std::ops::Not for Ref {
    type Output = Ref;

    fn not(self) -> Ref {
        Ref(self.0 ^ 1)
    }
}

impl fmt::Debug for Ref {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_one() {
            write!(f, "⊤")
        } else if self.is_zero() {
            write!(f, "⊥")
        } else {
            write!(
                f,
                "{}n{}",
                if self.is_complemented() { "!" } else { "" },
                self.node().0
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constants_are_complements() {
        assert_eq!(!Ref::ONE, Ref::ZERO);
        assert_eq!(!Ref::ZERO, Ref::ONE);
        assert!(Ref::ONE.is_const() && Ref::ZERO.is_const());
        assert!(Ref::ONE.is_one() && Ref::ZERO.is_zero());
    }

    #[test]
    fn double_negation_is_identity() {
        let r = Ref::new(NodeId(42), true);
        assert_eq!(!!r, r);
        assert_eq!(r.node(), NodeId(42));
        assert!(r.is_complemented());
        assert!(!r.regular().is_complemented());
    }

    #[test]
    fn xor_complement_matches_not() {
        let r = Ref::new(NodeId(7), false);
        assert_eq!(r.xor_complement(true), !r);
        assert_eq!(r.xor_complement(false), r);
    }

    #[test]
    fn debug_formats_are_nonempty() {
        assert_eq!(format!("{:?}", Ref::ONE), "⊤");
        assert_eq!(format!("{:?}", Ref::ZERO), "⊥");
        let r = Ref::new(NodeId(3), true);
        assert_eq!(format!("{r:?}"), "!n3");
    }
}
