//! Satisfiability utilities: witness extraction, prime-cube enumeration
//! and small-function truth vectors. All walks are read-only over live
//! nodes; they allocate nothing in the manager and cannot trigger a
//! collection.
//!
//! Every walk here follows the stored DAG root-to-leaf, so paths visit
//! variables in *level* order (the current decision order). The literals
//! reported carry variable *indices*, which after reordering need not be
//! increasing along a path — callers index assignments by variable, never
//! by position, so all results are order-independent.

use crate::manager::Manager;
use crate::reference::{Ref, Var};

impl Manager {
    /// Finds one satisfying assignment of `f`, as `(variable, value)`
    /// pairs for the variables along the chosen path, in level order
    /// (variables absent from the path are don't-cares).
    ///
    /// Returns `None` when `f` is unsatisfiable.
    pub fn one_sat(&self, f: Ref) -> Option<Vec<(Var, bool)>> {
        if f.is_zero() {
            return None;
        }
        let mut path = Vec::new();
        let mut cur = f;
        while !cur.is_const() {
            let node = self.node(cur.node());
            let c = cur.is_complemented();
            let hi = node.high.xor_complement(c);
            let lo = node.low.xor_complement(c);
            // Prefer the branch that is not constant-false.
            if !hi.is_zero() {
                path.push((node.var, true));
                cur = hi;
            } else {
                debug_assert!(!lo.is_zero(), "reduced BDD cannot dead-end");
                path.push((node.var, false));
                cur = lo;
            }
        }
        debug_assert!(cur.is_one());
        Some(path)
    }

    /// Extends a partial satisfying path to a full assignment over
    /// `num_vars` variables (don't-cares default to `false`).
    pub fn one_sat_total(&self, f: Ref, num_vars: u32) -> Option<Vec<bool>> {
        let path = self.one_sat(f)?;
        let mut assignment = vec![false; num_vars as usize];
        for (var, value) in path {
            assignment[var.index()] = value;
        }
        Some(assignment)
    }

    /// Truth vector of `f` over the first `num_vars ≤ 6` variables: bit
    /// `i` of the result is `f` on the assignment encoded by `i`.
    ///
    /// # Panics
    ///
    /// Panics if `num_vars > 6`.
    pub fn truth_vector(&self, f: Ref, num_vars: u32) -> u64 {
        assert!(num_vars <= 6, "truth vectors cover at most 6 variables");
        let mut out = 0u64;
        for row in 0..(1u64 << num_vars) {
            let assignment: Vec<bool> = (0..num_vars).map(|i| row >> i & 1 == 1).collect();
            if self.eval(f, &assignment) {
                out |= 1 << row;
            }
        }
        out
    }

    /// Enumerates the cubes (paths to the 1-terminal) of `f`, up to
    /// `limit` cubes. Each cube is a list of `(variable, polarity)`
    /// literals; absent variables are don't-cares.
    ///
    /// This is the irredundant path cover BDS uses when printing factored
    /// forms; it is exponential in the worst case, hence the limit.
    pub fn cubes(&self, f: Ref, limit: usize) -> Vec<Vec<(Var, bool)>> {
        let mut out = Vec::new();
        let mut stack: Vec<(Ref, Vec<(Var, bool)>)> = vec![(f, Vec::new())];
        while let Some((cur, prefix)) = stack.pop() {
            if out.len() >= limit {
                break;
            }
            if cur.is_zero() {
                continue;
            }
            if cur.is_one() {
                out.push(prefix);
                continue;
            }
            let node = self.node(cur.node());
            let c = cur.is_complemented();
            let hi = node.high.xor_complement(c);
            let lo = node.low.xor_complement(c);
            let mut hi_prefix = prefix.clone();
            hi_prefix.push((node.var, true));
            let mut lo_prefix = prefix;
            lo_prefix.push((node.var, false));
            stack.push((hi, hi_prefix));
            stack.push((lo, lo_prefix));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_sat_on_constants() {
        let m = Manager::new();
        assert_eq!(m.one_sat(Ref::ZERO), None);
        assert_eq!(m.one_sat(Ref::ONE), Some(vec![]));
    }

    #[test]
    fn one_sat_witness_actually_satisfies() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let nb = !b;
        let anb = m.and(a, nb);
        let f = m.and(anb, c);
        let assignment = m.one_sat_total(f, 3).expect("satisfiable");
        assert!(m.eval(f, &assignment), "witness must satisfy f");
        assert_eq!(assignment, vec![true, false, true]);
    }

    #[test]
    fn one_sat_on_complemented_function() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let f = m.and(a, b);
        let nf = !f;
        let w = m.one_sat_total(nf, 2).expect("satisfiable");
        assert!(m.eval(nf, &w));
        assert!(!m.eval(f, &w));
    }

    #[test]
    fn truth_vector_matches_eval() {
        let mut m = Manager::new();
        let (a, b, c) = (m.var(0), m.var(1), m.var(2));
        let f = m.maj(a, b, c);
        // Maj truth vector rows with ≥ 2 ones set: 3,5,6,7.
        assert_eq!(m.truth_vector(f, 3), 0b11101000);
        assert_eq!(m.truth_vector(Ref::ONE, 2), 0xF);
        assert_eq!(m.truth_vector(Ref::ZERO, 2), 0);
    }

    #[test]
    fn cubes_cover_the_onset() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        let ab = m.and(a, b);
        let f = m.or(ab, c);
        let cubes = m.cubes(f, 64);
        assert!(!cubes.is_empty());
        // Every cube, completed arbitrarily, must satisfy f.
        for cube in &cubes {
            let mut assignment = vec![false; 3];
            for &(v, val) in cube {
                assignment[v.index()] = val;
            }
            assert!(m.eval(f, &assignment), "cube {cube:?} not in on-set");
        }
        // Cubes must be exhaustive: their union has the same density.
        let total: f64 = cubes
            .iter()
            .map(|cube| 1.0 / (1u64 << cube.len()) as f64)
            .sum();
        assert!((total - m.density(f)).abs() < 1e-12, "disjoint path cover");
    }

    #[test]
    fn cube_limit_is_respected() {
        let mut m = Manager::new();
        let vars: Vec<Ref> = (0..8).map(|i| m.var(i)).collect();
        let f = m.xor_all(vars);
        let cubes = m.cubes(f, 5);
        assert_eq!(cubes.len(), 5);
    }
}
