//! The deal / own-front-pop / steal-back deque set — the one
//! work-stealing primitive shared by `bench`'s suite-level pool and the
//! parallel apply's fork-join recursion ([`crate::parallel`]).
//!
//! The discipline is the classic Arora–Blumofe–Plaxton split, mutex-built
//! because the workspace is offline (no crossbeam): every worker owns one
//! deque; an owner pushes and pops at the *front* (LIFO — freshly forked
//! children stay hot in its caches), while a thief takes from the *back*
//! of a victim's deque (FIFO — the oldest task is the biggest remaining
//! subtree, so one steal moves the most work per lock acquisition). The
//! mutexes make each end-operation trivially atomic; the scheme's
//! throughput comes from workers touching foreign deques only when their
//! own runs dry.
//!
//! Two usage patterns, one type:
//!
//! * **dealt batch** ([`StealDeques::deal`]) — a known task list spread
//!   round-robin up front, then only popped/stolen (the suite pool);
//! * **fork-join** ([`StealDeques::new`] + [`StealDeques::push`]) —
//!   deques start empty and workers feed them as recursions split (the
//!   parallel apply).

use std::collections::VecDeque;
use std::sync::Mutex;

/// One deque per worker; see the module docs for the discipline.
#[derive(Debug)]
pub struct StealDeques<T> {
    queues: Vec<Mutex<VecDeque<T>>>,
}

impl<T> StealDeques<T> {
    /// `workers` empty deques (the fork-join pattern: tasks arrive via
    /// [`StealDeques::push`]).
    ///
    /// # Panics
    ///
    /// Panics if `workers == 0`.
    pub fn new(workers: usize) -> StealDeques<T> {
        assert!(workers > 0, "a deque set needs at least one worker");
        StealDeques {
            queues: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
        }
    }

    /// Deals `items` round-robin across `workers` deques (item `i` lands
    /// at the back of deque `i % workers`), so a skewed prefix of a known
    /// batch spreads across workers even before any stealing happens.
    pub fn deal(workers: usize, items: impl IntoIterator<Item = T>) -> StealDeques<T> {
        assert!(workers > 0, "a deque set needs at least one worker");
        let mut queues: Vec<VecDeque<T>> = (0..workers).map(|_| VecDeque::new()).collect();
        for (i, item) in items.into_iter().enumerate() {
            queues[i % workers].push_back(item);
        }
        StealDeques {
            queues: queues.into_iter().map(Mutex::new).collect(),
        }
    }

    /// Number of worker deques.
    pub fn workers(&self) -> usize {
        self.queues.len()
    }

    /// Pushes a task onto worker `me`'s own (front) end — the fork side
    /// of fork-join: the owner will pop it next unless a thief gets the
    /// *other* end first.
    pub fn push(&self, me: usize, item: T) {
        self.queues[me].lock().unwrap().push_front(item);
    }

    /// The next task for worker `me`: its own deque's front first, then
    /// the back of each other worker's deque, scanning from the right
    /// neighbour. The flag reports whether the task was stolen.
    pub fn next(&self, me: usize) -> Option<(T, bool)> {
        if let Some(t) = self.queues[me].lock().unwrap().pop_front() {
            return Some((t, false));
        }
        for off in 1..self.queues.len() {
            let victim = (me + off) % self.queues.len();
            if let Some(t) = self.queues[victim].lock().unwrap().pop_back() {
                return Some((t, true));
            }
        }
        None
    }

    /// Tasks currently queued across all deques (diagnostic — e.g. the
    /// pool's abandoned-task accounting after a panic drain).
    pub fn queued(&self) -> usize {
        self.queues.iter().map(|q| q.lock().unwrap().len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deal_spreads_round_robin() {
        let d = StealDeques::deal(3, 0..7usize);
        assert_eq!(d.workers(), 3);
        assert_eq!(d.queued(), 7);
        // Worker 0 owns 0, 3, 6 and drains them front-first in order.
        assert_eq!(d.next(0), Some((0, false)));
        assert_eq!(d.next(0), Some((3, false)));
        assert_eq!(d.next(0), Some((6, false)));
    }

    #[test]
    fn drained_owner_steals_from_the_back() {
        let d = StealDeques::deal(2, 0..4usize);
        // Worker 0 drains its own deque [0, 2] ...
        assert_eq!(d.next(0), Some((0, false)));
        assert_eq!(d.next(0), Some((2, false)));
        // ... then steals worker 1's *back* (oldest-last order: [1, 3]).
        assert_eq!(d.next(0), Some((3, true)));
        assert_eq!(d.next(0), Some((1, true)));
        assert_eq!(d.next(0), None);
    }

    #[test]
    fn own_pushes_are_lifo_for_the_owner() {
        let d: StealDeques<u32> = StealDeques::new(2);
        d.push(0, 1);
        d.push(0, 2);
        // Owner sees its most recent fork first ...
        assert_eq!(d.next(0), Some((2, false)));
        // ... while a thief would have taken the oldest (1) from the back.
        d.push(0, 3);
        assert_eq!(d.next(1), Some((1, true)));
        assert_eq!(d.next(1), Some((3, true)));
    }
}
