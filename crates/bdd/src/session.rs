//! Per-thread kernel state: the computed cache, the visit scratch, the
//! resource budget and the tick counter — everything a recursive kernel
//! mutates that is *not* the shared node store.
//!
//! The concurrent-kernel split (see the crate-level "Concurrency
//! contract") divides the old monolithic manager into:
//!
//! * [`crate::store::NodeStore`] — the node-owning half (arena, unique
//!   table, interior refcounts), shared by many threads (`Sync`);
//! * [`Session`] — the per-thread half. One session per thread, never
//!   shared: the [`VisitScratch`] lives in a `RefCell` (which pins
//!   `Session: !Sync`), and the computed cache is deliberately private
//!   per session so lookups and inserts stay plain unsynchronized loads
//!   and stores.
//!
//! Every recursive kernel takes `(&NodeStore, &mut Session)`: node
//! *publication* goes through the store's CAS protocol, while
//! memoization, governance ticks and traversal scratch stay thread-local.
//! [`crate::manager::Manager`] owns one store plus one default session
//! and keeps the classic single-threaded API; the parallel apply in
//! [`crate::parallel`] forks extra sessions against the same store.

use crate::reference::{Ref, Var};
use crate::store::{triple_hash, NodeStore};
use std::cell::RefCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Operation tags for the per-session computed cache. Tag 0 is reserved
/// so a zero-initialized entry can never match a real key.
pub(crate) mod op {
    /// Three-operand if-then-else.
    pub const ITE: u32 = 1;
    /// Two-operand conjunction (specialized kernel).
    pub const AND: u32 = 2;
    /// Two-operand exclusive-or (specialized kernel).
    pub const XOR: u32 = 3;
    /// Single-variable cofactor `f|v=b`.
    pub const COFACTOR: u32 = 4;
    /// Coudert–Madre restrict.
    pub const RESTRICT: u32 = 5;
    /// Coudert–Madre constrain.
    pub const CONSTRAIN: u32 = 6;
    /// Call-scoped rebuilds (permute, node replacement): the second key
    /// word is a per-call epoch, so stale entries can never be observed.
    pub const SCOPED: u32 = 7;
}

/// One computed-cache entry: the full operation key, the result, and the
/// generation that wrote it. 20 bytes — the key is three full words plus
/// a tag, because a lossy *match* (as opposed to a lossy *eviction*)
/// would return a wrong function, so the key can never be hashed down.
#[derive(Clone, Copy, Default)]
pub(crate) struct CacheEntry {
    pub(crate) a: u32,
    pub(crate) b: u32,
    pub(crate) c: u32,
    /// `generation << 3 | op` — op tags fit in 3 bits, and generation 0 is
    /// never current, so zero-initialized slots never match.
    pub(crate) tag: u32,
    pub(crate) result: u32,
}

/// Associativity of one computed-cache set. Three 20-byte entries plus
/// the 4-byte victim cursor fill a 64-byte line exactly; a fourth way
/// would need lossy keys, which rules it out (see [`CacheEntry`]).
pub(crate) const CACHE_WAYS: usize = 3;

/// One cache-line-sized associativity set of the computed cache: three
/// ways probed together, plus a round-robin victim cursor for inserts
/// that find no matching or stale way. The alignment pins each set to
/// one line, so a probe that misses all three ways still costs a single
/// memory access — where the old direct-mapped layout paid a full miss
/// per conflicting key.
#[repr(align(64))]
#[derive(Clone, Copy)]
pub(crate) struct CacheSet {
    pub(crate) ways: [CacheEntry; CACHE_WAYS],
    victim: u32,
}

impl Default for CacheSet {
    fn default() -> CacheSet {
        CacheSet {
            ways: [CacheEntry::default(); CACHE_WAYS],
            victim: 0,
        }
    }
}

// The whole point of the set geometry: one set, one cache line.
const _: () = assert!(std::mem::size_of::<CacheSet>() == 64);

/// Default computed-cache size in bits: the entry-count budget a
/// direct-mapped cache would spend as `1 << bits` slots; the
/// set-associative geometry spends it as `1 << (bits - 2)` three-way,
/// cache-line-sized sets (see [`ComputedCache`]).
pub const DEFAULT_CACHE_BITS: u32 = 14;

/// Cache budget of the short-lived worker sessions forked by the
/// parallel apply: smaller than the default — a worker memoizes one
/// cone fragment, not a whole flow (and shares everything expensive
/// through the store's L2 cache anyway).
pub(crate) const WORKER_CACHE_BITS: u32 = 12;

/// Publication threshold of the shared (L2) cache: a result is published
/// only when the recursion that produced it performed at least this many
/// descendant L1 probes (one probe ≈ one non-terminal recursion step).
/// See [`Session::publish2`].
pub(crate) const L2_PUBLISH_MIN_WORK: u64 = 8;

/// The fixed-size, set-associative, lossy operation cache: power-of-two
/// [`CacheSet`] groups (three ways per 64-byte line), indexed by the same
/// multiply-mix hash as the unique table. Within a set, inserts overwrite
/// a stale way first and round-robin among live ones, so two hot keys
/// that collide no longer evict each other every call.
///
/// Entries are tagged by one of *two* generations: most operations are
/// function-valued (their keys and results are `Ref`s whose functions the
/// in-place level swap preserves), but the Coudert–Madre generalized
/// cofactors pick their result *using the variable order*, so their memo
/// must not survive a reordering. [`ComputedCache::clear_order_sensitive`]
/// retires only the latter in O(1), keeping the ITE/AND/XOR/cofactor memo
/// warm across level swaps — the same warm-memo philosophy as the GC's
/// selective scrub.
pub(crate) struct ComputedCache {
    pub(crate) sets: Vec<CacheSet>,
    mask: usize,
    pub(crate) generation: u32,
    /// Generation of the order-sensitive ops (`RESTRICT`, `CONSTRAIN`);
    /// bumped by every node-rewriting level swap.
    order_generation: u32,
    pub(crate) lookups: u64,
    pub(crate) hits: u64,
    pub(crate) insertions: u64,
    /// Traffic this session sent to the *shared* (L2) cache: probes made
    /// on an L1 miss, hits among them, and publications. Tracked here
    /// (plain per-session counters, folded in with
    /// [`ComputedCache::absorb_counters`]) so the shared cache itself
    /// carries no contended counter words.
    pub(crate) shared_lookups: u64,
    pub(crate) shared_hits: u64,
    pub(crate) shared_insertions: u64,
}

/// Generations live in the upper bits of the entry tag; op tags occupy the
/// low `GEN_SHIFT` bits.
pub(crate) const GEN_SHIFT: u32 = 3;

/// Mask extracting the op code from an entry tag.
const OP_MASK: u32 = (1 << GEN_SHIFT) - 1;

/// Whether a memoized result of `op` depends on the current variable
/// order (rather than only on the operand functions).
#[inline(always)]
fn order_sensitive(op: u32) -> bool {
    op == op::RESTRICT || op == op::CONSTRAIN
}

impl ComputedCache {
    /// `bits` is the historical entry-count budget (`2^bits` direct-mapped
    /// slots); the set geometry spends it as `2^(bits-2)` three-way sets,
    /// i.e. three quarters of the entries in four fifths of the memory,
    /// with the associativity buying back far more than the lost quarter.
    pub(crate) fn with_bits(bits: u32) -> ComputedCache {
        let n = 1usize << (bits.clamp(8, 28) - 2);
        ComputedCache {
            sets: vec![CacheSet::default(); n],
            mask: n - 1,
            generation: 1,
            order_generation: 1,
            lookups: 0,
            hits: 0,
            insertions: 0,
            shared_lookups: 0,
            shared_hits: 0,
            shared_insertions: 0,
        }
    }

    /// Total entry capacity (all ways of all sets), for stats.
    pub(crate) fn entry_capacity(&self) -> usize {
        self.sets.len() * CACHE_WAYS
    }

    #[inline(always)]
    fn set_of(&self, op: u32, a: u32, b: u32, c: u32) -> usize {
        (triple_hash(a, b ^ op.rotate_left(27), c) as usize) & self.mask
    }

    #[inline(always)]
    fn tag_for(&self, op: u32) -> u32 {
        let gen = if order_sensitive(op) {
            self.order_generation
        } else {
            self.generation
        };
        gen << GEN_SHIFT | op
    }

    #[inline(always)]
    pub(crate) fn lookup(&mut self, op: u32, a: u32, b: u32, c: u32) -> Option<Ref> {
        self.lookups += 1;
        let tag = self.tag_for(op);
        let idx = self.set_of(op, a, b, c);
        let set = &mut self.sets[idx];
        for i in 0..CACHE_WAYS {
            let e = set.ways[i];
            if e.tag == tag && e.a == a && e.b == b && e.c == c {
                self.hits += 1;
                // MRU promotion: hot keys migrate to way 0, so their next
                // probe matches on the first compare. Both ways share one
                // cache line, so the swap is register traffic.
                if i != 0 {
                    set.ways[i] = set.ways[0];
                    set.ways[0] = e;
                }
                return Some(Ref::from_raw(e.result));
            }
        }
        None
    }

    #[inline(always)]
    pub(crate) fn insert(&mut self, op: u32, a: u32, b: u32, c: u32, result: Ref) {
        self.insertions += 1;
        let tag = self.tag_for(op);
        let idx = self.set_of(op, a, b, c);
        let (generation, order_generation) = (self.generation, self.order_generation);
        let set = &mut self.sets[idx];
        // Way choice: the way already holding this key, else the first
        // stale way (its generation was retired by a clear), else the
        // round-robin victim — so re-memoizing refreshes in place and
        // live conflicting keys take turns instead of thrashing one slot.
        let mut way = None;
        for (i, e) in set.ways.iter().enumerate() {
            if e.tag == tag && e.a == a && e.b == b && e.c == c {
                way = Some(i);
                break;
            }
            let live_gen = if order_sensitive(e.tag & OP_MASK) {
                order_generation
            } else {
                generation
            };
            if way.is_none() && e.tag >> GEN_SHIFT != live_gen {
                way = Some(i);
            }
        }
        let i = way.unwrap_or_else(|| {
            let v = set.victim as usize % CACHE_WAYS;
            set.victim = set.victim.wrapping_add(1);
            v
        });
        set.ways[i] = CacheEntry {
            a,
            b,
            c,
            tag,
            result: result.raw(),
        };
    }

    /// O(1) clear of everything: bump both generations so every slot is
    /// stale. On the (practically unreachable) generation wrap, pay one
    /// real wipe.
    pub(crate) fn clear(&mut self) {
        self.generation += 1;
        self.order_generation += 1;
        if self.generation >= u32::MAX >> GEN_SHIFT
            || self.order_generation >= u32::MAX >> GEN_SHIFT
        {
            self.sets.fill(CacheSet::default());
            self.generation = 1;
            self.order_generation = 1;
        }
    }

    /// O(1) clear of only the order-sensitive results (the conservative
    /// post-swap scrub); function-valued memos stay warm.
    pub(crate) fn clear_order_sensitive(&mut self) {
        self.order_generation += 1;
        if self.order_generation >= u32::MAX >> GEN_SHIFT {
            self.sets.fill(CacheSet::default());
            self.generation = 1;
            self.order_generation = 1;
        }
    }

    /// Drops exactly the entries for which any of the four words fails
    /// `live_word` — the GC's selective scrub (entries naming a reclaimed
    /// arena slot must not survive a sweep, everything else stays warm).
    pub(crate) fn scrub(&mut self, mut live_word: impl FnMut(u32) -> bool) {
        for set in self.sets.iter_mut() {
            for e in set.ways.iter_mut() {
                if e.tag != 0
                    && !(live_word(e.a) && live_word(e.b) && live_word(e.c) && live_word(e.result))
                {
                    *e = CacheEntry::default();
                }
            }
        }
    }

    /// Folds another session's traffic counters into this cache's (the
    /// parallel apply reports worker traffic through the parent session).
    pub(crate) fn absorb_counters(&mut self, other: &ComputedCache) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.insertions += other.insertions;
        self.shared_lookups += other.shared_lookups;
        self.shared_hits += other.shared_hits;
        self.shared_insertions += other.shared_insertions;
    }
}

impl std::fmt::Debug for ComputedCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ComputedCache")
            .field("sets", &self.sets.len())
            .field("ways", &CACHE_WAYS)
            .field("generation", &self.generation)
            .field("lookups", &self.lookups)
            .field("hits", &self.hits)
            .finish()
    }
}

/// Reusable visited-stamp scratch for `&self` DAG traversals: `stamp[i] ==
/// gen` means node `i` was seen in the current traversal. Replaces a fresh
/// `HashSet` per call with two loads and a compare per visit.
#[derive(Debug, Default)]
pub(crate) struct VisitScratch {
    stamp: Vec<u32>,
    gen: u32,
}

impl VisitScratch {
    /// Starts a traversal over `n` nodes; returns the scratch ready to mark.
    pub(crate) fn begin(&mut self, n: usize) {
        if self.stamp.len() < n {
            self.stamp.resize(n, 0);
        }
        self.gen = self.gen.wrapping_add(1);
        if self.gen == 0 {
            self.stamp.fill(0);
            self.gen = 1;
        }
    }

    /// Marks a node; returns `true` the first time it is seen.
    #[inline(always)]
    pub(crate) fn mark(&mut self, i: usize) -> bool {
        if self.stamp[i] == self.gen {
            false
        } else {
            self.stamp[i] = self.gen;
            true
        }
    }

    /// Whether node `i` was marked in the traversal opened by the most
    /// recent [`VisitScratch::begin`] (used by the sweep phase to read the
    /// mark phase's result).
    #[inline(always)]
    pub(crate) fn is_marked(&self, i: usize) -> bool {
        self.stamp.get(i) == Some(&self.gen)
    }
}

/// Resource budget governing the fallible (`try_*`) kernel entry points.
///
/// All fields default to `None` (unlimited). A session with limits
/// installed checks them from a cheap step counter ticked once per
/// recursive kernel invocation; when any bound is crossed the running
/// `try_*` operation returns [`LimitExceeded`] and unwinds cooperatively.
/// The infallible kernels (`ite`, `and`, ...) always run with this budget
/// suspended — they are unlimited-budget wrappers over the same
/// recursions and can never abort.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceLimits {
    /// Abort once the store's live node count exceeds this (the memory
    /// bound: a blowing-up cone is cut off before it can exhaust the
    /// arena).
    pub max_live_nodes: Option<usize>,
    /// Abort after this many kernel recursion steps since the limits were
    /// installed or last reset (the work bound).
    pub max_steps: Option<u64>,
    /// Abort once `Instant::now()` passes this absolute deadline (checked
    /// every 256 steps to keep the clock off the hot path).
    pub deadline: Option<std::time::Instant>,
}

impl ResourceLimits {
    /// Whether any bound is actually set.
    pub fn is_limited(&self) -> bool {
        self.max_live_nodes.is_some() || self.max_steps.is_some() || self.deadline.is_some()
    }
}

/// Which bound of a [`ResourceLimits`] was crossed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LimitKind {
    /// [`ResourceLimits::max_live_nodes`].
    Nodes,
    /// [`ResourceLimits::max_steps`].
    Steps,
    /// [`ResourceLimits::deadline`].
    Deadline,
    /// A test-only injected fault
    /// ([`crate::manager::Manager::fault_inject_abort_after`]).
    Injected,
    /// The shared node store ran out of arena or unique-table headroom
    /// while it could not be grown (growth needs `&mut`, which a shared
    /// kernel region cannot take). This is a *retry* signal: the manager
    /// façade catches it, grows the store at the next quiescent point and
    /// re-runs the operation (the warm computed cache makes the retry
    /// cheap), so it never escapes a `Manager` entry point.
    TableFull,
}

/// A `try_*` kernel aborted because a [`ResourceLimits`] bound was
/// crossed.
///
/// The abort is *clean*: the kernel state remains fully consistent —
/// unique table, computed cache, interior reference counts and
/// per-variable lists all intact. Nodes built by the aborted recursion
/// are ordinary unreferenced garbage for the next collection; no state
/// needs rolling back and every previously held [`Ref`] is still valid.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LimitExceeded {
    /// The bound that was crossed.
    pub kind: LimitKind,
    /// Kernel steps taken when the abort fired.
    pub steps: u64,
    /// Live node count when the abort fired.
    pub live_nodes: usize,
}

impl std::fmt::Display for LimitExceeded {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let what = match self.kind {
            LimitKind::Nodes => "node limit",
            LimitKind::Steps => "step limit",
            LimitKind::Deadline => "deadline",
            LimitKind::Injected => "injected fault",
            LimitKind::TableFull => "shared-table headroom",
        };
        write!(
            f,
            "BDD kernel aborted: {what} exceeded after {} steps ({} live nodes)",
            self.steps, self.live_nodes
        )
    }
}

impl std::error::Error for LimitExceeded {}

/// Per-thread kernel state: the computed cache, the traversal scratch,
/// the resource budget and the tick counter.
///
/// One session per thread. The `RefCell` around the visit scratch pins
/// `Session: !Sync` (asserted by a `compile_fail` doctest in the crate
/// docs) — sharing a session between threads is a bug by construction;
/// sharing the [`NodeStore`] is the supported way to cooperate.
#[derive(Debug)]
pub struct Session {
    pub(crate) cache: ComputedCache,
    /// Visited-stamp scratch shared by the `&self` traversals — the
    /// `!Sync` pin.
    pub(crate) visited: RefCell<VisitScratch>,
    /// Per-call epoch for [`op::SCOPED`] cache entries.
    pub(crate) scope_epoch: u32,
    /// Resource budget consulted by the `try_*` kernels (all-`None` =
    /// unlimited).
    pub(crate) limits: ResourceLimits,
    /// Fast gate for [`Session::tick`]: true iff `limits.is_limited()` or
    /// a fault injection is armed, and governance is not suspended by an
    /// infallible wrapper.
    pub(crate) governed: bool,
    /// Kernel recursion steps since limits were installed / last reset.
    pub(crate) steps: u64,
    /// Test-only fault injection: abort with [`LimitKind::Injected`] once
    /// `steps` reaches this value.
    pub(crate) abort_at_step: Option<u64>,
    /// Arena slots this session created since the manager last drained
    /// the log. Kernels hold only `&NodeStore`, so they cannot maintain
    /// the store's per-variable slot lists; instead every publication is
    /// logged here and [`crate::manager::Manager`] folds the log into the
    /// lists after each kernel call (success and abort alike — aborted
    /// recursions leave real arena nodes behind).
    pub(crate) created: Vec<u32>,
}

impl Default for Session {
    fn default() -> Self {
        Session::with_cache_bits(DEFAULT_CACHE_BITS)
    }
}

impl Session {
    /// A fresh ungoverned session with the default cache budget.
    pub fn new() -> Session {
        Session::default()
    }

    /// A fresh ungoverned session with a computed cache budgeted at
    /// `cache_bits` (clamped to `[8, 28]`).
    pub fn with_cache_bits(cache_bits: u32) -> Session {
        Session {
            cache: ComputedCache::with_bits(cache_bits),
            visited: RefCell::new(VisitScratch::default()),
            scope_epoch: 0,
            limits: ResourceLimits::default(),
            governed: false,
            steps: 0,
            abort_at_step: None,
            created: Vec::new(),
        }
    }

    /// Installs a resource budget and resets the step counter.
    pub fn set_limits(&mut self, limits: ResourceLimits) {
        self.limits = limits;
        self.steps = 0;
        self.governed = limits.is_limited() || self.abort_at_step.is_some();
    }

    /// Removes any installed budget (and disarms fault injection).
    pub fn clear_limits(&mut self) {
        self.limits = ResourceLimits::default();
        self.abort_at_step = None;
        self.steps = 0;
        self.governed = false;
    }

    /// The currently installed resource budget.
    pub fn limits(&self) -> ResourceLimits {
        self.limits
    }

    /// Kernel recursion steps taken since the limits were installed or
    /// last reset.
    pub fn steps_used(&self) -> u64 {
        self.steps
    }

    /// Resets the step counter without touching the installed bounds.
    pub fn reset_steps(&mut self) {
        self.steps = 0;
    }

    /// Arms (or disarms) the test-only injected abort.
    pub(crate) fn fault_inject_abort_after(&mut self, steps: Option<u64>) {
        self.abort_at_step = steps;
        self.steps = 0;
        self.governed = self.limits.is_limited() || steps.is_some();
    }

    /// One governance tick, called at the top of every fallible kernel
    /// recursion. A single predictable branch when ungoverned.
    #[inline(always)]
    pub(crate) fn tick(&mut self, store: &NodeStore) -> Result<(), LimitExceeded> {
        if !self.governed {
            return Ok(());
        }
        self.tick_slow(store)
    }

    #[cold]
    fn tick_slow(&mut self, store: &NodeStore) -> Result<(), LimitExceeded> {
        self.steps += 1;
        let exceeded = |kind, steps, live| LimitExceeded {
            kind,
            steps,
            live_nodes: live,
        };
        if let Some(at) = self.abort_at_step {
            if self.steps >= at {
                return Err(exceeded(
                    LimitKind::Injected,
                    self.steps,
                    store.live_nodes(),
                ));
            }
        }
        if let Some(max) = self.limits.max_steps {
            if self.steps > max {
                return Err(exceeded(LimitKind::Steps, self.steps, store.live_nodes()));
            }
        }
        if let Some(max) = self.limits.max_live_nodes {
            if store.live_nodes() > max {
                return Err(exceeded(LimitKind::Nodes, self.steps, store.live_nodes()));
            }
        }
        if let Some(deadline) = self.limits.deadline {
            // The clock is the only expensive check: sample it every 256
            // steps so governed kernels stay within noise of ungoverned.
            if self.steps & 0xFF == 0 && std::time::Instant::now() >= deadline {
                return Err(exceeded(
                    LimitKind::Deadline,
                    self.steps,
                    store.live_nodes(),
                ));
            }
        }
        Ok(())
    }

    /// Two-tier memo probe: private L1 first, shared L2 on a miss. An L2
    /// hit warms the L1 in place, so a key another thread solved costs
    /// this session one shared probe total, not one per repetition.
    ///
    /// Only the function-valued binary/ternary kernels (`AND`, `XOR`,
    /// `ITE`) go through here — their results survive in-place level
    /// swaps, so the L2 only needs clearing when nodes are actually
    /// reclaimed (see the manager's quiescent hooks).
    #[inline(always)]
    pub(crate) fn lookup2(
        &mut self,
        store: &NodeStore,
        op: u32,
        a: u32,
        b: u32,
        c: u32,
    ) -> Option<Ref> {
        if let Some(r) = self.cache.lookup(op, a, b, c) {
            return Some(r);
        }
        self.cache.shared_lookups += 1;
        let r = store.shared_cache().lookup(op as u64, a, b, c)?;
        self.cache.shared_hits += 1;
        self.cache.insert(op, a, b, c, r);
        Some(r)
    }

    /// Two-tier memo insert: always into the private L1; into the shared
    /// L2 only when the recursion that produced `r` consumed at least
    /// [`L2_PUBLISH_MIN_WORK`] descendant cache probes (`work0` is the L1
    /// lookup count sampled right after this key's own miss). Leaf-ish
    /// results churn far faster than they are reused cross-thread, so
    /// publishing them would only add coherence traffic and evictions;
    /// the threshold keeps the L2 holding the expensive subproblems.
    #[allow(clippy::too_many_arguments)]
    #[inline(always)]
    pub(crate) fn publish2(
        &mut self,
        store: &NodeStore,
        op: u32,
        a: u32,
        b: u32,
        c: u32,
        work0: u64,
        r: Ref,
    ) {
        self.cache.insert(op, a, b, c, r);
        if self.cache.lookups - work0 >= L2_PUBLISH_MIN_WORK {
            self.cache.shared_insertions += 1;
            store.shared_cache().publish(op as u64, a, b, c, r);
        }
    }

    /// Finds or creates the node `(var, low, high)` in the shared store,
    /// applying the reduction rules (equal children; complement pushed
    /// off the 1-edge). The kernel-side `mk`: the variable must already
    /// be registered (kernels only ever rebuild over operand variables),
    /// a created slot is logged for the manager's list drain, and a full
    /// store surfaces as [`LimitKind::TableFull`] for the façade's
    /// grow-and-retry loop.
    #[inline]
    pub(crate) fn mk(
        &mut self,
        store: &NodeStore,
        var: Var,
        low: Ref,
        high: Ref,
    ) -> Result<Ref, LimitExceeded> {
        if low == high {
            return Ok(low);
        }
        debug_assert!(
            store.var_level(var.0) < store.level(low) && store.var_level(var.0) < store.level(high),
            "mk: ordering violated at {var:?}"
        );
        let complement = high.is_complemented();
        let (low, high) = if complement {
            (!low, !high)
        } else {
            (low, high)
        };
        match store.try_mk(var, low, high) {
            Ok((r, created)) => {
                if created {
                    self.created.push(r.node().0);
                }
                Ok(r.xor_complement(complement))
            }
            Err(_) => Err(LimitExceeded {
                kind: LimitKind::TableFull,
                steps: self.steps,
                live_nodes: store.live_nodes(),
            }),
        }
    }
}

/// A shared, clonable budget of *additional* worker threads: the single
/// `--jobs` knob, enforced globally. Suite-level parallelism (one
/// manager per `bench::pool` worker) and intra-cone parallelism (the
/// parallel apply forking sessions against one shared store) draw from
/// the same pool of permits, so nesting one inside the other can never
/// oversubscribe the machine.
///
/// A budget constructed with `JobBudget::new(p)` allows `p` extra
/// threads beyond the callers that hold it. [`JobBudget::try_acquire`]
/// never blocks: a nested region that finds no permits simply runs
/// sequentially on its own thread.
#[derive(Clone, Debug)]
pub struct JobBudget(Arc<AtomicUsize>);

impl JobBudget {
    /// A budget permitting `permits` additional worker threads (on top
    /// of every thread already running that holds a clone).
    pub fn new(permits: usize) -> JobBudget {
        JobBudget(Arc::new(AtomicUsize::new(permits)))
    }

    /// Claims up to `max` permits without blocking; returns how many were
    /// actually claimed (possibly zero). The caller must [`release`]
    /// exactly that many when its workers exit.
    ///
    /// [`release`]: JobBudget::release
    pub fn try_acquire(&self, max: usize) -> usize {
        let mut avail = self.0.load(Ordering::Relaxed);
        loop {
            let take = avail.min(max);
            if take == 0 {
                return 0;
            }
            // ordering: Relaxed suffices — permits only gate thread
            // *counts*; all data handoff synchronizes through spawn/join.
            match self.0.compare_exchange_weak(
                avail,
                avail - take,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return take,
                Err(now) => avail = now,
            }
        }
    }

    /// Returns `permits` previously claimed permits to the pool.
    pub fn release(&self, permits: usize) {
        if permits > 0 {
            // ordering: Relaxed — see try_acquire.
            self.0.fetch_add(permits, Ordering::Relaxed);
        }
    }

    /// Permits currently available (diagnostic; racy by nature).
    pub fn available(&self) -> usize {
        self.0.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computed_cache_clear_survives_generation_wrap() {
        let mut cache = ComputedCache::with_bits(8);
        // Force the generation to the wrap boundary with a live entry in
        // the table, then clear: the wrap branch must wipe the entries and
        // restart at generation 1 without resurrecting stale results.
        cache.generation = (u32::MAX >> GEN_SHIFT) - 1;
        cache.insert(op::AND, 4, 6, 0, Ref::ZERO);
        cache.clear();
        assert_eq!(cache.generation, 1, "wrap resets to generation 1");
        assert!(
            cache.sets.iter().all(|s| s.ways.iter().all(|e| e.tag == 0)),
            "wrap must wipe every way of every set"
        );
        assert_eq!(
            cache.lookup(op::AND, 4, 6, 0),
            None,
            "the poisoned pre-wrap entry must not be observable"
        );
    }

    #[test]
    fn visit_scratch_survives_stamp_wrap() {
        let mut s = VisitScratch::default();
        s.begin(4);
        assert!(s.mark(2), "fresh scratch: first visit");
        // Force the wrap: the next begin() lands on generation 0, which
        // must wipe the stamps (any stale stamp would equal the new
        // generation and read as already-visited).
        s.gen = u32::MAX;
        s.stamp.fill(u32::MAX); // worst case: every stamp aliases pre-wrap gen
        s.begin(4);
        assert_eq!(s.gen, 1, "wrap resets to generation 1");
        for i in 0..4 {
            assert!(s.mark(i), "node {i} must read unvisited after the wrap");
            assert!(!s.mark(i), "second visit is still detected");
            assert!(s.is_marked(i));
        }
    }

    #[test]
    fn cache_scrub_drops_exactly_the_flagged_entries() {
        let mut cache = ComputedCache::with_bits(8);
        cache.insert(op::AND, 4, 6, 0, Ref::ZERO);
        cache.insert(op::XOR, 8, 10, 0, Ref::ONE);
        // Scrub everything whose first word is 8.
        cache.scrub(|w| w != 8);
        assert_eq!(cache.lookup(op::XOR, 8, 10, 0), None, "flagged entry dies");
        assert_eq!(
            cache.lookup(op::AND, 4, 6, 0),
            Some(Ref::ZERO),
            "unflagged entry survives the scrub"
        );
    }

    #[test]
    fn job_budget_acquire_release_roundtrip() {
        let b = JobBudget::new(3);
        assert_eq!(b.available(), 3);
        assert_eq!(b.try_acquire(2), 2);
        let b2 = b.clone();
        assert_eq!(b2.try_acquire(5), 1, "clones share one pool");
        assert_eq!(b.try_acquire(1), 0, "exhausted budget yields zero");
        b2.release(1);
        b.release(2);
        assert_eq!(b.available(), 3);
    }

    #[test]
    fn session_limit_bookkeeping_roundtrip() {
        let mut s = Session::new();
        assert!(!s.limits().is_limited());
        s.set_limits(ResourceLimits {
            max_steps: Some(10),
            ..ResourceLimits::default()
        });
        assert!(s.governed);
        assert_eq!(s.steps_used(), 0);
        s.clear_limits();
        assert!(!s.governed);
    }
}
