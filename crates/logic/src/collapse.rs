//! Network partitioning: partial collapse of the input network into
//! *supernodes*, each represented by a local BDD.
//!
//! This reproduces the preprocessing stage of BDS (§IV-A of the BDS-MAJ
//! paper): manipulating one global BDD is impractical for large circuits,
//! so the network is first partially collapsed — an `eliminate`-style pass —
//! and each resulting supernode gets its own BDD over the surrounding
//! boundary signals.

use crate::network::{GateKind, Network, SignalId};
use bdd::{BuildFxHasher, LimitExceeded, Manager, Ref, ResourceLimits};
use std::collections::HashMap;

/// Tuning knobs for the partial collapse.
#[derive(Clone, Copy, Debug)]
pub struct PartitionConfig {
    /// A supernode is cut when its merged input support would exceed this.
    pub max_support: usize,
    /// Signals with strictly more fanouts than this stay boundary signals,
    /// preserving sharing present in the input network.
    pub fanout_limit: usize,
}

impl Default for PartitionConfig {
    fn default() -> Self {
        // Calibrated on the paper suite: collapsing only single-fanout
        // chains (the spirit of the BDS `eliminate` value threshold) keeps
        // shared logic shared, and 12 boundary inputs bounds local BDDs.
        PartitionConfig {
            max_support: 12,
            fanout_limit: 1,
        }
    }
}

/// A collapsed supernode: one boundary signal of the partitioned network
/// together with its function over the neighbouring boundary signals.
#[derive(Clone, Debug)]
pub struct Supernode {
    /// The signal (in the original network) this supernode drives.
    pub root: SignalId,
    /// Boundary signals feeding the supernode; input `i` is BDD variable `i`.
    pub inputs: Vec<SignalId>,
    /// Local function over `inputs`, in the shared manager. [`partition`]
    /// protects it as a garbage-collection root; whoever finishes with the
    /// supernode releases it (see [`Partition::release_roots`]).
    ///
    /// Meaningless (the constant zero, unprotected) when `degraded`.
    pub function: Ref,
    /// The cone build blew its resource budget: `function` was never
    /// built and `inputs` is empty. Consumers must fall back to the
    /// original network gates for this root.
    pub degraded: bool,
}

/// Result of [`partition`]: supernodes in topological order.
#[derive(Clone, Debug, Default)]
pub struct Partition {
    /// Collapsed supernodes, topologically ordered (fanins first).
    pub supernodes: Vec<Supernode>,
}

impl Partition {
    /// Sum of local BDD sizes, a quick complexity indicator.
    pub fn total_bdd_size(&self, manager: &Manager) -> usize {
        self.supernodes
            .iter()
            .filter(|s| !s.degraded)
            .map(|s| manager.size(s.function))
            .sum()
    }

    /// Number of supernodes whose cone build blew the budget.
    pub fn degraded_count(&self) -> usize {
        self.supernodes.iter().filter(|s| s.degraded).count()
    }

    /// Releases every supernode function protected by [`partition`].
    /// Consumers that release per supernode as they go (the decomposition
    /// engine does) must not also call this. Degraded supernodes hold no
    /// function and are skipped.
    // bdslint: allow(protect-release) -- this IS the release half:
    // it frees the roots partition() protected on the caller's behalf
    pub fn release_roots(&self, manager: &mut Manager) {
        for sn in &self.supernodes {
            if !sn.degraded {
                manager.release(sn.function);
            }
        }
    }
}

/// Partially collapses `net` into supernodes and builds one local BDD per
/// supernode in `manager`.
///
/// Boundary signals are: primary inputs, primary outputs, signals whose
/// fanout exceeds the configured limit, and signals where the merged
/// support would exceed `max_support`. Every boundary signal that is not a
/// primary input becomes a [`Supernode`].
///
/// Each supernode function is declared a garbage-collection root
/// ([`Manager::protect`]) the moment it is built, and the manager is
/// offered a [`Manager::maybe_collect`] between cone builds, so the
/// intermediates of already-finished cones can be recycled while later
/// cones are still being collapsed. Callers own the roots: release each
/// function when done with it (or use [`Partition::release_roots`]).
pub fn partition(net: &Network, manager: &mut Manager, config: PartitionConfig) -> Partition {
    partition_with_limits(net, manager, config, ResourceLimits::default())
}

/// [`partition`] with a per-cone resource budget.
///
/// Each cone's BDD is built through the fallible kernels with `limits`
/// installed (the step counter resets per cone; a deadline is absolute
/// and therefore bounds the whole pass). A cone that blows the budget
/// becomes a *degraded* supernode — [`Supernode::degraded`] set, no
/// function, no protection — and its aborted garbage is collected before
/// the next cone builds, so one pathological cone cannot OOM the run or
/// poison its neighbours. All-`None` limits make this identical to
/// [`partition`].
// bdslint: allow(protect-release) -- supernode roots are handed to the
// caller, who releases them per cone or via Partition::release_roots
pub fn partition_with_limits(
    net: &Network,
    manager: &mut Manager,
    config: PartitionConfig,
    limits: ResourceLimits,
) -> Partition {
    // Pre-size the manager's unique table for the whole partition: local
    // BDDs are built per supernode into one shared manager, and growing
    // the table once up front beats rehash churn during every cone build.
    // The estimate is deliberately generous — buckets are 4 bytes each.
    manager.reserve_nodes((net.len() * 16).clamp(1 << 12, 1 << 20));
    let fanouts = net.fanout_counts();
    let mut is_output = vec![false; net.len()];
    for (_, s) in net.outputs() {
        is_output[s.index()] = true;
    }

    // First pass: decide boundaries while propagating merged supports.
    let mut boundary = vec![false; net.len()];
    let mut support: Vec<Vec<SignalId>> = vec![Vec::new(); net.len()];
    for id in net.signals() {
        let node = net.node(id);
        match node.kind {
            GateKind::Input => {
                boundary[id.index()] = true;
                support[id.index()] = vec![id];
            }
            GateKind::Const(_) => {
                support[id.index()] = vec![];
                if is_output[id.index()] {
                    boundary[id.index()] = true;
                }
            }
            _ => {
                let mut merged: Vec<SignalId> = Vec::new();
                for &f in &node.fanins {
                    let fsup: Vec<SignalId> = if boundary[f.index()] {
                        vec![f]
                    } else {
                        support[f.index()].clone()
                    };
                    let added = fsup.iter().filter(|s| !merged.contains(s)).count();
                    // Greedy guard: if absorbing this fanin's cone would blow
                    // past the bound, cut the fanin itself instead. Boundary
                    // flags are what the BDD build consults, so this is safe.
                    if merged.len() + added > config.max_support
                        && !boundary[f.index()]
                        && !matches!(net.node(f).kind, GateKind::Const(_))
                    {
                        boundary[f.index()] = true;
                        if !merged.contains(&f) {
                            merged.push(f);
                        }
                    } else {
                        for s in fsup {
                            if !merged.contains(&s) {
                                merged.push(s);
                            }
                        }
                    }
                }
                let cut = is_output[id.index()]
                    || merged.len() > config.max_support
                    || fanouts[id.index()] > config.fanout_limit;
                if cut {
                    boundary[id.index()] = true;
                }
                support[id.index()] = merged;
            }
        }
    }

    // Logic depth of every signal (longest fanin chain), used by the cone
    // builds to pick a depth-weighted static variable order: signals from
    // the deepest sub-cones come first, the classic Malik/Fujita DFS
    // heuristic that keeps late-arriving (structurally "controlling")
    // boundary signals near the top of each local BDD.
    let mut depth = vec![0u32; net.len()];
    for id in net.signals() {
        depth[id.index()] = net
            .node(id)
            .fanins
            .iter()
            .map(|f| depth[f.index()] + 1)
            .max()
            .unwrap_or(0);
    }

    // Second pass: build the local BDD of every non-input boundary signal.
    let governed = limits.is_limited();
    let mut part = Partition::default();
    for id in net.signals() {
        if !boundary[id.index()] || matches!(net.node(id).kind, GateKind::Input) {
            continue;
        }
        if governed {
            // Fresh step budget per cone; node ceiling and deadline stay
            // global, which is exactly the containment we want.
            manager.set_limits(limits);
        }
        match try_build_local_bdd(net, manager, id, &boundary, &depth, false) {
            Ok((inputs, function)) => {
                manager.protect(function);
                // Second candidate under the depth-weighted visit order.
                // Neither static order dominates the suite, so keep the
                // smaller of the two; the loser's nodes are unprotected
                // garbage reclaimed by the maybe_collect below. A fresh
                // step budget keeps the extra build from starving the
                // cone, and a blown second build just falls back to the
                // first — never a new degradation.
                if governed {
                    manager.set_limits(limits);
                }
                let (inputs, function) =
                    match try_build_local_bdd(net, manager, id, &boundary, &depth, true) {
                        Ok((inputs2, function2))
                            if manager.size(function2) < manager.size(function) =>
                        {
                            manager.protect(function2);
                            manager.release(function);
                            (inputs2, function2)
                        }
                        _ => (inputs, function),
                    };
                part.supernodes.push(Supernode {
                    root: id,
                    inputs,
                    function,
                    degraded: false,
                });
            }
            Err(_) => {
                // The aborted build's partial products are unreferenced
                // garbage; reclaim them now so the blown cone does not
                // carry its node debt into its neighbours' budgets.
                part.supernodes.push(Supernode {
                    root: id,
                    inputs: Vec::new(),
                    function: Ref::ZERO,
                    degraded: true,
                });
                manager.clear_limits();
                manager.collect();
                continue;
            }
        }
        if governed {
            manager.clear_limits();
        }
        // A finished cone's intermediates (the per-gate partial products
        // of eval_cone) are dead now; between builds every live function
        // is a protected supernode root, so both dynamic reordering (a
        // no-op unless the caller armed `AutoSiftConfig`) and collection
        // are safe at this quiescent point. Sift first: the swap garbage
        // it displaces is exactly what the collector then recycles.
        manager.maybe_sift();
        manager.maybe_collect();
    }
    if governed {
        manager.clear_limits();
    }
    part
}

/// Builds the BDD of the cone rooted at `root`, stopping at boundary
/// signals, which become the BDD variables in DFS discovery order.
///
/// With `deep_first` the DFS is depth-weighted: at each gate the deepest
/// fanin sub-cone is descended first (ties keep the structural
/// left-to-right order), so boundary signals on long arrival paths are
/// assigned low variable indices. Neither order dominates across the
/// benchmark suite, so [`partition_with_limits`] builds both candidates
/// and keeps the smaller BDD.
fn try_build_local_bdd(
    net: &Network,
    manager: &mut Manager,
    root: SignalId,
    boundary: &[bool],
    depth: &[u32],
    deep_first: bool,
) -> Result<(Vec<SignalId>, Ref), LimitExceeded> {
    let mut inputs: Vec<SignalId> = Vec::new();
    let mut var_of: HashMap<SignalId, u32, BuildFxHasher> = HashMap::default();
    // Pre-assign variables in DFS discovery order for a topology-aware
    // static ordering (deepest fanin visited first).
    let mut stack = vec![(root, false)];
    let mut visited: HashMap<SignalId, bool, BuildFxHasher> = HashMap::default();
    while let Some((id, is_boundary_ref)) = stack.pop() {
        if is_boundary_ref || boundary[id.index()] && id != root {
            if let std::collections::hash_map::Entry::Vacant(e) = var_of.entry(id) {
                let v = inputs.len() as u32;
                e.insert(v);
                inputs.push(id);
            }
            continue;
        }
        if visited.insert(id, true).is_some() {
            continue;
        }
        // Visit order: left-to-right, or deepest fanin sub-cone first.
        // Pushing the reverse of the visit order makes the stack pop it
        // in order; the sort is stable so ties stay left-to-right.
        let mut fanins = net.node(id).fanins.clone();
        if deep_first {
            fanins.sort_by_key(|f| std::cmp::Reverse(depth[f.index()]));
        }
        for &f in fanins.iter().rev() {
            stack.push((f, boundary[f.index()]));
        }
    }

    let mut memo: HashMap<SignalId, Ref, BuildFxHasher> = HashMap::default();
    let f = eval_cone(net, manager, root, &var_of, &mut memo, root)?;
    Ok((inputs, f))
}

fn eval_cone(
    net: &Network,
    manager: &mut Manager,
    id: SignalId,
    var_of: &HashMap<SignalId, u32, BuildFxHasher>,
    memo: &mut HashMap<SignalId, Ref, BuildFxHasher>,
    root: SignalId,
) -> Result<Ref, LimitExceeded> {
    if id != root {
        if let Some(&v) = var_of.get(&id) {
            return Ok(manager.var(v));
        }
    }
    if let Some(&r) = memo.get(&id) {
        return Ok(r);
    }
    let node = net.node(id);
    let mut kids: Vec<Ref> = Vec::with_capacity(node.fanins.len());
    for &f in &node.fanins {
        kids.push(eval_cone(net, manager, f, var_of, memo, root)?);
    }
    let r = try_apply_gate(manager, &node.kind, &kids)?;
    memo.insert(id, r);
    Ok(r)
}

/// Applies a gate function to already-built BDD operands.
pub fn apply_gate(manager: &mut Manager, kind: &GateKind, kids: &[Ref]) -> Ref {
    manager.ungoverned(|m| try_apply_gate(m, kind, kids))
}

/// Budget-governed [`apply_gate`]: aborts with [`LimitExceeded`] when the
/// manager's installed [`ResourceLimits`] are crossed mid-build.
pub fn try_apply_gate(
    manager: &mut Manager,
    kind: &GateKind,
    kids: &[Ref],
) -> Result<Ref, LimitExceeded> {
    Ok(match kind {
        GateKind::Input => panic!("inputs are boundary signals"),
        GateKind::Const(b) => manager.constant(*b),
        GateKind::Buf => kids[0],
        GateKind::Inv => !kids[0],
        // The wide-fanin folds and the mux route through the
        // parallelism-aware entries: with a `JobBudget` installed on the
        // manager an ungoverned build forks large cones across threads,
        // while governed (budgeted) builds and managers without a budget
        // take the exact sequential path (`bdd::Manager::try_par_and`).
        GateKind::And => manager.try_par_and_all(kids.iter().copied())?,
        GateKind::Or => manager.try_par_or_all(kids.iter().copied())?,
        GateKind::Nand => !manager.try_par_and_all(kids.iter().copied())?,
        GateKind::Nor => !manager.try_par_or_all(kids.iter().copied())?,
        GateKind::Xor => manager.try_par_xor_all(kids.iter().copied())?,
        GateKind::Xnor => !manager.try_par_xor_all(kids.iter().copied())?,
        GateKind::Maj => manager.try_maj(kids[0], kids[1], kids[2])?,
        GateKind::Mux => manager.try_par_ite(kids[0], kids[1], kids[2])?,
        GateKind::Lut(table) => {
            // Shannon expansion over the LUT inputs, deepest variable first.
            fn expand(
                manager: &mut Manager,
                table: &crate::truth::TruthTable,
                kids: &[Ref],
                fixed: usize,
                row: usize,
            ) -> Result<Ref, LimitExceeded> {
                if fixed == kids.len() {
                    return Ok(manager.constant(table.value(row)));
                }
                // Fix inputs from the last down to the first so the
                // recursion depth matches the fanin count.
                let i = kids.len() - 1 - fixed;
                let hi = expand(manager, table, kids, fixed + 1, row | 1 << i)?;
                let lo = expand(manager, table, kids, fixed + 1, row)?;
                manager.try_ite(kids[i], hi, lo)
            }
            expand(manager, table, kids, 0, 0)?
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::GateKind;

    fn adder_net(bits: u32) -> Network {
        let mut net = Network::new("ripple");
        let a: Vec<SignalId> = (0..bits).map(|i| net.add_input(format!("a{i}"))).collect();
        let b: Vec<SignalId> = (0..bits).map(|i| net.add_input(format!("b{i}"))).collect();
        let mut carry: Option<SignalId> = None;
        for i in 0..bits as usize {
            let (s, c) = match carry {
                None => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i]]);
                    let c = net.add_gate(GateKind::And, vec![a[i], b[i]]);
                    (s, c)
                }
                Some(cin) => {
                    let s = net.add_gate(GateKind::Xor, vec![a[i], b[i], cin]);
                    let c = net.add_gate(GateKind::Maj, vec![a[i], b[i], cin]);
                    (s, c)
                }
            };
            net.set_output(format!("s{i}"), s);
            carry = Some(c);
        }
        net.set_output("cout", carry.unwrap());
        net
    }

    #[test]
    fn partition_covers_all_outputs() {
        let net = adder_net(8);
        let mut m = Manager::new();
        let part = partition(&net, &mut m, PartitionConfig::default());
        let roots: Vec<SignalId> = part.supernodes.iter().map(|s| s.root).collect();
        for (_, s) in net.outputs() {
            assert!(roots.contains(s), "output {s:?} must be a supernode root");
        }
    }

    #[test]
    fn supernode_functions_match_simulation() {
        let net = adder_net(4);
        let mut m = Manager::new();
        let part = partition(&net, &mut m, PartitionConfig::default());
        // Simulate the network on random patterns and check each supernode
        // BDD against the values of its root and inputs.
        let patterns: Vec<u64> = (0..net.inputs().len() as u64)
            .map(|i| i.wrapping_mul(0x9e3779b97f4a7c15).rotate_left(17) | 1 << i)
            .collect();
        let mut values: HashMap<SignalId, u64> = HashMap::new();
        // Recompute all internal values via a full simulation trace.
        let all = simulate_all(&net, &patterns);
        for id in net.signals() {
            values.insert(id, all[id.index()]);
        }
        for sn in &part.supernodes {
            for bit in 0..64 {
                let assignment: Vec<bool> = sn
                    .inputs
                    .iter()
                    .map(|s| values[s] >> bit & 1 == 1)
                    .collect();
                let expected = values[&sn.root] >> bit & 1 == 1;
                assert_eq!(
                    m.eval(sn.function, &assignment),
                    expected,
                    "supernode {:?} bit {bit}",
                    sn.root
                );
            }
        }
    }

    /// Full-trace simulation helper (mirrors Network::simulate but exposes
    /// every internal signal).
    fn simulate_all(net: &Network, patterns: &[u64]) -> Vec<u64> {
        let mut values = vec![0u64; net.len()];
        let mut next = 0usize;
        for id in net.signals() {
            let node = net.node(id);
            let v = |s: SignalId| values[s.index()];
            values[id.index()] = match &node.kind {
                GateKind::Input => {
                    let p = patterns[next];
                    next += 1;
                    p
                }
                GateKind::Const(b) => {
                    if *b {
                        u64::MAX
                    } else {
                        0
                    }
                }
                GateKind::Buf => v(node.fanins[0]),
                GateKind::Inv => !v(node.fanins[0]),
                GateKind::And => node.fanins.iter().fold(u64::MAX, |a, &f| a & v(f)),
                GateKind::Or => node.fanins.iter().fold(0, |a, &f| a | v(f)),
                GateKind::Nand => !node.fanins.iter().fold(u64::MAX, |a, &f| a & v(f)),
                GateKind::Nor => !node.fanins.iter().fold(0, |a, &f| a | v(f)),
                GateKind::Xor => node.fanins.iter().fold(0, |a, &f| a ^ v(f)),
                GateKind::Xnor => !node.fanins.iter().fold(0, |a, &f| a ^ v(f)),
                GateKind::Maj => {
                    let (a, b, c) = (v(node.fanins[0]), v(node.fanins[1]), v(node.fanins[2]));
                    (a & b) | (b & c) | (a & c)
                }
                GateKind::Mux => {
                    let (s, t, e) = (v(node.fanins[0]), v(node.fanins[1]), v(node.fanins[2]));
                    (s & t) | (!s & e)
                }
                GateKind::Lut(t) => {
                    let mut out = 0u64;
                    for bit in 0..64 {
                        let mut row = 0usize;
                        for (i, &f) in node.fanins.iter().enumerate() {
                            if v(f) >> bit & 1 == 1 {
                                row |= 1 << i;
                            }
                        }
                        if t.value(row) {
                            out |= 1 << bit;
                        }
                    }
                    out
                }
            };
        }
        values
    }

    #[test]
    fn support_bound_is_respected() {
        let net = adder_net(16);
        let mut m = Manager::new();
        let cfg = PartitionConfig {
            max_support: 8,
            fanout_limit: 100,
        };
        let part = partition(&net, &mut m, cfg);
        for sn in &part.supernodes {
            // The cut happens when the merge *exceeds* the bound, so a node
            // can have at most max_support inputs once its fanins were cut.
            assert!(
                sn.inputs.len() <= cfg.max_support + 2,
                "supernode with {} inputs",
                sn.inputs.len()
            );
        }
    }

    #[test]
    fn lut_gate_expansion_matches() {
        let mut m = Manager::new();
        let a = m.var(0);
        let b = m.var(1);
        let c = m.var(2);
        // LUT for Maj3.
        let t = crate::truth::TruthTable::from_fn(3, |r| r.count_ones() >= 2);
        let f = apply_gate(&mut m, &GateKind::Lut(t), &[a, b, c]);
        let g = m.maj(a, b, c);
        assert_eq!(f, g);
    }
}
