//! Delay-oriented tree balancing on logic networks.
//!
//! Decomposition recursion emits skewed chains of two-input gates; a
//! technology mapper (like the ABC mapper used in the paper's flow)
//! restructures associative chains into balanced trees before covering.
//! This pass does the same on [`Network`]s: maximal single-fanout chains
//! of AND / OR / XOR(+XNOR-polarity) gates are rebuilt pairing the
//! shallowest operands first.

use crate::network::{GateKind, Network, SignalId};
use std::collections::HashMap;

/// Returns a balanced copy of `net`: associative chains of AND, OR and
/// XOR/XNOR gates are rebuilt as level-balanced trees. Other gate kinds
/// (MAJ, MUX, LUT, inverters) are preserved untouched.
pub fn balance_network(net: &Network) -> Network {
    let fanouts = net.fanout_counts();
    let mut out = Network::new(net.name().to_string());
    let mut map: HashMap<SignalId, SignalId> = HashMap::new();
    let mut level: HashMap<SignalId, usize> = HashMap::new();
    for &pi in net.inputs() {
        let s = out.add_input(net.signal_name(pi));
        map.insert(pi, s);
        level.insert(s, 0);
    }
    // Mark chain-internal nodes: same-kind, single fanout. They are
    // absorbed into their consumer's leaf collection and never emitted.
    let absorbed = mark_absorbed(net, &fanouts);
    for id in net.signals() {
        if map.contains_key(&id) || absorbed[id.index()] {
            continue;
        }
        let node = net.node(id);
        let s = match chain_class(&node.kind) {
            Some(class) => {
                let (leaves, odd) = collect_leaves(net, id, class, &absorbed);
                let mapped: Vec<SignalId> = leaves.iter().map(|l| map[l]).collect();
                build_balanced(&mut out, class, mapped, odd, &mut level)
            }
            None => {
                let fanins: Vec<SignalId> = node.fanins.iter().map(|f| map[f]).collect();
                let lvl = fanins.iter().map(|f| level[f]).max().unwrap_or(0)
                    + usize::from(!matches!(
                        node.kind,
                        GateKind::Input | GateKind::Const(_) | GateKind::Buf
                    ));
                let s = out.add_gate_simplified(node.kind.clone(), fanins);
                level.insert(s, lvl.max(level.get(&s).copied().unwrap_or(0)));
                s
            }
        };
        map.insert(id, s);
    }
    for (name, sig) in net.outputs() {
        out.set_output(name.clone(), map[sig]);
    }
    out.cleaned()
}

/// The associative family a gate belongs to, if any.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum ChainClass {
    And,
    Or,
    Parity,
}

fn chain_class(kind: &GateKind) -> Option<ChainClass> {
    match kind {
        GateKind::And => Some(ChainClass::And),
        GateKind::Or => Some(ChainClass::Or),
        GateKind::Xor | GateKind::Xnor => Some(ChainClass::Parity),
        _ => None,
    }
}

fn same_class(kind: &GateKind, class: ChainClass) -> bool {
    chain_class(kind) == Some(class)
}

fn mark_absorbed(net: &Network, fanouts: &[usize]) -> Vec<bool> {
    let mut absorbed = vec![false; net.len()];
    let mut is_output = vec![false; net.len()];
    for (_, s) in net.outputs() {
        is_output[s.index()] = true;
    }
    for id in net.signals() {
        let node = net.node(id);
        let Some(class) = chain_class(&node.kind) else {
            continue;
        };
        for &f in &node.fanins {
            if fanouts[f.index()] == 1
                && !is_output[f.index()]
                && same_class(&net.node(f).kind, class)
            {
                absorbed[f.index()] = true;
            }
        }
    }
    absorbed
}

/// Collects the leaves of the maximal chain rooted at `id`. For parity
/// chains, also returns whether the overall polarity is complemented
/// (an odd number of XNORs absorbed).
fn collect_leaves(
    net: &Network,
    id: SignalId,
    class: ChainClass,
    absorbed: &[bool],
) -> (Vec<SignalId>, bool) {
    let mut leaves = Vec::new();
    let mut odd = false;
    let mut stack = vec![id];
    let mut first = true;
    while let Some(cur) = stack.pop() {
        let node = net.node(cur);
        let absorb_here = first || absorbed[cur.index()];
        first = false;
        if absorb_here && same_class(&node.kind, class) {
            if matches!(node.kind, GateKind::Xnor) {
                odd = !odd;
            }
            stack.extend(node.fanins.iter().copied());
        } else {
            leaves.push(cur);
        }
    }
    (leaves, odd)
}

/// Builds a level-balanced tree over the mapped leaves, pairing the two
/// shallowest operands at each step (Huffman-style).
fn build_balanced(
    out: &mut Network,
    class: ChainClass,
    mut operands: Vec<SignalId>,
    odd: bool,
    level: &mut HashMap<SignalId, usize>,
) -> SignalId {
    assert!(!operands.is_empty(), "chains have at least one leaf");
    let kind = |last: bool| match (class, odd && last) {
        (ChainClass::And, _) => GateKind::And,
        (ChainClass::Or, _) => GateKind::Or,
        (ChainClass::Parity, false) => GateKind::Xor,
        (ChainClass::Parity, true) => GateKind::Xnor,
    };
    if operands.len() == 1 {
        let single = operands[0];
        return if odd && class == ChainClass::Parity {
            let s = out.add_gate_simplified(GateKind::Inv, vec![single]);
            let lvl = level.get(&single).copied().unwrap_or(0);
            level.insert(s, lvl);
            s
        } else {
            single
        };
    }
    while operands.len() > 1 {
        // Pick the two shallowest operands.
        operands.sort_by_key(|s| std::cmp::Reverse(level.get(s).copied().unwrap_or(0)));
        let a = operands.pop().expect("len > 1");
        let b = operands.pop().expect("len > 1");
        let last = operands.is_empty();
        let s = out.add_gate_simplified(kind(last), vec![a, b]);
        let lvl = level
            .get(&a)
            .copied()
            .unwrap_or(0)
            .max(level.get(&b).copied().unwrap_or(0))
            + 1;
        level.insert(s, lvl.max(level.get(&s).copied().unwrap_or(0)));
        operands.push(s);
    }
    operands.pop().expect("one root remains")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::equiv_sim;

    #[test]
    fn skewed_and_chain_becomes_log_depth() {
        let mut net = Network::new("chain");
        let ins: Vec<SignalId> = (0..16).map(|i| net.add_input(format!("i{i}"))).collect();
        let mut cur = ins[0];
        for &i in &ins[1..] {
            cur = net.add_gate(GateKind::And, vec![cur, i]);
        }
        net.set_output("y", cur);
        let balanced = balance_network(&net);
        assert_eq!(equiv_sim(&net, &balanced, 8, 1), Ok(()));
        assert!(
            balanced.depth() <= 5,
            "depth {} should be ~log2(16)",
            balanced.depth()
        );
    }

    #[test]
    fn xnor_chain_polarity_is_preserved() {
        // A chain of XNORs computes parity complemented by chain length.
        let mut net = Network::new("xnors");
        let ins: Vec<SignalId> = (0..7).map(|i| net.add_input(format!("i{i}"))).collect();
        let mut cur = ins[0];
        for &i in &ins[1..] {
            cur = net.add_gate(GateKind::Xnor, vec![cur, i]);
        }
        net.set_output("y", cur);
        let balanced = balance_network(&net);
        assert_eq!(equiv_sim(&net, &balanced, 16, 2), Ok(()));
        assert!(balanced.depth() <= 4, "depth {}", balanced.depth());
    }

    #[test]
    fn shared_subchains_are_not_duplicated() {
        let mut net = Network::new("shared");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let d = net.add_input("d");
        let ab = net.add_gate(GateKind::And, vec![a, b]);
        // ab has two fanouts: it must stay a distinct node.
        let t1 = net.add_gate(GateKind::And, vec![ab, c]);
        let t2 = net.add_gate(GateKind::And, vec![ab, d]);
        net.set_output("y1", t1);
        net.set_output("y2", t2);
        let balanced = balance_network(&net);
        assert_eq!(equiv_sim(&net, &balanced, 8, 3), Ok(()));
        assert_eq!(
            balanced.gate_counts().and,
            3,
            "sharing preserved, no duplication"
        );
    }

    #[test]
    fn mixed_gates_survive() {
        let mut net = Network::new("mixed");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let m = net.add_gate(GateKind::Maj, vec![x, b, c]);
        let o1 = net.add_gate(GateKind::Or, vec![m, a]);
        let o2 = net.add_gate(GateKind::Or, vec![o1, b]);
        let o3 = net.add_gate(GateKind::Or, vec![o2, c]);
        net.set_output("y", o3);
        let balanced = balance_network(&net);
        assert_eq!(equiv_sim(&net, &balanced, 16, 4), Ok(()));
        assert_eq!(balanced.gate_counts().maj, 1, "MAJ untouched");
    }

    #[test]
    fn outputs_inside_chains_stay_observable() {
        // t1 is both chain-internal and a primary output: it must not be
        // absorbed away.
        let mut net = Network::new("tap");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let t1 = net.add_gate(GateKind::And, vec![a, b]);
        let t2 = net.add_gate(GateKind::And, vec![t1, c]);
        net.set_output("tap", t1);
        net.set_output("y", t2);
        let balanced = balance_network(&net);
        assert_eq!(equiv_sim(&net, &balanced, 8, 5), Ok(()));
    }
}
