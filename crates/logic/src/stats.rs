//! Network statistics and file-based BLIF I/O conveniences — the
//! reporting surface a synthesis tool exposes on the command line.

use crate::blif::{parse_blif, write_blif, ParseBlifError};
use crate::network::{GateKind, Network};
use std::fmt;
use std::io;
use std::path::Path;

/// Aggregate statistics of a network, beyond the raw gate counts.
#[derive(Clone, Copy, PartialEq, Debug)]
pub struct NetworkStats {
    /// Primary inputs.
    pub inputs: usize,
    /// Primary outputs.
    pub outputs: usize,
    /// Function-bearing nodes (everything but inputs/buffers/constants).
    pub gates: usize,
    /// Total fanin-edge count over logic nodes ("literals" in SIS-speak).
    pub literals: usize,
    /// Longest input-to-output path in logic levels.
    pub depth: usize,
    /// Largest fanout of any signal.
    pub max_fanout: usize,
}

impl fmt::Display for NetworkStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} in / {} out, {} gates, {} literals, depth {}, max fanout {}",
            self.inputs, self.outputs, self.gates, self.literals, self.depth, self.max_fanout
        )
    }
}

impl Network {
    /// Computes aggregate statistics in one pass.
    pub fn stats(&self) -> NetworkStats {
        let mut gates = 0usize;
        let mut literals = 0usize;
        for id in self.signals() {
            let node = self.node(id);
            match node.kind {
                GateKind::Input | GateKind::Const(_) | GateKind::Buf => {}
                _ => {
                    gates += 1;
                    literals += node.fanins.len();
                }
            }
        }
        NetworkStats {
            inputs: self.inputs().len(),
            outputs: self.outputs().len(),
            gates,
            literals,
            depth: self.depth(),
            max_fanout: self.fanout_counts().into_iter().max().unwrap_or(0),
        }
    }
}

/// Error reading a BLIF file: I/O or parse failure.
#[derive(Debug)]
pub enum ReadBlifError {
    /// Filesystem error.
    Io(io::Error),
    /// Syntax/semantic error in the BLIF text.
    Parse(ParseBlifError),
}

impl fmt::Display for ReadBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReadBlifError::Io(e) => write!(f, "cannot read blif file: {e}"),
            ReadBlifError::Parse(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for ReadBlifError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadBlifError::Io(e) => Some(e),
            ReadBlifError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for ReadBlifError {
    fn from(e: io::Error) -> Self {
        ReadBlifError::Io(e)
    }
}

impl From<ParseBlifError> for ReadBlifError {
    fn from(e: ParseBlifError) -> Self {
        ReadBlifError::Parse(e)
    }
}

/// Reads a BLIF file from disk.
///
/// # Errors
///
/// Returns [`ReadBlifError`] on I/O or parse failure.
pub fn read_blif_file(path: impl AsRef<Path>) -> Result<Network, ReadBlifError> {
    let text = std::fs::read_to_string(path)?;
    Ok(parse_blif(&text)?)
}

/// Writes a network to a BLIF file on disk.
///
/// # Errors
///
/// Returns the underlying I/O error on failure.
pub fn write_blif_file(net: &Network, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, write_blif(net))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::GateKind;

    fn sample() -> Network {
        let mut net = Network::new("s");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.add_gate(GateKind::Xor, vec![a, b]);
        let y = net.add_gate(GateKind::And, vec![x, a]);
        net.set_output("y", y);
        net
    }

    #[test]
    fn stats_count_gates_and_literals() {
        let net = sample();
        let s = net.stats();
        assert_eq!(s.inputs, 2);
        assert_eq!(s.outputs, 1);
        assert_eq!(s.gates, 2);
        assert_eq!(s.literals, 4);
        assert_eq!(s.depth, 2);
        assert!(s.max_fanout >= 2, "input a feeds two gates");
        assert!(!format!("{s}").is_empty());
    }

    #[test]
    fn blif_file_roundtrip() {
        let net = sample();
        let dir = std::env::temp_dir().join("bdsmaj_blif_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.blif");
        write_blif_file(&net, &path).unwrap();
        let back = read_blif_file(&path).unwrap();
        assert_eq!(
            crate::verify::equiv_sim(&net, &back, 8, 3),
            Ok(()),
            "file round-trip must preserve the function"
        );
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn read_missing_file_is_io_error() {
        let err = read_blif_file("/nonexistent/path/x.blif").unwrap_err();
        assert!(matches!(err, ReadBlifError::Io(_)));
        assert!(err.to_string().contains("cannot read"));
    }

    #[test]
    fn read_bad_blif_is_parse_error() {
        let dir = std::env::temp_dir().join("bdsmaj_blif_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bad.blif");
        std::fs::write(&path, ".model m\n.bogus\n.end\n").unwrap();
        let err = read_blif_file(&path).unwrap_err();
        assert!(matches!(err, ReadBlifError::Parse(_)));
        std::fs::remove_file(&path).ok();
    }
}
