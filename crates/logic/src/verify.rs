//! Combinational equivalence checking, used to validate every optimization
//! flow in the workspace.
//!
//! Two complementary checkers are provided: a fast 64-bit random-vector
//! simulator for circuits of any size, and an exact BDD-based check for
//! circuits whose global BDDs stay tractable.

use crate::collapse::apply_gate;
use crate::network::{GateKind, Network, SignalId};
use bdd::{Manager, Ref};
use std::collections::HashMap;
use std::fmt;

/// A counterexample found by the simulation checker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// Name of the first differing output.
    pub output: String,
    /// Input assignment exhibiting the difference.
    pub assignment: Vec<bool>,
}

impl fmt::Display for Mismatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "output {} differs under {:?}",
            self.output, self.assignment
        )
    }
}

/// Tiny deterministic xorshift generator so the checker has no external
/// dependencies and failures are reproducible.
#[derive(Clone, Debug)]
pub struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    /// Seeds the generator (zero is mapped to a fixed non-zero seed).
    pub fn new(seed: u64) -> XorShift64 {
        XorShift64 {
            state: if seed == 0 { 0x9e3779b97f4a7c15 } else { seed },
        }
    }

    /// Next pseudo-random 64-bit word.
    pub fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x
    }
}

/// Checks `a` and `b` for equivalence on `rounds × 64` random input
/// vectors plus the all-zero and all-one vectors.
///
/// Both networks must have the same number of inputs and outputs (outputs
/// are compared positionally).
///
/// # Errors
///
/// Returns the first [`Mismatch`] found. A success only means no difference
/// was observed; use [`equiv_exact`] for a proof on small circuits.
///
/// # Panics
///
/// Panics if the interfaces differ in arity.
pub fn equiv_sim(a: &Network, b: &Network, rounds: usize, seed: u64) -> Result<(), Mismatch> {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input arity differs");
    assert_eq!(a.outputs().len(), b.outputs().len(), "output arity differs");
    let n = a.inputs().len();
    let mut rng = XorShift64::new(seed);
    for round in 0..rounds + 1 {
        let patterns: Vec<u64> = if round == 0 {
            // Deterministic corner patterns: include all-zero / all-one rows.
            (0..n)
                .map(|i| {
                    if i % 2 == 0 {
                        0xFFFF_FFFF_0000_0000
                    } else {
                        0xFF00_FF00_FF00_FF00
                    }
                })
                .collect()
        } else {
            (0..n).map(|_| rng.next_u64()).collect()
        };
        let ra = a.simulate(&patterns);
        let rb = b.simulate(&patterns);
        for (idx, (va, vb)) in ra.iter().zip(&rb).enumerate() {
            if va != vb {
                let bit = (va ^ vb).trailing_zeros();
                let assignment = patterns.iter().map(|p| p >> bit & 1 == 1).collect();
                return Err(Mismatch {
                    output: a.outputs()[idx].0.clone(),
                    assignment,
                });
            }
        }
    }
    Ok(())
}

/// Builds the global BDD of every primary output over the primary inputs
/// (input `i` is variable `i`). Returns `None` if the network exceeds
/// `max_nodes` manager nodes during construction (blow-up guard).
pub fn output_bdds(net: &Network, manager: &mut Manager, max_nodes: usize) -> Option<Vec<Ref>> {
    let mut values: HashMap<SignalId, Ref> = HashMap::new();
    for (i, &pi) in net.inputs().iter().enumerate() {
        let v = manager.var(i as u32);
        values.insert(pi, v);
    }
    for id in net.signals() {
        if values.contains_key(&id) {
            continue;
        }
        let node = net.node(id);
        if matches!(node.kind, GateKind::Input) {
            continue;
        }
        let kids: Vec<Ref> = node.fanins.iter().map(|f| values[f]).collect();
        let r = apply_gate(manager, &node.kind, &kids);
        values.insert(id, r);
        if manager.num_nodes() > max_nodes {
            return None;
        }
    }
    Some(net.outputs().iter().map(|(_, s)| values[s]).collect())
}

/// Exact equivalence via canonical global BDDs.
///
/// Returns `Some(true/false)` when both networks fit under `max_nodes`
/// manager nodes, `None` when the check would blow up.
pub fn equiv_exact(a: &Network, b: &Network, max_nodes: usize) -> Option<bool> {
    assert_eq!(a.inputs().len(), b.inputs().len(), "input arity differs");
    assert_eq!(a.outputs().len(), b.outputs().len(), "output arity differs");
    let mut manager = Manager::new();
    let fa = output_bdds(a, &mut manager, max_nodes)?;
    let fb = output_bdds(b, &mut manager, max_nodes)?;
    Some(fa == fb)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::GateKind;

    fn xor_as_xor() -> Network {
        let mut n = Network::new("x1");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::Xor, vec![a, b]);
        n.set_output("y", y);
        n
    }

    fn xor_as_aoi() -> Network {
        let mut n = Network::new("x2");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let na = n.add_gate(GateKind::Inv, vec![a]);
        let nb = n.add_gate(GateKind::Inv, vec![b]);
        let t1 = n.add_gate(GateKind::And, vec![a, nb]);
        let t2 = n.add_gate(GateKind::And, vec![na, b]);
        let y = n.add_gate(GateKind::Or, vec![t1, t2]);
        n.set_output("y", y);
        n
    }

    fn broken_xor() -> Network {
        let mut n = Network::new("x3");
        let a = n.add_input("a");
        let b = n.add_input("b");
        let y = n.add_gate(GateKind::Or, vec![a, b]);
        n.set_output("y", y);
        n
    }

    #[test]
    fn sim_checker_accepts_equivalent() {
        assert_eq!(equiv_sim(&xor_as_xor(), &xor_as_aoi(), 8, 42), Ok(()));
    }

    #[test]
    fn sim_checker_finds_counterexample() {
        let err = equiv_sim(&xor_as_xor(), &broken_xor(), 8, 42).unwrap_err();
        assert_eq!(err.output, "y");
        // The counterexample must actually distinguish the circuits:
        // or(1,1)=1 but xor(1,1)=0.
        assert_eq!(err.assignment, vec![true, true]);
    }

    #[test]
    fn exact_checker_proves_equivalence() {
        assert_eq!(
            equiv_exact(&xor_as_xor(), &xor_as_aoi(), 1 << 20),
            Some(true)
        );
        assert_eq!(
            equiv_exact(&xor_as_xor(), &broken_xor(), 1 << 20),
            Some(false)
        );
    }

    #[test]
    fn exact_checker_guards_blowup() {
        // A ludicrously small node budget forces the guard to trip.
        let r = equiv_exact(&xor_as_aoi(), &xor_as_aoi(), 2);
        assert_eq!(r, None);
    }

    #[test]
    fn xorshift_is_deterministic() {
        let mut a = XorShift64::new(7);
        let mut b = XorShift64::new(7);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut z = XorShift64::new(0);
        assert_ne!(z.next_u64(), 0, "zero seed must be remapped");
    }
}
