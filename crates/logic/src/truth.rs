//! Small truth tables: the node-function representation used by BLIF LUTs
//! and by exhaustive equivalence checks.

use std::fmt;

/// A truth table over up to 16 inputs, stored as packed 64-bit words.
///
/// Bit `i` of the table is the function value on the assignment whose bits
/// are the binary digits of `i` (input 0 is the least significant digit).
///
/// # Example
///
/// ```
/// use logic::TruthTable;
/// let and2 = TruthTable::from_fn(2, |bits| bits == 0b11);
/// assert!(and2.value(0b11));
/// assert!(!and2.value(0b01));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct TruthTable {
    num_inputs: u32,
    words: Vec<u64>,
}

const MAX_INPUTS: u32 = 16;

impl TruthTable {
    /// Builds a table by evaluating `f` on every assignment (encoded as the
    /// bits of the row index).
    ///
    /// # Panics
    ///
    /// Panics if `num_inputs > 16`.
    pub fn from_fn(num_inputs: u32, f: impl Fn(usize) -> bool) -> TruthTable {
        assert!(num_inputs <= MAX_INPUTS, "truth table too wide");
        let rows = 1usize << num_inputs;
        let mut words = vec![0u64; rows.div_ceil(64)];
        for (row, word) in words.iter_mut().enumerate() {
            for bit in 0..64 {
                let idx = row * 64 + bit;
                if idx < rows && f(idx) {
                    *word |= 1 << bit;
                }
            }
        }
        TruthTable { num_inputs, words }
    }

    /// The constant table (true or false) over `num_inputs` inputs.
    pub fn constant(num_inputs: u32, value: bool) -> TruthTable {
        TruthTable::from_fn(num_inputs, |_| value)
    }

    /// Number of inputs.
    pub fn num_inputs(&self) -> u32 {
        self.num_inputs
    }

    /// Number of rows (`2^num_inputs`).
    pub fn num_rows(&self) -> usize {
        1 << self.num_inputs
    }

    /// Function value on the assignment encoded by `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row` is out of range.
    pub fn value(&self, row: usize) -> bool {
        assert!(row < self.num_rows(), "row out of range");
        self.words[row / 64] >> (row % 64) & 1 == 1
    }

    /// Whether the table is constant, and which constant.
    pub fn as_constant(&self) -> Option<bool> {
        let first = self.value(0);
        if (0..self.num_rows()).all(|r| self.value(r) == first) {
            Some(first)
        } else {
            None
        }
    }

    /// Number of true rows.
    pub fn count_ones(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Complemented table.
    pub fn complement(&self) -> TruthTable {
        TruthTable::from_fn(self.num_inputs, |r| !self.value(r))
    }
}

impl fmt::Debug for TruthTable {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TruthTable({} in: ", self.num_inputs)?;
        let rows = self.num_rows().min(32);
        for r in (0..rows).rev() {
            write!(f, "{}", self.value(r) as u8)?;
        }
        if self.num_rows() > 32 {
            write!(f, "…")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn and_table() {
        let t = TruthTable::from_fn(2, |b| b == 3);
        assert_eq!(t.count_ones(), 1);
        assert!(t.value(3));
        assert!(!t.value(0));
        assert_eq!(t.as_constant(), None);
    }

    #[test]
    fn constants() {
        let t = TruthTable::constant(3, true);
        assert_eq!(t.as_constant(), Some(true));
        assert_eq!(t.count_ones(), 8);
        let f = TruthTable::constant(0, false);
        assert_eq!(f.as_constant(), Some(false));
        assert_eq!(f.num_rows(), 1);
    }

    #[test]
    fn complement_roundtrip() {
        let t = TruthTable::from_fn(3, |b| b % 3 == 0);
        assert_eq!(t.complement().complement(), t);
        assert_eq!(t.count_ones() + t.complement().count_ones(), 8);
    }

    #[test]
    fn wide_table_crosses_word_boundary() {
        let t = TruthTable::from_fn(8, |b| b & 1 == 1);
        assert_eq!(t.count_ones(), 128);
        assert!(t.value(255));
        assert!(!t.value(254));
    }

    #[test]
    #[should_panic(expected = "too wide")]
    fn rejects_oversized_tables() {
        TruthTable::from_fn(17, |_| false);
    }

    #[test]
    fn debug_is_nonempty() {
        let t = TruthTable::from_fn(1, |b| b == 1);
        assert!(!format!("{t:?}").is_empty());
    }
}
