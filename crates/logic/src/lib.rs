//! Multi-level Boolean logic networks and the surrounding infrastructure
//! of the BDS-MAJ reproduction: BLIF I/O, `eliminate`-style partial
//! collapse into per-supernode BDDs, and combinational equivalence
//! checking.
//!
//! # Example
//!
//! ```
//! use logic::{Network, GateKind, equiv_sim};
//!
//! let mut net = Network::new("mux");
//! let s = net.add_input("s");
//! let a = net.add_input("a");
//! let b = net.add_input("b");
//! let y = net.add_gate(GateKind::Mux, vec![s, a, b]);
//! net.set_output("y", y);
//!
//! // A MUX is ite(s, a, b): check against an AND/OR implementation.
//! let mut alt = Network::new("mux_aoi");
//! let s2 = alt.add_input("s");
//! let a2 = alt.add_input("a");
//! let b2 = alt.add_input("b");
//! let ns = alt.add_gate(GateKind::Inv, vec![s2]);
//! let t1 = alt.add_gate(GateKind::And, vec![s2, a2]);
//! let t2 = alt.add_gate(GateKind::And, vec![ns, b2]);
//! let y2 = alt.add_gate(GateKind::Or, vec![t1, t2]);
//! alt.set_output("y", y2);
//!
//! assert!(equiv_sim(&net, &alt, 4, 1).is_ok());
//! ```

mod balance;
mod blif;
mod collapse;
mod network;
mod stats;
mod truth;
mod verify;

pub use balance::balance_network;
pub use bdd::BuildFxHasher;
pub use blif::{parse_blif, write_blif, ParseBlifError};
pub use collapse::{
    apply_gate, partition, partition_with_limits, try_apply_gate, Partition, PartitionConfig,
    Supernode,
};
pub use network::{strash_key, GateCounts, GateKind, NetNode, Network, SignalId, STRASH_PAD};
pub use stats::{read_blif_file, write_blif_file, NetworkStats, ReadBlifError};
pub use truth::TruthTable;
pub use verify::{equiv_exact, equiv_sim, output_bdds, Mismatch, XorShift64};
