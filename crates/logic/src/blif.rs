//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! Supports the combinational subset used by the MCNC benchmarks: `.model`,
//! `.inputs`, `.outputs`, `.names` with SOP covers, and `.end`. Sequential
//! constructs (`.latch`) are rejected with an error.

use crate::network::{GateKind, Network, SignalId};
use crate::truth::TruthTable;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Error produced while parsing BLIF text.
#[derive(Debug, PartialEq, Eq)]
pub struct ParseBlifError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseBlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "blif parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl Error for ParseBlifError {}

impl ParseBlifError {
    /// 1-based source line the error points at (never 0: every error path
    /// carries the line of a real directive or cover row).
    pub fn line(&self) -> usize {
        self.line
    }
}

fn err(line: usize, message: impl Into<String>) -> ParseBlifError {
    ParseBlifError {
        line,
        message: message.into(),
    }
}

/// One `.names` block: output name, input names, and the SOP cover rows.
struct NamesBlock {
    line: usize,
    inputs: Vec<String>,
    output: String,
    cubes: Vec<(String, char)>,
}

/// Parses a BLIF model into a [`Network`].
///
/// The nodes of the result are LUTs carrying the exact cover function, so a
/// write/read round-trip is semantics-preserving.
///
/// # Errors
///
/// Returns [`ParseBlifError`] on malformed input, undefined signals,
/// combinational cycles, or unsupported constructs.
pub fn parse_blif(text: &str) -> Result<Network, ParseBlifError> {
    let mut model_name = String::from("model");
    let mut input_names: Vec<String> = Vec::new();
    let mut output_names: Vec<(usize, String)> = Vec::new();
    let mut blocks: Vec<NamesBlock> = Vec::new();

    // Join continuation lines ending in '\'.
    let mut logical_lines: Vec<(usize, String)> = Vec::new();
    let mut pending = String::new();
    let mut pending_line = 0usize;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim_end();
        if pending.is_empty() {
            pending_line = i + 1;
        }
        if let Some(stripped) = line.strip_suffix('\\') {
            pending.push_str(stripped);
            pending.push(' ');
        } else {
            pending.push_str(line);
            let full = std::mem::take(&mut pending);
            if !full.trim().is_empty() {
                logical_lines.push((pending_line, full));
            }
        }
    }

    let mut idx = 0usize;
    while let Some((lineno, line)) = logical_lines.get(idx) {
        let lineno = *lineno;
        let tokens: Vec<&str> = line.split_whitespace().collect();
        let Some((&directive, rest)) = tokens.split_first() else {
            // Logical lines are non-empty by construction; an empty token
            // list is simply skipped rather than trusted not to occur.
            idx += 1;
            continue;
        };
        match directive {
            ".model" => {
                if let Some(name) = rest.first() {
                    model_name = (*name).to_string();
                }
                idx += 1;
            }
            ".inputs" => {
                input_names.extend(rest.iter().map(|s| s.to_string()));
                idx += 1;
            }
            ".outputs" => {
                output_names.extend(rest.iter().map(|s| (lineno, s.to_string())));
                idx += 1;
            }
            ".names" => {
                let Some((output, input_toks)) = rest.split_last() else {
                    return Err(err(lineno, ".names requires at least an output"));
                };
                let output = (*output).to_string();
                let inputs: Vec<String> = input_toks.iter().map(|s| s.to_string()).collect();
                let mut cubes = Vec::new();
                idx += 1;
                while let Some((cl, cline)) = logical_lines.get(idx) {
                    if cline.trim_start().starts_with('.') {
                        break;
                    }
                    let parts: Vec<&str> = cline.split_whitespace().collect();
                    let (mask, value) = if inputs.is_empty() {
                        match parts.as_slice() {
                            [value] => (String::new(), *value),
                            _ => return Err(err(*cl, "constant cover row must be a single token")),
                        }
                    } else {
                        match parts.as_slice() {
                            [mask, value] => ((*mask).to_string(), *value),
                            _ => return Err(err(*cl, "cover row must be `<mask> <value>`")),
                        }
                    };
                    if mask.len() != inputs.len() {
                        return Err(err(*cl, "cover mask width mismatch"));
                    }
                    let value = match value {
                        "1" => '1',
                        "0" => '0',
                        _ => return Err(err(*cl, "cover value must be 0 or 1")),
                    };
                    cubes.push((mask, value));
                    idx += 1;
                }
                blocks.push(NamesBlock {
                    line: lineno,
                    inputs,
                    output,
                    cubes,
                });
            }
            ".end" => break,
            ".latch" => return Err(err(lineno, "sequential BLIF (.latch) is not supported")),
            ".exdc" | ".gate" | ".subckt" => {
                return Err(err(lineno, format!("unsupported construct {directive}")))
            }
            other => return Err(err(lineno, format!("unknown directive {other}"))),
        }
    }

    // Build the network: inputs first, then .names blocks in dependency order.
    let mut net = Network::new(model_name);
    let mut signals: HashMap<String, SignalId> = HashMap::new();
    for name in &input_names {
        let id = net.add_input(name.clone());
        signals.insert(name.clone(), id);
    }
    let mut remaining: Vec<NamesBlock> = blocks;
    while !remaining.is_empty() {
        let mut progressed = false;
        let mut still: Vec<NamesBlock> = Vec::new();
        for block in remaining {
            if block.inputs.iter().all(|i| signals.contains_key(i)) {
                let id = build_names_node(&mut net, &signals, &block)?;
                signals.insert(block.output.clone(), id);
                progressed = true;
            } else {
                still.push(block);
            }
        }
        if !progressed {
            // No progress with blocks remaining means an undefined signal
            // or a cycle; report the first stuck block. (If `still` were
            // somehow empty the loop would just terminate.)
            if let Some(block) = still.first() {
                let missing: Vec<&str> = block
                    .inputs
                    .iter()
                    .filter(|i| !signals.contains_key(*i))
                    .map(|s| s.as_str())
                    .collect();
                return Err(err(
                    block.line,
                    format!(
                        "undefined signal or combinational cycle (unresolved inputs of {}: {})",
                        block.output,
                        missing.join(", ")
                    ),
                ));
            }
        }
        remaining = still;
    }
    for (lineno, name) in &output_names {
        let id = *signals
            .get(name)
            .ok_or_else(|| err(*lineno, format!("undriven output {name}")))?;
        net.set_output(name.clone(), id);
    }
    Ok(net)
}

fn build_names_node(
    net: &mut Network,
    signals: &HashMap<String, SignalId>,
    block: &NamesBlock,
) -> Result<SignalId, ParseBlifError> {
    // The caller only hands over blocks whose inputs all resolved, but a
    // missing signal must surface as a parse error, not a panic.
    let fanins: Vec<SignalId> = block
        .inputs
        .iter()
        .map(|i| {
            signals
                .get(i)
                .copied()
                .ok_or_else(|| err(block.line, format!("undefined signal {i}")))
        })
        .collect::<Result<_, _>>()?;
    if block.inputs.is_empty() {
        // Constant node: the cover is a (possibly empty) list of "1"/"0".
        let value = block.cubes.iter().any(|(_, v)| *v == '1');
        let id = net.add_const(value);
        net.set_signal_name(id, block.output.clone());
        return Ok(id);
    }
    if block.inputs.len() > 16 {
        return Err(err(block.line, "cover with more than 16 inputs"));
    }
    // BLIF covers are either on-set or off-set, not mixed.
    let polarities: Vec<char> = block.cubes.iter().map(|(_, v)| *v).collect();
    let on_set = !polarities.contains(&'0');
    if !on_set && polarities.contains(&'1') {
        return Err(err(block.line, "mixed on-set/off-set cover"));
    }
    let masks: Vec<Vec<u8>> = block
        .cubes
        .iter()
        .map(|(m, _)| m.bytes().collect())
        .collect();
    let n = block.inputs.len() as u32;
    let covered = |row: usize| -> bool {
        masks.iter().any(|mask| {
            mask.iter().enumerate().all(|(i, &ch)| match ch {
                b'0' => row >> i & 1 == 0,
                b'1' => row >> i & 1 == 1,
                b'-' => true,
                _ => false,
            })
        })
    };
    let table = TruthTable::from_fn(n, |row| covered(row) == on_set);
    let id = net.add_gate(GateKind::Lut(table), fanins);
    net.set_signal_name(id, block.output.clone());
    Ok(id)
}

/// Serializes a network to BLIF text. Every node becomes a `.names` block
/// with an on-set cover (LUTs emit their minterm list, structured gates emit
/// a canonical cover for their function).
pub fn write_blif(net: &Network) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, ".model {}", net.name());
    let in_names: Vec<String> = net.inputs().iter().map(|&i| net.signal_name(i)).collect();
    let _ = writeln!(out, ".inputs {}", in_names.join(" "));
    let out_names: Vec<String> = net.outputs().iter().map(|(n, _)| n.clone()).collect();
    let _ = writeln!(out, ".outputs {}", out_names.join(" "));
    for id in net.signals() {
        let node = net.node(id);
        let name = net.signal_name(id);
        let fanin_names: Vec<String> = node.fanins.iter().map(|&f| net.signal_name(f)).collect();
        let header = if fanin_names.is_empty() {
            format!(".names {name}")
        } else {
            format!(".names {} {name}", fanin_names.join(" "))
        };
        let n = node.fanins.len();
        match &node.kind {
            GateKind::Input => {}
            GateKind::Const(v) => {
                let _ = writeln!(out, "{header}");
                if *v {
                    let _ = writeln!(out, "1");
                }
            }
            GateKind::Buf => {
                let _ = writeln!(out, "{header}\n1 1");
            }
            GateKind::Inv => {
                let _ = writeln!(out, "{header}\n0 1");
            }
            GateKind::And => {
                let _ = writeln!(out, "{header}\n{} 1", "1".repeat(n));
            }
            GateKind::Nand => {
                let _ = writeln!(out, "{header}");
                for i in 0..n {
                    let row: String = (0..n).map(|j| if j == i { '0' } else { '-' }).collect();
                    let _ = writeln!(out, "{row} 1");
                }
            }
            GateKind::Or => {
                let _ = writeln!(out, "{header}");
                for i in 0..n {
                    let row: String = (0..n).map(|j| if j == i { '1' } else { '-' }).collect();
                    let _ = writeln!(out, "{row} 1");
                }
            }
            GateKind::Nor => {
                let _ = writeln!(out, "{header}\n{} 1", "0".repeat(n));
            }
            GateKind::Xor | GateKind::Xnor | GateKind::Maj | GateKind::Mux => {
                let _ = writeln!(out, "{header}");
                for row in 0..(1usize << n) {
                    let on = match &node.kind {
                        GateKind::Xor => row.count_ones() % 2 == 1,
                        GateKind::Xnor => row.count_ones() % 2 == 0,
                        GateKind::Maj => row.count_ones() >= 2,
                        GateKind::Mux => {
                            if row & 1 == 1 {
                                row >> 1 & 1 == 1
                            } else {
                                row >> 2 & 1 == 1
                            }
                        }
                        // bdslint: allow(panic-surface) -- the outer match arm
                        // restricts kind to Xor/Xnor/Maj/Mux; no input reaches this
                        _ => unreachable!(),
                    };
                    if on {
                        let mask: String = (0..n)
                            .map(|i| if row >> i & 1 == 1 { '1' } else { '0' })
                            .collect();
                        let _ = writeln!(out, "{mask} 1");
                    }
                }
            }
            GateKind::Lut(table) => {
                let _ = writeln!(out, "{header}");
                for row in 0..table.num_rows() {
                    if table.value(row) {
                        let mask: String = (0..n)
                            .map(|i| if row >> i & 1 == 1 { '1' } else { '0' })
                            .collect();
                        let _ = writeln!(out, "{mask} 1");
                    }
                }
            }
        }
    }
    // Alias buffers for outputs whose name differs from the driving node.
    for (name, s) in net.outputs() {
        let driver = net.signal_name(*s);
        if *name != driver {
            let _ = writeln!(out, ".names {driver} {name}\n1 1");
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a tiny model
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";

    #[test]
    fn parses_full_adder() {
        let net = parse_blif(SAMPLE).expect("parse");
        assert_eq!(net.name(), "adder");
        assert_eq!(net.inputs().len(), 3);
        assert_eq!(net.outputs().len(), 2);
        let out = net.simulate(&[0b10101010, 0b11001100, 0b11110000]);
        for row in 0..8u32 {
            let total = (0b10101010u64 >> row & 1)
                + (0b11001100u64 >> row & 1)
                + (0b11110000u64 >> row & 1);
            assert_eq!(out[0] >> row & 1, total & 1);
            assert_eq!(out[1] >> row & 1, (total >= 2) as u64);
        }
    }

    #[test]
    fn roundtrip_preserves_function() {
        let net = parse_blif(SAMPLE).unwrap();
        let text = write_blif(&net);
        let net2 = parse_blif(&text).expect("reparse");
        let p = [0x123456789abcdefu64, 0xfedcba9876543210, 0x0f0f0f0f0f0f0f0f];
        assert_eq!(net.simulate(&p), net2.simulate(&p));
    }

    #[test]
    fn offset_covers_supported() {
        let text = ".model m\n.inputs a b\n.outputs y\n.names a b y\n11 0\n.end\n";
        let net = parse_blif(text).unwrap();
        // y = NOT(a AND b)
        let out = net.simulate(&[0b1010, 0b1100]);
        assert_eq!(out[0] & 0xF, 0b0111);
    }

    #[test]
    fn constant_nodes() {
        let text = ".model m\n.inputs a\n.outputs y z\n.names y\n1\n.names z\n.end\n";
        let net = parse_blif(text).unwrap();
        let out = net.simulate(&[0]);
        assert_eq!(out[0], u64::MAX);
        assert_eq!(out[1], 0);
    }

    #[test]
    fn rejects_latches() {
        let text = ".model m\n.inputs a\n.outputs y\n.latch a y re clk 0\n.end\n";
        let e = parse_blif(text).unwrap_err();
        assert!(e.to_string().contains("latch"));
    }

    #[test]
    fn rejects_cycles() {
        let text = ".model m\n.inputs a\n.outputs y\n.names y x\n1 1\n.names x y\n1 1\n.end\n";
        assert!(parse_blif(text).is_err());
    }

    #[test]
    fn continuation_lines() {
        let text = ".model m\n.inputs a \\\nb\n.outputs y\n.names a b y\n11 1\n.end\n";
        let net = parse_blif(text).unwrap();
        assert_eq!(net.inputs().len(), 2);
    }

    #[test]
    fn writes_structured_gates() {
        use crate::network::GateKind;
        let mut net = Network::new("gates");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let c = net.add_input("c");
        let m = net.add_gate(GateKind::Maj, vec![a, b, c]);
        let x = net.add_gate(GateKind::Xor, vec![a, m]);
        net.set_output("y", x);
        let text = write_blif(&net);
        let net2 = parse_blif(&text).unwrap();
        let p = [0xAAAA, 0xCCCC, 0xF0F0];
        assert_eq!(net.simulate(&p), net2.simulate(&p));
    }
}
