//! The multi-level Boolean logic network: the common circuit representation
//! shared by benchmark generators, decomposition engines, baselines and the
//! technology mapper.

use crate::truth::TruthTable;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a signal (equivalently, of the node driving it).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct SignalId(pub u32);

impl SignalId {
    /// Index as `usize` for table lookups.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Pad value for unused [`strash_key`] slots; never a real signal index
/// (signals are dense arena indices far below `u32::MAX`).
pub const STRASH_PAD: SignalId = SignalId(u32::MAX);

/// Builds the fixed-arity structural-hash key shared by the gate emitters
/// (`decomp::Emitter`, the techmap covering pass): gates carry at most
/// three fanins, so keying on `(code, [SignalId; 3])` padded with
/// [`STRASH_PAD`] avoids allocating a `Vec` per lookup.
///
/// Returns `None` for gates outside structural hashing (code 0, or wider
/// than three fanins). Callers sort commutative fanins *before* calling —
/// this helper never reorders (MUX-like gates are order-sensitive).
pub fn strash_key(code: u8, fanins: &[SignalId]) -> Option<(u8, [SignalId; 3])> {
    if code == 0 || fanins.len() > 3 {
        return None;
    }
    let mut key = [STRASH_PAD; 3];
    key[..fanins.len()].copy_from_slice(fanins);
    Some((code, key))
}

/// The function computed by a node from its fanins.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum GateKind {
    /// Primary input (no fanins).
    Input,
    /// Constant driver (no fanins).
    Const(bool),
    /// Buffer (1 fanin).
    Buf,
    /// Inverter (1 fanin).
    Inv,
    /// n-ary conjunction (≥ 1 fanins).
    And,
    /// n-ary disjunction (≥ 1 fanins).
    Or,
    /// n-ary negated conjunction.
    Nand,
    /// n-ary negated disjunction.
    Nor,
    /// n-ary parity (exclusive or).
    Xor,
    /// Complement of n-ary parity.
    Xnor,
    /// Three-input majority.
    Maj,
    /// Multiplexer: fanins are `[select, then, else]`.
    Mux,
    /// Arbitrary function of the fanins given by a truth table.
    Lut(TruthTable),
}

impl GateKind {
    /// Short lowercase tag used in reports and BLIF names.
    pub fn tag(&self) -> &'static str {
        match self {
            GateKind::Input => "input",
            GateKind::Const(_) => "const",
            GateKind::Buf => "buf",
            GateKind::Inv => "inv",
            GateKind::And => "and",
            GateKind::Or => "or",
            GateKind::Nand => "nand",
            GateKind::Nor => "nor",
            GateKind::Xor => "xor",
            GateKind::Xnor => "xnor",
            GateKind::Maj => "maj",
            GateKind::Mux => "mux",
            GateKind::Lut(_) => "lut",
        }
    }
}

/// One node of a [`Network`].
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NetNode {
    /// The function this node computes.
    pub kind: GateKind,
    /// Driving signals, in positional order (see [`GateKind`] for meaning).
    pub fanins: Vec<SignalId>,
    /// Optional user-facing name (BLIF identifier).
    pub name: Option<String>,
}

/// Per-gate-type node counts, the decomposition metric of Table I.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct GateCounts {
    pub and: usize,
    pub or: usize,
    pub xor: usize,
    pub xnor: usize,
    pub maj: usize,
    pub mux: usize,
    pub inv: usize,
    pub buf: usize,
    pub lut: usize,
    pub constant: usize,
    pub input: usize,
    pub nand: usize,
    pub nor: usize,
}

impl GateCounts {
    /// Total count of *logic* nodes, as reported in Table I of the paper:
    /// AND + OR + XOR + XNOR + MAJ (decomposition node types). Inverters are
    /// free on complemented edges and MUX nodes are expanded by the
    /// factoring stage, so the paper's totals cover these five types.
    pub fn decomposition_total(&self) -> usize {
        self.and + self.or + self.xor + self.xnor + self.maj
    }

    /// Total of all function-bearing nodes (everything except inputs,
    /// buffers and constants).
    pub fn logic_total(&self) -> usize {
        self.and
            + self.or
            + self.nand
            + self.nor
            + self.xor
            + self.xnor
            + self.maj
            + self.mux
            + self.inv
            + self.lut
    }
}

impl fmt::Display for GateCounts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "AND {} OR {} XOR {} XNOR {} MAJ {} (total {})",
            self.and,
            self.or,
            self.xor,
            self.xnor,
            self.maj,
            self.decomposition_total()
        )
    }
}

/// A combinational multi-level logic network.
///
/// Nodes are stored in topological order by construction: a node's fanins
/// must already exist when the node is added. Primary outputs are named
/// references to signals.
///
/// # Example
///
/// ```
/// use logic::{Network, GateKind};
/// let mut net = Network::new("xor_gate");
/// let a = net.add_input("a");
/// let b = net.add_input("b");
/// let x = net.add_gate(GateKind::Xor, vec![a, b]);
/// net.set_output("y", x);
/// assert_eq!(net.simulate(&[0b1100, 0b1010])[0] & 0xF, 0b0110);
/// ```
#[derive(Clone, Debug)]
pub struct Network {
    name: String,
    nodes: Vec<NetNode>,
    inputs: Vec<SignalId>,
    outputs: Vec<(String, SignalId)>,
}

impl Network {
    /// Creates an empty network with the given model name.
    pub fn new(name: impl Into<String>) -> Network {
        Network {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
        }
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Adds a primary input and returns its signal.
    pub fn add_input(&mut self, name: impl Into<String>) -> SignalId {
        let id = self.push(NetNode {
            kind: GateKind::Input,
            fanins: vec![],
            name: Some(name.into()),
        });
        self.inputs.push(id);
        id
    }

    /// Adds a gate node over existing signals and returns its signal.
    ///
    /// # Panics
    ///
    /// Panics if a fanin does not exist yet (networks are built in
    /// topological order) or the fanin count does not fit the gate kind.
    pub fn add_gate(&mut self, kind: GateKind, fanins: Vec<SignalId>) -> SignalId {
        for f in &fanins {
            assert!(
                f.index() < self.nodes.len(),
                "fanin {f:?} does not exist yet"
            );
        }
        match &kind {
            GateKind::Input => panic!("use add_input for primary inputs"),
            GateKind::Const(_) => assert!(fanins.is_empty(), "constants take no fanins"),
            GateKind::Buf | GateKind::Inv => {
                assert_eq!(fanins.len(), 1, "{} takes one fanin", kind.tag())
            }
            GateKind::Maj => assert_eq!(fanins.len(), 3, "maj takes three fanins"),
            GateKind::Mux => assert_eq!(fanins.len(), 3, "mux takes [sel, then, else]"),
            GateKind::Lut(t) => {
                assert_eq!(t.num_inputs() as usize, fanins.len(), "LUT arity mismatch")
            }
            GateKind::And
            | GateKind::Or
            | GateKind::Nand
            | GateKind::Nor
            | GateKind::Xor
            | GateKind::Xnor => {
                assert!(
                    !fanins.is_empty(),
                    "{} needs at least one fanin",
                    kind.tag()
                )
            }
        }
        self.push(NetNode {
            kind,
            fanins,
            name: None,
        })
    }

    /// Adds a constant driver.
    pub fn add_const(&mut self, value: bool) -> SignalId {
        self.add_gate(GateKind::Const(value), vec![])
    }

    fn push(&mut self, node: NetNode) -> SignalId {
        let id = SignalId(self.nodes.len() as u32);
        self.nodes.push(node);
        id
    }

    /// Declares `signal` as the primary output `name`.
    pub fn set_output(&mut self, name: impl Into<String>, signal: SignalId) {
        assert!(signal.index() < self.nodes.len(), "unknown signal");
        self.outputs.push((name.into(), signal));
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[SignalId] {
        &self.inputs
    }

    /// Primary outputs as (name, signal) pairs.
    pub fn outputs(&self) -> &[(String, SignalId)] {
        &self.outputs
    }

    /// Read access to a node.
    pub fn node(&self, id: SignalId) -> &NetNode {
        &self.nodes[id.index()]
    }

    /// All signals in topological order.
    pub fn signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        (0..self.nodes.len() as u32).map(SignalId)
    }

    /// Number of nodes of any kind.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Name of a signal: its declared name, or a positional fallback.
    pub fn signal_name(&self, id: SignalId) -> String {
        self.nodes[id.index()]
            .name
            .clone()
            .unwrap_or_else(|| format!("n{}", id.0))
    }

    /// Sets a display name on a node.
    pub fn set_signal_name(&mut self, id: SignalId, name: impl Into<String>) {
        self.nodes[id.index()].name = Some(name.into());
    }

    /// Number of fanouts per signal (outputs count as one fanout each).
    pub fn fanout_counts(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.nodes.len()];
        for node in &self.nodes {
            for f in &node.fanins {
                counts[f.index()] += 1;
            }
        }
        for (_, s) in &self.outputs {
            counts[s.index()] += 1;
        }
        counts
    }

    /// Bit-parallel simulation: `patterns[i]` carries 64 assignments of
    /// input `i` (one per bit). Returns one word per primary output.
    ///
    /// # Panics
    ///
    /// Panics if `patterns.len()` differs from the number of inputs.
    pub fn simulate(&self, patterns: &[u64]) -> Vec<u64> {
        assert_eq!(patterns.len(), self.inputs.len(), "pattern arity mismatch");
        let mut values = vec![0u64; self.nodes.len()];
        let mut next_input = 0usize;
        for (idx, node) in self.nodes.iter().enumerate() {
            let v = |s: SignalId| values[s.index()];
            values[idx] = match &node.kind {
                GateKind::Input => {
                    let p = patterns[next_input];
                    next_input += 1;
                    p
                }
                GateKind::Const(b) => {
                    if *b {
                        u64::MAX
                    } else {
                        0
                    }
                }
                GateKind::Buf => v(node.fanins[0]),
                GateKind::Inv => !v(node.fanins[0]),
                GateKind::And => node.fanins.iter().fold(u64::MAX, |acc, &f| acc & v(f)),
                GateKind::Or => node.fanins.iter().fold(0, |acc, &f| acc | v(f)),
                GateKind::Nand => !node.fanins.iter().fold(u64::MAX, |acc, &f| acc & v(f)),
                GateKind::Nor => !node.fanins.iter().fold(0, |acc, &f| acc | v(f)),
                GateKind::Xor => node.fanins.iter().fold(0, |acc, &f| acc ^ v(f)),
                GateKind::Xnor => !node.fanins.iter().fold(0, |acc, &f| acc ^ v(f)),
                GateKind::Maj => {
                    let (a, b, c) = (v(node.fanins[0]), v(node.fanins[1]), v(node.fanins[2]));
                    (a & b) | (b & c) | (a & c)
                }
                GateKind::Mux => {
                    let (s, t, e) = (v(node.fanins[0]), v(node.fanins[1]), v(node.fanins[2]));
                    (s & t) | (!s & e)
                }
                GateKind::Lut(table) => {
                    let mut out = 0u64;
                    for bit in 0..64 {
                        let mut row = 0usize;
                        for (i, &f) in node.fanins.iter().enumerate() {
                            if v(f) >> bit & 1 == 1 {
                                row |= 1 << i;
                            }
                        }
                        if table.value(row) {
                            out |= 1 << bit;
                        }
                    }
                    out
                }
            };
        }
        self.outputs
            .iter()
            .map(|(_, s)| values[s.index()])
            .collect()
    }

    /// Per-type node counts.
    pub fn gate_counts(&self) -> GateCounts {
        let mut c = GateCounts::default();
        for node in &self.nodes {
            match &node.kind {
                GateKind::Input => c.input += 1,
                GateKind::Const(_) => c.constant += 1,
                GateKind::Buf => c.buf += 1,
                GateKind::Inv => c.inv += 1,
                GateKind::And => c.and += 1,
                GateKind::Or => c.or += 1,
                GateKind::Nand => c.nand += 1,
                GateKind::Nor => c.nor += 1,
                GateKind::Xor => c.xor += 1,
                GateKind::Xnor => c.xnor += 1,
                GateKind::Maj => c.maj += 1,
                GateKind::Mux => c.mux += 1,
                GateKind::Lut(_) => c.lut += 1,
            }
        }
        c
    }

    /// Logic depth: the longest input-to-output path counting every
    /// non-buffer logic node as one level.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.nodes.len()];
        let mut max = 0;
        for (idx, node) in self.nodes.iter().enumerate() {
            let in_level = node
                .fanins
                .iter()
                .map(|f| level[f.index()])
                .max()
                .unwrap_or(0);
            let own = match node.kind {
                GateKind::Input | GateKind::Const(_) | GateKind::Buf => 0,
                _ => 1,
            };
            level[idx] = in_level + own;
            max = max.max(level[idx]);
        }
        max
    }

    /// Returns a structurally cleaned copy: dead nodes removed, constants
    /// propagated, buffers bypassed, double inverters collapsed, and
    /// single-fanin AND/OR/XOR reduced to buffers (then removed).
    ///
    /// The pass is iterated to a fixpoint, so simplifications that expose
    /// further dead logic (e.g. a collapsed inverter pair) are fully
    /// cleaned up.
    pub fn cleaned(&self) -> Network {
        let mut current = self.cleaned_once();
        for _ in 0..8 {
            let next = current.cleaned_once();
            if next.len() >= current.len() {
                return current;
            }
            current = next;
        }
        current
    }

    fn cleaned_once(&self) -> Network {
        let mut out = Network::new(self.name.clone());
        // old signal -> new signal
        let mut map: HashMap<SignalId, SignalId> = HashMap::new();
        // Mark live nodes (reachable from outputs).
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<SignalId> = self.outputs.iter().map(|(_, s)| *s).collect();
        while let Some(s) = stack.pop() {
            if live[s.index()] {
                continue;
            }
            live[s.index()] = true;
            stack.extend(self.nodes[s.index()].fanins.iter().copied());
        }
        // Inputs are always preserved to keep the interface stable.
        for &pi in &self.inputs {
            let name = self.signal_name(pi);
            let new = out.add_input(name);
            map.insert(pi, new);
        }
        let mut const_cache: HashMap<bool, SignalId> = HashMap::new();
        for (idx, node) in self.nodes.iter().enumerate() {
            let id = SignalId(idx as u32);
            if !live[idx] || map.contains_key(&id) {
                continue;
            }
            let fanins: Vec<SignalId> = node.fanins.iter().map(|f| map[f]).collect();
            let new = out.rewrite_gate(node.kind.clone(), fanins, &mut const_cache);
            map.insert(id, new);
        }
        for (name, s) in &self.outputs {
            out.set_output(name.clone(), map[s]);
        }
        out
    }

    /// Adds a gate applying local simplifications; used by [`Self::cleaned`]
    /// and by decomposition emitters.
    fn rewrite_gate(
        &mut self,
        kind: GateKind,
        fanins: Vec<SignalId>,
        const_cache: &mut HashMap<bool, SignalId>,
    ) -> SignalId {
        let mut get_const =
            |net: &mut Network, v: bool| *const_cache.entry(v).or_insert_with(|| net.add_const(v));
        let value_of = |net: &Network, s: SignalId| match net.node(s).kind {
            GateKind::Const(b) => Some(b),
            _ => None,
        };
        match kind {
            GateKind::Buf => fanins[0],
            GateKind::Inv => {
                let f = fanins[0];
                match &self.node(f).kind {
                    GateKind::Const(b) => {
                        let b = !*b;
                        get_const(self, b)
                    }
                    GateKind::Inv => self.node(f).fanins[0],
                    _ => self.add_gate(GateKind::Inv, fanins),
                }
            }
            GateKind::And | GateKind::Or => {
                let identity = matches!(kind, GateKind::And);
                let mut reduced = Vec::new();
                for f in fanins {
                    match value_of(self, f) {
                        Some(b) if b == identity => {}
                        Some(_) => return get_const(self, !identity),
                        None => {
                            if !reduced.contains(&f) {
                                reduced.push(f);
                            }
                        }
                    }
                }
                match reduced.len() {
                    0 => get_const(self, identity),
                    1 => reduced[0],
                    _ => self.add_gate(kind, reduced),
                }
            }
            GateKind::Xor | GateKind::Xnor => {
                let mut parity = matches!(kind, GateKind::Xnor);
                let mut reduced: Vec<SignalId> = Vec::new();
                for f in fanins {
                    match value_of(self, f) {
                        Some(b) => parity ^= b,
                        None => {
                            // x ⊕ x = 0: cancel pairs.
                            if let Some(pos) = reduced.iter().position(|&g| g == f) {
                                reduced.remove(pos);
                            } else {
                                reduced.push(f);
                            }
                        }
                    }
                }
                match (reduced.len(), parity) {
                    (0, p) => get_const(self, p),
                    (1, false) => reduced[0],
                    (1, true) => self.add_gate(GateKind::Inv, reduced),
                    (_, false) => self.add_gate(GateKind::Xor, reduced),
                    (_, true) => self.add_gate(GateKind::Xnor, reduced),
                }
            }
            GateKind::Mux => {
                let (s, t, e) = (fanins[0], fanins[1], fanins[2]);
                match value_of(self, s) {
                    Some(true) => t,
                    Some(false) => e,
                    None if t == e => t,
                    None => self.add_gate(GateKind::Mux, fanins),
                }
            }
            GateKind::Maj => {
                let (a, b, c) = (fanins[0], fanins[1], fanins[2]);
                let consts: Vec<Option<bool>> = fanins.iter().map(|&f| value_of(self, f)).collect();
                // Maj(1, b, c) = b + c; Maj(0, b, c) = b · c, and symmetric.
                if a == b || consts[0].is_some() && consts[0] == consts[1] {
                    return a;
                }
                if b == c || consts[1].is_some() && consts[1] == consts[2] {
                    return b;
                }
                if a == c || consts[0].is_some() && consts[0] == consts[2] {
                    return a;
                }
                for (i, cv) in consts.iter().enumerate() {
                    if let Some(v) = cv {
                        let (x, y) = match i {
                            0 => (b, c),
                            1 => (a, c),
                            _ => (a, b),
                        };
                        let k = if *v { GateKind::Or } else { GateKind::And };
                        return self.add_gate(k, vec![x, y]);
                    }
                }
                self.add_gate(GateKind::Maj, fanins)
            }
            GateKind::Lut(table) => match table.as_constant() {
                Some(v) => get_const(self, v),
                None => self.add_gate(GateKind::Lut(table), fanins),
            },
            GateKind::Const(v) => get_const(self, v),
            other => self.add_gate(other, fanins),
        }
    }

    /// Adds a gate with the same local simplifications as [`Self::cleaned`]
    /// applies (constant folding, unit reduction, duplicate removal).
    pub fn add_gate_simplified(&mut self, kind: GateKind, fanins: Vec<SignalId>) -> SignalId {
        let mut cache = HashMap::new();
        self.rewrite_gate(kind, fanins, &mut cache)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_adder() -> Network {
        let mut net = Network::new("fa");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let cin = net.add_input("cin");
        let s1 = net.add_gate(GateKind::Xor, vec![a, b, cin]);
        let carry = net.add_gate(GateKind::Maj, vec![a, b, cin]);
        net.set_output("sum", s1);
        net.set_output("cout", carry);
        net
    }

    #[test]
    fn full_adder_simulates_correctly() {
        let net = full_adder();
        // Exhaustive over 8 rows packed into one word.
        let a = 0b10101010;
        let b = 0b11001100;
        let c = 0b11110000;
        let out = net.simulate(&[a, b, c]);
        for row in 0..8u32 {
            let (x, y, z) = (a >> row & 1, b >> row & 1, c >> row & 1);
            let total = x + y + z;
            assert_eq!(out[0] >> row & 1, total & 1, "sum row {row}");
            assert_eq!(out[1] >> row & 1, (total >= 2) as u64, "carry row {row}");
        }
    }

    #[test]
    fn gate_counts_and_depth() {
        let net = full_adder();
        let c = net.gate_counts();
        assert_eq!(c.xor, 1);
        assert_eq!(c.maj, 1);
        assert_eq!(c.decomposition_total(), 2);
        assert_eq!(net.depth(), 1);
    }

    #[test]
    fn cleaned_removes_dead_logic() {
        let mut net = Network::new("dead");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let _dead = net.add_gate(GateKind::And, vec![a, b]);
        let live = net.add_gate(GateKind::Or, vec![a, b]);
        net.set_output("y", live);
        let cleaned = net.cleaned();
        assert_eq!(cleaned.gate_counts().and, 0);
        assert_eq!(cleaned.gate_counts().or, 1);
        assert_eq!(cleaned.inputs().len(), 2);
    }

    #[test]
    fn cleaned_propagates_constants() {
        let mut net = Network::new("c");
        let a = net.add_input("a");
        let one = net.add_const(true);
        let and = net.add_gate(GateKind::And, vec![a, one]);
        let inv = net.add_gate(GateKind::Inv, vec![and]);
        let inv2 = net.add_gate(GateKind::Inv, vec![inv]);
        net.set_output("y", inv2);
        let cleaned = net.cleaned();
        // and(a, 1) = a; inv(inv(a)) = a: y is just the input.
        assert_eq!(cleaned.gate_counts().logic_total(), 0);
        let out = cleaned.simulate(&[0b10]);
        assert_eq!(out[0] & 0b11, 0b10);
    }

    #[test]
    fn cleaned_cancels_xor_pairs() {
        let mut net = Network::new("x");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let x = net.add_gate(GateKind::Xor, vec![a, b, a]);
        net.set_output("y", x);
        let cleaned = net.cleaned();
        // a ⊕ b ⊕ a = b.
        assert_eq!(cleaned.gate_counts().logic_total(), 0);
        assert_eq!(cleaned.simulate(&[0, 0b1])[0] & 1, 1);
    }

    #[test]
    fn mux_and_maj_simplify() {
        let mut net = Network::new("m");
        let a = net.add_input("a");
        let b = net.add_input("b");
        let one = net.add_const(true);
        let m = net.add_gate(GateKind::Maj, vec![a, b, one]);
        net.set_output("y", m);
        let cleaned = net.cleaned();
        // Maj(a, b, 1) = a + b.
        assert_eq!(cleaned.gate_counts().or, 1);
        assert_eq!(cleaned.gate_counts().maj, 0);
    }

    #[test]
    fn lut_simulation_matches_table() {
        let mut net = Network::new("l");
        let a = net.add_input("a");
        let b = net.add_input("b");
        // LUT computing a AND NOT b.
        let t = TruthTable::from_fn(2, |r| r & 1 == 1 && r & 2 == 0);
        let l = net.add_gate(GateKind::Lut(t), vec![a, b]);
        net.set_output("y", l);
        let out = net.simulate(&[0b1010, 0b1100]);
        assert_eq!(out[0] & 0xF, 0b0010);
    }

    #[test]
    #[should_panic(expected = "does not exist")]
    fn fanins_must_exist() {
        let mut net = Network::new("bad");
        net.add_gate(GateKind::Inv, vec![SignalId(3)]);
    }

    #[test]
    fn simulate_checks_arity() {
        let net = full_adder();
        let r = std::panic::catch_unwind(|| net.simulate(&[0, 0]));
        assert!(r.is_err());
    }
}
