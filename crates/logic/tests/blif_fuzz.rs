//! Fuzzing the BLIF reader: `parse_blif` is the first thing that touches
//! bytes from outside the workspace, so it must be total — every input,
//! however hostile, yields `Ok(network)` or an `Err` pointing at a real
//! source line. It must never panic.

use logic::parse_blif;
use proptest::prelude::*;

/// Upper bound on the 1-based line an error may point at: one past the
/// last physical line (continuation joining attributes a run of `\`-lines
/// to its first physical line, so every recorded line number is a line
/// that exists in the input; +1 tolerates a trailing newline edge).
fn line_bound(text: &str) -> usize {
    text.lines().count() + 1
}

/// Fragments that steer random soup toward the parser's deeper paths.
fn blif_fragment() -> impl Strategy<Value = String> {
    prop_oneof![
        Just(".model m".to_string()),
        Just(".inputs a b c".to_string()),
        Just(".outputs y".to_string()),
        Just(".names a b y".to_string()),
        Just(".names y".to_string()),
        Just(".latch a y re clk 0".to_string()),
        Just(".subckt foo".to_string()),
        Just(".end".to_string()),
        Just("11 1".to_string()),
        Just("1- 0".to_string()),
        Just("-".to_string()),
        Just("1".to_string()),
        Just("# comment".to_string()),
        Just("\\".to_string()),
        Just("".to_string()),
        // printable ASCII junk
        proptest::collection::vec(0x20u8..0x7f, 0..20)
            .prop_map(|b| String::from_utf8(b).unwrap()),
        // arbitrary unicode junk (lossy decode of raw bytes)
        proptest::collection::vec(any::<u8>(), 0..12)
            .prop_map(|b| String::from_utf8_lossy(&b).into_owned()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Raw byte soup (lossily decoded): total, with in-range error lines.
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_blif(&text) {
            prop_assert!(e.line() >= 1, "error line must be 1-based: {e}");
            prop_assert!(
                e.line() <= line_bound(&text),
                "error line {} out of range for {} input lines",
                e.line(),
                text.lines().count()
            );
        }
    }

    /// Line soup built from BLIF-shaped fragments: reaches the directive
    /// and cover parsing paths that uniform bytes almost never hit.
    #[test]
    fn structured_soup_never_panics(
        lines in proptest::collection::vec(blif_fragment(), 0..40)
    ) {
        let text = lines.join("\n");
        if let Err(e) = parse_blif(&text) {
            prop_assert!(e.line() >= 1, "error line must be 1-based: {e}");
            prop_assert!(e.line() <= line_bound(&text));
        }
    }

    /// Mutations of a valid model: flip a byte anywhere in a well-formed
    /// BLIF file; the parser must still be total and point in range.
    #[test]
    fn mutated_valid_model_never_panics(pos in 0usize..200, byte in any::<u8>()) {
        let base = "\
.model adder
.inputs a b cin
.outputs sum cout
.names a b cin sum
100 1
010 1
001 1
111 1
.names a b cin cout
11- 1
1-1 1
-11 1
.end
";
        let mut bytes = base.as_bytes().to_vec();
        let i = pos % bytes.len();
        bytes[i] = byte;
        let text = String::from_utf8_lossy(&bytes);
        if let Err(e) = parse_blif(&text) {
            prop_assert!(e.line() >= 1);
            prop_assert!(e.line() <= line_bound(&text));
        }
    }
}

/// The two error paths that used to report placeholder line 0.
#[test]
fn undriven_output_points_at_the_outputs_line() {
    let text = ".model m\n.inputs a\n.outputs ghost\n.end\n";
    let e = parse_blif(text).unwrap_err();
    assert_eq!(e.line(), 3, "undriven output must cite the .outputs line: {e}");
    assert!(e.to_string().contains("ghost"));
}

#[test]
fn cycle_error_points_at_a_names_block() {
    let text = ".model m\n.inputs a\n.outputs y\n.names y x\n1 1\n.names x y\n1 1\n.end\n";
    let e = parse_blif(text).unwrap_err();
    assert!(e.line() == 4 || e.line() == 6, "cycle must cite a .names line: {e}");
    assert!(e.to_string().contains("cycle"));
}
